# Convenience targets for the heteroif reproduction.

GO ?= go

.PHONY: all build test race bench experiments experiments-full examples vet clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/network ./internal/core ./internal/routing

bench:
	$(GO) test -bench=. -benchmem ./...

# CI-scale reproduction of every table and figure, with CSV output.
experiments:
	$(GO) run ./cmd/hetsim -exp all -csv results

# Paper-scale systems and windows (hours; use -workers on multicore hosts).
experiments-full:
	$(GO) run ./cmd/hetsim -exp all -full -csv results-full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chiplet_reuse
	$(GO) run ./examples/datacenter_mixed
	$(GO) run ./examples/energy_tuning

clean:
	rm -rf results results-full test_output.txt bench_output.txt
