# Convenience targets for the heteroif reproduction.

GO ?= go

.PHONY: all build test race bench benchkernel bench-kernel bench-smoke prof experiments experiments-full examples vet fmt-check smoke fault collective ci clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...
	HETEROIF_FORCE_PARALLEL=1 $(GO) test -race -run 'TestParallelOracle' ./internal/experiments -args -oracle.workers=2,4,8

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# End-to-end sweep gate: reduced fig11 across 4 concurrent points, then
# validate the JSON result manifest (zero failed points required).
smoke:
	$(GO) run ./cmd/hetsim -exp fig11 -tiny -jobs 4 -json results-ci
	test -f results-ci/BENCH_fig11.json
	$(GO) run ./cmd/checkmanifest results-ci/BENCH_fig11.json

# Fault-injection gate: reduced BER × policy sweep plus the scripted
# serial-outage scenario (failover must stay live where the serial-only
# baseline starves), then validate the JSON result manifest.
fault:
	$(GO) run ./cmd/hetsim -exp fault -tiny -jobs 2 -json results-ci
	test -f results-ci/BENCH_fault.json
	$(GO) run ./cmd/checkmanifest results-ci/BENCH_fault.json

# Closed-loop collective gate: reduced policy × topology × collective
# sweep (completion-time metrics) plus the serial-outage scenario where
# the collective must complete across the tripped serial PHY, then
# validate the JSON result manifest.
collective:
	$(GO) run ./cmd/hetsim -exp collective -tiny -jobs 2 -json results-ci
	test -f results-ci/BENCH_collective.json
	$(GO) run ./cmd/checkmanifest results-ci/BENCH_collective.json

# Everything .github/workflows/ci.yml runs, locally.
ci: build vet fmt-check test race bench-smoke smoke fault collective

bench: bench-kernel
	$(GO) test -bench=. -benchmem ./...

# Kernel baseline: run the netbench suite (idle/low-load/saturated meshes
# at 16/64/256 nodes, saturated also under the reference tick and with
# parallel stepping, plus many-chiplet hetero-PHY tori at 1024 and 4096
# nodes) and record BENCH_kernel.json at the repo root. Run from a clean
# tree — benchkernel and checkmanifest warn on "-dirty" provenance.
bench-kernel:
	$(GO) run ./cmd/benchkernel -o BENCH_kernel.json

benchkernel: bench-kernel

# Fast CI gate over the same kernels: 100 iterations per case plus the
# steady-state zero-allocation assertions (idle, saturated sequential,
# saturated parallel), then a saturated/satpar-case manifest gated
# against the committed baseline and against in-manifest throughput
# ratios. The 50% baseline tolerance absorbs cross-machine variance (CI
# runners vs whatever produced BENCH_kernel.json; the same build has
# been observed swinging ±20% run-to-run on a shared single-vCPU box,
# so the spread does not allow tightening it) — hot-path regressions
# that undo the work-list/memoization/SoA design are far larger, and
# the machine-independent gate is the saturated=satref pair ratio: the
# SoA hot path must stay well ahead of the retained naive reference
# tick measured in the same run (pre-SoA ratios were 1.34×/1.17× at
# 64/256 nodes; post-SoA runs measure 1.6×, gated with noise margin).
# Ratio gates whose worker count exceeds the host's GOMAXPROCS are
# skipped with a warning (single-CPU hosts cannot run real
# parallelism); checkmanifest prints how many were enforced vs skipped.
bench-smoke:
	$(GO) test -run '^$$' -bench Step -benchtime=100x -benchmem ./internal/network
	$(GO) test -run ZeroAllocs ./internal/network
	mkdir -p results-ci
	$(GO) run ./cmd/benchkernel -cases sat -skip 4096nodes -test.benchtime=0.3s -o results-ci/BENCH_kernel_smoke.json
	$(GO) run ./cmd/checkmanifest -baseline BENCH_kernel.json -tolerance 0.5 \
		-compare satpar=saturated -min-ratio 1.0 \
		-compare 'satpar/1024nodes/4workers=saturated/1024nodes:1.5' \
		-compare 'saturated/64nodes=satref/64nodes:1.45' \
		-compare 'saturated/256nodes=satref/256nodes:1.25' \
		results-ci/BENCH_kernel_smoke.json

# CPU and heap profiles of the saturated 256-node kernel — the case the
# SoA hot-path work targets. Profiles and the test binary land in
# results-ci/prof/; inspect with
#   go tool pprof results-ci/prof/network.test results-ci/prof/cpu.prof
prof:
	mkdir -p results-ci/prof
	$(GO) test -run '^$$' -bench 'Step/saturated/256nodes' -benchtime 2s -benchmem \
		-cpuprofile results-ci/prof/cpu.prof -memprofile results-ci/prof/mem.prof \
		-o results-ci/prof/network.test ./internal/network

# CI-scale reproduction of every table and figure, with CSV output.
experiments:
	$(GO) run ./cmd/hetsim -exp all -csv results

# Paper-scale systems and windows (hours; use -workers on multicore hosts).
experiments-full:
	$(GO) run ./cmd/hetsim -exp all -full -csv results-full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chiplet_reuse
	$(GO) run ./examples/datacenter_mixed
	$(GO) run ./examples/energy_tuning

clean:
	rm -rf results results-full results-ci test_output.txt bench_output.txt
