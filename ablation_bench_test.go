package heteroif

import (
	"testing"

	"heteroif/internal/core"
	"heteroif/internal/experiments"
	"heteroif/internal/network"
	"heteroif/internal/routing"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports the metric the choice trades on (latency in cycles, energy in
// pJ/packet, delivered packets) via b.ReportMetric, so
// `go test -bench Ablation -benchtime 1x` prints a compact ablation table.

func ablationRun(b *testing.B, cfg network.Config, spec topology.Spec, pat traffic.Pattern, rate float64, mutate func(*experiments.Instance)) *experiments.Instance {
	b.Helper()
	cfg.SimCycles = 15000
	cfg.WarmupCycles = 3000
	in, err := experiments.Build(cfg, spec)
	if err != nil {
		b.Fatal(err)
	}
	if mutate != nil {
		mutate(in)
	}
	if pat != nil {
		if err := in.RunSynthetic(pat, rate); err != nil {
			b.Fatal(err)
		}
	}
	return in
}

func coreBalanced(threshold int) Policy { return core.Balanced{Threshold: threshold} }

// BenchmarkAblationAdmission compares virtual cut-through (the default,
// required by the deadlock-freedom argument) against plain wormhole
// admission near saturation on the parallel mesh.
func BenchmarkAblationAdmission(b *testing.B) {
	spec := topology.Spec{System: topology.UniformParallelMesh, ChipletsX: 4, ChipletsY: 4, NodesX: 4, NodesY: 4}
	for _, tc := range []struct {
		name     string
		wormhole bool
	}{{"vct", false}, {"wormhole", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := network.DefaultConfig()
				cfg.WormholeAdmission = tc.wormhole
				in := ablationRun(b, cfg, spec, traffic.Uniform{}, 0.30, nil)
				b.ReportMetric(in.Stats.MeanLatency(), "lat-cycles")
				b.ReportMetric(in.Stats.Throughput(in.Net.Now-in.Net.Cfg.WarmupCycles, in.Topo.N), "thr-f/c/n")
			}
		})
	}
}

// BenchmarkAblationBypass measures the adapter's latency-sensitive bypass:
// control packets crossing hetero-PHY interfaces behind bulk traffic, with
// the look-ahead window enabled vs disabled.
func BenchmarkAblationBypass(b *testing.B) {
	spec := topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 4, ChipletsY: 4, NodesX: 2, NodesY: 2}
	for _, tc := range []struct {
		name      string
		lookAhead int
	}{{"bypass-on", 8}, {"bypass-off", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := network.DefaultConfig()
				in := ablationRun(b, cfg, spec, nil, 0, func(in *experiments.Instance) {
					for _, a := range in.Topo.Adapters {
						a.LookAhead = tc.lookAhead
					}
					// Mixed traffic: bulk throughput + sparse control.
					bulk := traffic.NewGenerator(in.Net, traffic.Uniform{}, 0.35, 11)
					bulk.Class = network.ClassThroughput
					ctrl := traffic.NewGenerator(in.Net, traffic.Uniform{}, 0.01, 13)
					ctrl.Class = network.ClassLatencySensitive
					ctrl.Length = 1
					err := in.Net.Run(in.Net.Cfg.SimCycles, func(now int64) {
						bulk.Drive(now)
						ctrl.Drive(now)
					})
					if err != nil {
						b.Fatal(err)
					}
				})
				b.ReportMetric(in.Stats.ClassMeanLatency(uint8(network.ClassLatencySensitive)), "ctrl-lat")
				b.ReportMetric(float64(in.Stats.ClassPercentile(uint8(network.ClassLatencySensitive), 0.99)), "ctrl-p99")
			}
		})
	}
}

// BenchmarkAblationBalancedThreshold sweeps the balanced policy's
// serial-enable threshold (Sec. 5.3.1: the RTL uses half the FIFO).
func BenchmarkAblationBalancedThreshold(b *testing.B) {
	spec := topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 4, ChipletsY: 4, NodesX: 4, NodesY: 4}
	for _, thr := range []int{2, 8, 14} {
		b.Run(map[int]string{2: "thr-2", 8: "thr-8-half", 14: "thr-14"}[thr], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := network.DefaultConfig()
				sp := spec
				sp.Policy = coreBalanced(thr)
				in := ablationRun(b, cfg, sp, traffic.Uniform{}, 0.3, nil)
				b.ReportMetric(in.Stats.MeanLatency(), "lat-cycles")
				b.ReportMetric(in.Stats.MeanEnergyPJ(), "pJ/pkt")
			}
		})
	}
}

// BenchmarkAblationWeightedRouting compares the Sec. 5.2 weighted-path
// profitability against plain hop-count routing on the hetero-PHY torus:
// hop-count treats a 21-cycle wraparound like any other hop.
func BenchmarkAblationWeightedRouting(b *testing.B) {
	spec := topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 4, ChipletsY: 4, NodesX: 4, NodesY: 4}
	for _, tc := range []struct {
		name     string
		hopCount bool
	}{{"weighted", false}, {"hop-count", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := network.DefaultConfig()
				in := ablationRun(b, cfg, spec, nil, 0, func(in *experiments.Instance) {
					if tc.hopCount {
						in.Net.Routing = routing.NewTorus(in.Topo, 1, 1, 1)
					}
					gen := traffic.NewGenerator(in.Net, traffic.Uniform{}, 0.1, 17)
					if err := in.Net.Run(in.Net.Cfg.SimCycles, gen.Drive); err != nil {
						b.Fatal(err)
					}
				})
				b.ReportMetric(in.Stats.MeanLatency(), "lat-cycles")
			}
		})
	}
}

// BenchmarkAblationAdaptivity compares negative-first adaptive routing
// against deterministic XY on the uniform-parallel mesh at moderate load:
// adaptivity's value is congestion spreading.
func BenchmarkAblationAdaptivity(b *testing.B) {
	spec := topology.Spec{System: topology.UniformParallelMesh, ChipletsX: 4, ChipletsY: 4, NodesX: 4, NodesY: 4}
	for _, tc := range []struct {
		name string
		xy   bool
	}{{"negative-first", false}, {"xy-deterministic", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := network.DefaultConfig()
				in := ablationRun(b, cfg, spec, nil, 0, func(in *experiments.Instance) {
					in.Net.Routing = &routing.Mesh{T: in.Topo, DimensionOrder: tc.xy}
					gen := traffic.NewGenerator(in.Net, traffic.BitTranspose(), 0.25, 29)
					if err := in.Net.Run(in.Net.Cfg.SimCycles, gen.Drive); err != nil {
						b.Fatal(err)
					}
				})
				b.ReportMetric(in.Stats.MeanLatency(), "lat-cycles")
				b.ReportMetric(in.Stats.Throughput(in.Net.Now-in.Net.Cfg.WarmupCycles, in.Topo.N), "thr-f/c/n")
			}
		})
	}
}

// BenchmarkAblationPipelineDepth sweeps extra router pipeline latency per
// hop (0 = the Sec. 7.1 single-cycle ideal).
func BenchmarkAblationPipelineDepth(b *testing.B) {
	spec := topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 4, ChipletsY: 4, NodesX: 4, NodesY: 4}
	for _, extra := range []int{0, 1, 2} {
		b.Run(map[int]string{0: "ideal", 1: "plus1", 2: "plus2"}[extra], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := network.DefaultConfig()
				cfg.RouterPipelineExtra = extra
				in := ablationRun(b, cfg, spec, traffic.Uniform{}, 0.1, nil)
				b.ReportMetric(in.Stats.MeanLatency(), "lat-cycles")
			}
		})
	}
}

// BenchmarkAblationEq5Bias sweeps the hetero-channel subnetwork-selection
// bias: 1.0 is the paper's hop-minimizing Eq. 5; the serial/parallel
// energy ratio is the energy-efficient setting.
func BenchmarkAblationEq5Bias(b *testing.B) {
	spec := topology.Spec{System: topology.HeteroChannel, ChipletsX: 4, ChipletsY: 4, NodesX: 4, NodesY: 4}
	for _, tc := range []struct {
		name string
		bias float64
	}{{"eq5-1.0", 1.0}, {"eq5-2.4-energy", 2.4}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := network.DefaultConfig()
				in := ablationRun(b, cfg, spec, nil, 0, func(in *experiments.Instance) {
					in.Net.Routing = &routing.HeteroChannel{T: in.Topo, Bias: tc.bias}
					gen := traffic.NewGenerator(in.Net, traffic.Uniform{}, 0.1, 19)
					if err := in.Net.Run(in.Net.Cfg.SimCycles, gen.Drive); err != nil {
						b.Fatal(err)
					}
				})
				b.ReportMetric(in.Stats.MeanLatency(), "lat-cycles")
				b.ReportMetric(in.Stats.MeanEnergyPJ(), "pJ/pkt")
			}
		})
	}
}
