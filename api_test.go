package heteroif

import (
	"bytes"
	"strings"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SimCycles = 3000
	cfg.WarmupCycles = 500
	cfg.CheckInvariants = true
	return cfg
}

func TestPublicBuildAndRun(t *testing.T) {
	sys, err := Build(testConfig(), Spec{
		System:    HeteroPHYTorus,
		ChipletsX: 2, ChipletsY: 2,
		NodesX: 3, NodesY: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunSynthetic(UniformTraffic(), 0.1); err != nil {
		t.Fatal(err)
	}
	if sys.Stats.Count() == 0 {
		t.Fatal("no packets measured through the public API")
	}
	if lat := sys.Stats.MeanLatency(); lat <= 0 || lat > 500 {
		t.Fatalf("implausible mean latency %.1f", lat)
	}
}

func TestPublicPatternConstructors(t *testing.T) {
	for _, p := range []Pattern{
		UniformTraffic(),
		HotspotTraffic(64, 0.1, 1),
		BitShuffleTraffic(),
		BitComplementTraffic(),
		BitTransposeTraffic(),
		BitReverseTraffic(),
		LocalUniformTraffic(Spec{ChipletsX: 2, NodesX: 3, NodesY: 3}, 1),
	} {
		if p.Name() == "" {
			t.Error("pattern with empty name")
		}
	}
}

func TestPublicPolicies(t *testing.T) {
	for _, pol := range []Policy{
		BalancedPolicy(), PerformanceFirstPolicy(),
		EnergyEfficientPolicy(), ApplicationAwarePolicy(16),
	} {
		if pol.Name() == "" {
			t.Error("policy with empty name")
		}
	}
	// Policies plug into Spec.
	sys, err := Build(testConfig(), Spec{
		System:    HeteroPHYTorus,
		ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2,
		Policy: EnergyEfficientPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunSynthetic(UniformTraffic(), 0.05); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTraceReplay(t *testing.T) {
	tr, err := PARSECTrace("canneal", 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	sys, err := Build(cfg, Spec{
		System:    UniformParallelMesh,
		ChipletsX: 4, ChipletsY: 4, NodesX: 2, NodesY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(sys, tr, 1); err != nil {
		t.Fatal(err)
	}
	if sys.Net.PacketsDelivered() == 0 {
		t.Fatal("trace replay delivered nothing")
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	tr := MOCTrace(2000, 3)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || len(back.Records) != len(tr.Records) {
		t.Fatal("trace round trip mismatch")
	}
	if len(PARSECWorkloads()) < 8 {
		t.Error("expected the full PARSEC workload set")
	}
	if CNSTrace(2000, 1).Ranks != 1024 {
		t.Error("CNS rank count wrong")
	}
}

func TestPublicCustomDriver(t *testing.T) {
	cfg := testConfig()
	cfg.WarmupCycles = 0 // measure every packet of the short custom run
	sys, err := Build(cfg, Spec{
		System:    UniformParallelMesh,
		ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	err = RunWithDriver(sys, 500, func(now int64) {
		if now%50 == 0 {
			OfferPacket(sys, 0, 9, 4, ClassLatencySensitive, now)
			sent++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Drain(sys)
	if err != nil || !ok {
		t.Fatalf("drain: %v %v", ok, err)
	}
	if got := sys.Net.PacketsDelivered(); got != int64(sent) {
		t.Fatalf("delivered %d of %d", got, sent)
	}
	if sys.Stats.ClassCount(uint8(ClassLatencySensitive)) == 0 {
		t.Error("per-class stats empty")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 18 {
		t.Fatalf("experiment registry has %d entries, want 18", len(Experiments()))
	}
	var buf bytes.Buffer
	if err := RunExperiment("table1", false, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SerDes") {
		t.Error("table1 output missing interface rows")
	}
	if err := RunExperiment("nope", false, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}
