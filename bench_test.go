package heteroif

import (
	"io"
	"testing"

	"heteroif/internal/experiments"
	"heteroif/internal/network"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// One benchmark per table and figure of the paper's evaluation (Sec. 8).
// Each runs the corresponding experiment end to end at smoke (Tiny) scale,
// timing the regeneration and guarding against regressions that would
// silently break an experiment. The reported series themselves come from
// the harness: `go run ./cmd/hetsim -exp <id>` at CI scale, `-full` for
// the paper-scale systems and 100k-cycle windows.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.Options{Tiny: true}, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1InterfaceSpecs(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig08VTCurves(b *testing.B)              { benchExperiment(b, "fig08") }
func BenchmarkFig11HeteroPHYPatterns(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12PARSEC(b *testing.B)                { benchExperiment(b, "fig12") }
func BenchmarkFig13HPC(b *testing.B)                   { benchExperiment(b, "fig13") }
func BenchmarkFig14HeteroChannelPatterns(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15HeteroChannelHPC(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkTable3Scalability(b *testing.B)          { benchExperiment(b, "table3") }
func BenchmarkTable4Synthesis(b *testing.B)            { benchExperiment(b, "table4") }
func BenchmarkFig16EnergyUniform(b *testing.B)         { benchExperiment(b, "fig16") }
func BenchmarkFig17EnergyHPC(b *testing.B)             { benchExperiment(b, "fig17") }
func BenchmarkFig18EnergyLocality(b *testing.B)        { benchExperiment(b, "fig18") }
func BenchmarkTopologyAnalysis(b *testing.B)           { benchExperiment(b, "topo") }
func BenchmarkEconomyModel(b *testing.B)               { benchExperiment(b, "economy") }
func BenchmarkFaultTolerance(b *testing.B)             { benchExperiment(b, "linkfail") }
func BenchmarkFaultReliability(b *testing.B)           { benchExperiment(b, "fault") }
func BenchmarkCompromisedIF(b *testing.B)              { benchExperiment(b, "compromised") }

// Engine micro-benchmarks: raw simulation throughput per system kind,
// reported in node-cycles per second.

func benchEngine(b *testing.B, sys topology.System, rate float64) {
	b.Helper()
	cfg := network.DefaultConfig()
	cfg.SimCycles = 1 << 62 // run is bounded by the loop below
	cfg.DeadlockThreshold = 0
	spec := topology.Spec{System: sys, ChipletsX: 4, ChipletsY: 4, NodesX: 4, NodesY: 4}
	in, err := experiments.Build(cfg, spec)
	if err != nil {
		b.Fatal(err)
	}
	gen := traffic.NewGenerator(in.Net, traffic.Uniform{}, rate, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Drive(in.Net.Now)
		in.Net.Step()
	}
	b.ReportMetric(float64(in.Topo.N)*float64(b.N), "node-cycles")
	b.ReportMetric(float64(in.Net.PacketsDelivered()), "pkts-delivered")
}

func BenchmarkEngineMeshLowLoad(b *testing.B)   { benchEngine(b, topology.UniformParallelMesh, 0.05) }
func BenchmarkEngineMeshSaturated(b *testing.B) { benchEngine(b, topology.UniformParallelMesh, 0.6) }
func BenchmarkEngineHeteroPHY(b *testing.B)     { benchEngine(b, topology.HeteroPHYTorus, 0.2) }
func BenchmarkEngineHeteroChannel(b *testing.B) { benchEngine(b, topology.HeteroChannel, 0.2) }
func BenchmarkEngineSerialHypercube(b *testing.B) {
	benchEngine(b, topology.UniformSerialHypercube, 0.2)
}
