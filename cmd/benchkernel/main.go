// Command benchkernel records the cycle-engine kernel baseline: it runs
// the netbench suite (idle / low-load / saturated meshes at 16, 64 and
// 256 nodes, saturated additionally under the naive reference tick and
// with parallel stepping, plus many-chiplet hetero-PHY tori at 1024 and
// 4096 nodes — the same cases as BenchmarkStep in internal/network) and
// writes a JSON manifest so the engine's performance trajectory can be
// tracked across commits.
//
// Usage:
//
//	benchkernel -o BENCH_kernel.json            # full run (~1s per case)
//	benchkernel -cases sat -skip 4096nodes -test.benchtime=100x -o /dev/stdout  # CI smoke scale
//	benchkernel -list                           # print case names and exit
//
// The committed BENCH_kernel.json is the baseline `checkmanifest
// -baseline` gates fresh runs against; regenerate it only from a clean
// tree (a dirty tree draws a provenance warning here and in
// checkmanifest).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"heteroif/internal/network/netbench"
)

func main() {
	out := flag.String("o", "BENCH_kernel.json", "output path for the JSON manifest")
	cases := flag.String("cases", "", "only run cases whose name contains this substring (e.g. saturated)")
	skip := flag.String("skip", "", "skip cases whose name contains this substring (e.g. 4096nodes)")
	list := flag.Bool("list", false, "print the available case names and exit")
	testing.Init() // exposes -test.benchtime etc. for CI smoke runs
	flag.Parse()

	if *list {
		for _, c := range netbench.Cases() {
			fmt.Println(c.Name)
		}
		return
	}

	m := netbench.Manifest{
		Schema:     netbench.ManifestSchema,
		Git:        gitDescribe(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if m.Dirty() {
		fmt.Fprintf(os.Stderr, "benchkernel: warning: producing a manifest from a dirty tree (git %s) — do not commit it as the baseline\n", m.Git)
	}
	for _, c := range netbench.Cases() {
		if *cases != "" && !strings.Contains(c.Name, *cases) {
			continue
		}
		if *skip != "" && strings.Contains(c.Name, *skip) {
			continue
		}
		r := testing.Benchmark(c.Bench)
		cr := netbench.CaseResult{
			Name:        c.Name,
			Nodes:       c.Nodes,
			Workers:     c.Workers,
			CyclesPerOp: c.CyclesPerOp,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if v, ok := r.Extra["cycles/sec"]; ok {
			cr.CyclesPerSec = v
		}
		m.Cases = append(m.Cases, cr)
		fmt.Printf("%-26s %12.1f ns/op %14.0f cycles/sec %6d allocs/op\n",
			cr.Name, cr.NsPerOp, cr.CyclesPerSec, cr.AllocsPerOp)
	}

	if len(m.Cases) == 0 {
		// An empty manifest is always a filter typo: fail loudly instead
		// of writing a baseline that gates nothing.
		fmt.Fprintf(os.Stderr, "benchkernel: no cases match -cases=%q -skip=%q (run with -list to see case names)\n", *cases, *skip)
		os.Exit(1)
	}
	if err := m.WriteManifest(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

// gitDescribe stamps the manifest with the producing tree's version; empty
// outside a git checkout.
func gitDescribe() string {
	o, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(o))
}
