// Command benchkernel records the cycle-engine kernel baseline: it runs
// the netbench suite (idle / low-load / saturated meshes at 16, 64 and
// 256 nodes — the same cases as BenchmarkStep in internal/network) and
// writes a JSON manifest so the engine's performance trajectory can be
// tracked across commits.
//
// Usage:
//
//	benchkernel -o BENCH_kernel.json            # full run (~1s per case)
//	benchkernel -test.benchtime=100x -o /dev/stdout  # CI smoke scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"heteroif/internal/network/netbench"
)

// caseResult is one benchmark case in the manifest. cycles_per_sec is the
// headline number (simulated cycles per wall-clock second, from the
// benchmark's cycles/sec metric); allocs_per_op and bytes_per_op pin the
// steady-state allocation behaviour (idle cases must report 0).
type caseResult struct {
	Name         string  `json:"name"`
	Nodes        int     `json:"nodes"`
	CyclesPerOp  int64   `json:"cycles_per_op"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

type manifest struct {
	Schema     string       `json:"schema"`
	Git        string       `json:"git,omitempty"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Cases      []caseResult `json:"cases"`
}

func main() {
	out := flag.String("o", "BENCH_kernel.json", "output path for the JSON manifest")
	testing.Init() // exposes -test.benchtime etc. for CI smoke runs
	flag.Parse()

	m := manifest{
		Schema:     "heteroif-bench-kernel/v1",
		Git:        gitDescribe(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, c := range netbench.Cases() {
		r := testing.Benchmark(c.Bench)
		cr := caseResult{
			Name:        c.Name,
			Nodes:       c.Nodes,
			CyclesPerOp: c.CyclesPerOp,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if v, ok := r.Extra["cycles/sec"]; ok {
			cr.CyclesPerSec = v
		}
		m.Cases = append(m.Cases, cr)
		fmt.Printf("%-22s %12.1f ns/op %14.0f cycles/sec %6d allocs/op\n",
			cr.Name, cr.NsPerOp, cr.CyclesPerSec, cr.AllocsPerOp)
	}

	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernel:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

// gitDescribe stamps the manifest with the producing tree's version; empty
// outside a git checkout.
func gitDescribe() string {
	o, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(o))
}
