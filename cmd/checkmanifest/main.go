// Command checkmanifest validates hetsim JSON result manifests. It
// understands two kinds, distinguished by their schema field:
//
//   - experiment manifests (BENCH_<experiment>.json from `hetsim -json`):
//     checked for schema version, consistent failure counts and failed
//     operating points;
//   - kernel benchmark manifests (BENCH_kernel.json from benchkernel):
//     checked for schema and positive measurements, and — when -baseline
//     points at a committed manifest — gated against cycles/sec
//     regressions beyond -tolerance and against new steady-state
//     allocations.
//
// It exits non-zero on any violation — the gate CI runs after
// `hetsim -exp fig11 -jobs 4 -json results-ci` and after the bench-smoke
// benchkernel run.
//
// Usage:
//
//	checkmanifest results-ci/BENCH_fig11.json [more.json...]
//	checkmanifest -baseline BENCH_kernel.json -tolerance 0.25 fresh-kernel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"heteroif/internal/experiments"
	"heteroif/internal/network/netbench"
)

func main() {
	baseline := flag.String("baseline", "", "committed kernel manifest to gate cycles/sec regressions against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional cycles/sec drop vs -baseline")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: checkmanifest [-baseline BENCH_kernel.json [-tolerance 0.25]] <manifest.json>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var base *netbench.Manifest
	if *baseline != "" {
		m, err := netbench.ReadManifest(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkmanifest: baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		base = m
	}

	failed := false
	for _, path := range flag.Args() {
		if err := checkOne(path, base, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "checkmanifest: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkOne validates one manifest, dispatching on its schema field.
func checkOne(path string, base *netbench.Manifest, tolerance float64) error {
	schema, err := sniffSchema(path)
	if err != nil {
		return err
	}
	if schema == netbench.ManifestSchema {
		m, err := netbench.ReadManifest(path)
		if err != nil {
			return err
		}
		if base != nil {
			if err := m.CompareBaseline(base, tolerance); err != nil {
				return err
			}
			fmt.Printf("%s: ok (kernel, %d cases, within %.0f%% of baseline)\n",
				path, len(m.Cases), tolerance*100)
			return nil
		}
		fmt.Printf("%s: ok (kernel, %d cases)\n", path, len(m.Cases))
		return nil
	}
	m, err := experiments.ReadManifest(path)
	if err != nil {
		return err
	}
	if err := m.Check(); err != nil {
		return err
	}
	fmt.Printf("%s: ok (%s, %d points, %d tables, %d ms", path, m.Experiment,
		len(m.Points), len(m.Tables), m.WallClockMS)
	if m.Git != "" {
		fmt.Printf(", git %s", m.Git)
	}
	fmt.Println(")")
	return nil
}

// sniffSchema reads only the schema field so dispatch never depends on the
// rest of the document parsing.
func sniffSchema(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", fmt.Errorf("parse manifest: %w", err)
	}
	return probe.Schema, nil
}
