// Command checkmanifest validates hetsim JSON result manifests. It
// understands two kinds, distinguished by their schema field:
//
//   - experiment manifests (BENCH_<experiment>.json from `hetsim -json`):
//     checked for schema version, consistent failure counts and failed
//     operating points;
//   - kernel benchmark manifests (BENCH_kernel.json from benchkernel):
//     checked for schema and positive measurements; when -baseline points
//     at a committed manifest they are gated against cycles/sec
//     regressions beyond -tolerance and against new steady-state
//     allocations; -compare adds intra-manifest throughput-ratio gates
//     (parallel ≥ sequential). A manifest stamped from a dirty git tree
//     draws a provenance warning.
//
// It exits non-zero on any violation — the gate CI runs after
// `hetsim -exp fig11 -jobs 4 -json results-ci` and after the bench-smoke
// benchkernel run.
//
// Usage:
//
//	checkmanifest results-ci/BENCH_fig11.json [more.json...]
//	checkmanifest -baseline BENCH_kernel.json -tolerance 0.25 fresh-kernel.json
//	checkmanifest -compare satpar=saturated -min-ratio 1.0 \
//	    -compare 'satpar/1024nodes=saturated/1024nodes:1.5' fresh-kernel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heteroif/internal/experiments"
	"heteroif/internal/network/netbench"
)

// compareSpec is one -compare gate: cases prefixed newPrefix must reach
// ratio × the same-node-count case prefixed basePrefix.
type compareSpec struct {
	newPrefix, basePrefix string
	ratio                 float64 // <0: use -min-ratio
}

func main() {
	baseline := flag.String("baseline", "", "committed kernel manifest to gate cycles/sec regressions against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional cycles/sec drop vs -baseline")
	minRatio := flag.Float64("min-ratio", 1.0, "default cycles/sec ratio -compare gates enforce")
	var compares []compareSpec
	flag.Func("compare", "NEW=BASE[:RATIO] — gate cycles/sec of NEW-prefixed cases against the BASE-prefixed case with the same node count (repeatable)", func(v string) error {
		spec, err := parseCompare(v)
		if err != nil {
			return err
		}
		compares = append(compares, spec)
		return nil
	})
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: checkmanifest [-baseline BENCH_kernel.json [-tolerance 0.25]] [-compare NEW=BASE[:RATIO]]... [-min-ratio 1.0] <manifest.json>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var base *netbench.Manifest
	if *baseline != "" {
		m, err := netbench.ReadManifest(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkmanifest: baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		warnDirty(*baseline, m)
		base = m
	}

	failed := false
	for _, path := range flag.Args() {
		if err := checkOne(path, base, *tolerance, compares, *minRatio); err != nil {
			fmt.Fprintf(os.Stderr, "checkmanifest: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseCompare parses NEW=BASE[:RATIO].
func parseCompare(v string) (compareSpec, error) {
	newPart, basePart, ok := strings.Cut(v, "=")
	if !ok || newPart == "" || basePart == "" {
		return compareSpec{}, fmt.Errorf("compare spec %q: want NEW=BASE[:RATIO]", v)
	}
	spec := compareSpec{newPrefix: newPart, basePrefix: basePart, ratio: -1}
	if basePrefix, ratioPart, ok := strings.Cut(basePart, ":"); ok {
		r, err := strconv.ParseFloat(ratioPart, 64)
		if err != nil || r <= 0 {
			return compareSpec{}, fmt.Errorf("compare spec %q: bad ratio %q", v, ratioPart)
		}
		spec.basePrefix, spec.ratio = basePrefix, r
	}
	return spec, nil
}

// warnDirty flags manifests whose numbers came from uncommitted code.
func warnDirty(path string, m *netbench.Manifest) {
	if m.Dirty() {
		fmt.Fprintf(os.Stderr, "checkmanifest: warning: %s was produced from a dirty tree (git %s) — its numbers have no committed provenance\n", path, m.Git)
	}
}

// checkOne validates one manifest, dispatching on its schema field.
func checkOne(path string, base *netbench.Manifest, tolerance float64, compares []compareSpec, minRatio float64) error {
	schema, err := sniffSchema(path)
	if err != nil {
		return err
	}
	if schema == netbench.ManifestSchema {
		m, err := netbench.ReadManifest(path)
		if err != nil {
			return err
		}
		warnDirty(path, m)
		gates := []string{}
		if base != nil {
			if err := m.CompareBaseline(base, tolerance); err != nil {
				return err
			}
			gates = append(gates, fmt.Sprintf("within %.0f%% of baseline", tolerance*100))
		}
		var total netbench.CompareStats
		for _, spec := range compares {
			ratio := spec.ratio
			if ratio < 0 {
				ratio = minRatio
			}
			warnf := func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "checkmanifest: warning: %s: %s\n", path, fmt.Sprintf(format, args...))
			}
			st, err := m.ComparePairs(spec.newPrefix, spec.basePrefix, ratio, warnf)
			if err != nil {
				return err
			}
			total.Enforced += st.Enforced
			total.Skipped += st.Skipped
			gates = append(gates, fmt.Sprintf("%s ≥ %.2f× %s", spec.newPrefix, ratio, spec.basePrefix))
		}
		if len(compares) > 0 {
			// Summarize how much of the ratio gating was live: skipped
			// pairings (GOMAXPROCS guard) weaken the gate silently
			// otherwise.
			fmt.Printf("%s: ratio gates: %d enforced, %d skipped by GOMAXPROCS guard\n",
				path, total.Enforced, total.Skipped)
		}
		if len(gates) > 0 {
			fmt.Printf("%s: ok (kernel, %d cases, %s)\n", path, len(m.Cases), strings.Join(gates, ", "))
			return nil
		}
		fmt.Printf("%s: ok (kernel, %d cases)\n", path, len(m.Cases))
		return nil
	}
	m, err := experiments.ReadManifest(path)
	if err != nil {
		return err
	}
	if err := m.Check(); err != nil {
		return err
	}
	fmt.Printf("%s: ok (%s, %d points, %d tables, %d ms", path, m.Experiment,
		len(m.Points), len(m.Tables), m.WallClockMS)
	if m.Git != "" {
		fmt.Printf(", git %s", m.Git)
	}
	fmt.Println(")")
	return nil
}

// sniffSchema reads only the schema field so dispatch never depends on the
// rest of the document parsing.
func sniffSchema(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", fmt.Errorf("parse manifest: %w", err)
	}
	return probe.Schema, nil
}
