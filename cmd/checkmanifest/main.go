// Command checkmanifest validates hetsim JSON result manifests
// (BENCH_<experiment>.json). It exits non-zero when a manifest is missing,
// malformed (unknown fields, wrong schema version, inconsistent failure
// counts), empty, or contains a failed operating point — the gate the CI
// smoke job runs after `hetsim -exp fig11 -jobs 4 -json results-ci`.
//
// Usage:
//
//	checkmanifest results-ci/BENCH_fig11.json [more.json...]
package main

import (
	"flag"
	"fmt"
	"os"

	"heteroif/internal/experiments"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: checkmanifest <manifest.json>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for _, path := range flag.Args() {
		m, err := experiments.ReadManifest(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkmanifest: %s: %v\n", path, err)
			failed = true
			continue
		}
		if err := m.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "checkmanifest: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok (%s, %d points, %d tables, %d ms", path, m.Experiment,
			len(m.Points), len(m.Tables), m.WallClockMS)
		if m.Git != "" {
			fmt.Printf(", git %s", m.Git)
		}
		fmt.Println(")")
	}
	if failed {
		os.Exit(1)
	}
}
