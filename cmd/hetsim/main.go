// Command hetsim runs the paper-reproduction experiments: one named
// experiment per table and figure of the evaluation (Sec. 8).
//
// Usage:
//
//	hetsim -exp fig11                  # shortened CI-scale run
//	hetsim -exp fig14 -full            # paper-scale system and windows
//	hetsim -exp all -csv out/          # everything, with CSV output
//	hetsim -exp all -jobs 8 -json out/ # parallel sweep + JSON manifests
//	hetsim -list
//
// -jobs runs independent operating points concurrently (point-level
// parallelism); -workers parallelizes the cycle loop of each simulation
// (cycle-level parallelism). Both are deterministic: results are
// bit-identical for any -jobs/-workers values.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"heteroif/internal/experiments"
	"heteroif/internal/sweep"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (e.g. fig11, table3) or \"all\"")
		spec    = flag.String("run", "", "run a custom simulation from a JSON spec file")
		full    = flag.Bool("full", false, "paper-scale systems and simulation windows (slow)")
		tiny    = flag.Bool("tiny", false, "smoke-test scale systems and windows (seconds; used by CI)")
		csv     = flag.String("csv", "", "directory for CSV output (optional)")
		jsonDir = flag.String("json", "", "directory for JSON result manifests (BENCH_<exp>.json, optional)")
		seed    = flag.Int64("seed", 0, "random seed override (0 = default)")
		workers = flag.Int("workers", 1, "parallel simulation workers per point (cycle-level, deterministic); "+
			"when set explicitly it overrides the \"workers\" field of a -run spec")
		jobs = flag.Int("jobs", 1, "concurrent operating points per experiment (point-level, deterministic; "+
			"results are bit-identical for any value)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-point wall-clock timeout; an expired point is reported "+
			"as failed instead of hanging the sweep (0 = unbounded)")
		ber        = flag.Float64("ber", 0, "serial-PHY bit-error rate for the fault experiment; nonzero overrides its BER sweep with {0, ber}")
		faultseed  = flag.Int64("faultseed", 0, "fault-injection seed, independent of the workload seed (0 = derived)")
		list       = flag.Bool("list", false, "list available experiments")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetsim: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hetsim: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hetsim: memprofile:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hetsim: memprofile:", err)
				os.Exit(1)
			}
		}()
	}

	if *spec != "" {
		c, err := experiments.LoadCustomRunFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetsim:", err)
			os.Exit(1)
		}
		// Precedence: an explicit -workers flag wins over the spec's
		// "workers" field, which wins over the default (sequential).
		if c.Workers == 0 || flagWasSet("workers") {
			c.Workers = *workers
		}
		if err := c.Execute(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hetsim:", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{
		Full: *full, Tiny: *tiny, CSVDir: *csv, Seed: *seed,
		Workers: *workers, Jobs: *jobs, JobTimeout: *jobTimeout,
		FaultBER: *ber, FaultSeed: *faultseed,
	}
	git := gitDescribe()
	run := func(e experiments.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		o := opts
		o.Progress = progressPrinter(e.ID)
		if *jsonDir != "" {
			o.Manifest = experiments.NewManifest(e, git, o)
		}
		start := time.Now()
		err := e.Run(o, os.Stdout)
		elapsed := time.Since(start)
		if o.Manifest != nil {
			o.Manifest.WallClockMS = elapsed.Milliseconds()
			if werr := o.Manifest.Write(*jsonDir); werr != nil {
				fmt.Fprintf(os.Stderr, "hetsim: writing %s manifest: %v\n", e.ID, werr)
				os.Exit(1)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetsim: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s done in %s ===\n\n", e.ID, elapsed.Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.Registry {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		// Mirror `benchkernel -list`: an unknown ID gets the full menu, not
		// just an error string.
		fmt.Fprintf(os.Stderr, "hetsim: unknown experiment %q — valid experiments:\n", *exp)
		for _, e := range experiments.Registry {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(os.Stderr, "  all          run every experiment above")
		fmt.Fprintln(os.Stderr, "(or use -list)")
		os.Exit(2)
	}
	run(e)
}

// flagWasSet reports whether the named flag was passed on the command line
// (as opposed to holding its default value).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// progressPrinter reports sweep progress on stderr: in-place on a
// terminal, as plain lines when redirected (CI logs).
func progressPrinter(id string) func(sweep.Progress) {
	tty := false
	if st, err := os.Stderr.Stat(); err == nil {
		tty = st.Mode()&os.ModeCharDevice != 0
	}
	return func(p sweep.Progress) {
		line := fmt.Sprintf("%s: %d/%d points (%.0f%%), elapsed %s, eta %s",
			id, p.Done, p.Total, 100*float64(p.Done)/float64(p.Total),
			p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
		if p.Failed > 0 {
			line += fmt.Sprintf(", %d FAILED", p.Failed)
		}
		switch {
		case tty && p.Done == p.Total:
			fmt.Fprintf(os.Stderr, "\r%-78s\n", line)
		case tty:
			fmt.Fprintf(os.Stderr, "\r%-78s", line)
		default:
			fmt.Fprintln(os.Stderr, line)
		}
	}
}

// gitDescribe stamps manifests with the producing tree's version; empty
// outside a git checkout.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
