// Command hetsim runs the paper-reproduction experiments: one named
// experiment per table and figure of the evaluation (Sec. 8).
//
// Usage:
//
//	hetsim -exp fig11            # shortened CI-scale run
//	hetsim -exp fig14 -full      # paper-scale system and windows
//	hetsim -exp all -csv out/    # everything, with CSV output
//	hetsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"heteroif/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (e.g. fig11, table3) or \"all\"")
		spec    = flag.String("run", "", "run a custom simulation from a JSON spec file")
		full    = flag.Bool("full", false, "paper-scale systems and simulation windows (slow)")
		csv     = flag.String("csv", "", "directory for CSV output (optional)")
		seed    = flag.Int64("seed", 0, "random seed override (0 = default)")
		workers = flag.Int("workers", 1, "parallel simulation workers (deterministic; useful for -full)")
		list    = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *spec != "" {
		c, err := experiments.LoadCustomRunFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetsim:", err)
			os.Exit(1)
		}
		if err := c.Execute(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hetsim:", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Full: *full, CSVDir: *csv, Seed: *seed, Workers: *workers}
	run := func(e experiments.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hetsim: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s done in %s ===\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.Registry {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetsim:", err)
		os.Exit(2)
	}
	run(e)
}
