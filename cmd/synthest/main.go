// Command synthest runs the TSMC-12nm-calibrated synthesis estimator
// standalone: the four Table 4 modules by default, or a custom module from
// flags — useful for sizing variants (deeper adapter queues, higher-radix
// routers) beyond the paper's design points.
//
// Usage:
//
//	synthest                       # Table 4
//	synthest -storage 2560 -ports 3 -gates 800 -active 128 -mux 32
package main

import (
	"flag"
	"fmt"

	"heteroif/internal/rtl"
)

func main() {
	var (
		storage = flag.Int("storage", 0, "storage bits (0 = print Table 4 modules)")
		ports   = flag.Int("ports", 1, "concurrent R/W ports on the storage array")
		gates   = flag.Int("gates", 0, "NAND2-equivalent control gates")
		active  = flag.Float64("active", 0, "mean switched bits per cycle (dynamic power)")
		mux     = flag.Int("mux", 1, "widest data-mux fan-in on the critical path")
		arb     = flag.Int("arb", 0, "allocator ports on the critical path")
		xin     = flag.Int("xin", 0, "crossbar inputs")
		xout    = flag.Int("xout", 0, "crossbar outputs")
		xw      = flag.Int("xw", 0, "crossbar width in bits")
	)
	flag.Parse()

	if *storage == 0 {
		fmt.Println("Table 4 post-synthesis estimates (TSMC-12nm-calibrated):")
		for _, r := range rtl.Table4() {
			fmt.Println(" ", r)
		}
		return
	}
	m := rtl.Module{
		Name:               "custom",
		StorageBits:        *storage,
		RWPorts:            *ports,
		ControlGates:       *gates,
		ActiveBitsPerCycle: *active,
		MuxFanIn:           *mux,
		ArbPorts:           *arb,
		XbarIn:             *xin,
		XbarOut:            *xout,
		XbarWidth:          *xw,
	}
	fmt.Println(m.Estimate(rtl.TSMC12()))
}
