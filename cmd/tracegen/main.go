// Command tracegen generates, inspects and converts the synthetic workload
// traces used by the trace-driven experiments (Figs. 12, 13, 15, 17).
//
// Usage:
//
//	tracegen -gen parsec-canneal -cycles 100000 -o canneal.trc
//	tracegen -gen hpc-cns -cycles 400000 -o cns.trc
//	tracegen -info cns.trc
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"heteroif/internal/trace"
)

func main() {
	var (
		gen    = flag.String("gen", "", "trace to generate: parsec-<workload>, hpc-cns, hpc-moc")
		out    = flag.String("o", "", "output file (default: <name>.trc)")
		info   = flag.String("info", "", "print a summary of an existing trace file")
		cycles = flag.Int64("cycles", 100000, "trace duration in cycles")
		seed   = flag.Int64("seed", 1, "generator seed")
		list   = flag.Bool("list", false, "list available generators")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println("available traces:")
		for _, wl := range trace.PARSECWorkloads() {
			fmt.Printf("  parsec-%s\n", wl)
		}
		fmt.Println("  hpc-cns")
		fmt.Println("  hpc-moc")
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("name:     %s\n", tr.Name)
		fmt.Printf("ranks:    %d\n", tr.Ranks)
		fmt.Printf("cycles:   %d\n", tr.Cycles)
		fmt.Printf("packets:  %d\n", len(tr.Records))
		fmt.Printf("flits:    %d\n", tr.TotalFlits())
		fmt.Printf("offered:  %.4f flits/cycle/rank\n", tr.OfferedRate())
		fmt.Println("--- statistics ---")
		fmt.Print(tr.ComputeStats(0))
	case *gen != "":
		tr, err := generate(*gen, *cycles, *seed)
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" {
			path = tr.Name + ".trc"
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := tr.Write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d packets over %d cycles (%.4f flits/cycle/rank)\n",
			path, len(tr.Records), tr.Cycles, tr.OfferedRate())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(name string, cycles, seed int64) (*trace.Trace, error) {
	switch {
	case name == "hpc-cns":
		return trace.GenerateCNS(cycles, seed), nil
	case name == "hpc-moc":
		return trace.GenerateMOC(cycles, seed), nil
	case strings.HasPrefix(name, "parsec-"):
		return trace.GeneratePARSEC(strings.TrimPrefix(name, "parsec-"), cycles, seed)
	default:
		return nil, fmt.Errorf("unknown trace %q (use -list)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
