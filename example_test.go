package heteroif_test

import (
	"fmt"
	"log"

	"heteroif"
)

// Building the hetero-PHY torus of the paper's medium-scale evaluation and
// measuring uniform traffic.
func Example() {
	cfg := heteroif.DefaultConfig()
	cfg.SimCycles = 5000
	cfg.WarmupCycles = 1000
	sys, err := heteroif.Build(cfg, heteroif.Spec{
		System:    heteroif.HeteroPHYTorus,
		ChipletsX: 2, ChipletsY: 2,
		NodesX: 3, NodesY: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RunSynthetic(heteroif.UniformTraffic(), 0.05); err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Stats.Count() > 0)
	// Output: true
}

// The Table 2 defaults match the paper.
func ExampleDefaultConfig() {
	cfg := heteroif.DefaultConfig()
	fmt.Println(cfg.PacketLength, cfg.VCs, cfg.SerialBandwidth, cfg.SerialDelay)
	// Output: 16 2 4 20
}

// Custom workloads drive the network packet by packet.
func ExampleOfferPacket() {
	cfg := heteroif.DefaultConfig()
	cfg.WarmupCycles = 0
	cfg.SimCycles = 1000
	sys, err := heteroif.Build(cfg, heteroif.Spec{
		System:    heteroif.UniformParallelMesh,
		ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	err = heteroif.RunWithDriver(sys, 500, func(now int64) {
		if now == 0 {
			heteroif.OfferPacket(sys, 0, 15, 8, heteroif.ClassLatencySensitive, now)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Net.PacketsDelivered())
	// Output: 1
}

// Synthetic PARSEC traces reproduce the Netrace packet-size mix.
func ExamplePARSECTrace() {
	tr, err := heteroif.PARSECTrace("canneal", 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.Ranks)
	// Output: 64
}
