// Allreduce: run a closed-loop Ring AllReduce over the chiplet leaders of
// the paper's medium-scale hetero-PHY torus (4×4 chiplets of 4×4-node
// meshes, Table 2 parameters) and print the collective completion time
// with its per-step and communication/stall breakdown — the workload-level
// metric open-loop latency sweeps cannot measure.
package main

import (
	"fmt"
	"log"

	"heteroif"
)

func main() {
	cfg := heteroif.DefaultConfig()
	sys, err := heteroif.Build(cfg, heteroif.Spec{
		System:    heteroif.HeteroPHYTorus,
		ChipletsX: 4, ChipletsY: 4,
		NodesX: 4, NodesY: 4,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	// One participant per chiplet, in serpentine order so every ring hop
	// crosses a single die-to-die interface.
	leaders := heteroif.ChipletLeaders(sys)
	const dataFlits = 1024 // per-participant payload
	const reduceCompute = 64
	prog := heteroif.RingAllReduce(leaders, dataFlits, reduceCompute)

	eng, err := heteroif.NewCollective(sys, prog)
	if err != nil {
		log.Fatalf("collective: %v", err)
	}
	rep, err := eng.Run(4_000_000)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("ring all-reduce, %d participants × %d flits on the hetero-PHY torus\n",
		rep.Participants, dataFlits)
	fmt.Printf("completion: %d cycles (%d msgs, %d packets, %d flits)\n",
		rep.Elapsed, rep.Msgs, rep.Packets, rep.Flits)
	fmt.Printf("breakdown:  %d comm + %d stall cycles\n", rep.CommCycles, rep.StallCycles)
	fmt.Printf("alg. bandwidth: %.3f flits/cycle/participant\n\n",
		float64(rep.Flits)/float64(rep.Elapsed)/float64(rep.Participants))

	fmt.Println("per step (reduce-scatter then all-gather):")
	for _, s := range rep.Steps {
		fmt.Printf("  step %2d: %2d msgs, cycles %6d..%-6d span %5d overlap %d\n",
			s.Step, s.Msgs, s.FirstOffer, s.LastDelivery, s.Span, s.Overlap)
	}
}
