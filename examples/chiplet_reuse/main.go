// Chiplet reuse (Motivation 1 / Fig. 2): the same 4×4-node chiplet with
// heterogeneous interfaces is deployed in three systems of different
// scales without redesign:
//
//   - a small low-power module (2×2 chiplets) that uses only the parallel
//     PHYs — the "exclusive" hetero-PHY usage of Sec. 3.1;
//   - a mid-scale board (4×4 chiplets) that bonds both PHYs per channel —
//     the "collaborative" hetero-PHY 2D-torus;
//   - a large system (8×8 chiplets) that re-wires the serial interfaces
//     into a hypercube alongside the parallel mesh — the hetero-channel
//     system of Sec. 6.
//
// A uniform interface would force a different chiplet for each row below
// (parallel-only cannot reach across the large system; serial-only wastes
// power in the small one).
package main

import (
	"fmt"
	"log"

	"heteroif"
)

func run(name string, kind heteroif.SystemKind, chiplets int, rate float64) {
	cfg := heteroif.DefaultConfig()
	cfg.SimCycles = 20000
	cfg.WarmupCycles = 4000
	sys, err := heteroif.Build(cfg, heteroif.Spec{
		System:    kind,
		ChipletsX: chiplets, ChipletsY: chiplets,
		NodesX: 4, NodesY: 4,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if err := sys.RunSynthetic(heteroif.UniformTraffic(), rate); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	st := sys.Stats
	fmt.Printf("%-34s %5d nodes  lat=%7.1f cyc  energy=%7.1f pJ/pkt\n",
		name, sys.Topo.N, st.MeanLatency(), st.MeanEnergyPJ())
}

func main() {
	fmt.Println("one chiplet design, three systems (uniform @ 0.1 flits/cycle/node):")
	// Exclusive mode: only the parallel PHYs are wired up — identical
	// silicon, the serial PHYs stay dark (Sec. 3.1 "Exclusive").
	run("mobile module (parallel-only)", heteroif.UniformParallelMesh, 2, 0.1)
	// Collaborative mode: both PHYs bonded on every neighbor channel.
	run("board (hetero-PHY torus)", heteroif.HeteroPHYTorus, 4, 0.1)
	// Hetero-channel: serial PHYs re-targeted to distant chiplets.
	run("rack (hetero-channel mesh+cube)", heteroif.HeteroChannel, 8, 0.1)
	fmt.Println("\nNo redesign between rows — only the package wiring changes.")
}
