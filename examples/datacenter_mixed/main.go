// Datacenter mixed traffic (Motivation 2 / Sec. 5.3.2): modern systems
// carry latency-critical coherence/control messages and bulk all-reduce
// data *simultaneously*. This example drives a hetero-PHY system with a
// custom mixed workload — short latency-sensitive control packets plus
// long throughput-class transfers — and compares the rule-based balanced
// policy against application-aware scheduling, which steers control
// packets onto the parallel PHY (with bypass) and bulk data onto the
// serial PHY.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"heteroif"
)

const (
	chiplets = 4
	nodes    = 4
	cycles   = 30000
	warmup   = 5000
)

// mixedWorkload drives control packets (1 flit, latency-sensitive) and
// bulk transfers (16 flits, throughput class) from every node.
type mixedWorkload struct {
	sys *heteroif.System
	rng *rand.Rand
	n   int

	controlLat []int64
	bulkFlits  int64
}

func (w *mixedWorkload) drive(now int64) {
	for src := 0; src < w.n; src++ {
		// Control plane: frequent small messages.
		if w.rng.Float64() < 0.02 {
			dst := w.rng.Intn(w.n - 1)
			if dst >= src {
				dst++
			}
			heteroif.OfferPacket(w.sys, heteroif.NodeID(src), heteroif.NodeID(dst),
				1, heteroif.ClassLatencySensitive, now)
		}
		// Data plane: bulk transfers that congest the boundary links.
		if w.rng.Float64() < 0.022 {
			dst := w.rng.Intn(w.n - 1)
			if dst >= src {
				dst++
			}
			heteroif.OfferPacket(w.sys, heteroif.NodeID(src), heteroif.NodeID(dst),
				16, heteroif.ClassThroughput, now)
		}
	}
}

func run(policyName string, policy heteroif.Policy) {
	cfg := heteroif.DefaultConfig()
	cfg.SimCycles = cycles
	cfg.WarmupCycles = warmup
	sys, err := heteroif.Build(cfg, heteroif.Spec{
		System:    heteroif.HeteroPHYTorus,
		ChipletsX: chiplets, ChipletsY: chiplets,
		NodesX: nodes, NodesY: nodes,
		Policy: policy,
	})
	if err != nil {
		log.Fatal(err)
	}
	w := &mixedWorkload{sys: sys, rng: rand.New(rand.NewSource(42)), n: sys.Topo.N}
	if err := heteroif.RunWithDriver(sys, cycles, w.drive); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats
	fmt.Printf("%-20s control lat=%6.1f cyc (p99=%4d)   bulk lat=%6.1f cyc   energy=%7.1f pJ/pkt\n",
		policyName,
		st.ClassMeanLatency(uint8(heteroif.ClassLatencySensitive)),
		st.ClassPercentile(uint8(heteroif.ClassLatencySensitive), 0.99),
		st.ClassMeanLatency(uint8(heteroif.ClassThroughput)),
		st.MeanEnergyPJ())
}

func main() {
	fmt.Printf("mixed control+bulk traffic on a %d-node hetero-PHY system\n\n",
		chiplets*chiplets*nodes*nodes)
	run("balanced", heteroif.BalancedPolicy())
	run("performance-first", heteroif.PerformanceFirstPolicy())
	run("application-aware", heteroif.ApplicationAwarePolicy(32))
	fmt.Println("\nat moderate load the balanced rule wins outright: it keeps bulk on")
	fmt.Println("the cheap parallel PHY until real backlog builds. The adapter's")
	fmt.Println("latency-sensitive bypass protects control packets under every")
	fmt.Println("policy; application-aware scheduling additionally pins bulk to the")
	fmt.Println("serial PHY once the interface queues, which pays off only when the")
	fmt.Println("parallel PHY itself saturates (try raising the bulk rate).")
}
