// Energy tuning (Sec. 5.3.1 / Fig. 18): the same hetero-PHY hardware spans
// the latency/energy trade-off purely in scheduling policy, and its
// advantage over a uniform serial interface grows as traffic becomes more
// local (short-reach messages shouldn't pay serial-PHY energy).
package main

import (
	"fmt"
	"log"

	"heteroif"
)

func measure(kind heteroif.SystemKind, policy heteroif.Policy, pattern heteroif.Pattern, rate float64) (lat, energy float64) {
	cfg := heteroif.DefaultConfig()
	cfg.SimCycles = 20000
	cfg.WarmupCycles = 4000
	spec := heteroif.Spec{
		System:    kind,
		ChipletsX: 4, ChipletsY: 4,
		NodesX: 4, NodesY: 4,
		Policy: policy,
	}
	sys, err := heteroif.Build(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RunSynthetic(pattern, rate); err != nil {
		log.Fatal(err)
	}
	return sys.Stats.MeanLatency(), sys.Stats.MeanEnergyPJ()
}

func main() {
	fmt.Println("policy trade-off on the hetero-PHY torus (uniform @ 0.2):")
	for _, p := range []struct {
		name   string
		policy heteroif.Policy
	}{
		{"performance-first", heteroif.PerformanceFirstPolicy()},
		{"balanced", heteroif.BalancedPolicy()},
		{"energy-efficient", heteroif.EnergyEfficientPolicy()},
	} {
		lat, e := measure(heteroif.HeteroPHYTorus, p.policy, heteroif.UniformTraffic(), 0.2)
		fmt.Printf("  %-18s lat=%7.1f cyc   energy=%7.1f pJ/pkt\n", p.name, lat, e)
	}

	fmt.Println("\nenergy vs traffic locality (uniform @ 0.01, Fig. 18 flavor):")
	spec := heteroif.Spec{ChipletsX: 4, ChipletsY: 4, NodesX: 4, NodesY: 4}
	fmt.Printf("  %-10s %22s %22s\n", "scale", "serial torus (pJ/pkt)", "hetero-PHY (pJ/pkt)")
	for _, block := range []int{1, 2, 4} {
		pat := heteroif.LocalUniformTraffic(spec, block)
		_, eSerial := measure(heteroif.UniformSerialTorus, nil, pat, 0.01)
		_, eHetero := measure(heteroif.HeteroPHYTorus, heteroif.EnergyEfficientPolicy(), pat, 0.01)
		fmt.Printf("  %dx%d chiplets %17.1f %22.1f\n", block, block, eSerial, eHetero)
	}
	fmt.Println("\nshort-reach traffic on the serial-only system still pays 2.4 pJ/bit")
	fmt.Println("per boundary; the hetero interface keeps local messages on the")
	fmt.Println("1 pJ/bit parallel PHY at every scale.")
}
