// Quickstart: build the hetero-PHY 2D-torus of the paper's medium-scale
// evaluation (4×4 chiplets of 4×4-node meshes, 256 nodes), drive it with
// uniform random traffic at 0.1 flits/cycle/node, and print latency,
// throughput and energy next to the two uniform-interface baselines.
package main

import (
	"fmt"
	"log"

	"heteroif"
)

func main() {
	cfg := heteroif.DefaultConfig()
	cfg.SimCycles = 30000
	cfg.WarmupCycles = 5000

	systems := []struct {
		name string
		kind heteroif.SystemKind
	}{
		{"uniform parallel mesh", heteroif.UniformParallelMesh},
		{"uniform serial torus", heteroif.UniformSerialTorus},
		{"hetero-PHY torus", heteroif.HeteroPHYTorus},
	}

	fmt.Println("256-node system, uniform traffic @ 0.1 flits/cycle/node")
	fmt.Printf("%-24s %10s %10s %12s %14s\n", "system", "lat(cyc)", "p99", "thr(f/c/n)", "energy(pJ/pkt)")
	for _, s := range systems {
		sys, err := heteroif.Build(cfg, heteroif.Spec{
			System:    s.kind,
			ChipletsX: 4, ChipletsY: 4,
			NodesX: 4, NodesY: 4,
		})
		if err != nil {
			log.Fatalf("build %s: %v", s.name, err)
		}
		if err := sys.RunSynthetic(heteroif.UniformTraffic(), 0.1); err != nil {
			log.Fatalf("run %s: %v", s.name, err)
		}
		st := sys.Stats
		fmt.Printf("%-24s %10.1f %10d %12.4f %14.1f\n",
			s.name, st.MeanLatency(), st.Percentile(0.99),
			st.Throughput(cfg.SimCycles-cfg.WarmupCycles, sys.Topo.N),
			st.MeanEnergyPJ())
	}
	fmt.Println("\nThe hetero-PHY torus combines the parallel interface's latency")
	fmt.Println("with the serial interface's reach: it should match or beat both")
	fmt.Println("baselines on latency while staying below the serial torus on energy.")
}
