module heteroif

go 1.22
