module heteroif

go 1.23
