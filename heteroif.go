// Package heteroif is a cycle-accurate simulation library for
// heterogeneous die-to-die chiplet interfaces, reproducing
//
//	Feng, Xiang, Ma — "Heterogeneous Die-to-Die Interfaces: Enabling More
//	Flexible Chiplet Interconnection Systems", MICRO 2023.
//
// The library builds complete multi-chiplet interconnection systems —
// chiplets with 2D-mesh networks-on-chip joined by parallel (AIB-like),
// serial (SerDes-like), hetero-PHY (both PHYs bonded behind one adapter)
// or hetero-channel (two independent channels) die-to-die interfaces —
// and simulates them flit by flit with credit-based virtual-channel flow
// control, deadlock-free adaptive routing, synthetic and trace-driven
// workloads, and per-packet energy accounting.
//
// # Quick start
//
//	cfg := heteroif.DefaultConfig()
//	sys, err := heteroif.Build(cfg, heteroif.Spec{
//		System:    heteroif.HeteroPHYTorus,
//		ChipletsX: 4, ChipletsY: 4,
//		NodesX:    4, NodesY: 4,
//	})
//	if err != nil { ... }
//	err = sys.RunSynthetic(heteroif.UniformTraffic(), 0.1)
//	fmt.Println(sys.Stats.MeanLatency(), sys.Stats.MeanEnergyPJ())
//
// See examples/ for complete programs and internal/experiments for the
// per-figure reproduction harness exposed by cmd/hetsim.
package heteroif

import (
	"io"

	"heteroif/internal/collective"
	"heteroif/internal/core"
	"heteroif/internal/experiments"
	"heteroif/internal/network"
	"heteroif/internal/topology"
	"heteroif/internal/trace"
	"heteroif/internal/traffic"
)

// Core simulation types.
type (
	// Config holds the simulation parameters (Table 2 of the paper).
	Config = network.Config
	// NodeID identifies a node in a built system.
	NodeID = network.NodeID
	// Packet is one message in flight.
	Packet = network.Packet
	// Class is a traffic class (best-effort, in-order, latency-sensitive,
	// throughput).
	Class = network.Class
	// Spec describes a multi-chiplet system to build.
	Spec = topology.Spec
	// SystemKind selects one of the five evaluated interconnection
	// systems.
	SystemKind = topology.System
	// System is a built, runnable system (network + topology + routing +
	// statistics).
	System = experiments.Instance
	// Result is one measured operating point.
	Result = experiments.Result
	// Pattern is a synthetic traffic pattern.
	Pattern = traffic.Pattern
	// Policy schedules flits between the two PHYs of a hetero-PHY adapter.
	Policy = core.Policy
	// Trace is a replayable packet trace.
	Trace = trace.Trace
)

// Traffic classes.
const (
	ClassBestEffort       = network.ClassBestEffort
	ClassInOrder          = network.ClassInOrder
	ClassLatencySensitive = network.ClassLatencySensitive
	ClassThroughput       = network.ClassThroughput
)

// The five evaluated interconnection systems.
const (
	// UniformParallelMesh joins chiplets with parallel interfaces only
	// into one global 2D mesh (the short-reach baseline).
	UniformParallelMesh = topology.UniformParallelMesh
	// UniformSerialTorus joins chiplets with serial interfaces into a 2D
	// torus (the long-reach baseline).
	UniformSerialTorus = topology.UniformSerialTorus
	// HeteroPHYTorus bonds a parallel and a serial PHY behind one adapter
	// on every neighbor channel, plus serial-only wraparounds (Fig. 6a).
	HeteroPHYTorus = topology.HeteroPHYTorus
	// UniformSerialHypercube joins chiplets with serial interfaces into a
	// hypercube (the high-radix baseline, Feng et al. HPCA'23).
	UniformSerialHypercube = topology.UniformSerialHypercube
	// HeteroChannel gives every chiplet an independent parallel mesh
	// channel and serial hypercube channel (Fig. 10).
	HeteroChannel = topology.HeteroChannel
)

// DefaultConfig returns the paper's Table 2 parameters: 16-flit packets,
// 2 VCs/link, 2-flit/cycle on-chip and parallel links (5-cycle parallel
// delay), 4-flit/cycle serial links (20-cycle delay), 100k-cycle windows
// with 10k warm-up.
func DefaultConfig() Config { return network.DefaultConfig() }

// Build constructs a system: the chiplet topology, its links and adapters,
// the matching deadlock-free routing algorithm, and a statistics collector
// wired into the packet sink.
func Build(cfg Config, spec Spec) (*System, error) { return experiments.Build(cfg, spec) }

// Synthetic traffic patterns (Sec. 7.2).

// UniformTraffic sends each packet to a uniformly random node.
func UniformTraffic() Pattern { return traffic.Uniform{} }

// HotspotTraffic restricts communication to a random fraction of nodes
// (the paper uses 0.10 over n nodes).
func HotspotTraffic(n int, frac float64, seed int64) Pattern {
	return traffic.NewHotspot(n, frac, seed)
}

// BitShuffleTraffic, BitComplementTraffic, BitTransposeTraffic and
// BitReverseTraffic are the four permutation patterns.
func BitShuffleTraffic() Pattern    { return traffic.BitShuffle() }
func BitComplementTraffic() Pattern { return traffic.BitComplement() }
func BitTransposeTraffic() Pattern  { return traffic.BitTranspose() }
func BitReverseTraffic() Pattern    { return traffic.BitReverse() }

// Hetero-PHY scheduling policies (Sec. 5.3). Assign one to Spec.Policy.

// BalancedPolicy uses the parallel PHY under light load and enables the
// serial PHY when the adapter queue passes a threshold (the default).
func BalancedPolicy() Policy { return core.Balanced{} }

// PerformanceFirstPolicy keeps every PHY busy whenever flits are queued.
func PerformanceFirstPolicy() Policy { return core.PerformanceFirst{} }

// EnergyEfficientPolicy never powers the serial PHY of a hetero-PHY link.
func EnergyEfficientPolicy() Policy { return core.EnergyEfficient{} }

// ApplicationAwarePolicy routes by packet class (latency-sensitive →
// parallel with bypass, throughput → serial) with a queueing timeout.
func ApplicationAwarePolicy(timeout int64) Policy {
	return core.ApplicationAware{Timeout: timeout}
}

// Trace workloads (Sec. 7.2).

// PARSECTrace synthesizes a Netrace-like 64-rank CMP trace for a named
// PARSEC workload (see PARSECWorkloads).
func PARSECTrace(workload string, cycles, seed int64) (*Trace, error) {
	return trace.GeneratePARSEC(workload, cycles, seed)
}

// PARSECWorkloads lists the available PARSEC workload names.
func PARSECWorkloads() []string { return trace.PARSECWorkloads() }

// CNSTrace synthesizes the 1024-rank compressible-Navier–Stokes halo
// exchange trace.
func CNSTrace(cycles, seed int64) *Trace { return trace.GenerateCNS(cycles, seed) }

// MOCTrace synthesizes the 1024-rank method-of-characteristics sweep trace.
func MOCTrace(cycles, seed int64) *Trace { return trace.GenerateMOC(cycles, seed) }

// ReadTrace deserializes a trace written with Trace.Write.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// Replay injects a trace into a built system, mapping rank i to node i,
// time-compressed by speedup (1 = as recorded), and runs for the
// configured simulation window.
func Replay(sys *System, tr *Trace, speedup float64) error {
	m, err := trace.LinearMap(int(tr.Ranks), sys.Topo.N)
	if err != nil {
		return err
	}
	rep, err := trace.NewReplayer(tr, sys.Net, m, speedup)
	if err != nil {
		return err
	}
	return sys.Net.RunWith(sys.Net.Cfg.SimCycles, rep.Drive, rep.NextInjection)
}

// LocalUniformTraffic confines uniform traffic to blocks of
// blockChiplets×blockChiplets chiplets (the Fig. 18 locality workload).
func LocalUniformTraffic(spec Spec, blockChiplets int) Pattern {
	return &traffic.LocalUniform{
		ChipletsX:     spec.ChipletsX,
		NodesX:        spec.NodesX,
		NodesY:        spec.NodesY,
		GX:            spec.ChipletsX * spec.NodesX,
		BlockChiplets: blockChiplets,
	}
}

// OfferPacket enqueues one packet for injection at cycle `at` (which must
// not precede the current cycle, and must be nondecreasing per source).
// Use it with RunWithDriver to build custom workloads.
func OfferPacket(sys *System, src, dst NodeID, flits int, class Class, at int64) *Packet {
	p := sys.Net.NewPacket(src, dst, flits, at)
	p.Class = class
	sys.Net.Offer(p)
	return p
}

// RunWithDriver advances the system `cycles` cycles, invoking drive (which
// may be nil) at the start of each cycle so callers can OfferPacket.
func RunWithDriver(sys *System, cycles int64, drive func(now int64)) error {
	return sys.Net.Run(cycles, drive)
}

// Drain runs the system without new traffic until every queued and
// in-flight packet is delivered (bounded by Config.DrainCycles). It
// reports whether the network fully drained.
func Drain(sys *System) (bool, error) { return sys.Net.Drain() }

// Closed-loop collective workloads (internal/collective): dependency-driven
// programs where each step's injections are gated on the previous step's
// deliveries, reporting workload-level completion time.
type (
	// CollectiveProgram is a DAG of point-to-point messages.
	CollectiveProgram = collective.Program
	// CollectiveEngine executes a CollectiveProgram against a system.
	CollectiveEngine = collective.Engine
	// CollectiveReport is a completed program's per-step and end-to-end
	// completion breakdown.
	CollectiveReport = collective.Report
	// DNNLayer is one layer of the DNN training traffic model.
	DNNLayer = collective.Layer
)

// RingAllReduce builds the 2-phase ring all-reduce (reduce-scatter +
// all-gather) over the participants in ring order; dataFlits is the
// per-participant payload, compute the per-chunk reduction delay.
func RingAllReduce(parts []NodeID, dataFlits int, compute int64) *CollectiveProgram {
	return collective.RingAllReduce(parts, dataFlits, compute)
}

// ReduceScatter, AllGather and AllToAll build the remaining collective
// primitives (see internal/collective for the shapes).
func ReduceScatter(parts []NodeID, dataFlits int, compute int64) *CollectiveProgram {
	return collective.ReduceScatter(parts, dataFlits, compute)
}
func AllGather(parts []NodeID, dataFlits int) *CollectiveProgram {
	return collective.AllGather(parts, dataFlits)
}
func AllToAll(parts []NodeID, flitsPerPair, window int) *CollectiveProgram {
	return collective.AllToAll(parts, flitsPerPair, window)
}

// DNNTraining builds the layer-by-layer data-parallel training model:
// per-layer compute, a gradient ring all-reduce, and a full barrier
// between layers.
func DNNTraining(parts []NodeID, layers []DNNLayer, reduceCompute int64) *CollectiveProgram {
	return collective.DNNTraining(parts, layers, reduceCompute)
}

// NewCollective attaches a collective engine to a built system. Run it
// with CollectiveEngine.Run (or drive it manually through the system's
// RunWith hooks). One engine per system at a time.
func NewCollective(sys *System, prog *CollectiveProgram) (*CollectiveEngine, error) {
	return collective.NewEngine(sys.Net, prog)
}

// ChipletLeaders returns one representative node per chiplet in
// serpentine (ring-friendly) order — the natural participant set for a
// collective over a chiplet system.
func ChipletLeaders(sys *System) []NodeID { return sys.Topo.ChipletLeaders() }

// Experiments exposes the per-figure/table reproduction registry used by
// cmd/hetsim and the root benchmarks.
func Experiments() []experiments.Experiment { return experiments.Registry }

// RunExperiment runs one named experiment (e.g. "fig11", "table3"),
// writing its report to w. full selects paper-scale windows.
func RunExperiment(id string, full bool, w io.Writer) error {
	e, err := experiments.ByID(id)
	if err != nil {
		return err
	}
	return e.Run(experiments.Options{Full: full}, w)
}
