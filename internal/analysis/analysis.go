// Package analysis computes the static network metrics behind the paper's
// motivation (Sec. 1/2): diameter, average distance and bisection
// bandwidth of the built systems — both in hops and in zero-load latency
// (the Eq. 3/4 weighted path length). These quantify why flat parallel
// meshes stop scaling (O(√N) diameter) and what the serial hypercube and
// the heterogeneous systems buy back.
package analysis

import (
	"container/heap"
	"fmt"

	"heteroif/internal/network"
	"heteroif/internal/topology"
)

// Costs assigns a traversal cost to each link kind (cycles at zero load).
type Costs struct {
	OnChip, Parallel, Serial, HeteroPHY int
}

// HopCosts prices every link at 1, yielding hop metrics.
func HopCosts() Costs { return Costs{1, 1, 1, 1} }

// LatencyCosts derives zero-load per-hop latencies from a configuration.
// The simulator completes routing, VC allocation and switch allocation in
// the arrival cycle (Sec. 7.1), so a hop costs exactly its link delay; the
// hetero-PHY adapter issues same-cycle at zero load, so its hop rides the
// parallel path delay. TestZeroLoadLatencyMatchesAnalyticalModel pins this
// calibration against the engine.
func LatencyCosts(cfg *network.Config) Costs {
	return Costs{
		OnChip:    cfg.OnChipDelay,
		Parallel:  cfg.ParallelDelay,
		Serial:    cfg.SerialDelay,
		HeteroPHY: cfg.ParallelDelay,
	}
}

func (c Costs) of(k network.LinkKind) int {
	switch k {
	case network.KindOnChip:
		return c.OnChip
	case network.KindParallel:
		return c.Parallel
	case network.KindSerial:
		return c.Serial
	case network.KindHeteroPHY:
		return c.HeteroPHY
	default:
		return 1
	}
}

// Report summarizes one system's static metrics.
type Report struct {
	System         string
	Nodes          int
	Links          int
	Diameter       int     // max shortest distance (in the chosen costs)
	AvgDistance    float64 // mean shortest distance over all ordered pairs
	BisectionFlits int     // flits/cycle across the X-midline cut
	MaxRadix       int     // largest router degree (excluding local ports)
	InterfaceLinks int     // die-to-die link count
	InterfacePins  int     // proxy: Σ link bandwidth over interface links
}

// Analyze computes a report for a built topology using the given costs.
func Analyze(t *topology.Topo, cfg *network.Config, costs Costs) Report {
	adj := adjacency(t, costs)
	rep := Report{System: t.System.String(), Nodes: t.N}

	// Distances via Dijkstra from every source (uniform small weights; a
	// heap keeps it simple and fast enough for 3k nodes).
	total, count, diameter := 0.0, 0, 0
	for src := 0; src < t.N; src++ {
		dist := dijkstra(adj, t.N, src)
		for dst, d := range dist {
			if dst == src {
				continue
			}
			if d == unreachable {
				panic(fmt.Sprintf("analysis: %s: node %d unreachable from %d", t.System, dst, src))
			}
			total += float64(d)
			count++
			if d > diameter {
				diameter = d
			}
		}
	}
	rep.Diameter = diameter
	rep.AvgDistance = total / float64(count)

	// Link census and bisection (cut between gx < GX/2 and gx ≥ GX/2).
	mid := t.GX / 2
	for n, ports := range t.OutPorts {
		deg := 0
		for i := 1; i < len(ports); i++ {
			p := &ports[i]
			if p.Dest < 0 {
				continue
			}
			rep.Links++
			deg++
			if p.Kind != network.KindOnChip {
				rep.InterfaceLinks++
				rep.InterfacePins += cfg.Bandwidth(p.Kind)
			}
			sx, _ := t.Coord(network.NodeID(n))
			dx, _ := t.Coord(p.Dest)
			if (sx < mid) != (dx < mid) {
				rep.BisectionFlits += cfg.Bandwidth(p.Kind)
			}
		}
		if deg > rep.MaxRadix {
			rep.MaxRadix = deg
		}
	}
	return rep
}

// String renders the report as one table row.
func (r Report) String() string {
	return fmt.Sprintf("%-26s N=%-5d links=%-5d diam=%-4d avg=%-7.2f bisection=%-5d radix=%-2d ifLinks=%-4d ifBW=%d",
		r.System, r.Nodes, r.Links, r.Diameter, r.AvgDistance, r.BisectionFlits, r.MaxRadix, r.InterfaceLinks, r.InterfacePins)
}

const unreachable = int(^uint(0) >> 1)

type edge struct {
	to   int32
	cost int32
}

func adjacency(t *topology.Topo, costs Costs) [][]edge {
	adj := make([][]edge, t.N)
	for n, ports := range t.OutPorts {
		for i := 1; i < len(ports); i++ {
			p := &ports[i]
			if p.Dest < 0 || p.Dead {
				continue
			}
			adj[n] = append(adj[n], edge{to: int32(p.Dest), cost: int32(costs.of(p.Kind))})
		}
	}
	return adj
}

type pqItem struct {
	node int32
	dist int32
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

func dijkstra(adj [][]edge, n, src int) []int {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = unreachable
	}
	dist[src] = 0
	q := &pq{{int32(src), 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if int(it.dist) > dist[it.node] {
			continue
		}
		for _, e := range adj[it.node] {
			nd := int(it.dist) + int(e.cost)
			if nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(q, pqItem{e.to, int32(nd)})
			}
		}
	}
	return dist
}
