package analysis

import (
	"testing"

	"heteroif/internal/network"
	"heteroif/internal/topology"
)

func buildTopo(t *testing.T, sys topology.System, cx, cy, nx, ny int) (*topology.Topo, *network.Config) {
	t.Helper()
	cfg := network.DefaultConfig()
	_, topo, err := topology.Build(cfg, topology.Spec{System: sys, ChipletsX: cx, ChipletsY: cy, NodesX: nx, NodesY: ny})
	if err != nil {
		t.Fatal(err)
	}
	return topo, &cfg
}

func TestMeshHopMetrics(t *testing.T) {
	// 4×4 global mesh (2×2 chiplets of 2×2): diameter = 6 hops, average
	// distance of a 4×4 mesh = 8/3 ≈ 2.667.
	topo, cfg := buildTopo(t, topology.UniformParallelMesh, 2, 2, 2, 2)
	rep := Analyze(topo, cfg, HopCosts())
	if rep.Diameter != 6 {
		t.Errorf("mesh diameter = %d, want 6", rep.Diameter)
	}
	if rep.AvgDistance < 2.6 || rep.AvgDistance > 2.7 {
		t.Errorf("mesh avg distance = %.3f, want 8/3", rep.AvgDistance)
	}
	if rep.Nodes != 16 {
		t.Errorf("nodes = %d", rep.Nodes)
	}
}

func TestTorusShrinksDiameter(t *testing.T) {
	mesh, cfg := buildTopo(t, topology.UniformParallelMesh, 2, 2, 3, 3)
	torus, _ := buildTopo(t, topology.UniformSerialTorus, 2, 2, 3, 3)
	mrep := Analyze(mesh, cfg, HopCosts())
	trep := Analyze(torus, cfg, HopCosts())
	// 6×6 mesh diameter 10; 6×6 torus diameter 6.
	if mrep.Diameter != 10 {
		t.Errorf("mesh diameter = %d, want 10", mrep.Diameter)
	}
	if trep.Diameter != 6 {
		t.Errorf("torus diameter = %d, want 6", trep.Diameter)
	}
	if trep.AvgDistance >= mrep.AvgDistance {
		t.Error("torus should shrink average distance")
	}
}

func TestHypercubeBeatsMeshAtScale(t *testing.T) {
	mesh, cfg := buildTopo(t, topology.UniformParallelMesh, 4, 4, 4, 4)
	cube, _ := buildTopo(t, topology.UniformSerialHypercube, 4, 4, 4, 4)
	mrep := Analyze(mesh, cfg, HopCosts())
	crep := Analyze(cube, cfg, HopCosts())
	if crep.Diameter >= mrep.Diameter {
		t.Errorf("hypercube diameter %d should beat mesh %d (the high-radix motivation)",
			crep.Diameter, mrep.Diameter)
	}
}

func TestWeightedVsHopMetricsDisagree(t *testing.T) {
	// On the serial torus, latency weighting penalizes every boundary: the
	// weighted diameter must exceed hop diameter × on-chip cost.
	topo, cfg := buildTopo(t, topology.UniformSerialTorus, 2, 2, 3, 3)
	hop := Analyze(topo, cfg, HopCosts())
	lat := Analyze(topo, cfg, LatencyCosts(cfg))
	if lat.Diameter <= hop.Diameter*LatencyCosts(cfg).OnChip {
		t.Errorf("weighted diameter %d too small vs hop diameter %d", lat.Diameter, hop.Diameter)
	}
}

func TestHeteroChannelCombinesBoth(t *testing.T) {
	cfg := network.DefaultConfig()
	mesh, _ := buildTopo(t, topology.UniformParallelMesh, 4, 4, 4, 4)
	het, _ := buildTopo(t, topology.HeteroChannel, 4, 4, 4, 4)
	lat := LatencyCosts(&cfg)
	mrep := Analyze(mesh, &cfg, lat)
	hrep := Analyze(het, &cfg, lat)
	// The hetero-channel system must not be worse than the mesh on either
	// metric (it contains the mesh) and must shrink the hop diameter.
	if hrep.Diameter > mrep.Diameter {
		t.Errorf("hetero-channel weighted diameter %d worse than mesh %d", hrep.Diameter, mrep.Diameter)
	}
	hHop := Analyze(het, &cfg, HopCosts())
	mHop := Analyze(mesh, &cfg, HopCosts())
	if hHop.Diameter >= mHop.Diameter {
		t.Errorf("hetero-channel hop diameter %d should beat mesh %d", hHop.Diameter, mHop.Diameter)
	}
}

func TestBisectionOrdering(t *testing.T) {
	cfg := network.DefaultConfig()
	mesh, _ := buildTopo(t, topology.UniformParallelMesh, 4, 4, 4, 4)
	cube, _ := buildTopo(t, topology.HeteroChannel, 4, 4, 4, 4)
	mrep := Analyze(mesh, &cfg, HopCosts())
	crep := Analyze(cube, &cfg, HopCosts())
	if crep.BisectionFlits <= mrep.BisectionFlits {
		t.Errorf("hetero-channel bisection %d should exceed mesh %d", crep.BisectionFlits, mrep.BisectionFlits)
	}
}

func TestDeadLinksExcluded(t *testing.T) {
	topo, cfg := buildTopo(t, topology.UniformSerialTorus, 2, 2, 3, 3)
	before := Analyze(topo, cfg, HopCosts())
	// Kill one wraparound; connectivity must survive, diameter may grow.
	for n := range topo.OutPorts {
		done := false
		for port := 1; port < len(topo.OutPorts[n]); port++ {
			if topo.OutPorts[n][port].Wrap {
				if err := topo.FailLink(network.NodeID(n), port); err != nil {
					t.Fatal(err)
				}
				done = true
				break
			}
		}
		if done {
			break
		}
	}
	after := Analyze(topo, cfg, HopCosts())
	if after.Diameter < before.Diameter {
		t.Error("diameter shrank after a fault")
	}
}

func TestReportString(t *testing.T) {
	topo, cfg := buildTopo(t, topology.UniformParallelMesh, 2, 2, 2, 2)
	if s := Analyze(topo, cfg, HopCosts()).String(); len(s) == 0 {
		t.Error("empty report rendering")
	}
}
