// Package collective implements dependency-driven, closed-loop workload
// drivers for the simulator: ML-style collective-communication primitives
// (ring all-reduce, reduce-scatter, all-gather, windowed all-to-all) over
// arbitrary participant sets, plus a layer-by-layer DNN training traffic
// model in the spirit of CHIPSIM. Unlike the open-loop generators of
// internal/traffic (Bernoulli sampling, trace replay), every injection
// here is *gated on deliveries*: a participant forwards a chunk only after
// the chunk it depends on has fully arrived (and any modeled reduction
// compute has elapsed). The headline metric is therefore collective
// completion time — the workload-level number packet-latency sweeps cannot
// reveal — and the compute phases between steps are provably idle network
// stretches that exercise the engine's quiescence fast-forward.
//
// A workload is a Program: a DAG of point-to-point messages. Each Msg
// carries its source, destination, payload (split into packets of at most
// the configured packet length at injection), a step label for per-step
// reporting, and a compute delay applied after its dependencies deliver.
// Builders construct the standard shapes; Engine executes any valid DAG
// against a network through the RunWith(drive, next) closed-loop hooks.
package collective

import (
	"fmt"

	"heteroif/internal/network"
)

// Msg is one point-to-point transfer in a collective program.
type Msg struct {
	Src, Dst network.NodeID
	// Flits is the payload length; the engine splits it into packets of at
	// most the network's configured packet length. A non-positive payload
	// (or Src == Dst) makes the message a pure synchronization point: it
	// completes at its injection cycle without entering the network.
	Flits int
	// Step labels the message for per-step completion reporting.
	Step int32
	// Compute is the modeled local computation (reduction, layer forward/
	// backward pass) between this message's dependencies delivering and its
	// injection becoming eligible, in cycles.
	Compute int64
}

// Program is a DAG of messages: Deps[i] lists the messages that must fully
// deliver before Msgs[i] becomes eligible (after Msgs[i].Compute further
// cycles). Builders produce acyclic programs by construction; NewEngine
// verifies acyclicity for hand-built ones.
type Program struct {
	Name string
	// Participants is the number of cooperating endpoints (builders set it;
	// reporting only).
	Participants int
	// Class is assigned to every generated packet. Collective payloads
	// default to ClassThroughput — bulk data an application-aware adapter
	// steers to the high-bandwidth serial PHY.
	Class network.Class
	Msgs  []Msg
	Deps  [][]int32
	// Steps is 1 + the highest step label.
	Steps int
}

// add appends a message and returns its index.
func (p *Program) add(src, dst network.NodeID, flits int, step int32, compute int64, deps ...int32) int32 {
	p.Msgs = append(p.Msgs, Msg{Src: src, Dst: dst, Flits: flits, Step: step, Compute: compute})
	p.Deps = append(p.Deps, deps)
	if int(step) >= p.Steps {
		p.Steps = int(step) + 1
	}
	return int32(len(p.Msgs) - 1)
}

// Validate checks structural sanity against a network of n nodes: node IDs
// in range, dependency indices valid. Acyclicity is checked by NewEngine
// (it needs the inverted adjacency anyway).
func (p *Program) Validate(n int) error {
	for i, m := range p.Msgs {
		if int(m.Src) < 0 || int(m.Src) >= n || int(m.Dst) < 0 || int(m.Dst) >= n {
			return fmt.Errorf("collective: %s msg %d endpoints %d->%d out of range [0,%d)", p.Name, i, m.Src, m.Dst, n)
		}
		if m.Compute < 0 {
			return fmt.Errorf("collective: %s msg %d has negative compute %d", p.Name, i, m.Compute)
		}
		for _, d := range p.Deps[i] {
			if int(d) < 0 || int(d) >= len(p.Msgs) {
				return fmt.Errorf("collective: %s msg %d depends on invalid msg %d", p.Name, i, d)
			}
		}
	}
	if len(p.Deps) != len(p.Msgs) {
		return fmt.Errorf("collective: %s has %d dep lists for %d msgs", p.Name, len(p.Deps), len(p.Msgs))
	}
	return nil
}

// TotalFlits returns the program's aggregate payload.
func (p *Program) TotalFlits() int64 {
	var total int64
	for _, m := range p.Msgs {
		if m.Flits > 0 && m.Src != m.Dst {
			total += int64(m.Flits)
		}
	}
	return total
}

// chunk is the per-step transfer size of a ring collective: the
// per-participant payload divided into P chunks, rounded up.
func chunk(dataFlits, p int) int {
	c := (dataFlits + p - 1) / p
	if c < 1 {
		c = 1
	}
	return c
}

func checkParts(name string, parts []network.NodeID) {
	if len(parts) < 2 {
		panic(fmt.Sprintf("collective: %s needs at least 2 participants, got %d", name, len(parts)))
	}
	seen := make(map[network.NodeID]bool, len(parts))
	for _, n := range parts {
		if seen[n] {
			panic(fmt.Sprintf("collective: %s participant %d repeated", name, n))
		}
		seen[n] = true
	}
}

// ringProgram builds the reduce-scatter and/or all-gather phases of the
// 2-phase ring all-reduce over the participants in ring order. In
// reduce-scatter step s, participant i sends chunk (i-s mod P) to its ring
// successor; the send depends on the chunk received from its predecessor
// in step s-1 plus the per-chunk reduction compute. In all-gather step s,
// participant i forwards the fully-reduced chunk it holds to its
// successor; the first all-gather send depends on the final reduce-scatter
// delivery (and its closing reduction), later ones are pure forwards.
func ringProgram(name string, parts []network.NodeID, dataFlits int, compute int64, scatter, gather bool) *Program {
	checkParts(name, parts)
	p := len(parts)
	ch := chunk(dataFlits, p)
	prog := &Program{Name: name, Participants: p, Class: network.ClassThroughput}
	succ := func(i int) network.NodeID { return parts[(i+1)%p] }
	pred := func(i int) int32 { return int32((i - 1 + p) % p) }

	step := int32(0)
	// rs[i] is participant i's most recent reduce-scatter send.
	rs := make([]int32, p)
	if scatter {
		for s := 0; s < p-1; s++ {
			base := int32(len(prog.Msgs))
			for i := 0; i < p; i++ {
				if s == 0 {
					// The first chunk is local data: no dependency, no
					// reduction yet.
					rs[i] = prog.add(parts[i], succ(i), ch, step, 0)
					continue
				}
				// Forwarding chunk s requires the predecessor's step-s-1
				// delivery, reduced into the local accumulator.
				rs[i] = prog.add(parts[i], succ(i), ch, step, compute, base-int32(p)+pred(i))
			}
			step++
		}
	}
	if gather {
		ag := make([]int32, p)
		for s := 0; s < p-1; s++ {
			base := int32(len(prog.Msgs))
			for i := 0; i < p; i++ {
				switch {
				case s == 0 && scatter:
					// The node holding a fully-reduced chunk starts its
					// broadcast: depends on the final reduce-scatter
					// delivery from its predecessor plus the closing
					// reduction.
					ag[i] = prog.add(parts[i], succ(i), ch, step, compute, rs[pred(i)])
				case s == 0:
					// Standalone all-gather: local data, no dependency.
					ag[i] = prog.add(parts[i], succ(i), ch, step, 0)
				default:
					// Pure forward of a received chunk: no reduction.
					ag[i] = prog.add(parts[i], succ(i), ch, step, 0, base-int32(p)+pred(i))
				}
			}
			step++
		}
		_ = ag
	}
	return prog
}

// RingAllReduce builds the 2-phase ring all-reduce (P-1 reduce-scatter
// steps followed by P-1 all-gather steps) over the participants in the
// given ring order. dataFlits is the per-participant payload; each step
// transfers ceil(dataFlits/P) flits per participant. compute models the
// per-chunk reduction delay applied before every send that follows a
// received chunk.
func RingAllReduce(parts []network.NodeID, dataFlits int, compute int64) *Program {
	return ringProgram("allreduce", parts, dataFlits, compute, true, true)
}

// ReduceScatter builds the reduce-scatter half of the ring all-reduce:
// after P-1 steps each participant holds one fully-reduced chunk.
func ReduceScatter(parts []network.NodeID, dataFlits int, compute int64) *Program {
	return ringProgram("reduce-scatter", parts, dataFlits, compute, true, false)
}

// AllGather builds the all-gather ring: each participant circulates its
// local chunk around the ring in P-1 forwarding steps (no reduction).
func AllGather(parts []network.NodeID, dataFlits int) *Program {
	return ringProgram("all-gather", parts, dataFlits, 0, false, true)
}

// AllToAll builds a windowed personalized exchange: every participant
// sends a distinct flitsPerPair-flit chunk to every other participant, in
// a source-rotated destination order (participant i's j-th send targets
// participant i+1+j mod P, so no destination is hammered by everyone at
// once). window bounds each source's outstanding messages — send j is
// gated on the delivery of the same source's send j-window — which is what
// makes the exchange closed-loop; window <= 0 means unbounded (fully
// open-loop within the collective).
func AllToAll(parts []network.NodeID, flitsPerPair, window int) *Program {
	checkParts("all-to-all", parts)
	p := len(parts)
	if flitsPerPair < 1 {
		flitsPerPair = 1
	}
	prog := &Program{Name: "all-to-all", Participants: p, Class: network.ClassThroughput}
	// idx(i, j) is participant i's j-th send; messages are laid out in
	// (round, participant) order so index order matches eligibility order.
	idx := func(i, j int) int32 { return int32(j*p + i) }
	for j := 0; j < p-1; j++ {
		for i := 0; i < p; i++ {
			dst := parts[(i+1+j)%p]
			if window > 0 && j >= window {
				prog.add(parts[i], dst, flitsPerPair, int32(j), 0, idx(i, j-window))
			} else {
				prog.add(parts[i], dst, flitsPerPair, int32(j), 0)
			}
		}
	}
	return prog
}
