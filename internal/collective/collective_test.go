package collective_test

import (
	"strings"
	"testing"

	"heteroif/internal/collective"
	"heteroif/internal/network"
	"heteroif/internal/network/netbench"
	"heteroif/internal/traffic"
)

// The engine must satisfy the closed-loop driver contract extracted into
// internal/traffic.
var _ traffic.Driver = (*collective.Engine)(nil)

func parts(ids ...int) []network.NodeID {
	out := make([]network.NodeID, len(ids))
	for i, id := range ids {
		out[i] = network.NodeID(id)
	}
	return out
}

func TestRingAllReduceShape(t *testing.T) {
	const p = 4
	prog := collective.RingAllReduce(parts(0, 1, 2, 3), 64, 10)
	// 2-phase ring: (P-1) reduce-scatter + (P-1) all-gather steps, P msgs
	// each.
	if want := 2 * p * (p - 1); len(prog.Msgs) != want {
		t.Fatalf("msgs = %d, want %d", len(prog.Msgs), want)
	}
	if prog.Steps != 2*(p-1) {
		t.Fatalf("steps = %d, want %d", prog.Steps, 2*(p-1))
	}
	// Each message moves one chunk = ceil(64/4) flits around the ring.
	for i, m := range prog.Msgs {
		if m.Flits != 16 {
			t.Fatalf("msg %d flits = %d, want 16", i, m.Flits)
		}
		if want := parts(0, 1, 2, 3)[(int(m.Src)+1)%p]; m.Dst != want {
			t.Fatalf("msg %d dst = %d, want ring successor %d", i, m.Dst, want)
		}
	}
	// Step-0 sends are local data: no deps, no compute. Every later send
	// depends on exactly one message from the previous step at the ring
	// predecessor.
	for i := range prog.Msgs {
		m, deps := prog.Msgs[i], prog.Deps[i]
		if m.Step == 0 {
			if len(deps) != 0 || m.Compute != 0 {
				t.Fatalf("step-0 msg %d has deps=%v compute=%d", i, deps, m.Compute)
			}
			continue
		}
		if len(deps) != 1 {
			t.Fatalf("msg %d (step %d) has %d deps, want 1", i, m.Step, len(deps))
		}
		d := prog.Msgs[deps[0]]
		if d.Step != m.Step-1 {
			t.Fatalf("msg %d (step %d) depends on step %d", i, m.Step, d.Step)
		}
		if d.Dst != m.Src {
			t.Fatalf("msg %d at node %d depends on a delivery to node %d", i, m.Src, d.Dst)
		}
	}
	if prog.TotalFlits() != 2*int64(p)*int64(p-1)*16 {
		t.Fatalf("total flits = %d", prog.TotalFlits())
	}
}

func TestPhasesStandalone(t *testing.T) {
	rs := collective.ReduceScatter(parts(0, 1, 2), 30, 5)
	if len(rs.Msgs) != 3*2 || rs.Steps != 2 {
		t.Fatalf("reduce-scatter: %d msgs / %d steps", len(rs.Msgs), rs.Steps)
	}
	ag := collective.AllGather(parts(0, 1, 2), 30)
	if len(ag.Msgs) != 3*2 || ag.Steps != 2 {
		t.Fatalf("all-gather: %d msgs / %d steps", len(ag.Msgs), ag.Steps)
	}
	for i, m := range ag.Msgs {
		if m.Compute != 0 {
			t.Fatalf("all-gather msg %d has compute %d (pure forwards expected)", i, m.Compute)
		}
	}
}

func TestAllToAllWindow(t *testing.T) {
	const p, window = 5, 2
	prog := collective.AllToAll(parts(0, 1, 2, 3, 4), 8, window)
	if want := p * (p - 1); len(prog.Msgs) != want {
		t.Fatalf("msgs = %d, want %d", len(prog.Msgs), want)
	}
	for i := range prog.Msgs {
		m, deps := prog.Msgs[i], prog.Deps[i]
		if m.Src == m.Dst {
			t.Fatalf("msg %d sends to self", i)
		}
		if int(m.Step) < window {
			if len(deps) != 0 {
				t.Fatalf("msg %d (round %d) inside window has deps", i, m.Step)
			}
			continue
		}
		if len(deps) != 1 {
			t.Fatalf("msg %d has %d deps, want 1", i, len(deps))
		}
		d := prog.Msgs[deps[0]]
		if d.Src != m.Src || d.Step != m.Step-window {
			t.Fatalf("msg %d gated on %d->%d round %d, want own round-%d send",
				i, d.Src, d.Dst, d.Step, m.Step-window)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	prog := collective.RingAllReduce(parts(0, 1, 2, 60), 16, 0)
	if err := prog.Validate(16); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range endpoints not rejected: %v", err)
	}
	// A hand-built cycle must be rejected by NewEngine.
	cyc := &collective.Program{
		Name:  "cycle",
		Msgs:  []collective.Msg{{Src: 0, Dst: 1, Flits: 4}, {Src: 1, Dst: 2, Flits: 4}},
		Deps:  [][]int32{{1}, {0}},
		Steps: 1,
	}
	net := netbench.BuildMesh(4)
	if _, err := collective.NewEngine(net, cyc); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("dependency cycle not rejected: %v", err)
	}
}

// runProg executes a program on a fresh mesh and returns the report.
func runProg(t *testing.T, side int, prog *collective.Program, budget int64) collective.Report {
	t.Helper()
	net := netbench.BuildMesh(side)
	e, err := collective.NewEngine(net, prog)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rep, err := e.Run(budget)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !e.Done() {
		t.Fatal("Run returned without completing")
	}
	if got := e.SortedStuck(); len(got) != 0 {
		t.Fatalf("stuck msgs after completion: %v", got)
	}
	return rep
}

func TestAllReduceCompletes(t *testing.T) {
	ps := parts(0, 3, 12, 15) // mesh corners of a 4×4
	prog := collective.RingAllReduce(ps, 128, 20)
	rep := runProg(t, 4, prog, 1<<20)

	if rep.Elapsed <= 0 {
		t.Fatalf("elapsed = %d", rep.Elapsed)
	}
	if rep.Packets == 0 || rep.Flits != prog.TotalFlits() {
		t.Fatalf("packets=%d flits=%d want flits=%d", rep.Packets, rep.Flits, prog.TotalFlits())
	}
	if rep.StallCycles < 0 || rep.CommCycles <= 0 {
		t.Fatalf("comm=%d stall=%d", rep.CommCycles, rep.StallCycles)
	}
	if rep.CommCycles+rep.StallCycles != rep.Elapsed {
		t.Fatalf("comm %d + stall %d != elapsed %d", rep.CommCycles, rep.StallCycles, rep.Elapsed)
	}
	if len(rep.Steps) != prog.Steps {
		t.Fatalf("%d step reports for %d steps", len(rep.Steps), prog.Steps)
	}
	// Steps must complete in order. Overlap may be positive (ring deps are
	// per-neighbor, not global barriers, so adjacent steps pipeline) but
	// never larger than the previous step's span.
	for s := 1; s < len(rep.Steps); s++ {
		prev, cur := rep.Steps[s-1], rep.Steps[s]
		if cur.LastDelivery < prev.LastDelivery {
			t.Fatalf("step %d finished at %d before step %d at %d", s, cur.LastDelivery, s-1, prev.LastDelivery)
		}
		if cur.Overlap < 0 || cur.Overlap > prev.Span {
			t.Fatalf("step %d overlap = %d outside [0, %d]", s, cur.Overlap, prev.Span)
		}
	}
}

func TestDNNBarriers(t *testing.T) {
	ps := parts(0, 5, 10, 15)
	layers := []collective.Layer{
		{Name: "embed", Compute: 500, GradFlits: 64},
		{Name: "mlp", Compute: 900, GradFlits: 128},
		{Name: "head", Compute: 300, GradFlits: 32},
	}
	prog := collective.DNNTraining(ps, layers, 15)
	if want := 3 * 2 * 4 * 3; len(prog.Msgs) != want {
		t.Fatalf("msgs = %d, want %d", len(prog.Msgs), want)
	}
	if prog.Steps != 3*2*3 {
		t.Fatalf("steps = %d, want %d", prog.Steps, 3*2*3)
	}
	rep := runProg(t, 4, prog, 1<<20)

	stepsPerLayer := 2 * (len(ps) - 1)
	for l := 1; l < len(layers); l++ {
		prevEnd := rep.Steps[l*stepsPerLayer-1].LastDelivery
		curStart := rep.Steps[l*stepsPerLayer].FirstOffer
		// The barrier plus the layer compute must separate layers by at
		// least the compute delay.
		if gap := curStart - prevEnd; gap < layers[l].Compute {
			t.Fatalf("layer %d started %d cycles after layer %d finished; compute is %d",
				l, gap, l-1, layers[l].Compute)
		}
	}
	// The compute phases dominate: stall cycles must be substantial.
	if rep.StallCycles < 1500 {
		t.Fatalf("stall = %d, want >= sum of layer computes beyond overlap", rep.StallCycles)
	}
}

func TestDegenerateMessagesAreSyncPoints(t *testing.T) {
	prog := &collective.Program{
		Name: "sync",
		Msgs: []collective.Msg{
			{Src: 0, Dst: 0, Flits: 32, Compute: 100}, // self-send: pure delay
			{Src: 0, Dst: 5, Flits: 16, Step: 1},
		},
		Deps:  [][]int32{nil, {0}},
		Steps: 2,
	}
	rep := runProg(t, 4, prog, 1<<16)
	if rep.Packets == 0 {
		t.Fatal("real message did not inject")
	}
	if rep.Steps[1].FirstOffer < 100 {
		t.Fatalf("dependent offered at %d, before the sync point's compute elapsed", rep.Steps[1].FirstOffer)
	}
}

func TestBackgroundTrafficIgnored(t *testing.T) {
	// An engine sharing the network with open-loop traffic must only
	// account its own packets.
	net := netbench.BuildMesh(4)
	prog := collective.RingAllReduce(parts(0, 3, 12, 15), 64, 5)
	e, err := collective.NewEngine(net, prog)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	gen := traffic.NewGenerator(net, traffic.Uniform{}, 0.05, 42)
	deadline := net.Now + 1<<16
	for !e.Done() && net.Now < deadline {
		if err := net.RunWith(256, func(now int64) {
			gen.Drive(now)
			e.Drive(now)
		}, nil); err != nil {
			t.Fatalf("RunWith: %v", err)
		}
	}
	if !e.Done() {
		t.Fatal("collective starved under light background traffic")
	}
	rep := e.Report()
	if rep.Flits != prog.TotalFlits() {
		t.Fatalf("engine counted %d flits, program carries %d — background leaked in", rep.Flits, prog.TotalFlits())
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	net := netbench.BuildMesh(4)
	// Huge compute means nothing can complete within the budget.
	prog := collective.RingAllReduce(parts(0, 3, 12, 15), 64, 1<<30)
	e, err := collective.NewEngine(net, prog)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.Run(512); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("budget exhaustion not reported: %v", err)
	}
}
