package collective

import (
	"fmt"

	"heteroif/internal/network"
)

// Layer is one layer of the DNN training traffic model: a compute phase
// (forward+backward pass, modeled as a single delay) followed by a
// gradient all-reduce over the participants.
type Layer struct {
	Name string
	// Compute is the layer's local compute delay in cycles, applied before
	// the layer's gradient exchange can start.
	Compute int64
	// GradFlits is the per-participant gradient payload all-reduced after
	// the compute phase.
	GradFlits int
}

// DNNTraining builds the layer-by-layer data-parallel training model in
// the CHIPSIM spirit: for each layer, every participant computes for
// Layer.Compute cycles, then joins a ring all-reduce of the layer's
// gradients; a full barrier separates layers (layer l+1's compute starts
// only after every participant has received every chunk of layer l's
// all-reduce). The compute phases are provably idle network stretches —
// exactly the shape that exercises quiescence fast-forward.
// reduceCompute is the per-chunk reduction delay inside each all-reduce.
func DNNTraining(parts []network.NodeID, layers []Layer, reduceCompute int64) *Program {
	checkParts("dnn-training", parts)
	if len(layers) == 0 {
		panic("collective: dnn-training needs at least one layer")
	}
	prog := &Program{Name: "dnn-training", Participants: len(parts), Class: network.ClassThroughput}
	// barrier holds the final-step message indices of the previous layer's
	// all-reduce; nil for the first layer.
	var barrier []int32
	step := int32(0)
	for li, l := range layers {
		if l.Compute < 0 {
			panic(fmt.Sprintf("collective: layer %d (%s) has negative compute", li, l.Name))
		}
		sub := RingAllReduce(parts, l.GradFlits, reduceCompute)
		base := int32(len(prog.Msgs))
		lastStep := int32(sub.Steps - 1)
		var finals []int32
		for i, m := range sub.Msgs {
			deps := make([]int32, 0, len(sub.Deps[i])+len(barrier))
			for _, d := range sub.Deps[i] {
				deps = append(deps, base+d)
			}
			compute := m.Compute
			if len(sub.Deps[i]) == 0 {
				// Root messages of this layer's all-reduce: gate on the
				// previous layer's barrier and absorb the layer compute.
				deps = append(deps, barrier...)
				compute += l.Compute
			}
			idx := prog.add(m.Src, m.Dst, m.Flits, step+m.Step, compute, deps...)
			if m.Step == lastStep {
				finals = append(finals, idx)
			}
		}
		barrier = finals
		step += int32(sub.Steps)
	}
	return prog
}
