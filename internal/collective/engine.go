package collective

import (
	"fmt"
	"sort"

	"heteroif/internal/network"
)

// msgState tracks one program message through execution.
type msgState struct {
	// deps is the count of unresolved dependencies; -1 once completed.
	deps int32
	// pkts is the count of in-flight packets for an offered message.
	pkts int32
	// offeredAt/doneAt record injection and final-delivery cycles (-1
	// until they happen).
	offeredAt, doneAt int64
}

// readyEntry is a heap element: message m becomes injectable at cycle at.
type readyEntry struct {
	at int64
	m  int32
}

// Engine executes a collective Program against a network through the
// RunWith closed-loop hooks. It installs itself as the network's
// OnDeliver observer (one engine per network at a time; constructing a
// new engine displaces the previous one), splits each eligible message
// into packets, and releases dependent messages as deliveries arrive.
//
// Determinism: eligible messages are injected in (readyAt, message index)
// order, packet IDs come from the network's own counter, and deliveries
// are observed in the network's deterministic ejection order, so a
// program's execution is bit-identical across runs and worker counts.
type Engine struct {
	Net  *network.Network
	Prog *Program
	// PacketLength overrides the network's configured packet length for
	// payload segmentation (0 = use Net.Cfg.PacketLength).
	PacketLength int

	state      []msgState
	dependents [][]int32
	ready      []readyEntry // min-heap on (at, m)
	byPkt      map[uint64]int32

	started    bool
	startAt    int64
	remaining  int // messages not yet completed
	inflight   int // packets in the network
	commStart  int64
	commCycles int64
	packets    int64
	flits      int64
	firstOffer int64
	lastDone   int64
	stepFirst  []int64 // per-step earliest offer
	stepLast   []int64 // per-step latest delivery
}

// NewEngine validates the program against the network, inverts the
// dependency graph, verifies acyclicity, and installs the delivery
// observer. The engine does not inject anything until Drive runs (or Run
// is called).
func NewEngine(net *network.Network, prog *Program) (*Engine, error) {
	if err := prog.Validate(len(net.Nodes)); err != nil {
		return nil, err
	}
	n := len(prog.Msgs)
	e := &Engine{
		Net:        net,
		Prog:       prog,
		state:      make([]msgState, n),
		dependents: make([][]int32, n),
		byPkt:      make(map[uint64]int32),
		startAt:    -1,
		firstOffer: -1,
		lastDone:   -1,
		remaining:  n,
		stepFirst:  make([]int64, prog.Steps),
		stepLast:   make([]int64, prog.Steps),
	}
	for s := range e.stepFirst {
		e.stepFirst[s], e.stepLast[s] = -1, -1
	}
	for i := range e.state {
		e.state[i] = msgState{deps: int32(len(prog.Deps[i])), offeredAt: -1, doneAt: -1}
	}
	for i, deps := range prog.Deps {
		for _, d := range deps {
			e.dependents[d] = append(e.dependents[d], int32(i))
		}
	}
	// Kahn's algorithm over the inverted graph: every message must be
	// reachable from the zero-dependency roots or the program deadlocks.
	indeg := make([]int32, n)
	var queue []int32
	for i := range e.state {
		indeg[i] = e.state[i].deps
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		m := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, d := range e.dependents[m] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != n {
		return nil, fmt.Errorf("collective: %s has a dependency cycle (%d of %d msgs unreachable)", prog.Name, n-seen, n)
	}
	net.OnDeliver = e.delivered
	return e, nil
}

// heap push/pop on (at, m): a hand-rolled min-heap avoids the interface
// boxing of container/heap on this hot path.
func (e *Engine) push(at int64, m int32) {
	e.ready = append(e.ready, readyEntry{at, m})
	i := len(e.ready) - 1
	for i > 0 {
		p := (i - 1) / 2
		if less(e.ready[i], e.ready[p]) {
			e.ready[i], e.ready[p] = e.ready[p], e.ready[i]
			i = p
			continue
		}
		break
	}
}

func (e *Engine) pop() readyEntry {
	top := e.ready[0]
	last := len(e.ready) - 1
	e.ready[0] = e.ready[last]
	e.ready = e.ready[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(e.ready) && less(e.ready[l], e.ready[s]) {
			s = l
		}
		if r < len(e.ready) && less(e.ready[r], e.ready[s]) {
			s = r
		}
		if s == i {
			return top
		}
		e.ready[i], e.ready[s] = e.ready[s], e.ready[i]
		i = s
	}
}

// less orders the ready heap by eligibility cycle, then message index —
// the tie-break that pins injection order (and thus packet IDs) across
// runs.
func less(a, b readyEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.m < b.m
}

// startOnce seeds the ready heap with the program's zero-dependency roots
// on the first Drive call.
func (e *Engine) startOnce(now int64) {
	if e.started {
		return
	}
	e.started = true
	e.startAt = now
	for i := range e.state {
		if e.state[i].deps == 0 {
			e.push(now+e.Prog.Msgs[i].Compute, int32(i))
		}
	}
}

// Drive implements traffic.Driver: offer every message whose eligibility
// cycle has arrived, in (readyAt, index) order.
func (e *Engine) Drive(now int64) {
	e.startOnce(now)
	for len(e.ready) > 0 && e.ready[0].at <= now {
		e.offer(e.pop().m, now)
	}
}

// offer injects message m at cycle now, splitting the payload into
// packets of at most the configured packet length. Degenerate messages
// (no payload, or source == destination) act as pure synchronization
// points and complete immediately.
func (e *Engine) offer(m int32, now int64) {
	msg := &e.Prog.Msgs[m]
	st := &e.state[m]
	st.offeredAt = now
	if e.firstOffer < 0 || now < e.firstOffer {
		e.firstOffer = now
	}
	if s := msg.Step; e.stepFirst[s] < 0 || now < e.stepFirst[s] {
		e.stepFirst[s] = now
	}
	if msg.Flits <= 0 || msg.Src == msg.Dst {
		e.complete(m, now)
		return
	}
	plen := e.PacketLength
	if plen <= 0 {
		plen = e.Net.Cfg.PacketLength
	}
	for left := msg.Flits; left > 0; left -= plen {
		l := plen
		if left < plen {
			l = left
		}
		p := e.Net.NewPacket(msg.Src, msg.Dst, l, now)
		p.Class = e.Prog.Class
		e.byPkt[p.ID] = m
		st.pkts++
		if e.inflight == 0 {
			e.commStart = now
		}
		e.inflight++
		e.packets++
		e.flits += int64(l)
		e.Net.Offer(p)
	}
}

// delivered is the OnDeliver observer: packets not born from this engine
// (background traffic sharing the network) are ignored.
func (e *Engine) delivered(p *network.Packet) {
	m, ok := e.byPkt[p.ID]
	if !ok {
		return
	}
	delete(e.byPkt, p.ID)
	e.inflight--
	if e.inflight == 0 {
		// The stretch from first outstanding packet to last delivery had
		// traffic in the network; everything between such stretches is
		// stall (compute or dependency wait).
		e.commCycles += e.Net.Now - e.commStart
	}
	st := &e.state[m]
	st.pkts--
	if st.pkts == 0 {
		e.complete(m, e.Net.Now)
	}
}

// complete marks message m done at cycle now and releases its dependents.
func (e *Engine) complete(m int32, now int64) {
	st := &e.state[m]
	st.deps = -1
	st.doneAt = now
	e.remaining--
	if now > e.lastDone {
		e.lastDone = now
	}
	if s := e.Prog.Msgs[m].Step; now > e.stepLast[s] {
		e.stepLast[s] = now
	}
	for _, d := range e.dependents[m] {
		ds := &e.state[d]
		ds.deps--
		if ds.deps == 0 {
			// Earliest injection is the cycle after the releasing
			// delivery, plus the dependent's compute phase.
			e.push(now+1+e.Prog.Msgs[d].Compute, d)
		}
	}
}

// NextInjection implements the traffic.Driver fast-forward contract: the
// earliest cycle ≥ now at which Drive may offer a packet, or negative
// once the program has fully completed. While messages remain blocked on
// in-flight deliveries it returns now — the network is not idle then, so
// no skip is forfeited, and a deadlocked program cannot silence the
// engine.
func (e *Engine) NextInjection(now int64) int64 {
	if !e.started {
		return now
	}
	if len(e.ready) > 0 {
		if at := e.ready[0].at; at > now {
			return at
		}
		return now
	}
	if e.remaining > 0 {
		return now
	}
	return -1
}

// Done reports whether every message has completed.
func (e *Engine) Done() bool { return e.started && e.remaining == 0 }

// Run drives the network until the program completes or budget cycles
// elapse, in bounded chunks so completion is detected promptly. It
// returns the report on success and an error naming the stuck messages on
// budget exhaustion or network deadlock.
func (e *Engine) Run(budget int64) (Report, error) {
	deadline := e.Net.Now + budget
	for !e.Done() {
		chunk := int64(4096)
		if left := deadline - e.Net.Now; left < chunk {
			chunk = left
		}
		if chunk <= 0 {
			return Report{}, fmt.Errorf("collective: %s incomplete after %d cycles: %s", e.Prog.Name, budget, e.stuck())
		}
		if err := e.Net.RunWith(chunk, e.Drive, e.NextInjection); err != nil {
			return Report{}, fmt.Errorf("collective: %s: %w (stuck: %s)", e.Prog.Name, err, e.stuck())
		}
	}
	return e.Report(), nil
}

// stuck summarizes incomplete messages for error reporting.
func (e *Engine) stuck() string {
	var blocked, offered int
	first := int32(-1)
	for i := range e.state {
		st := &e.state[i]
		if st.deps == -1 {
			continue
		}
		if st.offeredAt >= 0 {
			offered++
		} else {
			blocked++
		}
		if first < 0 {
			first = int32(i)
		}
	}
	if first < 0 {
		return "none"
	}
	m := e.Prog.Msgs[first]
	return fmt.Sprintf("%d in flight, %d blocked; first msg %d (step %d, %d->%d)",
		offered, blocked, first, m.Step, m.Src, m.Dst)
}

// StepReport summarizes one step of a completed program.
type StepReport struct {
	Step int32 `json:"step"`
	Msgs int   `json:"msgs"`
	// FirstOffer/LastDelivery are absolute cycles; Span is their
	// difference. Overlap is how many cycles this step's first injection
	// preceded the previous step's last delivery — the pipelining the
	// dependency structure permits (0 for strictly serialized steps).
	FirstOffer   int64 `json:"first_offer"`
	LastDelivery int64 `json:"last_delivery"`
	Span         int64 `json:"span"`
	Overlap      int64 `json:"overlap"`
}

// Report summarizes a completed program's execution.
type Report struct {
	Name         string `json:"name"`
	Participants int    `json:"participants"`
	Msgs         int    `json:"msgs"`
	Packets      int64  `json:"packets"`
	Flits        int64  `json:"flits"`
	// StartAt is the cycle the engine started; FirstOffer the first
	// injection; LastDelivery the final completion. Elapsed is the
	// end-to-end completion time (LastDelivery − StartAt).
	StartAt      int64 `json:"start_at"`
	FirstOffer   int64 `json:"first_offer"`
	LastDelivery int64 `json:"last_delivery"`
	Elapsed      int64 `json:"elapsed"`
	// CommCycles counts cycles with at least one collective packet in
	// flight; StallCycles is the rest of Elapsed — compute phases and
	// dependency waits with an empty network.
	CommCycles  int64        `json:"comm_cycles"`
	StallCycles int64        `json:"stall_cycles"`
	Steps       []StepReport `json:"steps"`
}

// Report builds the completion report. It is meaningful once Done.
func (e *Engine) Report() Report {
	r := Report{
		Name:         e.Prog.Name,
		Participants: e.Prog.Participants,
		Msgs:         len(e.Prog.Msgs),
		Packets:      e.packets,
		Flits:        e.flits,
		StartAt:      e.startAt,
		FirstOffer:   e.firstOffer,
		LastDelivery: e.lastDone,
	}
	if e.lastDone >= 0 && e.startAt >= 0 {
		r.Elapsed = e.lastDone - e.startAt
	}
	r.CommCycles = e.commCycles
	if r.Elapsed > r.CommCycles {
		r.StallCycles = r.Elapsed - r.CommCycles
	}
	counts := make([]int, e.Prog.Steps)
	for i := range e.Prog.Msgs {
		counts[e.Prog.Msgs[i].Step]++
	}
	prevLast := int64(-1)
	for s := 0; s < e.Prog.Steps; s++ {
		sr := StepReport{
			Step:         int32(s),
			Msgs:         counts[s],
			FirstOffer:   e.stepFirst[s],
			LastDelivery: e.stepLast[s],
		}
		if sr.LastDelivery >= 0 && sr.FirstOffer >= 0 {
			sr.Span = sr.LastDelivery - sr.FirstOffer
		}
		if s > 0 && prevLast >= 0 && sr.FirstOffer >= 0 && sr.FirstOffer < prevLast {
			sr.Overlap = prevLast - sr.FirstOffer
		}
		prevLast = sr.LastDelivery
		r.Steps = append(r.Steps, sr)
	}
	return r
}

// SortedStuck returns the indices of incomplete messages in index order
// (test/debug helper).
func (e *Engine) SortedStuck() []int {
	var out []int
	for i := range e.state {
		if e.state[i].deps != -1 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
