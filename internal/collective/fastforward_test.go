package collective_test

import (
	"hash/fnv"
	"reflect"
	"testing"

	"heteroif/internal/collective"
	"heteroif/internal/network"
	"heteroif/internal/network/netbench"
)

// ffRun executes a DNN program whose compute phases are long, provably
// idle network stretches, and returns the report, an arrival digest, the
// number of Drive callbacks, and the wall cycles consumed. fastForward
// selects whether RunWith gets the engine's NextInjection (skips enabled)
// or nil (every cycle stepped).
func ffRun(t *testing.T, fastForward bool) (collective.Report, uint64, int64, int64) {
	t.Helper()
	net := netbench.BuildMesh(8)
	// Digest every delivery (packet identity + timing) before the engine
	// observes it; OnDeliver runs after Sink so both see retired packets.
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	net.Sink = func(p *network.Packet) {
		word(p.ID)
		word(uint64(p.Src)<<32 | uint64(p.Dst))
		word(uint64(p.CreatedAt))
		word(uint64(p.InjectedAt))
		word(uint64(p.ArrivedAt))
	}

	ps := []network.NodeID{0, 7, 56, 63, 27, 36}
	layers := []collective.Layer{
		{Name: "l0", Compute: 4000, GradFlits: 96},
		{Name: "l1", Compute: 9000, GradFlits: 192},
		{Name: "l2", Compute: 2500, GradFlits: 48},
	}
	prog := collective.DNNTraining(ps, layers, 50)
	e, err := collective.NewEngine(net, prog)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	var driveCalls int64
	drive := func(now int64) {
		driveCalls++
		e.Drive(now)
	}
	next := e.NextInjection
	if !fastForward {
		next = nil
	}
	const budget = 1 << 21
	start := net.Now
	for !e.Done() && net.Now-start < budget {
		if err := net.RunWith(4096, drive, next); err != nil {
			t.Fatalf("RunWith: %v", err)
		}
	}
	if !e.Done() {
		t.Fatalf("program incomplete after %d cycles (fastForward=%v)", budget, fastForward)
	}
	return e.Report(), h.Sum64(), driveCalls, net.Now - start
}

// TestFastForwardClosedLoop is the ISSUE satellite: a closed-loop driver
// whose NextInjection returns far-future cycles (DNN compute phases) must
// let quiescence fast-forward engage — far fewer Drive callbacks than
// stepped cycles — while results stay bit-identical with it disabled.
func TestFastForwardClosedLoop(t *testing.T) {
	ffRep, ffDigest, ffDrives, ffCycles := ffRun(t, true)
	refRep, refDigest, refDrives, refCycles := ffRun(t, false)

	if ffDigest != refDigest {
		t.Fatalf("arrival digests differ: fast-forward %016x vs stepped %016x", ffDigest, refDigest)
	}
	if !reflect.DeepEqual(ffRep, refRep) {
		t.Fatalf("reports differ:\n  ff  = %+v\n  ref = %+v", ffRep, refRep)
	}
	if ffCycles != refCycles {
		t.Fatalf("wall cycles differ: %d vs %d", ffCycles, refCycles)
	}
	// The reference steps (and drives) every cycle. With ~15.5k cycles of
	// pure compute in the program, fast-forward must skip the bulk of
	// them: require at least a 3× reduction in Drive callbacks.
	if refDrives < refCycles {
		t.Fatalf("reference drove %d times over %d cycles — expected every cycle", refDrives, refCycles)
	}
	if ffDrives*3 > refDrives {
		t.Fatalf("fast-forward drove %d of %d cycles — quiescence skipping did not engage", ffDrives, refDrives)
	}
	t.Logf("fast-forward: %d drives vs %d stepped over %d cycles (%.1fx fewer)",
		ffDrives, refDrives, refCycles, float64(refDrives)/float64(ffDrives))
}
