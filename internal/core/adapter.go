package core

import (
	"heteroif/internal/network"
)

// HeteroPHYAdapter is the behavioral model of the heterogeneous-PHY
// die-to-die adapter of Sec. 4.2 / Fig. 7(b). It implements
// network.Adapter, so a network.Link with this adapter behaves as one
// logical channel whose accept rate is B_p + B_s.
//
// TX side ("front-end", like a superscalar front-end): the router's switch
// deposits flits into a multi-width FIFO (Fetch); each cycle the adapter
// inspects packet headers (Decode), asks the scheduling policy for a PHY
// (Dispatch) and pushes flits into the selected PHY pipeline (Issue).
// Latency-sensitive flits may bypass a stalled queue head — but only onto
// the parallel PHY.
//
// RX side ("back-end"): flits emerging from the two PHY pipelines enter the
// reorder buffer, which releases them downstream in order (see ROB).
//
// The adapter adds one cycle of queueing latency on top of the PHY
// propagation delay, matching the extra cycle the synthesized reordering
// logic costs in Sec. 8.2.
type HeteroPHYAdapter struct {
	policy Policy

	bits          int
	parallelBW    int
	serialBW      int
	delayParallel int
	delaySerial   int
	pjParallel    float64
	pjSerial      float64

	txq      []txEntry
	txCap    int
	accepted int
	pb, sb   int // remaining per-PHY issue budget this cycle

	ppipe phyPipe
	spipe phyPipe

	rob   *ROB
	txSN  uint32
	txVSN []uint32

	// LookAhead bounds how deep the bypass scan looks past a stalled
	// queue head.
	LookAhead int

	nParallel uint64
	nSerial   uint64
	maxQ      int
}

type txEntry struct {
	f   network.Flit
	enq int64
}

// phyPipe is one PHY's propagation pipeline: delay stages, bandwidth flits
// per stage.
type phyPipe struct {
	delay    int
	slots    [][]network.Flit
	head     int
	inFlight int
}

func newPhyPipe(delay int) phyPipe {
	return phyPipe{delay: delay, slots: make([][]network.Flit, delay)}
}

func (p *phyPipe) push(f network.Flit) {
	slot := (p.head + p.delay - 1) % p.delay
	p.slots[slot] = append(p.slots[slot], f)
	p.inFlight++
}

func (p *phyPipe) advance(sink func(network.Flit)) {
	arr := p.slots[p.head]
	p.slots[p.head] = arr[:0]
	p.head = (p.head + 1) % p.delay
	for _, f := range arr {
		p.inFlight--
		sink(f)
	}
}

// NewHeteroPHYAdapter builds an adapter from the simulation configuration
// and a scheduling policy (nil means Balanced).
func NewHeteroPHYAdapter(cfg *network.Config, policy Policy) *HeteroPHYAdapter {
	if policy == nil {
		policy = Balanced{}
	}
	a := &HeteroPHYAdapter{
		policy:        policy,
		bits:          cfg.FlitBits,
		parallelBW:    cfg.ParallelBandwidth,
		serialBW:      cfg.SerialBandwidth,
		delayParallel: cfg.ParallelDelay,
		delaySerial:   cfg.SerialDelay,
		pjParallel:    cfg.ParallelPJPerBit,
		pjSerial:      cfg.SerialPJPerBit,
		txCap:         cfg.AdapterQueueDepth,
		rob:           NewROB(cfg.VCs),
		txVSN:         make([]uint32, cfg.VCs),
		LookAhead:     8,
	}
	a.ppipe = newPhyPipe(a.delayParallel)
	a.spipe = newPhyPipe(a.delaySerial)
	a.pb, a.sb = a.parallelBW, a.serialBW
	return a
}

// Policy returns the adapter's scheduling policy.
func (a *HeteroPHYAdapter) Policy() Policy { return a.policy }

// FreeSlots implements network.Adapter: TX queue space bounded by the
// adapter fetch width (B_p + B_s flits per cycle).
func (a *HeteroPHYAdapter) FreeSlots() int {
	return min(a.txCap-len(a.txq), a.parallelBW+a.serialBW-a.accepted)
}

// Accept implements network.Adapter (the Fetch stage). If this cycle's
// issue budget is not exhausted, the flit may be decoded and issued in the
// same cycle — the adapter only adds queueing latency under contention,
// matching the Sec. 8.2 observation that reordering costs a single cycle.
func (a *HeteroPHYAdapter) Accept(now int64, f network.Flit) {
	a.txq = append(a.txq, txEntry{f: f, enq: now})
	a.accepted++
	if len(a.txq) > a.maxQ {
		a.maxQ = len(a.txq)
	}
	if a.pb > 0 || a.sb > 0 {
		a.dispatch(now)
	}
}

// InFlight implements network.Adapter.
func (a *HeteroPHYAdapter) InFlight() int {
	return len(a.txq) + a.ppipe.inFlight + a.spipe.inFlight + a.rob.Occupancy()
}

// Tick implements network.Adapter: advance PHY pipelines into the ROB,
// release in-order flits downstream, then issue queued flits to the PHYs.
func (a *HeteroPHYAdapter) Tick(now int64, deliver func(network.Flit)) {
	a.ppipe.advance(a.rob.Insert)
	a.spipe.advance(a.rob.Insert)
	a.rob.Release(deliver)
	a.pb, a.sb = a.parallelBW, a.serialBW
	a.dispatch(now)
	a.accepted = 0
}

func (a *HeteroPHYAdapter) dispatch(now int64) {
	pb, sb := a.pb, a.sb
	defer func() { a.pb, a.sb = pb, sb }()
	// High-priority bypass first: latency-sensitive flits are issued ahead
	// of the queue through the parallel PHY ("high-priority packets can be
	// dispatched early through the bypass", Sec. 4.2), never overtaking a
	// same-VC flit.
	if pb > 0 {
		a.bypassScan(&pb)
	}
	for pb > 0 || sb > 0 {
		if len(a.txq) == 0 {
			return
		}
		e := a.txq[0]
		var phy PHY
		var ok bool
		if e.f.Pkt.Class == network.ClassLatencySensitive {
			// Bypass class: parallel PHY only (Sec. 4.2).
			phy, ok = PHYParallel, pb > 0
		} else {
			st := State{
				Now:            now,
				QueueLen:       len(a.txq),
				QueueCap:       a.txCap,
				ParallelBudget: pb,
				SerialBudget:   sb,
				Waited:         now - e.enq,
			}
			phy, ok = a.policy.Dispatch(st, e.f)
			if ok && ((phy == PHYParallel && pb == 0) || (phy == PHYSerial && sb == 0)) {
				ok = false
			}
		}
		if ok {
			a.popFront()
			a.issue(e.f, phy, &pb, &sb)
			continue
		}
		return
	}
}

// bypassScan issues latency-sensitive flits from anywhere in the look-ahead
// window onto the parallel PHY, preserving their relative order. A flit may
// only jump past flits of *other* virtual channels: per-VC issue order is
// the delivery contract (see ROB), so overtaking a same-VC flit is never
// allowed.
func (a *HeteroPHYAdapter) bypassScan(pb *int) {
	limit := min(len(a.txq), 1+a.LookAhead)
	for i := 0; i < limit && *pb > 0; {
		if a.txq[i].f.Pkt.Class != network.ClassLatencySensitive {
			i++
			continue
		}
		vc := a.txq[i].f.VC
		blocked := false
		for j := 0; j < i; j++ {
			if a.txq[j].f.VC == vc {
				blocked = true
				break
			}
		}
		if blocked {
			i++
			continue
		}
		f := a.txq[i].f
		copy(a.txq[i:], a.txq[i+1:])
		a.txq[len(a.txq)-1] = txEntry{}
		a.txq = a.txq[:len(a.txq)-1]
		limit--
		sb := 0
		a.issue(f, PHYParallel, pb, &sb)
	}
}

func (a *HeteroPHYAdapter) popFront() {
	copy(a.txq, a.txq[1:])
	a.txq[len(a.txq)-1] = txEntry{}
	a.txq = a.txq[:len(a.txq)-1]
}

func (a *HeteroPHYAdapter) issue(f network.Flit, phy PHY, pb, sb *int) {
	f.VSN = a.txVSN[f.VC]
	a.txVSN[f.VC]++
	if f.Pkt.Class == network.ClassInOrder {
		f.SN = a.txSN
		a.txSN++
	}
	if phy == PHYParallel {
		*pb--
		a.nParallel++
		e := a.pjParallel * float64(a.bits)
		f.EnergyPJ += e
		f.EnergyIfacePJ += e
		a.ppipe.push(f)
	} else {
		*sb--
		a.nSerial++
		e := a.pjSerial * float64(a.bits)
		f.EnergyPJ += e
		f.EnergyIfacePJ += e
		a.spipe.push(f)
	}
}

// ParallelFlits returns how many flits were issued to the parallel PHY.
func (a *HeteroPHYAdapter) ParallelFlits() uint64 { return a.nParallel }

// SerialFlits returns how many flits were issued to the serial PHY.
func (a *HeteroPHYAdapter) SerialFlits() uint64 { return a.nSerial }

// MaxQueue returns the TX queue high-water mark.
func (a *HeteroPHYAdapter) MaxQueue() int { return a.maxQ }

// MaxROBOccupancy returns the RX reorder-buffer high-water mark, for
// comparison against the Eq. 1 estimate.
func (a *HeteroPHYAdapter) MaxROBOccupancy() int { return a.rob.MaxOccupancy() }

var _ network.Adapter = (*HeteroPHYAdapter)(nil)
