package core

import (
	"heteroif/internal/network"
)

// HeteroPHYAdapter is the behavioral model of the heterogeneous-PHY
// die-to-die adapter of Sec. 4.2 / Fig. 7(b). It implements
// network.Adapter, so a network.Link with this adapter behaves as one
// logical channel whose accept rate is B_p + B_s.
//
// TX side ("front-end", like a superscalar front-end): the router's switch
// deposits flits into a multi-width FIFO (Fetch); each cycle the adapter
// inspects packet headers (Decode), asks the scheduling policy for a PHY
// (Dispatch) and pushes flits into the selected PHY pipeline (Issue).
// Latency-sensitive flits may bypass a stalled queue head — but only onto
// the parallel PHY.
//
// RX side ("back-end"): flits emerging from the two PHY pipelines enter the
// reorder buffer, which releases them downstream in order (see ROB).
//
// The adapter adds one cycle of queueing latency on top of the PHY
// propagation delay, matching the extra cycle the synthesized reordering
// logic costs in Sec. 8.2.
type HeteroPHYAdapter struct {
	policy Policy

	bits          int
	parallelBW    int
	serialBW      int
	delayParallel int
	delaySerial   int
	pjParallel    float64
	pjSerial      float64

	txq      []txEntry
	txCap    int
	accepted int
	pb, sb   int // remaining per-PHY issue budget this cycle

	ppipe phyPipe
	spipe phyPipe

	// pRetry/sRetry, when non-nil, replace the corresponding plain PHY
	// pipeline with the link-layer retry protocol (see
	// network.RetryPipe). nil keeps the retry-free paths untouched.
	pRetry *network.RetryPipe
	sRetry *network.RetryPipe
	// evict caches the policy's serial-eviction hook (set when retry is
	// enabled and the policy implements it).
	evict    serialEvictor
	nRescued uint64

	rob   *ROB
	txSN  uint32
	txVSN []uint32

	// LookAhead bounds how deep the bypass scan looks past a stalled
	// queue head.
	LookAhead int

	nParallel uint64
	nSerial   uint64
	maxQ      int
}

type txEntry struct {
	f   network.Flit
	enq int64
}

// phyPipe is one PHY's propagation pipeline: delay stages, bandwidth flits
// per stage.
type phyPipe struct {
	delay    int
	slots    [][]network.Flit
	head     int
	inFlight int
}

func newPhyPipe(delay int) phyPipe {
	return phyPipe{delay: delay, slots: make([][]network.Flit, delay)}
}

func (p *phyPipe) push(f network.Flit) {
	slot := (p.head + p.delay - 1) % p.delay
	p.slots[slot] = append(p.slots[slot], f)
	p.inFlight++
}

func (p *phyPipe) advance(sink func(network.Flit)) {
	arr := p.slots[p.head]
	p.slots[p.head] = arr[:0]
	p.head = (p.head + 1) % p.delay
	for _, f := range arr {
		p.inFlight--
		sink(f)
	}
}

// NewHeteroPHYAdapter builds an adapter from the simulation configuration
// and a scheduling policy (nil means Balanced).
func NewHeteroPHYAdapter(cfg *network.Config, policy Policy) *HeteroPHYAdapter {
	if policy == nil {
		policy = Balanced{}
	}
	a := &HeteroPHYAdapter{
		policy:        policy,
		bits:          cfg.FlitBits,
		parallelBW:    cfg.ParallelBandwidth,
		serialBW:      cfg.SerialBandwidth,
		delayParallel: cfg.ParallelDelay,
		delaySerial:   cfg.SerialDelay,
		pjParallel:    cfg.ParallelPJPerBit,
		pjSerial:      cfg.SerialPJPerBit,
		txCap:         cfg.AdapterQueueDepth,
		rob:           NewROB(cfg.VCs),
		txVSN:         make([]uint32, cfg.VCs),
		LookAhead:     8,
	}
	a.ppipe = newPhyPipe(a.delayParallel)
	a.spipe = newPhyPipe(a.delaySerial)
	a.pb, a.sb = a.parallelBW, a.serialBW
	return a
}

// Policy returns the adapter's scheduling policy.
func (a *HeteroPHYAdapter) Policy() Policy { return a.policy }

// FreeSlots implements network.Adapter: TX queue space bounded by the
// adapter fetch width (B_p + B_s flits per cycle).
func (a *HeteroPHYAdapter) FreeSlots() int {
	return min(a.txCap-len(a.txq), a.parallelBW+a.serialBW-a.accepted)
}

// Accept implements network.Adapter (the Fetch stage). If this cycle's
// issue budget is not exhausted, the flit may be decoded and issued in the
// same cycle — the adapter only adds queueing latency under contention,
// matching the Sec. 8.2 observation that reordering costs a single cycle.
func (a *HeteroPHYAdapter) Accept(now int64, f network.Flit) {
	a.txq = append(a.txq, txEntry{f: f, enq: now})
	a.accepted++
	if len(a.txq) > a.maxQ {
		a.maxQ = len(a.txq)
	}
	if a.pb > 0 || a.sb > 0 {
		a.dispatch(now)
	}
}

// InFlight implements network.Adapter.
func (a *HeteroPHYAdapter) InFlight() int {
	n := len(a.txq) + a.ppipe.inFlight + a.spipe.inFlight + a.rob.Occupancy()
	if a.pRetry != nil {
		n += a.pRetry.InFlight()
	}
	if a.sRetry != nil {
		n += a.sRetry.InFlight()
	}
	return n
}

// Busy implements network.Adapter: resident flits, plus — when a PHY runs
// retry — protocol state (unacked replay entries, acks in flight) that
// still needs ticks after the last flit was delivered.
func (a *HeteroPHYAdapter) Busy() bool {
	if a.InFlight() > 0 {
		return true
	}
	return (a.pRetry != nil && a.pRetry.Busy()) || (a.sRetry != nil && a.sRetry.Busy())
}

// EnableRetry arms the link-layer retry protocol on one PHY of the
// adapter, with the given fault hook (nil = reliable wire). window and
// timeout <= 0 pick defaults from the PHY's bandwidth and delay. If the
// scheduling policy implements the serial-eviction hook (FailoverPolicy),
// the adapter wires it up so stuck serial flits can be rescued onto the
// parallel PHY.
func (a *HeteroPHYAdapter) EnableRetry(phy PHY, hook network.TxFault, window, timeout int) {
	switch phy {
	case PHYParallel:
		a.pRetry = network.NewRetryPipe(a.parallelBW, a.delayParallel, window, timeout,
			hook, a.pjParallel*float64(a.bits), false)
	case PHYSerial:
		a.sRetry = network.NewRetryPipe(a.serialBW, a.delaySerial, window, timeout,
			hook, a.pjSerial*float64(a.bits), false)
	}
	if ev, ok := a.policy.(serialEvictor); ok {
		a.evict = ev
	}
}

// Tick implements network.Adapter: advance PHY pipelines into the ROB,
// release in-order flits downstream, then issue queued flits to the PHYs.
func (a *HeteroPHYAdapter) Tick(now int64, deliver func(network.Flit)) {
	if a.pRetry != nil {
		a.pRetry.Tick(now, a.rob.Insert)
	} else {
		a.ppipe.advance(a.rob.Insert)
	}
	if a.sRetry != nil {
		a.sRetry.Tick(now, a.rob.Insert)
		if a.evict != nil && a.evict.EvictSerial(a.serialState(now)) {
			a.rescueSerial(now)
		}
	} else {
		a.spipe.advance(a.rob.Insert)
	}
	a.rob.Release(deliver)
	a.pb, a.sb = a.parallelBW, a.serialBW
	if a.pRetry != nil {
		a.pb = a.pRetry.FreeSlots()
	}
	if a.sRetry != nil {
		a.sb = a.sRetry.FreeSlots()
	}
	a.dispatch(now)
	a.accepted = 0
}

// serialState summarizes the serial PHY's link-layer health for the
// eviction hook.
func (a *HeteroPHYAdapter) serialState(now int64) State {
	return State{
		Now:             now,
		SerialSent:      a.sRetry.Stats.Transmits,
		SerialRetries:   a.sRetry.Stats.Retransmits,
		SerialPending:   a.sRetry.InFlight(),
		SerialOldestAge: a.sRetry.OldestAge(now),
	}
}

// rescueSerial evicts every undelivered flit off the serial retry pipe and
// re-issues it through the parallel PHY. The flits keep their original
// VSN/SN stamps, so the ROB still releases them in issue order; clearing
// the serial pipe (FailoverDrain) guarantees no duplicate can follow. The
// burst intentionally ignores the per-cycle parallel budget — a rare
// rescue event models the adapter re-steering its buffered state, and the
// retry window absorbs it by stalling subsequent accepts.
func (a *HeteroPHYAdapter) rescueSerial(now int64) {
	a.sRetry.FailoverDrain(func(f network.Flit) {
		a.nRescued++
		if a.pRetry != nil {
			a.pRetry.Accept(now, f)
			return
		}
		e := a.pjParallel * float64(a.bits)
		f.EnergyPJ += e
		f.EnergyIfacePJ += e
		a.ppipe.push(f)
	})
}

func (a *HeteroPHYAdapter) dispatch(now int64) {
	pb, sb := a.pb, a.sb
	defer func() { a.pb, a.sb = pb, sb }()
	// High-priority bypass first: latency-sensitive flits are issued ahead
	// of the queue through the parallel PHY ("high-priority packets can be
	// dispatched early through the bypass", Sec. 4.2), never overtaking a
	// same-VC flit.
	if pb > 0 {
		a.bypassScan(now, &pb)
	}
	for pb > 0 || sb > 0 {
		if len(a.txq) == 0 {
			return
		}
		e := a.txq[0]
		var phy PHY
		var ok bool
		if e.f.Pkt.Class == network.ClassLatencySensitive {
			// Bypass class: parallel PHY only (Sec. 4.2).
			phy, ok = PHYParallel, pb > 0
		} else {
			st := State{
				Now:            now,
				QueueLen:       len(a.txq),
				QueueCap:       a.txCap,
				ParallelBudget: pb,
				SerialBudget:   sb,
				Waited:         now - e.enq,
			}
			if a.sRetry != nil {
				st.SerialSent = a.sRetry.Stats.Transmits
				st.SerialRetries = a.sRetry.Stats.Retransmits
				st.SerialPending = a.sRetry.InFlight()
				st.SerialOldestAge = a.sRetry.OldestAge(now)
			}
			phy, ok = a.policy.Dispatch(st, e.f)
			if ok && ((phy == PHYParallel && pb == 0) || (phy == PHYSerial && sb == 0)) {
				ok = false
			}
		}
		if ok {
			a.popFront()
			a.issue(now, e.f, phy, &pb, &sb)
			continue
		}
		return
	}
}

// bypassScan issues latency-sensitive flits from anywhere in the look-ahead
// window onto the parallel PHY, preserving their relative order. A flit may
// only jump past flits of *other* virtual channels: per-VC issue order is
// the delivery contract (see ROB), so overtaking a same-VC flit is never
// allowed.
func (a *HeteroPHYAdapter) bypassScan(now int64, pb *int) {
	limit := min(len(a.txq), 1+a.LookAhead)
	for i := 0; i < limit && *pb > 0; {
		if a.txq[i].f.Pkt.Class != network.ClassLatencySensitive {
			i++
			continue
		}
		vc := a.txq[i].f.VC
		blocked := false
		for j := 0; j < i; j++ {
			if a.txq[j].f.VC == vc {
				blocked = true
				break
			}
		}
		if blocked {
			i++
			continue
		}
		f := a.txq[i].f
		copy(a.txq[i:], a.txq[i+1:])
		a.txq[len(a.txq)-1] = txEntry{}
		a.txq = a.txq[:len(a.txq)-1]
		limit--
		sb := 0
		a.issue(now, f, PHYParallel, pb, &sb)
	}
}

func (a *HeteroPHYAdapter) popFront() {
	copy(a.txq, a.txq[1:])
	a.txq[len(a.txq)-1] = txEntry{}
	a.txq = a.txq[:len(a.txq)-1]
}

func (a *HeteroPHYAdapter) issue(now int64, f network.Flit, phy PHY, pb, sb *int) {
	f.VSN = a.txVSN[f.VC]
	a.txVSN[f.VC]++
	if f.Pkt.Class == network.ClassInOrder {
		f.SN = a.txSN
		a.txSN++
	}
	// Retry-enabled PHYs charge traversal energy per transmission inside
	// the pipe (retransmissions burn energy again); plain PHYs at issue.
	if phy == PHYParallel {
		*pb--
		a.nParallel++
		if a.pRetry != nil {
			a.pRetry.Accept(now, f)
			return
		}
		e := a.pjParallel * float64(a.bits)
		f.EnergyPJ += e
		f.EnergyIfacePJ += e
		a.ppipe.push(f)
	} else {
		*sb--
		a.nSerial++
		if a.sRetry != nil {
			a.sRetry.Accept(now, f)
			return
		}
		e := a.pjSerial * float64(a.bits)
		f.EnergyPJ += e
		f.EnergyIfacePJ += e
		a.spipe.push(f)
	}
}

// ParallelFlits returns how many flits were issued to the parallel PHY.
func (a *HeteroPHYAdapter) ParallelFlits() uint64 { return a.nParallel }

// SerialFlits returns how many flits were issued to the serial PHY.
func (a *HeteroPHYAdapter) SerialFlits() uint64 { return a.nSerial }

// MaxQueue returns the TX queue high-water mark.
func (a *HeteroPHYAdapter) MaxQueue() int { return a.maxQ }

// MaxROBOccupancy returns the RX reorder-buffer high-water mark, for
// comparison against the Eq. 1 estimate.
func (a *HeteroPHYAdapter) MaxROBOccupancy() int { return a.rob.MaxOccupancy() }

// ParallelRetry returns the parallel PHY's retry pipe, or nil.
func (a *HeteroPHYAdapter) ParallelRetry() *network.RetryPipe { return a.pRetry }

// SerialRetry returns the serial PHY's retry pipe, or nil.
func (a *HeteroPHYAdapter) SerialRetry() *network.RetryPipe { return a.sRetry }

// Rescued returns how many flits the failover eviction path pulled off the
// serial PHY and re-issued through the parallel PHY.
func (a *HeteroPHYAdapter) Rescued() uint64 { return a.nRescued }

// RetryStats returns the combined link-layer protocol counters of both
// PHYs (zero when retry is disabled).
func (a *HeteroPHYAdapter) RetryStats() network.RetryStats {
	var s network.RetryStats
	if a.pRetry != nil {
		s.Add(a.pRetry.Stats)
	}
	if a.sRetry != nil {
		s.Add(a.sRetry.Stats)
	}
	return s
}

var _ network.Adapter = (*HeteroPHYAdapter)(nil)
