package core

import (
	"testing"

	"heteroif/internal/network"
)

func adapterUnderTest(pol Policy) (*HeteroPHYAdapter, network.Config) {
	cfg := network.DefaultConfig()
	return NewHeteroPHYAdapter(&cfg, pol), cfg
}

// runAdapter ticks the adapter, collecting deliveries.
func runAdapter(a *HeteroPHYAdapter, cycles int, inject func(now int64)) []network.Flit {
	var out []network.Flit
	for now := int64(0); now < int64(cycles); now++ {
		a.Tick(now, func(f network.Flit) { out = append(out, f) })
		if inject != nil {
			inject(now)
		}
	}
	return out
}

// TestAdapterZeroLoadLatency: a lone flit accepted right after a tick is
// delivered after exactly the parallel delay (same-cycle issue, Sec. 8.2).
func TestAdapterZeroLoadLatency(t *testing.T) {
	a, cfg := adapterUnderTest(Balanced{})
	pkt := mkPkt(1, 1, network.ClassBestEffort)
	var arrivals []int64
	for now := int64(0); now < 12; now++ {
		a.Tick(now, func(f network.Flit) { arrivals = append(arrivals, now) })
		if now == 0 {
			a.Accept(now, network.Flit{Pkt: pkt, Seq: 0, VC: 0})
		}
	}
	if len(arrivals) != 1 {
		t.Fatalf("delivered %d flits, want 1", len(arrivals))
	}
	if got, want := arrivals[0], int64(cfg.ParallelDelay); got != want {
		t.Fatalf("zero-load adapter latency %d cycles, want %d (parallel delay)", got, want)
	}
}

// TestAdapterBalancedUsesSerialUnderLoad: saturating the adapter engages
// the serial PHY (balanced policy threshold), and total throughput exceeds
// the parallel PHY alone.
func TestAdapterBalancedUsesSerialUnderLoad(t *testing.T) {
	a, cfg := adapterUnderTest(Balanced{})
	pkt := mkPkt(1, 1<<20, network.ClassBestEffort)
	seq := int32(0)
	out := runAdapter(a, 200, func(now int64) {
		for a.FreeSlots() > 0 {
			a.Accept(now, network.Flit{Pkt: pkt, Seq: seq, VC: 0})
			seq++
		}
	})
	if a.SerialFlits() == 0 {
		t.Fatal("balanced policy never engaged the serial PHY under saturation")
	}
	perCycle := float64(len(out)) / 200
	if perCycle <= float64(cfg.ParallelBandwidth) {
		t.Fatalf("throughput %.2f flits/cycle does not exceed the parallel PHY alone (%d)", perCycle, cfg.ParallelBandwidth)
	}
}

// TestAdapterEnergyEfficientNeverUsesSerial: the energy-efficient policy
// leaves the serial PHY dark.
func TestAdapterEnergyEfficientNeverUsesSerial(t *testing.T) {
	a, _ := adapterUnderTest(EnergyEfficient{})
	pkt := mkPkt(1, 1<<20, network.ClassBestEffort)
	seq := int32(0)
	runAdapter(a, 100, func(now int64) {
		for a.FreeSlots() > 0 {
			a.Accept(now, network.Flit{Pkt: pkt, Seq: seq, VC: 0})
			seq++
		}
	})
	if a.SerialFlits() != 0 {
		t.Fatalf("energy-efficient policy used the serial PHY for %d flits", a.SerialFlits())
	}
	if a.ParallelFlits() == 0 {
		t.Fatal("no traffic flowed at all")
	}
}

// TestAdapterPerformanceFirstFillsBothPHYs at saturation.
func TestAdapterPerformanceFirstFillsBothPHYs(t *testing.T) {
	a, cfg := adapterUnderTest(PerformanceFirst{})
	pkt := mkPkt(1, 1<<20, network.ClassBestEffort)
	seq := int32(0)
	out := runAdapter(a, 200, func(now int64) {
		for a.FreeSlots() > 0 {
			a.Accept(now, network.Flit{Pkt: pkt, Seq: seq, VC: 0})
			seq++
		}
	})
	want := float64(cfg.ParallelBandwidth + cfg.SerialBandwidth)
	perCycle := float64(len(out)) / 200
	if perCycle < 0.9*want {
		t.Fatalf("performance-first throughput %.2f flits/cycle, want ≈%.0f", perCycle, want)
	}
}

// TestAdapterDeliveryOrderPerVC: flits split across both PHYs arrive back
// in per-VC order.
func TestAdapterDeliveryOrderPerVC(t *testing.T) {
	a, _ := adapterUnderTest(PerformanceFirst{})
	pktA := mkPkt(1, 64, network.ClassBestEffort)
	pktB := mkPkt(2, 64, network.ClassBestEffort)
	seqA, seqB := int32(0), int32(0)
	out := runAdapter(a, 300, func(now int64) {
		for a.FreeSlots() > 0 && (seqA < 64 || seqB < 64) {
			if seqA <= seqB && seqA < 64 {
				a.Accept(now, network.Flit{Pkt: pktA, Seq: seqA, VC: 0})
				seqA++
			} else if seqB < 64 {
				a.Accept(now, network.Flit{Pkt: pktB, Seq: seqB, VC: 1})
				seqB++
			} else {
				break
			}
		}
	})
	if len(out) != 128 {
		t.Fatalf("delivered %d flits, want 128", len(out))
	}
	next := map[network.VCID]int32{}
	for _, f := range out {
		if f.Seq != next[f.VC] {
			t.Fatalf("VC %d delivery out of order: got seq %d want %d", f.VC, f.Seq, next[f.VC])
		}
		next[f.VC]++
	}
	if a.SerialFlits() == 0 || a.ParallelFlits() == 0 {
		t.Fatal("expected both PHYs in use for this test to be meaningful")
	}
}

// TestAdapterInOrderClassGlobalOrder: in-order flits across two VCs are
// delivered in global SN (issue) order.
func TestAdapterInOrderClassGlobalOrder(t *testing.T) {
	a, _ := adapterUnderTest(PerformanceFirst{})
	pktA := mkPkt(1, 32, network.ClassInOrder)
	pktB := mkPkt(2, 32, network.ClassInOrder)
	seqA, seqB := int32(0), int32(0)
	out := runAdapter(a, 300, func(now int64) {
		for a.FreeSlots() > 0 && (seqA < 32 || seqB < 32) {
			if seqA <= seqB && seqA < 32 {
				a.Accept(now, network.Flit{Pkt: pktA, Seq: seqA, VC: 0})
				seqA++
			} else if seqB < 32 {
				a.Accept(now, network.Flit{Pkt: pktB, Seq: seqB, VC: 1})
				seqB++
			} else {
				break
			}
		}
	})
	if len(out) != 64 {
		t.Fatalf("delivered %d flits, want 64", len(out))
	}
	var lastSN int64 = -1
	for _, f := range out {
		if int64(f.SN) <= lastSN {
			t.Fatalf("in-order SN sequence broke: %d after %d", f.SN, lastSN)
		}
		lastSN = int64(f.SN)
	}
}

// TestAdapterROBBoundedByEq1: under in-order traffic the reorder buffer
// stays within the Eq. 1 estimate plus the per-cycle arrival slack.
func TestAdapterROBBoundedByEq1(t *testing.T) {
	a, cfg := adapterUnderTest(PerformanceFirst{})
	pkt := mkPkt(1, 1<<20, network.ClassInOrder)
	seq := int32(0)
	runAdapter(a, 400, func(now int64) {
		for a.FreeSlots() > 0 {
			a.Accept(now, network.Flit{Pkt: pkt, Seq: seq, VC: 0})
			seq++
		}
	})
	eq1 := cfg.ParallelBandwidth * (cfg.SerialDelay - cfg.ParallelDelay)
	slack := cfg.ParallelBandwidth + cfg.SerialBandwidth
	if got := a.MaxROBOccupancy(); got > eq1+slack {
		t.Fatalf("ROB occupancy %d exceeds Eq.1 bound %d (+%d slack)", got, eq1, slack)
	}
	if a.MaxROBOccupancy() == 0 {
		t.Fatal("expected some reordering to occur")
	}
}

// TestAdapterBypassLatencySensitive: a latency-sensitive flit queued behind
// a stalled bulk flit on another VC is issued early through the parallel
// PHY.
func TestAdapterBypassLatencySensitive(t *testing.T) {
	cfg := network.DefaultConfig()
	// Force the head to stall: throughput-class head wants serial, but we
	// use a policy where serial budget is consumed; simplest: energy-
	// efficient policy with zero parallel budget is impossible, so instead
	// saturate the parallel PHY with the bulk queue and watch the bypass
	// flit overtake queue positions.
	a := NewHeteroPHYAdapter(&cfg, EnergyEfficient{})
	bulk := mkPkt(1, 1<<20, network.ClassThroughput)
	urgent := mkPkt(2, 1, network.ClassLatencySensitive)
	// Fill the queue with bulk flits on VC 0 (energy-efficient drains at
	// only 2/cycle), then append the urgent flit on VC 1.
	var arrivals []struct {
		f  network.Flit
		at int64
	}
	seq := int32(0)
	urgentSent := false
	for now := int64(0); now < 40; now++ {
		a.Tick(now, func(f network.Flit) {
			arrivals = append(arrivals, struct {
				f  network.Flit
				at int64
			}{f, now})
		})
		for a.FreeSlots() > 1 {
			a.Accept(now, network.Flit{Pkt: bulk, Seq: seq, VC: 0})
			seq++
		}
		if now == 3 && !urgentSent {
			a.Accept(now, network.Flit{Pkt: urgent, Seq: 0, VC: 1})
			urgentSent = true
		}
	}
	var urgentAt int64 = -1
	var bulkBefore int
	for _, ar := range arrivals {
		if ar.f.Pkt.ID == 2 {
			urgentAt = ar.at
			break
		}
		bulkBefore++
	}
	if urgentAt < 0 {
		t.Fatal("urgent flit never delivered")
	}
	// Without bypass it would wait behind the whole backlog; with bypass
	// it arrives within parallel delay + a few cycles of queueing.
	if urgentAt > 3+int64(cfg.ParallelDelay)+4 {
		t.Fatalf("urgent flit arrived at cycle %d (after %d bulk flits) — bypass not working", urgentAt, bulkBefore)
	}
}

// TestPolicyByName covers the registry.
func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"performance-first", "energy-efficient", "balanced", "application-aware"} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestApplicationAwarePolicy routes classes to their PHYs and honors the
// timeout escape hatch.
func TestApplicationAwarePolicy(t *testing.T) {
	pol := ApplicationAware{Timeout: 10}
	st := State{QueueLen: 5, QueueCap: 16, ParallelBudget: 2, SerialBudget: 4}
	bulk := network.Flit{Pkt: mkPkt(1, 16, network.ClassThroughput)}
	if phy, ok := pol.Dispatch(st, bulk); !ok || phy != PHYSerial {
		t.Errorf("throughput class under load got %v/%v, want serial", phy, ok)
	}
	// At true zero load even bulk takes the faster parallel path.
	idle := State{QueueLen: 1, QueueCap: 16, ParallelBudget: 2, SerialBudget: 4}
	if phy, ok := pol.Dispatch(idle, bulk); !ok || phy != PHYParallel {
		t.Errorf("throughput class at zero load got %v/%v, want parallel", phy, ok)
	}
	urgent := network.Flit{Pkt: mkPkt(2, 1, network.ClassLatencySensitive)}
	if phy, ok := pol.Dispatch(st, urgent); !ok || phy != PHYParallel {
		t.Errorf("latency-sensitive class got %v/%v, want parallel", phy, ok)
	}
	// Timed-out flit with no parallel budget goes to any free PHY.
	st2 := State{QueueLen: 9, QueueCap: 16, ParallelBudget: 0, SerialBudget: 4, Waited: 11}
	if phy, ok := pol.Dispatch(st2, urgent); !ok || phy != PHYSerial {
		t.Errorf("timed-out flit got %v/%v, want serial fallback", phy, ok)
	}
}
