package core

import (
	"heteroif/internal/network"
	"heteroif/internal/stats"
)

// serialEvictor is the adapter-side hook of a failure-aware policy: when
// it returns true the adapter evicts every undelivered flit off the serial
// retry pipe and re-issues it through the parallel PHY (see
// HeteroPHYAdapter.rescueSerial).
type serialEvictor interface {
	EvictSerial(st State) bool
}

// PolicyCloner is implemented by stateful policies. The topology builder
// clones the spec's policy once per adapter so health-monitor state is
// never shared between interfaces.
type PolicyCloner interface {
	Policy
	ClonePolicy() Policy
}

// FailoverPolicy wraps a base scheduling policy with serial-PHY health
// monitoring driven by link-layer retry telemetry. Rules:
//
//   - Healthy: defer to Base unchanged.
//   - Trip: when a Window-cycle evaluation sees at least MinSample serial
//     transmissions of which >= TripRate were retransmissions, the serial
//     PHY is declared degraded/dead and all traffic is steered to the
//     parallel PHY.
//   - Probe: while tripped, one flit is allowed onto the serial PHY every
//     ProbeInterval cycles; its delivery (or loss) refreshes the
//     telemetry the recovery rule needs.
//   - Evict: while tripped, flits stuck in the serial replay buffer for
//     EvictAge cycles or longer are rescued onto the parallel PHY (the
//     adapter's rescueSerial), keeping the ROB from wedging on a VSN gap
//     a dead wire would never fill.
//   - Recover: after RecoverWindows consecutive judgeable windows with a
//     retry rate below TripRate/2, traffic fails back to Base.
//
// A FailoverPolicy is stateful: use one instance per adapter (the topology
// builder clones it via PolicyCloner).
type FailoverPolicy struct {
	// Base is the policy used while the serial PHY is healthy; nil means
	// Balanced{}.
	Base Policy
	// Window is the health-evaluation period in cycles (default 256).
	Window int64
	// TripRate is the retransmission fraction that trips failover
	// (default 0.25).
	TripRate float64
	// MinSample is the minimum serial transmissions per window for a trip
	// judgment (default 8) — protects against tripping on one unlucky
	// flit at idle.
	MinSample uint64
	// ProbeInterval is the tripped-state serial probe period in cycles
	// (default = Window).
	ProbeInterval int64
	// RecoverWindows is how many consecutive healthy windows untrip
	// (default 2).
	RecoverWindows int
	// EvictAge is the stuck-flit age, in cycles, at which tripped-state
	// eviction fires (default 512; keep it above the retry timeout so
	// ordinary retransmissions never trigger a rescue).
	EvictAge int64

	win       stats.Windowed
	tripped   bool
	healthy   int
	lastProbe int64
	trips     uint64
	recovers  uint64
}

// NewFailoverPolicy returns a failover wrapper around base (nil means
// Balanced{}) with default monitoring parameters.
func NewFailoverPolicy(base Policy) *FailoverPolicy {
	if base == nil {
		base = Balanced{}
	}
	return &FailoverPolicy{
		Base:           base,
		Window:         256,
		TripRate:       0.25,
		MinSample:      8,
		ProbeInterval:  256,
		RecoverWindows: 2,
		EvictAge:       512,
	}
}

// Name implements Policy.
func (p *FailoverPolicy) Name() string {
	base := p.Base
	if base == nil {
		base = Balanced{}
	}
	return "failover+" + base.Name()
}

// Dispatch implements Policy: update the health monitor from the state's
// serial telemetry, then route per the rules above.
func (p *FailoverPolicy) Dispatch(st State, f network.Flit) (PHY, bool) {
	p.observe(st)
	if !p.tripped {
		base := p.Base
		if base == nil {
			base = Balanced{}
		}
		return base.Dispatch(st, f)
	}
	if st.Now-p.lastProbe >= p.probeInterval() && st.SerialBudget > 0 {
		p.lastProbe = st.Now
		return PHYSerial, true
	}
	return PHYParallel, st.ParallelBudget > 0
}

// EvictSerial implements the adapter's serial-eviction hook. It also
// feeds the health monitor: the hook runs every adapter tick, so a dead
// serial PHY is detected from its retry telemetry even when nothing new
// is being dispatched — the closed-loop collective case, where every
// upstream message is blocked on the stuck deliveries and Dispatch (the
// other observation point) is never reached.
func (p *FailoverPolicy) EvictSerial(st State) bool {
	p.observe(st)
	return p.tripped && st.SerialPending > 0 && st.SerialOldestAge >= p.evictAge()
}

// ClonePolicy implements PolicyCloner: the clone shares the parameters and
// starts with fresh monitor state.
func (p *FailoverPolicy) ClonePolicy() Policy {
	c := *p
	c.win = stats.Windowed{Window: c.win.Window}
	c.tripped = false
	c.healthy = 0
	c.lastProbe = 0
	c.trips = 0
	c.recovers = 0
	return &c
}

// Tripped reports whether the serial PHY is currently considered failed.
func (p *FailoverPolicy) Tripped() bool { return p.tripped }

// Trips returns how many times failover tripped.
func (p *FailoverPolicy) Trips() uint64 { return p.trips }

// Recoveries returns how many times traffic failed back after recovery.
func (p *FailoverPolicy) Recoveries() uint64 { return p.recovers }

func (p *FailoverPolicy) window() int64 {
	if p.Window > 0 {
		return p.Window
	}
	return 256
}

func (p *FailoverPolicy) probeInterval() int64 {
	if p.ProbeInterval > 0 {
		return p.ProbeInterval
	}
	return p.window()
}

func (p *FailoverPolicy) evictAge() int64 {
	if p.EvictAge > 0 {
		return p.EvictAge
	}
	return 512
}

func (p *FailoverPolicy) observe(st State) {
	if p.win.Window == 0 {
		p.win.Window = p.window()
	}
	if !p.win.Observe(st.Now, st.SerialRetries, st.SerialSent) {
		return
	}
	tripRate := p.TripRate
	if tripRate <= 0 {
		tripRate = 0.25
	}
	if !p.tripped {
		minSample := p.MinSample
		if minSample == 0 {
			minSample = 8
		}
		if p.win.Den >= minSample && p.win.Rate >= tripRate {
			p.tripped = true
			p.trips++
			p.healthy = 0
			p.lastProbe = st.Now
		}
		return
	}
	// Tripped: judge any window that saw serial traffic (probes are rare,
	// so even a single delivered probe counts toward recovery).
	if p.win.Den == 0 {
		return
	}
	if p.win.Rate < tripRate/2 {
		p.healthy++
		rw := p.RecoverWindows
		if rw <= 0 {
			rw = 2
		}
		if p.healthy >= rw {
			p.tripped = false
			p.recovers++
			p.healthy = 0
		}
	} else {
		p.healthy = 0
	}
}

var _ PolicyCloner = (*FailoverPolicy)(nil)
var _ serialEvictor = (*FailoverPolicy)(nil)
