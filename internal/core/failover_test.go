package core

import (
	"testing"

	"heteroif/internal/network"
)

// serialFirst is a test policy that always prefers the serial PHY — the
// worst case for a dying serial wire, and the easiest way to generate
// serial retry telemetry.
type serialFirst struct{}

func (serialFirst) Name() string { return "serial-first" }
func (serialFirst) Dispatch(st State, _ network.Flit) (PHY, bool) {
	if st.SerialBudget > 0 {
		return PHYSerial, true
	}
	return PHYParallel, st.ParallelBudget > 0
}

// downHook is a network.TxFault whose wire is dead during [from, to).
type downHook struct{ from, to int64 }

func (h downHook) Corrupt(int64) bool  { return false }
func (h downHook) Down(now int64) bool { return now >= h.from && now < h.to }

func testFailover() *FailoverPolicy {
	p := NewFailoverPolicy(serialFirst{})
	p.Window = 10
	p.MinSample = 4
	p.TripRate = 0.5
	p.ProbeInterval = 20
	p.RecoverWindows = 2
	p.EvictAge = 50
	return p
}

// feed drives the monitor with one Dispatch per cycle over [from, to),
// using linearly growing cumulative serial counters.
func feed(p *FailoverPolicy, from, to int64, sentPerCycle, retryPerCycle uint64, sent, retries *uint64) {
	for now := from; now < to; now++ {
		*sent += sentPerCycle
		*retries += retryPerCycle
		p.Dispatch(State{
			Now: now, ParallelBudget: 1, SerialBudget: 1,
			SerialSent: *sent, SerialRetries: *retries,
		}, network.Flit{})
	}
}

// TestFailoverTripProbeRecover walks the full lifecycle: healthy → trip on
// a high-retry window → parallel-only with periodic serial probes →
// recovery after consecutive healthy windows.
func TestFailoverTripProbeRecover(t *testing.T) {
	p := testFailover()
	var sent, retries uint64

	// Healthy traffic: no retries. Several windows close without tripping.
	feed(p, 0, 40, 2, 0, &sent, &retries)
	if p.Tripped() {
		t.Fatal("tripped on retry-free traffic")
	}
	if phy, ok := p.Dispatch(State{Now: 40, SerialBudget: 1, SerialSent: sent, SerialRetries: retries}, network.Flit{}); phy != PHYSerial || !ok {
		t.Fatal("healthy policy did not defer to serial-first base")
	}

	// Degraded: every transmission is a retransmission. The next window
	// close must trip.
	feed(p, 41, 60, 2, 2, &sent, &retries)
	if !p.Tripped() || p.Trips() != 1 {
		t.Fatalf("did not trip on 100%% retry rate: tripped=%v trips=%d", p.Tripped(), p.Trips())
	}

	// Tripped: traffic goes parallel, except one serial probe per interval.
	var serialProbes, parallel int
	for now := int64(60); now < 120; now++ {
		phy, ok := p.Dispatch(State{Now: now, ParallelBudget: 1, SerialBudget: 1, SerialSent: sent, SerialRetries: retries}, network.Flit{})
		if !ok {
			t.Fatalf("tripped policy stalled at cycle %d with both budgets free", now)
		}
		if phy == PHYSerial {
			serialProbes++
		} else {
			parallel++
		}
	}
	if serialProbes == 0 || serialProbes > 4 {
		t.Fatalf("%d serial probes over 60 cycles with interval 20, want 1–4", serialProbes)
	}
	if parallel == 0 {
		t.Fatal("tripped policy sent nothing to the parallel PHY")
	}

	// Wire heals: probe transmissions succeed without retries. After
	// RecoverWindows consecutive healthy windows the policy fails back.
	feed(p, 120, 200, 1, 0, &sent, &retries)
	if p.Tripped() || p.Recoveries() != 1 {
		t.Fatalf("did not recover: tripped=%v recoveries=%d", p.Tripped(), p.Recoveries())
	}
}

// TestFailoverMinSampleGuard: a tiny sample with a bad ratio must not trip
// (one unlucky flit at idle is not a dead wire).
func TestFailoverMinSampleGuard(t *testing.T) {
	p := testFailover()
	var sent, retries uint64
	// One transmission + one retransmission per window: rate 1.0 but
	// Den = 2 < MinSample = 4 at every window close.
	for now := int64(0); now < 100; now += 5 {
		sent++
		retries++
		p.Dispatch(State{Now: now, SerialBudget: 1, SerialSent: sent, SerialRetries: retries}, network.Flit{})
	}
	if p.Tripped() {
		t.Fatal("tripped below the MinSample floor")
	}
}

// TestFailoverEvictSerial: eviction fires only while tripped, with flits
// pending, once the oldest has aged past EvictAge.
func TestFailoverEvictSerial(t *testing.T) {
	p := testFailover()
	st := State{SerialPending: 3, SerialOldestAge: 100}
	if p.EvictSerial(st) {
		t.Fatal("evicted while healthy")
	}
	var sent, retries uint64
	feed(p, 0, 20, 2, 2, &sent, &retries) // trip
	if !p.Tripped() {
		t.Fatal("setup: policy did not trip")
	}
	if !p.EvictSerial(st) {
		t.Fatal("no eviction while tripped with an over-age flit")
	}
	if p.EvictSerial(State{SerialPending: 3, SerialOldestAge: 10}) {
		t.Fatal("evicted a flit younger than EvictAge")
	}
	if p.EvictSerial(State{SerialPending: 0, SerialOldestAge: 100}) {
		t.Fatal("evicted with nothing pending")
	}
}

// TestFailoverClonePolicy: clones share parameters but never monitor state.
func TestFailoverClonePolicy(t *testing.T) {
	p := testFailover()
	var sent, retries uint64
	feed(p, 0, 20, 2, 2, &sent, &retries)
	if !p.Tripped() {
		t.Fatal("setup: policy did not trip")
	}
	c, ok := p.ClonePolicy().(*FailoverPolicy)
	if !ok {
		t.Fatal("ClonePolicy did not return a *FailoverPolicy")
	}
	if c.Tripped() || c.Trips() != 0 {
		t.Fatal("clone inherited tripped state")
	}
	if c.Window != p.Window || c.TripRate != p.TripRate || c.EvictAge != p.EvictAge {
		t.Fatal("clone lost monitoring parameters")
	}
	if c.Name() != "failover+serial-first" {
		t.Fatalf("clone name %q", c.Name())
	}
}

// TestPolicyByNameFailover: the registry builds a failover-wrapped
// balanced policy.
func TestPolicyByNameFailover(t *testing.T) {
	pol, err := PolicyByName("failover")
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "failover+balanced" {
		t.Fatalf("name %q", pol.Name())
	}
	if _, ok := pol.(PolicyCloner); !ok {
		t.Fatal("failover policy does not implement PolicyCloner")
	}
}

// TestAdapterFailoverRescuesDeadSerial is the adapter-level integration
// test: the serial wire dies permanently under a serial-preferring policy.
// The failover monitor must trip, evict the stuck flits off the serial
// replay buffer, re-issue them through the parallel PHY, and every flit
// must still come out of the ROB exactly once, in order.
func TestAdapterFailoverRescuesDeadSerial(t *testing.T) {
	p := testFailover()
	a, _ := adapterUnderTest(p)
	a.EnableRetry(PHYSerial, downHook{from: 0, to: 1 << 40}, 0, 0)

	pkt := mkPkt(1, 1<<20, network.ClassBestEffort)
	const inject = 600
	seq := int32(0)
	var got []int32
	for now := int64(0); now < 4000; now++ {
		a.Tick(now, func(f network.Flit) { got = append(got, f.Seq) })
		if now < inject && a.FreeSlots() > 0 {
			a.Accept(now, network.Flit{Pkt: pkt, Seq: seq, VC: 0})
			seq++
		}
	}
	if !p.Tripped() {
		t.Fatal("failover never tripped on a dead serial wire")
	}
	if a.Rescued() == 0 {
		t.Fatal("no flits were rescued off the dead serial PHY")
	}
	if len(got) != int(seq) {
		t.Fatalf("delivered %d of %d flits (ROB wedged on a dead-wire VSN gap?)", len(got), seq)
	}
	for i, s := range got {
		if s != int32(i) {
			t.Fatalf("delivery order broken at %d: seq %d", i, s)
		}
	}
	if st := a.SerialRetry().Stats; st.Evicted == 0 || st.Delivered != 0 {
		t.Fatalf("serial pipe stats inconsistent with a dead wire: %+v", st)
	}
	if a.Busy() {
		t.Fatal("adapter still busy after full delivery")
	}
}
