// Package core implements the paper's primary contribution: the
// heterogeneous die-to-die interface. It provides the hetero-PHY adapter
// microarchitecture of Sec. 4.2 (TX multi-width FIFO with
// fetch/decode/dispatch/issue, per-PHY pipelines, RX reorder buffer with
// parallel-PHY bypass) and the scheduling policies of Sec. 5.3 (rule-based
// performance-first / energy-efficient / balanced, and application-aware).
//
// Hetero-channel systems need no adapter — their two interfaces are
// independent router channels; their scheduling lives in the routing
// algorithm (internal/routing, Algorithm 1 + Eq. 5).
package core

import (
	"fmt"

	"heteroif/internal/network"
)

// PHY identifies one of the two physical layers bonded behind a hetero-PHY
// adapter.
type PHY uint8

const (
	// PHYParallel is the AIB-like parallel interface: low latency, low
	// power.
	PHYParallel PHY = iota
	// PHYSerial is the SerDes-like serial interface: high bandwidth, high
	// latency.
	PHYSerial
)

// String returns the PHY name.
func (p PHY) String() string {
	if p == PHYParallel {
		return "parallel"
	}
	return "serial"
}

// State is the adapter state visible to a dispatch policy when it decides
// where the flit at the head of the TX queue should go.
type State struct {
	Now int64
	// QueueLen and QueueCap describe the TX multi-width FIFO.
	QueueLen, QueueCap int
	// ParallelBudget and SerialBudget are the remaining per-cycle issue
	// slots of each PHY.
	ParallelBudget, SerialBudget int
	// Waited is how many cycles the flit has sat in the TX queue.
	Waited int64

	// Serial-PHY link-layer telemetry, populated only when the adapter's
	// serial PHY runs the retry protocol (all zero otherwise). Failure-
	// aware policies (FailoverPolicy) judge PHY health from it.
	//
	// SerialSent counts wire transmissions including retransmissions;
	// SerialRetries counts retransmissions alone. SerialPending is how
	// many flits are accepted but not yet delivered across the serial
	// wire; SerialOldestAge is how long the oldest of them has waited.
	SerialSent      uint64
	SerialRetries   uint64
	SerialPending   int
	SerialOldestAge int64
}

// Policy decides, flit by flit, which PHY a queued flit is issued to
// (Sec. 5.3). Returning ok=false leaves the flit queued this cycle.
type Policy interface {
	Name() string
	Dispatch(st State, f network.Flit) (phy PHY, ok bool)
}

// PerformanceFirst dispatches as long as any PHY has a free issue slot,
// preferring the low-latency parallel PHY (Sec. 5.3.1: γ=0, every interface
// works at full capacity).
type PerformanceFirst struct{}

// Name implements Policy.
func (PerformanceFirst) Name() string { return "performance-first" }

// Dispatch implements Policy.
func (PerformanceFirst) Dispatch(st State, _ network.Flit) (PHY, bool) {
	switch {
	case st.ParallelBudget > 0:
		return PHYParallel, true
	case st.SerialBudget > 0:
		return PHYSerial, true
	default:
		return PHYParallel, false
	}
}

// EnergyEfficient always dispatches to the low-power parallel PHY; the
// serial PHY of a hetero-PHY interface stays dark (Sec. 5.3.1 — serial is
// used only where a link has no parallel PHY at all, e.g. serial-only
// wraparounds).
type EnergyEfficient struct{}

// Name implements Policy.
func (EnergyEfficient) Name() string { return "energy-efficient" }

// Dispatch implements Policy.
func (EnergyEfficient) Dispatch(st State, _ network.Flit) (PHY, bool) {
	return PHYParallel, st.ParallelBudget > 0
}

// Balanced uses only the parallel PHY under light load and enables the
// serial PHY when the TX queue reaches a threshold (Sec. 5.3.1; the
// synthesized TX adapter of Sec. 7.3 uses threshold = half the FIFO).
type Balanced struct {
	// Threshold is the queue occupancy at which the serial PHY turns on.
	// Zero means half the queue capacity.
	Threshold int
}

// Name implements Policy.
func (Balanced) Name() string { return "balanced" }

// Dispatch implements Policy.
func (b Balanced) Dispatch(st State, f network.Flit) (PHY, bool) {
	thr := b.Threshold
	if thr <= 0 {
		thr = st.QueueCap / 2
	}
	if st.QueueLen >= thr {
		return PerformanceFirst{}.Dispatch(st, f)
	}
	return PHYParallel, st.ParallelBudget > 0
}

// ApplicationAware routes flits by packet information (Sec. 5.3.2):
// latency-sensitive packets take the parallel PHY (and may bypass the
// reorder buffer), throughput-class packets prefer the serial PHY, and
// flits that have waited longer than Timeout are dispatched to any free PHY
// ("time-out packets can be dispatched early"). Everything else falls back
// to the base rule-based policy.
type ApplicationAware struct {
	// Base is the fallback rule-based policy; nil means Balanced{}.
	Base Policy
	// Timeout in cycles after which a queued flit is dispatched to any
	// free PHY. Zero disables the timeout rule.
	Timeout int64
}

// Name implements Policy.
func (a ApplicationAware) Name() string { return "application-aware" }

// Dispatch implements Policy.
func (a ApplicationAware) Dispatch(st State, f network.Flit) (PHY, bool) {
	if a.Timeout > 0 && st.Waited >= a.Timeout {
		return PerformanceFirst{}.Dispatch(st, f)
	}
	switch f.Pkt.Class {
	case network.ClassLatencySensitive:
		return PHYParallel, st.ParallelBudget > 0
	case network.ClassThroughput:
		// Bulk data moves to the high-bandwidth serial PHY as soon as the
		// interface sees any queueing, keeping the parallel PHY clear for
		// latency-critical traffic; at true zero load even bulk takes the
		// faster parallel path.
		if st.QueueLen > 1 && st.SerialBudget > 0 {
			return PHYSerial, true
		}
		if st.ParallelBudget > 0 {
			return PHYParallel, true
		}
		return PHYSerial, st.SerialBudget > 0
	}
	base := a.Base
	if base == nil {
		base = Balanced{}
	}
	return base.Dispatch(st, f)
}

// PolicyByName returns the named policy with default parameters. Known
// names: performance-first, energy-efficient, balanced, application-aware,
// failover (a FailoverPolicy over Balanced).
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "performance-first":
		return PerformanceFirst{}, nil
	case "energy-efficient":
		return EnergyEfficient{}, nil
	case "balanced":
		return Balanced{}, nil
	case "application-aware":
		return ApplicationAware{}, nil
	case "failover":
		return NewFailoverPolicy(nil), nil
	default:
		return nil, fmt.Errorf("core: unknown scheduling policy %q", name)
	}
}
