package core

import (
	"testing"

	"heteroif/internal/network"
)

func TestPerformanceFirstPrefersParallel(t *testing.T) {
	f := network.Flit{Pkt: mkPkt(1, 4, network.ClassBestEffort)}
	if phy, ok := (PerformanceFirst{}).Dispatch(State{ParallelBudget: 1, SerialBudget: 4}, f); !ok || phy != PHYParallel {
		t.Error("should prefer the low-latency parallel PHY when free")
	}
	if phy, ok := (PerformanceFirst{}).Dispatch(State{ParallelBudget: 0, SerialBudget: 4}, f); !ok || phy != PHYSerial {
		t.Error("should overflow to serial when parallel is busy")
	}
	if _, ok := (PerformanceFirst{}).Dispatch(State{}, f); ok {
		t.Error("nothing free: must stall")
	}
}

func TestEnergyEfficientStallsWithoutParallel(t *testing.T) {
	f := network.Flit{Pkt: mkPkt(1, 4, network.ClassBestEffort)}
	if _, ok := (EnergyEfficient{}).Dispatch(State{ParallelBudget: 0, SerialBudget: 4}, f); ok {
		t.Error("energy-efficient must never take the serial PHY")
	}
	if phy, ok := (EnergyEfficient{}).Dispatch(State{ParallelBudget: 2, SerialBudget: 4}, f); !ok || phy != PHYParallel {
		t.Error("parallel free: must dispatch")
	}
}

func TestBalancedThresholdSemantics(t *testing.T) {
	f := network.Flit{Pkt: mkPkt(1, 4, network.ClassBestEffort)}
	light := State{QueueLen: 3, QueueCap: 16, ParallelBudget: 0, SerialBudget: 4}
	// Below threshold (default cap/2 = 8): parallel only → stall here.
	if _, ok := (Balanced{}).Dispatch(light, f); ok {
		t.Error("light load must not use serial")
	}
	heavy := light
	heavy.QueueLen = 8
	if phy, ok := (Balanced{}).Dispatch(heavy, f); !ok || phy != PHYSerial {
		t.Error("at threshold the serial PHY must engage")
	}
	// Explicit threshold overrides the default.
	custom := Balanced{Threshold: 2}
	if phy, ok := custom.Dispatch(light, f); !ok || phy != PHYSerial {
		t.Error("custom threshold 2 should engage serial at queue 3")
	}
}

func TestApplicationAwareFallsBackToBase(t *testing.T) {
	f := network.Flit{Pkt: mkPkt(1, 4, network.ClassBestEffort)}
	pol := ApplicationAware{Base: PerformanceFirst{}}
	st := State{QueueLen: 1, QueueCap: 16, ParallelBudget: 0, SerialBudget: 4}
	// Base performance-first overflows best-effort traffic to serial even
	// at low queue occupancy.
	if phy, ok := pol.Dispatch(st, f); !ok || phy != PHYSerial {
		t.Error("base policy not consulted for best-effort traffic")
	}
	// Nil base defaults to Balanced: same state now stalls.
	if _, ok := (ApplicationAware{}).Dispatch(st, f); ok {
		t.Error("default base (balanced) should stall at light load without parallel budget")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{PerformanceFirst{}, EnergyEfficient{}, Balanced{}, ApplicationAware{}} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
	}
	if (PHYParallel).String() != "parallel" || (PHYSerial).String() != "serial" {
		t.Error("PHY names wrong")
	}
}
