package core

import (
	"fmt"

	"heteroif/internal/network"
)

// ROB is the receive-side reorder buffer of a hetero-PHY adapter
// (Sec. 4.2). Because the two PHYs have different propagation delays,
// flits can arrive out of order; the ROB releases them downstream subject
// to two rules:
//
//  1. per-VC FIFO order: flits of one virtual channel are released in the
//     order the TX side issued them (the VSN stamp). Wormhole/VCT
//     switching requires this — packets sharing a VC must stay contiguous
//     — and it subsumes per-packet flit ordering. This is the "multi-port
//     input buffer" role of Fig. 7(a), merged with the input buffer as
//     Sec. 4.3 suggests.
//  2. link-level global order for in-order traffic: a ClassInOrder flit is
//     additionally released only when every earlier in-order flit (by the
//     global SN stamped at dispatch) has been released, the coherence-
//     friendly ordering of Sec. 4.2. Other classes skip this rule — the
//     TX-side bypass is allowed only at the parallel interface.
type ROB struct {
	pending []network.Flit
	nextSN  uint32   // next global in-order SN to release
	nextVSN []uint32 // next per-VC sequence to release

	occupancy int
	maxOcc    int
}

// NewROB returns an empty reorder buffer for a link with vcs virtual
// channels.
func NewROB(vcs int) *ROB {
	return &ROB{nextVSN: make([]uint32, vcs)}
}

// Insert buffers an arriving flit.
func (r *ROB) Insert(f network.Flit) {
	r.pending = append(r.pending, f)
	r.occupancy++
	if r.occupancy > r.maxOcc {
		r.maxOcc = r.occupancy
	}
}

// Release delivers every currently releasable flit, in order, via deliver.
func (r *ROB) Release(deliver func(network.Flit)) {
	for {
		progress := false
		out := r.pending[:0]
		for _, f := range r.pending {
			if r.releasable(f) {
				r.commit(f)
				deliver(f)
				progress = true
				continue
			}
			out = append(out, f)
		}
		// Zero the tail so released flits don't pin packets.
		for i := len(out); i < len(r.pending); i++ {
			r.pending[i] = network.Flit{}
		}
		r.pending = out
		if !progress {
			return
		}
	}
}

func (r *ROB) releasable(f network.Flit) bool {
	if f.VSN != r.nextVSN[f.VC] {
		return false
	}
	if f.Pkt.Class == network.ClassInOrder && f.SN != r.nextSN {
		return false
	}
	return true
}

func (r *ROB) commit(f network.Flit) {
	r.occupancy--
	if f.VSN != r.nextVSN[f.VC] {
		panic(fmt.Sprintf("core: ROB released VC %d flit VSN %d, expected %d", f.VC, f.VSN, r.nextVSN[f.VC]))
	}
	r.nextVSN[f.VC]++
	if f.Pkt.Class == network.ClassInOrder {
		r.nextSN++
	}
}

// Occupancy returns the number of buffered flits.
func (r *ROB) Occupancy() int { return r.occupancy }

// MaxOccupancy returns the high-water mark, for validating the Eq. 1
// capacity estimate S_rob = B_p × (D_s − D_p).
func (r *ROB) MaxOccupancy() int { return r.maxOcc }
