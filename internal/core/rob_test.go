package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heteroif/internal/network"
)

func mkPkt(id uint64, length int, class network.Class) *network.Packet {
	return &network.Packet{ID: id, Length: length, Class: class, Target: -1}
}

// TestROBPerVCOrder: flits of one VC inserted out of order are released in
// VSN order.
func TestROBPerVCOrder(t *testing.T) {
	rob := NewROB(2)
	pkt := mkPkt(1, 4, network.ClassBestEffort)
	// Insert VSN 2, 0, 3, 1 on VC 0.
	for _, vsn := range []uint32{2, 0, 3, 1} {
		rob.Insert(network.Flit{Pkt: pkt, Seq: int32(vsn), VC: 0, VSN: vsn})
	}
	var got []uint32
	rob.Release(func(f network.Flit) { got = append(got, f.VSN) })
	if len(got) != 4 {
		t.Fatalf("released %d of 4 flits", len(got))
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("release order broken at %d: VSN %d", i, v)
		}
	}
	if rob.Occupancy() != 0 {
		t.Fatalf("occupancy %d after full release", rob.Occupancy())
	}
}

// TestROBHoldsGaps: a missing VSN blocks later flits of that VC but not
// other VCs.
func TestROBHoldsGaps(t *testing.T) {
	rob := NewROB(2)
	pkt := mkPkt(1, 8, network.ClassBestEffort)
	rob.Insert(network.Flit{Pkt: pkt, Seq: 1, VC: 0, VSN: 1}) // gap: VSN 0 missing
	rob.Insert(network.Flit{Pkt: pkt, Seq: 5, VC: 1, VSN: 0})
	var got []network.Flit
	rob.Release(func(f network.Flit) { got = append(got, f) })
	if len(got) != 1 || got[0].VC != 1 {
		t.Fatalf("expected only the VC-1 flit to release, got %v", got)
	}
	// Fill the gap; both release in order.
	rob.Insert(network.Flit{Pkt: pkt, Seq: 0, VC: 0, VSN: 0})
	got = got[:0]
	rob.Release(func(f network.Flit) { got = append(got, f) })
	if len(got) != 2 || got[0].VSN != 0 || got[1].VSN != 1 {
		t.Fatalf("gap fill release wrong: %v", got)
	}
}

// TestROBInOrderClassWaitsForGlobalSN: an in-order flit with a later global
// SN must wait for earlier in-order flits even on another VC.
func TestROBInOrderClassWaitsForGlobalSN(t *testing.T) {
	rob := NewROB(2)
	p0 := mkPkt(1, 2, network.ClassInOrder)
	p1 := mkPkt(2, 2, network.ClassInOrder)
	// SN 1 arrives first (VC 1); SN 0 (VC 0) is still in flight.
	rob.Insert(network.Flit{Pkt: p1, Seq: 0, VC: 1, VSN: 0, SN: 1})
	var got []network.Flit
	rob.Release(func(f network.Flit) { got = append(got, f) })
	if len(got) != 0 {
		t.Fatalf("in-order flit released before its predecessor: %v", got)
	}
	rob.Insert(network.Flit{Pkt: p0, Seq: 0, VC: 0, VSN: 0, SN: 0})
	rob.Release(func(f network.Flit) { got = append(got, f) })
	if len(got) != 2 || got[0].SN != 0 || got[1].SN != 1 {
		t.Fatalf("in-order release sequence wrong: %v", got)
	}
}

// TestROBBestEffortSkipsGlobalSN: best-effort flits ignore the global SN
// stream.
func TestROBBestEffortSkipsGlobalSN(t *testing.T) {
	rob := NewROB(2)
	pkt := mkPkt(1, 2, network.ClassBestEffort)
	rob.Insert(network.Flit{Pkt: pkt, Seq: 0, VC: 0, VSN: 0, SN: 99})
	n := 0
	rob.Release(func(network.Flit) { n++ })
	if n != 1 {
		t.Fatal("best-effort flit should release regardless of SN")
	}
}

// TestROBMaxOccupancy tracks the high-water mark.
func TestROBMaxOccupancy(t *testing.T) {
	rob := NewROB(1)
	pkt := mkPkt(1, 16, network.ClassBestEffort)
	for i := 3; i >= 1; i-- { // VSN 3,2,1 — all blocked on 0
		rob.Insert(network.Flit{Pkt: pkt, Seq: int32(i), VC: 0, VSN: uint32(i)})
	}
	if rob.MaxOccupancy() != 3 {
		t.Fatalf("max occupancy %d, want 3", rob.MaxOccupancy())
	}
	rob.Insert(network.Flit{Pkt: pkt, Seq: 0, VC: 0, VSN: 0})
	rob.Release(func(network.Flit) {})
	if rob.Occupancy() != 0 || rob.MaxOccupancy() != 4 {
		t.Fatalf("occupancy %d / max %d after drain, want 0 / 4", rob.Occupancy(), rob.MaxOccupancy())
	}
}

// TestROBRetryInducedReordering covers the arrival patterns the link-layer
// retry protocol creates: a go-back-N rewind delays a contiguous run of
// early-VSN flits behind later ones, and a failover rescue replays stuck
// serial flits (original VSNs) after parallel flits already arrived. The
// ROB must hold the late arrivals and release everything in VSN order.
func TestROBRetryInducedReordering(t *testing.T) {
	pkt := mkPkt(1, 16, network.ClassBestEffort)
	pin := mkPkt(2, 16, network.ClassInOrder)
	for _, tc := range []struct {
		name string
		pkt  *network.Packet
		// arrival order of VSNs (single VC); SN == VSN for in-order class
		arrive []uint32
	}{
		{"retry-delays-window-head", pkt, []uint32{2, 3, 4, 5, 0, 1, 6, 7}},
		{"rescue-replays-stuck-run", pkt, []uint32{4, 5, 6, 7, 0, 1, 2, 3}},
		{"interleaved-rewinds", pkt, []uint32{1, 0, 3, 2, 5, 4, 7, 6}},
		{"in-order-class-rescue", pin, []uint32{4, 5, 6, 7, 0, 1, 2, 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rob := NewROB(2)
			var got []uint32
			for _, vsn := range tc.arrive {
				rob.Insert(network.Flit{Pkt: tc.pkt, Seq: int32(vsn), VC: 0, VSN: vsn, SN: vsn})
				rob.Release(func(f network.Flit) { got = append(got, f.VSN) })
			}
			if len(got) != len(tc.arrive) {
				t.Fatalf("released %d of %d flits", len(got), len(tc.arrive))
			}
			for i, v := range got {
				if v != uint32(i) {
					t.Fatalf("release order broken at %d: VSN %d", i, v)
				}
			}
			if rob.Occupancy() != 0 {
				t.Fatalf("occupancy %d after drain", rob.Occupancy())
			}
		})
	}
}

// TestROBSequenceWraparound: the VSN and SN counters are uint32 and wrap;
// release order must survive a stream straddling the wrap on both the
// per-VC and the global in-order sequence.
func TestROBSequenceWraparound(t *testing.T) {
	const n = 8
	start := ^uint32(0) - 2 // three before the wrap
	rob := NewROB(2)
	rob.nextVSN[0] = start
	rob.nextSN = start
	pkt := mkPkt(1, n, network.ClassInOrder)
	// Shuffled arrival order spanning the wrap: VSNs start..start+7.
	for _, off := range []uint32{3, 1, 0, 5, 2, 4, 7, 6} {
		vsn := start + off
		rob.Insert(network.Flit{Pkt: pkt, Seq: int32(off), VC: 0, VSN: vsn, SN: vsn})
	}
	var got []uint32
	rob.Release(func(f network.Flit) { got = append(got, f.VSN) })
	if len(got) != n {
		t.Fatalf("released %d of %d flits across the VSN wrap", len(got), n)
	}
	for i, v := range got {
		if v != start+uint32(i) {
			t.Fatalf("wraparound broke release order at %d: VSN %d, want %d", i, v, start+uint32(i))
		}
	}
	if rob.nextVSN[0] != start+n || rob.nextSN != start+n {
		t.Fatalf("counters did not wrap cleanly: nextVSN %d, nextSN %d", rob.nextVSN[0], rob.nextSN)
	}
}

// TestROBPropertyWrapStart: random permutations released from a random
// start offset near the wrap — the wraparound analogue of
// TestROBPropertyRandomArrivalOrder.
func TestROBPropertyWrapStart(t *testing.T) {
	f := func(seed int64, nFlits, offset uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nFlits%24) + 2
		start := ^uint32(0) - uint32(offset%16)
		pkt := mkPkt(1, n, network.ClassBestEffort)
		perm := rng.Perm(n)
		rob := NewROB(1)
		rob.nextVSN[0] = start
		var released []uint32
		for _, i := range perm {
			rob.Insert(network.Flit{Pkt: pkt, Seq: int32(i), VC: 0, VSN: start + uint32(i)})
			rob.Release(func(f network.Flit) { released = append(released, f.VSN) })
		}
		if len(released) != n || rob.Occupancy() != 0 {
			return false
		}
		for i, v := range released {
			if v != start+uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestROBPropertyRandomArrivalOrder: for any permutation of a two-VC flit
// stream, release order per VC equals VSN order and every flit is released
// exactly once.
func TestROBPropertyRandomArrivalOrder(t *testing.T) {
	f := func(seed int64, nA, nB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := int(nA%24)+1, int(nB%24)+1
		pktA := mkPkt(1, a, network.ClassBestEffort)
		pktB := mkPkt(2, b, network.ClassBestEffort)
		var flits []network.Flit
		for i := 0; i < a; i++ {
			flits = append(flits, network.Flit{Pkt: pktA, Seq: int32(i), VC: 0, VSN: uint32(i)})
		}
		for i := 0; i < b; i++ {
			flits = append(flits, network.Flit{Pkt: pktB, Seq: int32(i), VC: 1, VSN: uint32(i)})
		}
		rng.Shuffle(len(flits), func(i, j int) { flits[i], flits[j] = flits[j], flits[i] })
		rob := NewROB(2)
		var released []network.Flit
		for _, fl := range flits {
			rob.Insert(fl)
			rob.Release(func(x network.Flit) { released = append(released, x) })
		}
		if len(released) != a+b {
			return false
		}
		nextVSN := [2]uint32{}
		for _, fl := range released {
			if fl.VSN != nextVSN[fl.VC] {
				return false
			}
			nextVSN[fl.VC]++
		}
		return rob.Occupancy() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
