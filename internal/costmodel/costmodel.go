// Package costmodel implements a quantitative chiplet cost model in the
// style of Chiplet Actuary (Feng & Ma, DAC'22 — the paper's reference [29]
// and the basis of its "flexibility in economy" argument, Sec. 10): die
// manufacturing cost from area and defect density, NRE amortization over
// volume, packaging cost by technology, and known-good-die assembly yield.
//
// The heteroif experiments use it to quantify Motivation 1: reusing one
// hetero-IF chiplet across several systems pays a small silicon-area tax
// (the second interface) but amortizes one NRE instead of paying one per
// system, which dominates at realistic volumes.
package costmodel

import (
	"fmt"
	"math"
)

// Process describes a manufacturing node.
type Process struct {
	Name string
	// WaferCostUSD is the processed-wafer price.
	WaferCostUSD float64
	// WaferDiameterMM (300 for modern fabs).
	WaferDiameterMM float64
	// DefectDensityPerCM2 is D0 of the negative-binomial yield model.
	DefectDensityPerCM2 float64
	// ClusteringAlpha is the defect-clustering parameter α (≈3 for logic).
	ClusteringAlpha float64
	// NREUSD is the one-time design cost of a chiplet on this node
	// (architecture, verification, physical design, masks).
	NREUSD float64
}

// N7 returns a 7nm-class process with public ballpark figures.
func N7() Process {
	return Process{
		Name:                "N7",
		WaferCostUSD:        9300,
		WaferDiameterMM:     300,
		DefectDensityPerCM2: 0.10,
		ClusteringAlpha:     3,
		NREUSD:              30e6,
	}
}

// N12 returns a 12nm-class process (the paper's synthesis node).
func N12() Process {
	return Process{
		Name:                "N12",
		WaferCostUSD:        4000,
		WaferDiameterMM:     300,
		DefectDensityPerCM2: 0.08,
		ClusteringAlpha:     3,
		NREUSD:              15e6,
	}
}

// Yield returns the negative-binomial die yield for an area in mm².
func (p Process) Yield(areaMM2 float64) float64 {
	aCM2 := areaMM2 / 100
	return math.Pow(1+aCM2*p.DefectDensityPerCM2/p.ClusteringAlpha, -p.ClusteringAlpha)
}

// DiesPerWafer uses the standard geometric estimate with edge loss.
func (p Process) DiesPerWafer(areaMM2 float64) int {
	if areaMM2 <= 0 {
		panic("costmodel: die area must be positive")
	}
	d := p.WaferDiameterMM
	n := math.Pi*d*d/(4*areaMM2) - math.Pi*d/math.Sqrt(2*areaMM2)
	if n < 0 {
		return 0
	}
	return int(n)
}

// DieCostUSD is the cost of one known-good die (wafer cost over good dies).
func (p Process) DieCostUSD(areaMM2 float64) float64 {
	dies := p.DiesPerWafer(areaMM2)
	if dies == 0 {
		return math.Inf(1)
	}
	return p.WaferCostUSD / (float64(dies) * p.Yield(areaMM2))
}

// Packaging describes an integration technology.
type Packaging struct {
	Name string
	// CostPerMM2USD prices the substrate/interposer by package area.
	CostPerMM2USD float64
	// CostPerDieUSD is the per-die assembly (bonding) cost.
	CostPerDieUSD float64
	// AssemblyYieldPerDie is the probability one die bonds correctly;
	// package yield is this to the power of the die count.
	AssemblyYieldPerDie float64
}

// OrganicSubstrate is the low-cost option (serial interfaces only — the
// long-reach requirement of Sec. 2.2).
func OrganicSubstrate() Packaging {
	return Packaging{Name: "organic-substrate", CostPerMM2USD: 0.005, CostPerDieUSD: 2, AssemblyYieldPerDie: 0.999}
}

// SiliconInterposer is the high-density option parallel interfaces need.
func SiliconInterposer() Packaging {
	return Packaging{Name: "silicon-interposer", CostPerMM2USD: 0.06, CostPerDieUSD: 4, AssemblyYieldPerDie: 0.998}
}

// Chiplet describes one die design.
type Chiplet struct {
	Name    string
	AreaMM2 float64
	Process Process
}

// SystemPlan is one product built from chiplets.
type SystemPlan struct {
	Name      string
	Chiplet   Chiplet
	DieCount  int
	Packaging Packaging
	// PackageAreaMM2 (0 = estimated as 1.4× total die area).
	PackageAreaMM2 float64
	// Volume is the number of units the NRE amortizes over.
	Volume int
}

// Cost breaks down the per-unit cost of a system plan. NRE is reported
// separately so reuse scenarios can share it across plans.
type Cost struct {
	SiliconUSD   float64 // known-good dice
	PackagingUSD float64 // substrate/interposer + assembly, yield-adjusted
	NREPerUnit   float64
	TotalUSD     float64
}

// UnitCost prices one unit of the plan, charging the full chiplet NRE to
// this plan's volume (no reuse).
func (s SystemPlan) UnitCost() Cost {
	return s.unitCost(s.Chiplet.Process.NREUSD)
}

// UnitCostSharedNRE prices one unit when the chiplet design is reused
// across several products: nreShare is the fraction of the design NRE this
// product carries.
func (s SystemPlan) UnitCostSharedNRE(nreShare float64) Cost {
	return s.unitCost(s.Chiplet.Process.NREUSD * nreShare)
}

func (s SystemPlan) unitCost(nre float64) Cost {
	if s.DieCount <= 0 || s.Volume <= 0 {
		panic(fmt.Sprintf("costmodel: plan %q needs positive die count and volume", s.Name))
	}
	var c Cost
	c.SiliconUSD = float64(s.DieCount) * s.Chiplet.Process.DieCostUSD(s.Chiplet.AreaMM2)
	area := s.PackageAreaMM2
	if area == 0 {
		area = 1.4 * float64(s.DieCount) * s.Chiplet.AreaMM2
	}
	assemblyYield := math.Pow(s.Packaging.AssemblyYieldPerDie, float64(s.DieCount))
	c.PackagingUSD = (area*s.Packaging.CostPerMM2USD + float64(s.DieCount)*s.Packaging.CostPerDieUSD) / assemblyYield
	// Failed assemblies scrap their dice too.
	c.SiliconUSD /= assemblyYield
	c.NREPerUnit = nre / float64(s.Volume)
	c.TotalUSD = c.SiliconUSD + c.PackagingUSD + c.NREPerUnit
	return c
}

// ReuseScenario compares building a product family with per-product
// uniform-interface chiplets (one NRE each) against one reusable hetero-IF
// chiplet (one NRE total, slightly larger die for the second interface).
type ReuseScenario struct {
	// Plans are the products; each plan's Chiplet is the uniform-IF
	// variant sized for that product alone.
	Plans []SystemPlan
	// HeteroAreaOverhead is the fractional die-area cost of carrying both
	// interfaces (Sec. 4.3; PHY area is pin-bound, a few percent).
	HeteroAreaOverhead float64
}

// Compare returns total family cost (USD) for the uniform and hetero
// strategies, and the hetero saving fraction.
func (r ReuseScenario) Compare() (uniformUSD, heteroUSD, saving float64) {
	if len(r.Plans) == 0 {
		panic("costmodel: scenario needs at least one plan")
	}
	for _, p := range r.Plans {
		c := p.UnitCost()
		uniformUSD += c.TotalUSD * float64(p.Volume)
	}
	// Hetero: one shared design; each product carries NRE ∝ its volume.
	totalVolume := 0
	for _, p := range r.Plans {
		totalVolume += p.Volume
	}
	for _, p := range r.Plans {
		hp := p
		hp.Chiplet.AreaMM2 *= 1 + r.HeteroAreaOverhead
		share := float64(p.Volume) / float64(totalVolume)
		c := hp.UnitCostSharedNRE(share)
		heteroUSD += c.TotalUSD * float64(p.Volume)
	}
	saving = 1 - heteroUSD/uniformUSD
	return uniformUSD, heteroUSD, saving
}
