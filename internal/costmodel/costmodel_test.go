package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYieldMonotoneInArea(t *testing.T) {
	p := N7()
	f := func(a, b uint16) bool {
		x, y := float64(a%800)+1, float64(b%800)+1
		if x > y {
			x, y = y, x
		}
		return p.Yield(x) >= p.Yield(y) && p.Yield(x) <= 1 && p.Yield(y) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestYieldKnownPoint(t *testing.T) {
	// 100 mm² at D0=0.1/cm², α=3: Y = (1 + 0.1/3)^-3 ≈ 0.906.
	p := N7()
	if y := p.Yield(100); math.Abs(y-0.9063) > 0.001 {
		t.Fatalf("yield(100mm²) = %.4f, want ≈0.906", y)
	}
}

func TestDiesPerWafer(t *testing.T) {
	p := N7()
	// 100 mm² dies on 300 mm wafer: π·150² /100 − π·300/√200 ≈ 707−67 ≈ 640.
	if n := p.DiesPerWafer(100); n < 600 || n > 660 {
		t.Fatalf("dies per wafer = %d, want ≈640", n)
	}
	// Bigger dies, fewer per wafer.
	if p.DiesPerWafer(400) >= p.DiesPerWafer(100) {
		t.Fatal("dies per wafer must shrink with area")
	}
}

func TestDieCostSuperlinearInArea(t *testing.T) {
	// Doubling the area more than doubles the cost (yield loss): the
	// classic economic argument FOR chiplets.
	p := N7()
	small, big := p.DieCostUSD(200), p.DieCostUSD(400)
	if big <= 2*small {
		t.Fatalf("die cost must grow superlinearly: 200mm²=$%.0f, 400mm²=$%.0f", small, big)
	}
}

func TestUnitCostBreakdown(t *testing.T) {
	plan := SystemPlan{
		Name:     "board",
		Chiplet:  Chiplet{Name: "tile", AreaMM2: 100, Process: N7()},
		DieCount: 4, Packaging: SiliconInterposer(),
		Volume: 100000,
	}
	c := plan.UnitCost()
	if c.SiliconUSD <= 0 || c.PackagingUSD <= 0 || c.NREPerUnit <= 0 {
		t.Fatalf("degenerate breakdown: %+v", c)
	}
	if got := c.SiliconUSD + c.PackagingUSD + c.NREPerUnit; math.Abs(got-c.TotalUSD) > 1e-9 {
		t.Fatalf("total %.2f != sum %.2f", c.TotalUSD, got)
	}
	// NRE at 100k units of a $30M design = $300/unit.
	if math.Abs(c.NREPerUnit-300) > 1e-9 {
		t.Fatalf("NRE/unit = %.2f, want 300", c.NREPerUnit)
	}
	// Shared NRE must be cheaper.
	shared := plan.UnitCostSharedNRE(0.25)
	if shared.TotalUSD >= c.TotalUSD {
		t.Fatal("shared NRE did not reduce unit cost")
	}
}

func TestInterposerCostsMoreThanSubstrate(t *testing.T) {
	base := SystemPlan{
		Chiplet:  Chiplet{AreaMM2: 100, Process: N12()},
		DieCount: 4, Volume: 50000,
	}
	sub, itp := base, base
	sub.Packaging = OrganicSubstrate()
	itp.Packaging = SiliconInterposer()
	if itp.UnitCost().PackagingUSD <= sub.UnitCost().PackagingUSD {
		t.Fatal("interposer should cost more than organic substrate")
	}
}

func TestReuseScenarioSavings(t *testing.T) {
	// Three products (Fig. 2): mobile (2 dies), board (16), rack (64) at
	// different volumes. One hetero chiplet (+5% area) vs three uniform
	// designs.
	chip := Chiplet{Name: "tile", AreaMM2: 80, Process: N7()}
	scenario := ReuseScenario{
		Plans: []SystemPlan{
			{Name: "mobile", Chiplet: chip, DieCount: 2, Packaging: SiliconInterposer(), Volume: 1000000},
			{Name: "board", Chiplet: chip, DieCount: 16, Packaging: SiliconInterposer(), Volume: 100000},
			{Name: "rack", Chiplet: chip, DieCount: 64, Packaging: OrganicSubstrate(), Volume: 10000},
		},
		HeteroAreaOverhead: 0.05,
	}
	uniform, hetero, saving := scenario.Compare()
	if !(hetero < uniform) {
		t.Fatalf("reuse must save: uniform $%.0f vs hetero $%.0f", uniform, hetero)
	}
	if saving <= 0 || saving >= 1 {
		t.Fatalf("saving fraction %.3f out of range", saving)
	}
	// The saving comes from NRE: with enormous volumes the area tax wins
	// instead, so at 100× volume the saving must shrink.
	big := scenario
	big.Plans = append([]SystemPlan(nil), scenario.Plans...)
	for i := range big.Plans {
		big.Plans[i].Volume *= 100
	}
	_, _, bigSaving := big.Compare()
	if bigSaving >= saving {
		t.Fatalf("saving should shrink with volume (NRE amortizes anyway): %.3f vs %.3f", bigSaving, saving)
	}
}

func TestPanicsOnInvalidPlans(t *testing.T) {
	for _, f := range []func(){
		func() { N7().DiesPerWafer(0) },
		func() { (SystemPlan{DieCount: 0, Volume: 1}).UnitCost() },
		func() { (ReuseScenario{}).Compare() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
