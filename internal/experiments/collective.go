package experiments

import (
	"fmt"
	"io"
	"strconv"

	"heteroif/internal/collective"
	"heteroif/internal/core"
	"heteroif/internal/fault"
	"heteroif/internal/network"
	"heteroif/internal/topology"
)

// collectiveSpec names one collective shape at a given message size.
type collectiveSpec struct {
	name string
	mk   func(parts []network.NodeID, size int, compute int64) *collective.Program
}

// collectiveShapes returns the swept collective programs. size is the
// per-participant payload in flits; compute the per-chunk reduction delay.
func collectiveShapes() []collectiveSpec {
	return []collectiveSpec{
		{"allreduce", func(ps []network.NodeID, size int, compute int64) *collective.Program {
			return collective.RingAllReduce(ps, size, compute)
		}},
		{"reduce-scatter", func(ps []network.NodeID, size int, compute int64) *collective.Program {
			return collective.ReduceScatter(ps, size, compute)
		}},
		{"all-gather", func(ps []network.NodeID, size int, _ int64) *collective.Program {
			return collective.AllGather(ps, size)
		}},
		{"all-to-all", func(ps []network.NodeID, size int, _ int64) *collective.Program {
			per := size / len(ps)
			if per < 1 {
				per = 1
			}
			return collective.AllToAll(ps, per, 4)
		}},
		{"dnn", func(ps []network.NodeID, size int, compute int64) *collective.Program {
			// A 3-layer data-parallel step: gradient volume and compute
			// both scale with the layer width.
			layers := []collective.Layer{
				{Name: "embed", Compute: 8 * int64(size), GradFlits: size},
				{Name: "mlp", Compute: 16 * int64(size), GradFlits: 2 * size},
				{Name: "head", Compute: 4 * int64(size), GradFlits: size / 2},
			}
			return collective.DNNTraining(ps, layers, compute)
		}},
	}
}

// runCollectiveProgram builds a program over the instance's chiplet
// leaders, executes it to completion and returns the engine report plus
// the measured Result row (completion-centric: Throughput is the
// algorithmic bandwidth in flits/cycle/participant, Rate is 0 since the
// workload is closed-loop).
func runCollectiveProgram(in *Instance, system string, spec collectiveSpec, size int, compute, budget int64) (Result, collective.Report, error) {
	leaders := in.Topo.ChipletLeaders()
	prog := spec.mk(leaders, size, compute)
	eng, err := collective.NewEngine(in.Net, prog)
	if err != nil {
		return Result{}, collective.Report{}, err
	}
	rep, err := eng.Run(budget)
	if err != nil {
		return Result{}, collective.Report{}, err
	}
	workload := fmt.Sprintf("%s-%d", spec.name, size)
	r := in.Measure(system, workload, 0)
	r.Saturated = false
	if rep.Elapsed > 0 {
		r.Throughput = float64(rep.Flits) / float64(rep.Elapsed) / float64(rep.Participants)
	}
	return r, rep, nil
}

// runCollective is the `-exp collective` experiment: the paper's headline
// policies measured under bursty, barrier-synchronized collective traffic
// — policy × topology × collective × message-size, reporting collective
// completion time (end-to-end and per-step, with a communication/stall
// breakdown) instead of open-loop packet latency. A final scenario trips
// the serial PHY mid-collective and requires the failover policy to
// complete the collective anyway.
func runCollective(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	// Closed-loop runs measure every packet: there is no steady state to
	// warm into, the transient IS the workload.
	cfg.WarmupCycles = 0
	cx := pick(o, 4, 4, 2)
	systems := []struct {
		name string
		sys  topology.System
		mk   func() core.Policy
	}{
		{"uniform-parallel-mesh", topology.UniformParallelMesh, func() core.Policy { return nil }},
		{"uniform-serial-torus", topology.UniformSerialTorus, func() core.Policy { return nil }},
		{"hetero-phy-balanced", topology.HeteroPHYTorus, func() core.Policy { return core.Balanced{} }},
		{"hetero-phy-perf-first", topology.HeteroPHYTorus, func() core.Policy { return core.PerformanceFirst{} }},
	}
	sizes := []int{pick(o, 256, 128, 64)}
	if !o.Tiny {
		sizes = append(sizes, pick(o, 2048, 1024, 0))
	}
	compute := int64(pick(o, 64, 64, 16))
	budget := int64(pick(o, 4_000_000, 2_000_000, 500_000))
	shapes := collectiveShapes()

	type colRow struct {
		res Result
		rep collective.Report
	}
	rows := make([]*colRow, 0, len(systems)*len(shapes)*len(sizes))
	var jobs []pointJob
	for _, sys := range systems {
		for _, shape := range shapes {
			for _, size := range sizes {
				sys, shape, size := sys, shape, size
				row := &colRow{}
				rows = append(rows, row)
				jobs = append(jobs, pointJob{
					key: fmt.Sprintf("collective/%s/%s-%d", sys.name, shape.name, size),
					run: func() ([]Result, error) {
						in, err := Build(cfg, topology.Spec{
							System: sys.sys, ChipletsX: cx, ChipletsY: cx,
							NodesX: 4, NodesY: 4, Policy: sys.mk(),
						})
						if err != nil {
							return nil, err
						}
						res, rep, err := runCollectiveProgram(in, sys.name, shape, size, compute, budget)
						if err != nil {
							return nil, err
						}
						row.res, row.rep = res, rep
						return []Result{res}, nil
					},
				})
			}
		}
	}
	if _, err := runJobs(o, jobs); err != nil {
		return err
	}

	fmt.Fprintf(w, "--- collective completion, %d×%d chiplets of 4×4, %d participants ---\n", cx, cx, cx*cx)
	var all []Result
	var tbl [][]string
	for _, row := range rows {
		if row.rep.Name == "" {
			return fmt.Errorf("collective: missing row (job failed upstream)")
		}
		r, rep := row.res, row.rep
		fmt.Fprintf(w, "%-24s %-18s elapsed=%7d comm=%7d stall=%7d algbw=%.4f pkts=%d\n",
			r.System, r.Workload, rep.Elapsed, rep.CommCycles, rep.StallCycles, r.Throughput, rep.Packets)
		all = append(all, r)
		tbl = append(tbl, []string{
			r.System, r.Workload,
			strconv.Itoa(rep.Participants),
			strconv.FormatInt(rep.Elapsed, 10),
			strconv.FormatInt(rep.CommCycles, 10),
			strconv.FormatInt(rep.StallCycles, 10),
			strconv.FormatFloat(r.Throughput, 'f', 5, 64),
			strconv.FormatInt(rep.Packets, 10),
			strconv.FormatInt(rep.Flits, 10),
			strconv.Itoa(len(rep.Steps)),
		})
	}

	// Per-step breakdown of the ring all-reduce on the balanced hetero-PHY
	// system at the largest size — the Fig.-style detail view.
	var stepTbl [][]string
	for _, row := range rows {
		if row.res.System != "hetero-phy-balanced" || row.rep.Name != "allreduce" {
			continue
		}
		if row.res.Workload != fmt.Sprintf("allreduce-%d", sizes[len(sizes)-1]) {
			continue
		}
		fmt.Fprintf(w, "\n--- %s on %s, per step ---\n", row.res.Workload, row.res.System)
		for _, s := range row.rep.Steps {
			fmt.Fprintf(w, "step %2d: msgs=%d offer=%6d done=%6d span=%5d overlap=%d\n",
				s.Step, s.Msgs, s.FirstOffer, s.LastDelivery, s.Span, s.Overlap)
			stepTbl = append(stepTbl, []string{
				strconv.Itoa(int(s.Step)), strconv.Itoa(s.Msgs),
				strconv.FormatInt(s.FirstOffer, 10), strconv.FormatInt(s.LastDelivery, 10),
				strconv.FormatInt(s.Span, 10), strconv.FormatInt(s.Overlap, 10),
			})
		}
	}

	// Failover scenario: the same all-reduce with the serial PHY scripted
	// dead a third of the way through the healthy completion time. The
	// failure-aware policy must trip, rescue and complete the collective.
	healthySpec := topology.Spec{
		System: topology.HeteroPHYTorus, ChipletsX: cx, ChipletsY: cx,
		NodesX: 4, NodesY: 4, Policy: core.NewFailoverPolicy(serialPreferred{}),
	}
	in, err := Build(cfg, healthySpec)
	if err != nil {
		return err
	}
	shape := shapes[0] // allreduce
	_, healthy, err := runCollectiveProgram(in, "hetero-phy-failover", shape, sizes[0], compute, budget)
	if err != nil {
		return fmt.Errorf("collective: healthy failover reference: %w", err)
	}

	downAt := healthy.Elapsed / 3
	outSpec := healthySpec
	outSpec.Policy = core.NewFailoverPolicy(serialPreferred{})
	in, err = Build(cfg, outSpec)
	if err != nil {
		return err
	}
	fault.Attach(in.Net, fault.Config{
		Seed: o.FaultSeed,
		Events: []fault.Event{
			{Kind: fault.EventDown, Link: -1, Phy: fault.PhySerial, From: downAt, To: -1},
		},
	})
	chk := fault.NewIntegrityChecker(in.Net)
	_, outage, err := runCollectiveProgram(in, "hetero-phy-failover", shape, sizes[0], compute, budget)
	if err != nil {
		return fmt.Errorf("collective: did not complete across the tripped serial PHY: %w", err)
	}
	if err := chk.Check(in.Net); err != nil {
		return fmt.Errorf("collective: failover integrity: %w", err)
	}
	var trips uint64
	for _, ad := range in.Topo.Adapters {
		if fp, ok := ad.Policy().(*core.FailoverPolicy); ok {
			trips += fp.Trips()
		}
	}
	if trips == 0 {
		return fmt.Errorf("collective: serial outage at %d tripped nothing — scenario not exercised", downAt)
	}
	sum := fault.Summarize(in.Net)
	fmt.Fprintf(w, "\n--- serial-PHY outage at cycle %d during allreduce-%d ---\n", downAt, sizes[0])
	fmt.Fprintf(w, "healthy elapsed=%d  outage elapsed=%d (x%.2f)  trips=%d rescued=%d\n",
		healthy.Elapsed, outage.Elapsed, float64(outage.Elapsed)/float64(healthy.Elapsed), trips, sum.Rescued)
	fmt.Fprintln(w, "\nthe collective completes across the dead serial PHY: the failover")
	fmt.Fprintln(w, "policy detects starvation from retry telemetry and reroutes the")
	fmt.Fprintln(w, "remaining chunks onto the parallel wires.")

	if err := emitResults(o, "collective", all); err != nil {
		return err
	}
	if err := emitTable(o, "collective-completion",
		[]string{"system", "workload", "participants", "elapsed", "comm_cycles", "stall_cycles", "algbw_flits_per_cycle", "packets", "flits", "steps"}, tbl); err != nil {
		return err
	}
	if err := emitTable(o, "collective-steps",
		[]string{"step", "msgs", "first_offer", "last_delivery", "span", "overlap"}, stepTbl); err != nil {
		return err
	}
	return emitTable(o, "collective-failover",
		[]string{"collective", "healthy_elapsed", "outage_elapsed", "down_at", "trips", "rescued"},
		[][]string{{
			fmt.Sprintf("allreduce-%d", sizes[0]),
			strconv.FormatInt(healthy.Elapsed, 10),
			strconv.FormatInt(outage.Elapsed, 10),
			strconv.FormatInt(downAt, 10),
			strconv.FormatUint(trips, 10),
			strconv.FormatUint(sum.Rescued, 10),
		}})
}
