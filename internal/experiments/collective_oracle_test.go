package experiments

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"reflect"
	"testing"

	"heteroif/internal/collective"
	"heteroif/internal/core"
	"heteroif/internal/fault"
	"heteroif/internal/network"
	"heteroif/internal/topology"
)

// collectiveOracleRun executes one closed-loop collective to completion at
// the given worker count and returns the arrival fingerprint plus the
// engine's completion report. With faults set it layers the seeded error
// model, a scripted mid-collective serial-PHY outage and the failover
// policy on top — the collective must still complete, identically at
// every worker count.
func collectiveOracleRun(t *testing.T, workers int, faults bool) (oracleFingerprint, collective.Report) {
	t.Helper()
	cfg := shortCfg()
	// Closed-loop runs measure the whole transient.
	cfg.WarmupCycles = 0
	cfg.Workers = workers
	spec := topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 2, ChipletsY: 2, NodesX: 4, NodesY: 4}
	if faults {
		// The serial-insisting base guarantees collective flits are on the
		// dead wire when the outage hits, so completion requires the
		// failover trip + rescue path.
		spec.Policy = core.NewFailoverPolicy(serialPreferred{})
	}
	in, err := Build(cfg, spec)
	if err != nil {
		t.Fatalf("Build(workers=%d): %v", workers, err)
	}

	prev := in.Net.Sink
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	in.Net.Sink = func(p *network.Packet) {
		put(p.ID)
		put(uint64(uint32(p.Src))<<32 | uint64(uint32(p.Dst)))
		put(uint64(p.CreatedAt))
		put(uint64(p.InjectedAt))
		put(uint64(p.ArrivedAt))
		put(math.Float64bits(p.EnergyPJ))
		put(math.Float64bits(p.EnergyIfacePJ))
		prev(p)
	}

	var chk *fault.IntegrityChecker
	if faults {
		fault.Attach(in.Net, fault.Config{
			SerialBER:   2e-4,
			ParallelBER: 2e-6,
			Seed:        7,
			Events: []fault.Event{
				{Kind: fault.EventDown, Link: -1, Phy: fault.PhySerial, From: 300, To: -1},
			},
		})
		chk = fault.NewIntegrityChecker(in.Net)
	}

	leaders := in.Topo.ChipletLeaders()
	prog := collective.DNNTraining(leaders, []collective.Layer{
		{Name: "l0", Compute: 900, GradFlits: 96},
		{Name: "l1", Compute: 1500, GradFlits: 160},
	}, 40)
	eng, err := collective.NewEngine(in.Net, prog)
	if err != nil {
		t.Fatalf("workers=%d: NewEngine: %v", workers, err)
	}
	rep, err := eng.Run(1 << 20)
	if err != nil {
		t.Fatalf("workers=%d faults=%v: %v", workers, faults, err)
	}
	if err := in.Net.CheckCredits(); err != nil {
		t.Fatalf("workers=%d: credit conservation: %v", workers, err)
	}
	if chk != nil {
		if err := chk.Check(in.Net); err != nil {
			t.Fatalf("workers=%d: integrity: %v", workers, err)
		}
		var trips uint64
		for _, ad := range in.Topo.Adapters {
			if fp, ok := ad.Policy().(*core.FailoverPolicy); ok {
				trips += fp.Trips()
			}
		}
		if trips == 0 {
			t.Fatalf("workers=%d: serial outage tripped nothing — failover path not exercised", workers)
		}
	}

	return oracleFingerprint{
		arrivalHash: h.Sum64(),
		injected:    in.Net.PacketsInjected(),
		delivered:   in.Net.PacketsDelivered(),
		vaFailures:  in.Net.VAFailures,
		grants:      in.Net.GrantsByKind,
	}, rep
}

// TestParallelOracleCollective extends the cross-worker-count bit-identity
// oracle to closed-loop collective workloads: a DNN training program
// (compute phases exercising quiescence fast-forward under parallel
// stepping) must produce the identical arrival stream, energies AND
// engine completion report — per-step offer/delivery cycles included — at
// every -oracle.workers count, both healthy and under faults + a scripted
// serial outage with failover. The CI race job picks this up through its
// 'TestParallelOracle' run filter.
func TestParallelOracleCollective(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run oracle skipped in -short mode")
	}
	counts := parseOracleWorkers(t)
	for _, faults := range []bool{false, true} {
		name := "healthy"
		if faults {
			name = "faults+failover"
		}
		faults := faults
		t.Run(name, func(t *testing.T) {
			wantFP, wantRep := collectiveOracleRun(t, 1, faults)
			if wantFP.delivered == 0 || wantFP.delivered != wantFP.injected {
				t.Fatalf("sequential reference degenerate: delivered %d of %d", wantFP.delivered, wantFP.injected)
			}
			for _, w := range counts {
				gotFP, gotRep := collectiveOracleRun(t, w, faults)
				if gotFP != wantFP {
					t.Errorf("workers=%d fingerprint diverged:\n got %+v\nwant %+v", w, gotFP, wantFP)
				}
				if !reflect.DeepEqual(gotRep, wantRep) {
					t.Errorf("workers=%d completion report diverged:\n got %+v\nwant %+v", w, gotRep, wantRep)
				}
			}
		})
	}
}
