package experiments

import (
	"testing"

	"heteroif/internal/analysis"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// TestZeroLoadLatencyMatchesAnalyticalModel cross-validates the simulator
// against the static model: at near-zero load, mean packet latency should
// approximate the average weighted (zero-load) distance plus the packet
// serialization time at the narrowest link plus injection/ejection
// overhead. Agreement within 25% on three different systems gives
// confidence that neither the engine nor the analytical model is
// miscalibrated (and pins the per-hop latency calibration of
// analysis.LatencyCosts to the engine).
func TestZeroLoadLatencyMatchesAnalyticalModel(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep")
	}
	for _, sys := range []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroChannel,
	} {
		cfg := shortCfg()
		cfg.SimCycles = 12000
		cfg.WarmupCycles = 2000
		spec := topology.Spec{System: sys, ChipletsX: 2, ChipletsY: 2, NodesX: 4, NodesY: 4}
		in, err := Build(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		rep := analysis.Analyze(in.Topo, &cfg, analysis.LatencyCosts(&cfg))
		if err := in.RunSynthetic(traffic.Uniform{}, 0.01); err != nil {
			t.Fatal(err)
		}
		// Serialization: tail follows head through the narrowest stage
		// (on-chip and injection bandwidth = 2 flits/cycle).
		serialization := float64(cfg.PacketLength) / float64(cfg.OnChipBandwidth)
		predicted := rep.AvgDistance + serialization + 1 // +ejection cycle
		measured := in.Stats.MeanLatency()
		ratio := measured / predicted
		t.Logf("%-26s measured=%.1f predicted=%.1f (ratio %.2f)", sys, measured, predicted, ratio)
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%v: simulated zero-load latency %.1f diverges from analytical %.1f",
				sys, measured, predicted)
		}
	}
}
