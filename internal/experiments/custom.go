package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"heteroif/internal/core"
	"heteroif/internal/network"
	"heteroif/internal/routing"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// CustomRun is the JSON schema for user-defined simulations
// (hetsim -run spec.json): a system, a workload and the parameters to
// override. Zero values fall back to the Table 2 defaults.
type CustomRun struct {
	// System is one of: uniform-parallel-mesh, uniform-serial-torus,
	// hetero-phy-torus, uniform-serial-hypercube, hetero-channel.
	System    string `json:"system"`
	ChipletsX int    `json:"chiplets_x"`
	ChipletsY int    `json:"chiplets_y"`
	NodesX    int    `json:"nodes_x"`
	NodesY    int    `json:"nodes_y"`

	// Pattern is a synthetic pattern name (uniform, uniform-hotspot,
	// bit-shuffle, bit-complement, bit-transpose, bit-reverse) or
	// "local-uniform" with BlockChiplets set.
	Pattern       string  `json:"pattern"`
	Rate          float64 `json:"rate"`
	BlockChiplets int     `json:"block_chiplets,omitempty"`

	// Policy names the hetero-PHY scheduling policy (balanced,
	// performance-first, energy-efficient, application-aware).
	Policy string `json:"policy,omitempty"`
	// Eq5Bias overrides the hetero-channel subnetwork-selection weight.
	Eq5Bias float64 `json:"eq5_bias,omitempty"`

	// Halved halves the interface bandwidths (pin-constrained).
	Halved bool `json:"halved,omitempty"`

	Cycles int64 `json:"cycles,omitempty"`
	Warmup int64 `json:"warmup,omitempty"`
	Seed   int64 `json:"seed,omitempty"`

	// Workers enables deterministic parallel stepping across this many
	// goroutines (0/1 = sequential). The hetsim -workers flag, when set
	// explicitly, overrides this field.
	Workers int `json:"workers,omitempty"`

	// PacketLength overrides the synthetic packet length in flits.
	PacketLength int `json:"packet_length,omitempty"`
}

// systemByName maps the JSON system names.
func systemByName(name string) (topology.System, error) {
	for _, s := range []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
		topology.UniformSerialHypercube,
		topology.HeteroChannel,
	} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown system %q", name)
}

// LoadCustomRun parses a JSON spec.
func LoadCustomRun(r io.Reader) (*CustomRun, error) {
	var c CustomRun
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("experiments: parsing custom run: %w", err)
	}
	return &c, nil
}

// LoadCustomRunFile parses a JSON spec from a file.
func LoadCustomRunFile(path string) (*CustomRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCustomRun(f)
}

// Execute builds and runs the custom simulation, writing a report to w.
func (c *CustomRun) Execute(w io.Writer) error {
	cfg := network.DefaultConfig()
	if c.Cycles > 0 {
		cfg.SimCycles = c.Cycles
	}
	if c.Warmup > 0 {
		cfg.WarmupCycles = c.Warmup
	}
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
	if c.PacketLength > 0 {
		cfg.PacketLength = c.PacketLength
	}
	if c.Halved {
		cfg = cfg.Halved()
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiments: workers %d must be non-negative", c.Workers)
	}
	cfg.Workers = c.Workers
	sys, err := systemByName(c.System)
	if err != nil {
		return err
	}
	spec := topology.Spec{
		System:    sys,
		ChipletsX: c.ChipletsX, ChipletsY: c.ChipletsY,
		NodesX: c.NodesX, NodesY: c.NodesY,
	}
	if c.Policy != "" {
		pol, err := core.PolicyByName(c.Policy)
		if err != nil {
			return err
		}
		spec.Policy = pol
	}
	in, err := Build(cfg, spec)
	if err != nil {
		return err
	}
	if c.Eq5Bias > 0 {
		if sys != topology.HeteroChannel {
			return fmt.Errorf("experiments: eq5_bias only applies to hetero-channel systems")
		}
		in.Net.Routing = &routing.HeteroChannel{T: in.Topo, Bias: c.Eq5Bias}
	}

	var pat traffic.Pattern
	if c.Pattern == "local-uniform" {
		if c.BlockChiplets <= 0 {
			return fmt.Errorf("experiments: local-uniform needs block_chiplets > 0")
		}
		pat = &traffic.LocalUniform{
			ChipletsX: c.ChipletsX, NodesX: c.NodesX, NodesY: c.NodesY,
			GX: c.ChipletsX * c.NodesX, BlockChiplets: c.BlockChiplets,
		}
	} else {
		pat, err = traffic.ByName(c.Pattern, in.Topo.N, cfg.Seed)
		if err != nil {
			return err
		}
	}
	if c.Rate <= 0 {
		return fmt.Errorf("experiments: rate must be positive")
	}
	fmt.Fprint(w, in.Topo.Describe())
	if err := in.RunSynthetic(pat, c.Rate); err != nil {
		return err
	}
	r := in.Measure(c.System, pat.Name(), c.Rate)
	fmt.Fprintln(w, r)
	oc, pa, se, he := in.Stats.MeanHops()
	fmt.Fprintf(w, "hops/pkt: on-chip %.2f, parallel %.2f, serial %.2f, hetero %.2f\n", oc, pa, se, he)
	fmt.Fprintf(w, "energy/pkt: %.1f pJ (on-chip %.1f + interface %.1f)\n",
		r.EnergyPJ, r.EnergyOnChipPJ, r.EnergyIfacePJ)
	return nil
}
