package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestCustomRunExecute(t *testing.T) {
	spec := `{
		"system": "hetero-phy-torus",
		"chiplets_x": 2, "chiplets_y": 2,
		"nodes_x": 3, "nodes_y": 3,
		"pattern": "uniform",
		"rate": 0.1,
		"cycles": 4000, "warmup": 1000,
		"policy": "energy-efficient"
	}`
	c, err := LoadCustomRun(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hetero-phy-torus") || !strings.Contains(out, "energy/pkt") {
		t.Fatalf("report incomplete:\n%s", out)
	}
}

func TestCustomRunLocalUniform(t *testing.T) {
	c := &CustomRun{
		System: "uniform-parallel-mesh", ChipletsX: 2, ChipletsY: 2,
		NodesX: 3, NodesY: 3,
		Pattern: "local-uniform", BlockChiplets: 1,
		Rate: 0.05, Cycles: 3000, Warmup: 500,
	}
	var buf bytes.Buffer
	if err := c.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	// Intra-block traffic on 1×1-chiplet blocks never crosses a boundary.
	if !strings.Contains(buf.String(), "parallel 0.00") {
		t.Fatalf("local 1x1 traffic crossed chiplet boundaries:\n%s", buf.String())
	}
}

func TestCustomRunValidation(t *testing.T) {
	cases := []CustomRun{
		{System: "warp-drive", ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2, Pattern: "uniform", Rate: 0.1},
		{System: "uniform-parallel-mesh", ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2, Pattern: "rainbows", Rate: 0.1},
		{System: "uniform-parallel-mesh", ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2, Pattern: "uniform", Rate: 0},
		{System: "uniform-parallel-mesh", ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2, Pattern: "uniform", Rate: 0.1, Eq5Bias: 2},
		{System: "uniform-parallel-mesh", ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2, Pattern: "uniform", Rate: 0.1, Policy: "bogus"},
		{System: "uniform-parallel-mesh", ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2, Pattern: "local-uniform", Rate: 0.1},
	}
	for i, c := range cases {
		c.Cycles, c.Warmup = 2000, 200
		var buf bytes.Buffer
		if err := c.Execute(&buf); err == nil {
			t.Errorf("case %d: invalid custom run accepted", i)
		}
	}
}

func TestLoadCustomRunRejectsUnknownFields(t *testing.T) {
	if _, err := LoadCustomRun(strings.NewReader(`{"systemm": "typo"}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
	if _, err := LoadCustomRun(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadCustomRunFileMissing(t *testing.T) {
	if _, err := LoadCustomRunFile("/nonexistent/spec.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
