package experiments

import (
	"sort"
	"testing"

	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// TestHypercubeMediumScale reproduces the Table-3 16×(6×6) configuration
// for the uniform-serial hypercube, which must deliver packets at 0.1
// flits/cycle/node.
func TestHypercubeMediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale diagnostic")
	}
	cfg := shortCfg()
	cfg.SimCycles = 8000
	cfg.WarmupCycles = 2000
	spec := topology.Spec{System: topology.UniformSerialHypercube, ChipletsX: 4, ChipletsY: 4, NodesX: 6, NodesY: 6}
	in, err := Build(cfg, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := in.RunSynthetic(traffic.Uniform{}, 0.1); err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("injected=%d delivered=%d queued=%d inflight=%d measured=%d meanLat=%.1f",
		in.Net.PacketsInjected(), in.Net.PacketsDelivered(), in.Net.QueuedPackets(),
		in.Net.InFlightFlits(), in.Stats.Count(), in.Stats.MeanLatency())
	t.Logf("snapshot:\n%s", in.Net.TakeSnapshot(8))
	type lu struct {
		id   int
		u    float64
		kind string
	}
	var lus []lu
	for _, l := range in.Net.Links {
		u := float64(l.SentTotal) / float64(in.Net.Now) / float64(l.Bandwidth)
		lus = append(lus, lu{l.ID, u, l.Kind.String()})
	}
	sort.Slice(lus, func(i, j int) bool { return lus[i].u > lus[j].u })
	for i := 0; i < 10 && i < len(lus); i++ {
		l := in.Net.Links[lus[i].id]
		t.Logf("link %d %s %d->%d util=%.2f", l.ID, lus[i].kind, l.Src, l.Dst, lus[i].u)
	}
	t.Logf("grants by kind: onchip=%d par=%d ser=%d het=%d local=%d vafail=%d", in.Net.GrantsByKind[0], in.Net.GrantsByKind[1], in.Net.GrantsByKind[2], in.Net.GrantsByKind[3], in.Net.GrantsByKind[4], in.Net.VAFailures)
	if in.Stats.Count() == 0 {
		t.Fatal("no packets measured in window")
	}
	del := float64(in.Net.PacketsDelivered()) / float64(in.Net.PacketsInjected())
	if del < 0.8 {
		t.Fatalf("only %.0f%% of injected packets delivered", 100*del)
	}
}

// TestHypercubeDrains checks for partial deadlock: after a burst of load,
// the hypercube must fully drain.
func TestHypercubeDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale diagnostic")
	}
	cfg := shortCfg()
	cfg.SimCycles = 3000
	cfg.WarmupCycles = 500
	cfg.DrainCycles = 60000
	spec := topology.Spec{System: topology.UniformSerialHypercube, ChipletsX: 4, ChipletsY: 4, NodesX: 6, NodesY: 6}
	in, err := Build(cfg, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := in.RunSynthetic(traffic.Uniform{}, 0.1); err != nil {
		t.Fatalf("run: %v", err)
	}
	drained, err := in.Net.Drain()
	if err != nil {
		t.Fatalf("drain: %v\n%s\n%s", err, in.Net.TakeSnapshot(10), in.Net.DeadlockReport(25))
	}
	if !drained {
		t.Fatalf("did not drain:\n%s", in.Net.TakeSnapshot(10))
	}
	t.Logf("drained OK at cycle %d, delivered %d", in.Net.Now, in.Net.PacketsDelivered())
}
