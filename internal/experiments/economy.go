package experiments

import (
	"fmt"
	"io"
	"strconv"

	"heteroif/internal/costmodel"
)

// runEconomy quantifies the paper's "flexibility in economy" claim
// (Sec. 10, building on the Chiplet Actuary model [29]): one hetero-IF
// chiplet reused across the Fig. 2 product family (mobile / board / rack)
// versus a uniform-interface chiplet redesigned per product. The second
// interface costs a few percent of die area; the saved NREs dominate until
// volumes grow enormous.
func runEconomy(o Options, w io.Writer) error {
	chip := costmodel.Chiplet{Name: "compute-tile", AreaMM2: 80, Process: costmodel.N7()}
	family := []costmodel.SystemPlan{
		{Name: "mobile (2 dies)", Chiplet: chip, DieCount: 2, Packaging: costmodel.SiliconInterposer(), Volume: 1000000},
		{Name: "board (16 dies)", Chiplet: chip, DieCount: 16, Packaging: costmodel.SiliconInterposer(), Volume: 100000},
		{Name: "rack (64 dies)", Chiplet: chip, DieCount: 64, Packaging: costmodel.OrganicSubstrate(), Volume: 10000},
	}

	fmt.Fprintln(w, "per-product unit economics (uniform-IF chiplet, own NRE):")
	for _, p := range family {
		c := p.UnitCost()
		fmt.Fprintf(w, "  %-18s silicon=$%-8.0f packaging=$%-8.0f NRE/unit=$%-8.0f total=$%.0f\n",
			p.Name, c.SiliconUSD, c.PackagingUSD, c.NREPerUnit, c.TotalUSD)
	}

	fmt.Fprintln(w, "\nfamily cost: one reusable hetero-IF chiplet vs three uniform designs")
	fmt.Fprintf(w, "%-22s %-16s %-16s %s\n", "area overhead", "uniform ($M)", "hetero ($M)", "saving")
	var rows [][]string
	for _, overhead := range []float64{0.03, 0.05, 0.10, 0.20} {
		scenario := costmodel.ReuseScenario{Plans: family, HeteroAreaOverhead: overhead}
		uniform, hetero, saving := scenario.Compare()
		fmt.Fprintf(w, "%-22s %-16.1f %-16.1f %.1f%%\n",
			fmt.Sprintf("+%.0f%% die area", 100*overhead), uniform/1e6, hetero/1e6, 100*saving)
		rows = append(rows, []string{
			strconv.FormatFloat(overhead, 'f', 2, 64),
			strconv.FormatFloat(uniform, 'f', 0, 64),
			strconv.FormatFloat(hetero, 'f', 0, 64),
			strconv.FormatFloat(saving, 'f', 4, 64),
		})
	}
	fmt.Fprintln(w, "\n\"Flexibility itself is the most significant cost saving.\" (Sec. 4.3)")
	return emitTable(o, "economy", []string{"area_overhead", "uniform_usd", "hetero_usd", "saving"}, rows)
}
