package experiments

import (
	"testing"

	"heteroif/internal/routing"
	"heteroif/internal/traffic"
)

// TestEq5MarginTradeoff documents the subnetwork-selection trade-off: an
// additive margin on the Eq. 5 comparison (require the cube to save ≥2
// chiplet hops) recovers mesh parity on small chiplets where serial-hop
// latency dominates, but gives up the congestion relief that makes the
// literal Eq. 5 rule win once the mesh carries real load — which is why
// the paper's load-oriented balanced philosophy (and our default) keeps
// the literal rule.
func TestEq5MarginTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second trade-off sweep")
	}
	cfg := shortCfg()
	cfg.SimCycles = 12000
	cfg.WarmupCycles = 3000
	lat := func(cx, nx, margin int) float64 {
		vs := heteroChannelVariants(cfg, cx, cx, nx, nx)
		in, err := Build(vs[2].Cfg, vs[2].Spec)
		if err != nil {
			t.Fatal(err)
		}
		in.Net.Routing = &routing.HeteroChannel{T: in.Topo, Margin: margin}
		if err := in.RunSynthetic(traffic.Uniform{}, 0.1); err != nil {
			t.Fatal(err)
		}
		t.Logf("%dx(%dx%d) margin=%d lat=%.1f", cx*cx, nx, nx, margin, in.Stats.MeanLatency())
		return in.Stats.MeanLatency()
	}
	// Small chiplets: the margin pays (serial hops cost more than they save).
	if small0, small2 := lat(4, 4, 0), lat(4, 4, 2); small2 >= small0 {
		t.Errorf("margin should help small chiplets: %.1f vs %.1f", small2, small0)
	}
	// Large loaded chiplets: the literal Eq. 5 rule pays (congestion relief).
	if big0, big2 := lat(4, 7, 0), lat(4, 7, 2); big0 >= big2 {
		t.Errorf("literal Eq. 5 should win at load: %.1f vs %.1f", big0, big2)
	}
}
