package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"heteroif/internal/network"
	"heteroif/internal/sweep"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// Options configures an experiment run.
type Options struct {
	// Full runs paper-scale simulation windows (Table 2: 100k cycles, 10k
	// warm-up) and full sweeps; otherwise a shortened window is used so
	// the whole suite stays runnable in CI.
	Full bool
	// CSVDir, when non-empty, receives one CSV file per experiment.
	CSVDir string
	// Seed overrides the default random seed when non-zero.
	Seed int64
	// Workers enables deterministic parallel stepping of one simulation
	// across goroutines (0/1 = sequential) — cycle-level parallelism.
	Workers int
	// Tiny shrinks systems and windows to smoke-test scale (seconds for
	// the whole registry); used by tests, never for reported results.
	Tiny bool
	// Jobs runs this many independent operating points concurrently —
	// point-level parallelism (0/1 = sequential in submission order).
	// Results are bit-identical for any value.
	Jobs int
	// JobTimeout bounds each operating point's wall-clock time; a point
	// that exceeds it is reported as failed instead of hanging the sweep
	// (0 = unbounded).
	JobTimeout time.Duration
	// Progress, when non-nil, receives per-point completion updates.
	Progress func(sweep.Progress)
	// Manifest, when non-nil, accumulates per-point results and derived
	// tables for the machine-readable BENCH_<experiment>.json output.
	Manifest *Manifest
	// FaultBER, when nonzero, overrides the serial bit-error-rate sweep of
	// the fault experiment with {0, FaultBER}.
	FaultBER float64
	// FaultSeed seeds the fault-injection RNG streams independently of the
	// workload seed (0 derives one from the network seed).
	FaultSeed int64
}

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options, w io.Writer) error
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"table1", "Table 1: die-to-die interface specifications", runTable1},
	{"fig08", "Figure 8: V-t curves of the interface bandwidth-latency model", runFig08},
	{"fig11", "Figure 11: hetero-PHY network, six traffic patterns (256 nodes)", runFig11},
	{"fig12", "Figure 12: hetero-PHY network, PARSEC traces (64 nodes)", runFig12},
	{"fig13", "Figure 13: hetero-PHY network, HPC traces (1296 nodes)", runFig13},
	{"fig14", "Figure 14: hetero-channel network, six traffic patterns (3136 nodes)", runFig14},
	{"fig15", "Figure 15: hetero-channel network, HPC traces (3136 nodes)", runFig15},
	{"table3", "Table 3: average latency reduction across five system scales", runTable3},
	{"table4", "Table 4: post-synthesis analysis of adapter and routers", runTable4},
	{"fig16", "Figure 16: average energy on uniform traffic", runFig16},
	{"fig17", "Figure 17: average energy on HPC (MOC) traffic", runFig17},
	{"fig18", "Figure 18: average energy vs local traffic scale", runFig18},
	{"topo", "Topology analysis: diameter / average distance / bisection (Sec. 2 motivation)", runTopo},
	{"economy", "Cost model: chiplet reuse economics (Sec. 10 / Chiplet Actuary [29])", runEconomy},
	{"linkfail", "Fault tolerance: latency vs failed adaptive channels (Sec. 9)", runLinkFail},
	{"fault", "Link reliability: BER × policy with link-layer retry and failover (Sec. 2.1)", runFault},
	{"compromised", "Extension: simulated compromised (BoW-like) interface vs hetero-IF (Sec. 2.2)", runCompromised},
	{"collective", "Extension: closed-loop collective/DNN workloads — completion time by policy × topology", runCollective},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
}

// baseConfig returns the simulation configuration for an options set.
func baseConfig(o Options) network.Config {
	cfg := network.DefaultConfig()
	if !o.Full {
		cfg.SimCycles = 20000
		cfg.WarmupCycles = 4000
	}
	if o.Tiny {
		cfg.SimCycles = 4000
		cfg.WarmupCycles = 800
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Workers = o.Workers
	return cfg
}

// variant is one system under comparison.
type variant struct {
	Name string
	Cfg  network.Config
	Spec topology.Spec
}

// heteroPHYVariants returns the four systems of the hetero-PHY evaluation
// (Sec. 8.1.1): uniform-parallel mesh, uniform-serial torus, hetero-PHY
// torus at full interface bandwidth, and hetero-PHY torus at halved
// (pin-constrained) bandwidth.
func heteroPHYVariants(cfg network.Config, cx, cy, nx, ny int) []variant {
	spec := func(s topology.System) topology.Spec {
		return topology.Spec{System: s, ChipletsX: cx, ChipletsY: cy, NodesX: nx, NodesY: ny}
	}
	return []variant{
		{"uniform-parallel-mesh", cfg, spec(topology.UniformParallelMesh)},
		{"uniform-serial-torus", cfg, spec(topology.UniformSerialTorus)},
		{"hetero-phy-full", cfg, spec(topology.HeteroPHYTorus)},
		{"hetero-phy-half", cfg.Halved(), spec(topology.HeteroPHYTorus)},
	}
}

// heteroChannelVariants returns the four systems of the hetero-channel
// evaluation (Sec. 8.1.2).
func heteroChannelVariants(cfg network.Config, cx, cy, nx, ny int) []variant {
	spec := func(s topology.System) topology.Spec {
		return topology.Spec{System: s, ChipletsX: cx, ChipletsY: cy, NodesX: nx, NodesY: ny}
	}
	return []variant{
		{"uniform-parallel-mesh", cfg, spec(topology.UniformParallelMesh)},
		{"uniform-serial-hypercube", cfg, spec(topology.UniformSerialHypercube)},
		{"hetero-channel-full", cfg, spec(topology.HeteroChannel)},
		{"hetero-channel-half", cfg.Halved(), spec(topology.HeteroChannel)},
	}
}

// runPoint builds a system, drives it with a synthetic pattern at one
// offered load and returns the measured result. The saturation check uses
// the pattern's effective offered load (non-participating sources inject
// nothing).
func runPoint(v variant, pat traffic.Pattern, rate float64) (Result, error) {
	in, err := Build(v.Cfg, v.Spec)
	if err != nil {
		return Result{}, err
	}
	if err := in.RunSynthetic(pat, rate); err != nil {
		// Deadlock or other engine failure: report, don't fabricate data.
		return Result{}, fmt.Errorf("%s/%s@%.3f: %w", v.Name, pat.Name(), rate, err)
	}
	eff := rate * float64(traffic.Participants(pat, in.Topo.N)) / float64(in.Topo.N)
	return in.Measure(v.Name, pat.Name(), eff), nil
}

// pick returns full, short or tiny depending on the options.
func pick(o Options, full, short, tiny int) int {
	if o.Tiny {
		return tiny
	}
	if o.Full {
		return full
	}
	return short
}

// sweepRates measures one variant across offered loads, stopping the sweep
// two points past saturation (the latency-vs-injection curves of
// Figs. 11/14). It is the natural job granularity for the orchestrator:
// the early exit is a sequential dependency between rates, while different
// (variant, pattern) sweeps are independent.
func sweepRates(v variant, pat traffic.Pattern, rates []float64) ([]Result, error) {
	var out []Result
	pastSat := 0
	for _, rate := range rates {
		r, err := runPoint(v, pat, rate)
		if err != nil {
			return out, err
		}
		out = append(out, r)
		if r.Saturated {
			pastSat++
			if pastSat >= 2 {
				break
			}
		}
	}
	return out, nil
}

// pointJob is one independent operating point (or one self-contained rate
// sweep) submitted to the sweep orchestrator.
type pointJob struct {
	key string
	run func() ([]Result, error)
}

// point adapts a single-Result computation to a pointJob.
func point(key string, run func() (Result, error)) pointJob {
	return pointJob{key: key, run: func() ([]Result, error) {
		r, err := run()
		if err != nil {
			return nil, err
		}
		return []Result{r}, nil
	}}
}

// runJobs executes the jobs through the sweep orchestrator, honoring
// o.Jobs/o.JobTimeout/o.Progress. It returns per-job result slices in
// submission order — identical for any pool size — plus the first error.
// Failed jobs are recorded in the manifest and yield their partial results;
// siblings always run to completion.
func runJobs(o Options, jobs []pointJob) ([][]Result, error) {
	sj := make([]sweep.Job[[]Result], len(jobs))
	for i, j := range jobs {
		sj[i] = sweep.Job[[]Result]{Key: j.key, Run: j.run}
	}
	outs := sweep.Run(sj, sweep.Options{Jobs: o.Jobs, Timeout: o.JobTimeout, OnProgress: o.Progress})
	res := make([][]Result, len(outs))
	var firstErr error
	for i := range outs {
		res[i] = outs[i].Value
		if outs[i].Err != nil {
			o.Manifest.RecordFailure(outs[i].Key, outs[i].Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", outs[i].Key, outs[i].Err)
			}
		}
	}
	return res, firstErr
}

// emitResults records measured result rows into the manifest (when one is
// attached) and emits them as <CSVDir>/<name>.csv (when CSVDir is set).
func emitResults(o Options, name string, rs []Result) error {
	o.Manifest.Record(rs...)
	return writeCSV(o.CSVDir, name, resultHeader, resultRows(rs))
}

// emitTable records a derived (non-Result) table into the manifest and
// emits it as CSV, for the table/report experiments.
func emitTable(o Options, name string, header []string, rows [][]string) error {
	o.Manifest.RecordTable(name, header, rows)
	return writeCSV(o.CSVDir, name, header, rows)
}

// writeCSV emits rows to <dir>/<name>.csv when dir is non-empty.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func resultRows(rs []Result) [][]string {
	rows := make([][]string, 0, len(rs))
	for _, r := range rs {
		rows = append(rows, []string{
			r.System, r.Workload,
			strconv.FormatFloat(r.Rate, 'f', 4, 64),
			strconv.FormatFloat(r.MeanLatency, 'f', 2, 64),
			strconv.FormatFloat(r.NetLatency, 'f', 2, 64),
			strconv.FormatInt(r.P99Latency, 10),
			strconv.FormatFloat(r.StdDev, 'f', 2, 64),
			strconv.FormatFloat(r.Throughput, 'f', 5, 64),
			strconv.FormatFloat(r.EnergyPJ, 'f', 1, 64),
			strconv.FormatInt(r.Packets, 10),
			strconv.FormatBool(r.Saturated),
		})
	}
	return rows
}

var resultHeader = []string{
	"system", "workload", "offered_rate", "mean_latency", "net_latency",
	"p99_latency", "stddev", "throughput", "energy_pj_per_pkt", "packets", "saturated",
}
