package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%q): %v", e.ID, err)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(Registry) != 18 {
		t.Errorf("registry has %d experiments, want 18 (tables, figures, and the topology/economy/linkfail/fault/compromised/collective reports)", len(Registry))
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	// The analytical experiments are fast enough to run in unit tests and
	// must produce output and CSV files.
	dir := t.TempDir()
	for _, id := range []string{"table1", "fig08", "table4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(Options{CSVDir: dir}, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
		if _, err := os.Stat(filepath.Join(dir, id+".csv")); err != nil {
			t.Errorf("%s wrote no CSV: %v", id, err)
		}
	}
}

func TestFig08Properties(t *testing.T) {
	var buf bytes.Buffer
	e, _ := ByID("fig08")
	if err := e.Run(Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "crossover serial-over-parallel at t=35.0") {
		t.Errorf("expected the Table-2 crossover at t=35 cycles; got:\n%s", out)
	}
}

func TestMeasureSaturationFlag(t *testing.T) {
	in := &Instance{}
	_ = in // Measure needs a built instance; covered indirectly below.

	r := Result{Rate: 0.2, Throughput: 0.1}
	if !(r.Throughput < 0.85*r.Rate) {
		t.Fatal("sanity: this operating point should read as saturated")
	}
}

func TestRankMapSpreadsAcrossChiplets(t *testing.T) {
	in, err := Build(shortCfg(), smallSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rankMap(in.Topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	chiplets := map[int]bool{}
	for _, n := range m {
		chiplets[in.Topo.ChipletID(n)] = true
	}
	if len(chiplets) < 4 {
		t.Errorf("8 ranks landed on %d chiplets, want all 4", len(chiplets))
	}
}

func TestResultString(t *testing.T) {
	r := Result{System: "s", Workload: "w", Rate: 0.1, MeanLatency: 12.5}
	if !strings.Contains(r.String(), "rate=0.100") {
		t.Errorf("result rendering wrong: %s", r)
	}
}
