package experiments

import (
	"fmt"
	"io"
	"strconv"

	"heteroif/internal/core"
	"heteroif/internal/fault"
	"heteroif/internal/network"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// serialPreferred is the no-failover strawman for the link-down scenario:
// it insists on the serial PHY and never falls back, so a dead serial wire
// starves it outright. Wrapping the same policy in a FailoverPolicy is the
// controlled comparison — identical preference, plus health monitoring.
type serialPreferred struct{}

func (serialPreferred) Name() string { return "serial-preferred" }
func (serialPreferred) Dispatch(st core.State, _ network.Flit) (core.PHY, bool) {
	return core.PHYSerial, st.SerialBudget > 0
}

// runFault evaluates link reliability end to end (Sec. 2.1's reliability
// gap): a seeded error model corrupts serial-PHY flits at a swept BER, the
// link-layer retry protocol recovers them, and scheduling policies with and
// without failure awareness are compared on latency, retry rate and
// delivered-packet integrity. A second scenario scripts a permanent
// serial-PHY outage mid-run: the failure-aware policy must keep the network
// live while the serial-only baseline starves.
func runFault(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	cx := pick(o, 4, 4, 2)
	spec := func(pol core.Policy) topology.Spec {
		return topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: cx, ChipletsY: cx, NodesX: 4, NodesY: 4, Policy: pol}
	}
	bers := []float64{0, 1e-5, 1e-4, 1e-3}
	if o.Tiny {
		bers = []float64{0, 1e-3}
	}
	if o.FaultBER > 0 {
		bers = []float64{0, o.FaultBER}
	}
	// Policies are constructed inside each job: FailoverPolicy is stateful,
	// and sharing one instance across concurrent jobs would break the
	// bit-identical-for-any-jobs guarantee.
	policies := []struct {
		name string
		mk   func() core.Policy
	}{
		{"balanced", func() core.Policy { return core.Balanced{} }},
		{"failover", func() core.Policy { return core.NewFailoverPolicy(nil) }},
	}

	type relRow struct {
		res Result
		sum fault.Summary
	}
	const load = 0.1
	var jobs []pointJob
	rows := make([]*relRow, len(policies)*len(bers))
	for pi, pol := range policies {
		for bi, ber := range bers {
			pi, bi, pol, ber := pi, bi, pol, ber
			jobs = append(jobs, pointJob{
				key: fmt.Sprintf("fault/%s/ber-%g", pol.name, ber),
				run: func() ([]Result, error) {
					in, err := Build(cfg, spec(pol.mk()))
					if err != nil {
						return nil, err
					}
					// Serial BER dominates (long reach); the short-reach
					// parallel PHY runs two orders cleaner; on-chip wires
					// are ideal. BER 0 attaches nothing at all, making that
					// column the machinery-off baseline.
					fault.Attach(in.Net, fault.Config{
						SerialBER:   ber,
						ParallelBER: ber / 100,
						Seed:        o.FaultSeed,
					})
					chk := fault.NewIntegrityChecker(in.Net)
					if err := in.RunSynthetic(traffic.Uniform{}, load); err != nil {
						return nil, err
					}
					if drained, err := in.Net.Drain(); err != nil || !drained {
						return nil, fmt.Errorf("drain: drained=%v err=%v", drained, err)
					}
					if err := chk.Check(in.Net); err != nil {
						return nil, err
					}
					r := in.Measure("hetero-phy-"+pol.name, fmt.Sprintf("uniform-ber%g", ber), load)
					rows[pi*len(bers)+bi] = &relRow{res: r, sum: fault.Summarize(in.Net)}
					return []Result{r}, nil
				},
			})
		}
	}

	// Scenario 2: permanent serial-PHY outage at SimCycles/4 on every
	// adapter (plain serial wraparounds stay healthy — there is no
	// alternate PHY behind them to fail over to).
	type downRow struct {
		policy    string
		live      bool
		trips     uint64
		sum       fault.Summary
		delivered int64
		injected  int64
	}
	downAt := cfg.SimCycles / 4
	downPolicies := []struct {
		name string
		mk   func() core.Policy
	}{
		{"serial-preferred", func() core.Policy { return serialPreferred{} }},
		{"failover+serial-preferred", func() core.Policy { return core.NewFailoverPolicy(serialPreferred{}) }},
	}
	downRows := make([]*downRow, len(downPolicies))
	for i, pol := range downPolicies {
		i, pol := i, pol
		jobs = append(jobs, pointJob{
			key: "fault/serial-down/" + pol.name,
			run: func() ([]Result, error) {
				in, err := Build(cfg, spec(pol.mk()))
				if err != nil {
					return nil, err
				}
				fault.Attach(in.Net, fault.Config{
					Seed: o.FaultSeed,
					Events: []fault.Event{
						{Kind: fault.EventDown, Link: -1, Phy: fault.PhySerial, From: downAt, To: -1},
					},
				})
				chk := fault.NewIntegrityChecker(in.Net)
				row := &downRow{policy: pol.name}
				// The baseline is EXPECTED to starve or deadlock here —
				// that outcome is the data point, not a job failure.
				err = in.RunSynthetic(traffic.Uniform{}, 0.05)
				if err == nil {
					drained, derr := in.Net.Drain()
					row.live = derr == nil && drained && chk.Check(in.Net) == nil
				}
				row.sum = fault.Summarize(in.Net)
				row.delivered = in.Net.PacketsDelivered()
				row.injected = in.Net.PacketsInjected()
				for _, ad := range in.Topo.Adapters {
					if fp, ok := ad.Policy().(*core.FailoverPolicy); ok {
						row.trips += fp.Trips()
					}
				}
				downRows[i] = row
				return nil, nil
			},
		})
	}

	if _, err := runJobs(o, jobs); err != nil {
		return err
	}

	var all []Result
	var tbl [][]string
	fmt.Fprintf(w, "--- serial-BER sweep, uniform @ %.2f, hetero-PHY torus ---\n", load)
	for pi, pol := range policies {
		base := rows[pi*len(bers)]
		for bi, ber := range bers {
			row := rows[pi*len(bers)+bi]
			if row == nil {
				return fmt.Errorf("fault: missing row for %s/ber-%g", pol.name, ber)
			}
			degrade := row.res.MeanLatency / base.res.MeanLatency
			fmt.Fprintf(w, "%-22s ber=%-7g lat=%7.1f (x%.3f) retry-rate=%.4f retx=%d delivered-ok=true\n",
				pol.name, ber, row.res.MeanLatency, degrade, row.sum.RetryRate(), row.sum.Retransmits)
			all = append(all, row.res)
			tbl = append(tbl, []string{
				pol.name, strconv.FormatFloat(ber, 'g', -1, 64),
				strconv.FormatFloat(row.res.MeanLatency, 'f', 2, 64),
				strconv.FormatFloat(degrade, 'f', 4, 64),
				strconv.FormatFloat(row.sum.RetryRate(), 'f', 5, 64),
				strconv.FormatUint(row.sum.Transmits, 10),
				strconv.FormatUint(row.sum.Retransmits, 10),
				strconv.FormatInt(int64(row.sum.Sites), 10),
				"true",
			})
		}
	}

	fmt.Fprintf(w, "\n--- scripted serial-PHY outage at cycle %d, uniform @ 0.05 ---\n", downAt)
	var dtbl [][]string
	for _, row := range downRows {
		if row == nil {
			return fmt.Errorf("fault: missing serial-down row")
		}
		fmt.Fprintf(w, "%-26s live=%-5v delivered=%d/%d trips=%d rescued=%d evicted=%d\n",
			row.policy, row.live, row.delivered, row.injected, row.trips, row.sum.Rescued, row.sum.Evicted)
		dtbl = append(dtbl, []string{
			row.policy, strconv.FormatBool(row.live),
			strconv.FormatInt(row.delivered, 10), strconv.FormatInt(row.injected, 10),
			strconv.FormatUint(row.trips, 10), strconv.FormatUint(row.sum.Rescued, 10),
		})
	}
	baseline, failover := downRows[0], downRows[1]
	if baseline.live {
		return fmt.Errorf("fault: serial-preferred baseline survived a permanent serial outage (delivered %d/%d) — starvation expected", baseline.delivered, baseline.injected)
	}
	if !failover.live {
		return fmt.Errorf("fault: failover policy did not keep the network live through the serial outage (delivered %d/%d, %d trips, %d rescued)",
			failover.delivered, failover.injected, failover.trips, failover.sum.Rescued)
	}
	if failover.trips == 0 || failover.sum.Rescued == 0 {
		return fmt.Errorf("fault: failover stayed live without tripping (%d) or rescuing (%d) — outage not exercised", failover.trips, failover.sum.Rescued)
	}

	fmt.Fprintln(w, "\nretry keeps delivery exactly-once at every BER; the failure-aware")
	fmt.Fprintln(w, "policy detects the dead serial PHY from retry telemetry, rescues the")
	fmt.Fprintln(w, "stuck flits onto the parallel PHY and keeps the network live where")
	fmt.Fprintln(w, "the serial-only baseline starves.")

	if err := emitResults(o, "fault", all); err != nil {
		return err
	}
	if err := emitTable(o, "fault-reliability",
		[]string{"policy", "serial_ber", "mean_latency", "latency_degradation", "retry_rate", "transmits", "retransmits", "sites", "delivered_ok"}, tbl); err != nil {
		return err
	}
	return emitTable(o, "fault-failover",
		[]string{"policy", "live", "delivered", "injected", "trips", "rescued"}, dtbl)
}
