package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"heteroif/internal/network"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// runFault quantifies Sec. 9 "Fault tolerance": hetero-IF systems carry
// extra channel diversity, so killing a growing fraction of their
// *adaptive* channels (serial wraparounds / cube links) degrades latency
// gracefully while every packet still delivers over the escape subnetwork.
func runFault(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	rng := rand.New(rand.NewSource(cfg.Seed + 97))
	fracs := []float64{0, 0.1, 0.25, 0.5, 1.0}
	if o.Tiny {
		fracs = []float64{0, 0.5}
	}
	cx := pick(o, 4, 4, 2)

	var rows [][]string
	for _, sys := range []topology.System{topology.HeteroPHYTorus, topology.HeteroChannel} {
		fmt.Fprintf(w, "--- %s: uniform @ 0.1 with failed adaptive channels ---\n", sys)
		for _, frac := range fracs {
			in, err := Build(cfg, topology.Spec{System: sys, ChipletsX: cx, ChipletsY: cx, NodesX: 4, NodesY: 4})
			if err != nil {
				return err
			}
			failed, failable := 0, 0
			for n := range in.Topo.OutPorts {
				for port := 1; port < len(in.Topo.OutPorts[n]); port++ {
					p := &in.Topo.OutPorts[n][port]
					if !p.Wrap && p.CubeDim < 0 {
						continue
					}
					failable++
					if rng.Float64() >= frac {
						continue
					}
					if err := in.Topo.FailLink(network.NodeID(n), port); err == nil {
						failed++
					}
				}
			}
			if err := in.RunSynthetic(traffic.Uniform{}, 0.1); err != nil {
				return fmt.Errorf("%v with %d faults: %w", sys, failed, err)
			}
			drained, err := in.Net.Drain()
			if err != nil || !drained {
				return fmt.Errorf("%v with %d faults did not drain: %v", sys, failed, err)
			}
			delivered := in.Net.PacketsDelivered() == in.Net.PacketsInjected()
			fmt.Fprintf(w, "failed %3d/%3d adaptive links: lat=%7.1f cycles, all delivered=%v\n",
				failed, failable, in.Stats.MeanLatency(), delivered)
			rows = append(rows, []string{
				sys.String(), strconv.Itoa(failed), strconv.Itoa(failable),
				strconv.FormatFloat(in.Stats.MeanLatency(), 'f', 2, 64),
				strconv.FormatBool(delivered),
			})
			if !delivered {
				return fmt.Errorf("%v lost packets with %d faults", sys, failed)
			}
		}
	}
	fmt.Fprintln(w, "\nall traffic delivered at every fault level: the escape subnetwork")
	fmt.Fprintln(w, "guarantees connectivity; the surviving adaptive channels soften the")
	fmt.Fprintln(w, "latency loss (Sec. 9: diversity improves fault tolerance).")
	return writeCSV(o.CSVDir, "fault", []string{"system", "failed_links", "failable_links", "mean_latency", "all_delivered"}, rows)
}

// runCompromised evaluates the Sec. 2.2 "compromised interface" (BoW/UCIe-
// style middle ground: better latency than SerDes, better reach than AIB,
// outstanding at neither) as a simulated system — an extension beyond the
// paper's analytical Fig. 8 treatment. The compromised uniform interface is
// modeled with 3-flit/cycle links at 10-cycle delay and 0.7 pJ/bit
// (BoW-like, Table 1) on the torus wiring.
func runCompromised(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	cc := pick(o, 4, 4, 2)
	bow := cfg
	bow.SerialBandwidth = 3
	bow.SerialDelay = 10
	bow.SerialPJPerBit = 0.7
	vs := []variant{
		{"uniform-parallel-mesh", cfg, topology.Spec{System: topology.UniformParallelMesh, ChipletsX: cc, ChipletsY: cc, NodesX: 4, NodesY: 4}},
		{"uniform-serial-torus", cfg, topology.Spec{System: topology.UniformSerialTorus, ChipletsX: cc, ChipletsY: cc, NodesX: 4, NodesY: 4}},
		{"compromised-bow-torus", bow, topology.Spec{System: topology.UniformSerialTorus, ChipletsX: cc, ChipletsY: cc, NodesX: 4, NodesY: 4}},
		{"hetero-phy-full", cfg, topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: cc, ChipletsY: cc, NodesX: 4, NodesY: 4}},
	}
	var all []Result
	for _, rate := range []float64{0.05, 0.2, 0.4} {
		fmt.Fprintf(w, "--- compromised-IF comparison, uniform @ %.2f ---\n", rate)
		for _, v := range vs {
			r, err := runPoint(v, traffic.Uniform{}, rate)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, r)
			all = append(all, r)
		}
	}
	fmt.Fprintln(w, "\nthe compromised interface improves hugely on the serial torus and is")
	fmt.Fprintln(w, "honestly competitive at this scale: behind the mesh and hetero-IF at")
	fmt.Fprintln(w, "low load (its 10-cycle hop tax), ahead once the mesh saturates. What")
	fmt.Fprintln(w, "the flit-level model cannot show is the Sec. 2.2 structural point:")
	fmt.Fprintln(w, "BoW's 32 Gbps per-lane ceiling caps how far the 3-flit/cycle links")
	fmt.Fprintln(w, "scale, while the hetero-IF keeps the full serial data rate in reserve")
	fmt.Fprintln(w, "and the parallel PHY's energy at short reach.")
	return writeCSV(o.CSVDir, "compromised", resultHeader, resultRows(all))
}
