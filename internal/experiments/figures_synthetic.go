package experiments

import (
	"fmt"
	"io"
	"strconv"

	"heteroif/internal/core"
	"heteroif/internal/network"
	"heteroif/internal/phymodel"
	"heteroif/internal/routing"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// runTable1 prints the interface specification constants (Table 1).
func runTable1(o Options, w io.Writer) error {
	fmt.Fprintf(w, "%-8s %14s %12s %12s %10s\n", "IF", "DataRate(Gbps)", "Latency(ns)", "Power(pJ/b)", "Reach(mm)")
	var rows [][]string
	for _, s := range phymodel.Table1() {
		fmt.Fprintf(w, "%-8s %14.1f %12.1f %12.2f %10.0f\n", s.Name, s.DataRateGbps, s.LatencyNS, s.PJPerBit, s.ReachMM)
		rows = append(rows, []string{s.Name,
			strconv.FormatFloat(s.DataRateGbps, 'f', 1, 64),
			strconv.FormatFloat(s.LatencyNS, 'f', 1, 64),
			strconv.FormatFloat(s.PJPerBit, 'f', 2, 64),
			strconv.FormatFloat(s.ReachMM, 'f', 0, 64)})
	}
	return emitTable(o, "table1", []string{"interface", "data_rate_gbps", "latency_ns", "pj_per_bit", "reach_mm"}, rows)
}

// runFig08 emits the V–t curves of Eq. 2 for the uniform, compromised and
// heterogeneous interfaces, in Table 2 units (flits/cycle, cycles).
// (a) full interfaces; (b) pin-constrained halves (the total I/O count of
// the hetero-IF matches one full uniform interface).
func runFig08(o Options, w io.Writer) error {
	parallel := phymodel.Interface{Name: "parallel", Bandwidth: 2, Delay: 5}
	serial := phymodel.Interface{Name: "serial", Bandwidth: 4, Delay: 20}
	compromised := phymodel.Interface{Name: "compromised", Bandwidth: 3, Delay: 10}
	heteroFull := phymodel.HeteroIF{Parallel: parallel, Serial: serial}
	heteroHalf := phymodel.HeteroIF{
		Parallel: phymodel.Interface{Name: "parallel/2", Bandwidth: 1, Delay: 5},
		Serial:   phymodel.Interface{Name: "serial/2", Bandwidth: 2, Delay: 20},
	}

	fmt.Fprintln(w, "V(t) in flits (Eq. 2), t in cycles")
	fmt.Fprintf(w, "%6s %10s %10s %12s %12s %12s\n", "t", "parallel", "serial", "compromised", "hetero-full", "hetero-half")
	var rows [][]string
	for t := int64(0); t <= 60; t += 5 {
		ft := float64(t)
		vals := []float64{parallel.V(ft), serial.V(ft), compromised.V(ft), heteroFull.V(ft), heteroHalf.V(ft)}
		fmt.Fprintf(w, "%6d %10.1f %10.1f %12.1f %12.1f %12.1f\n", t, vals[0], vals[1], vals[2], vals[3], vals[4])
		row := []string{strconv.FormatInt(t, 10)}
		for _, v := range vals {
			row = append(row, strconv.FormatFloat(v, 'f', 1, 64))
		}
		rows = append(rows, row)
	}
	fmt.Fprintf(w, "\ncrossover serial-over-parallel at t=%.1f cycles\n", phymodel.CrossoverTime(parallel, serial))
	fmt.Fprintf(w, "Fig 8(a) property: hetero-full(t) >= max(parallel, serial) for all t (combines both advantages)\n")
	fmt.Fprintf(w, "Fig 8(b) property: hetero-half keeps the parallel t-intercept (%.0f cycles) with %d%% of the serial slope\n",
		heteroHalf.Parallel.Delay, 50)
	return emitTable(o, "fig08", []string{"t", "parallel", "serial", "compromised", "hetero_full", "hetero_half"}, rows)
}

// fig11Rates returns the injection-rate grid for the pattern sweeps.
func fig11Rates(o Options) []float64 {
	if o.Tiny {
		return []float64{0.05, 0.2}
	}
	if o.Full {
		return []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.60, 0.70}
	}
	return []float64{0.02, 0.10, 0.20, 0.30, 0.45}
}

// runPatternFigure is the shared driver for Figs. 11 and 14: a latency-vs-
// injection sweep over the six synthetic patterns and four systems. Each
// (pattern, variant) rate sweep is one orchestrator job — the patterns are
// immutable after construction, and every point builds its own instance,
// so the jobs are independent and the results identical at any o.Jobs.
func runPatternFigure(o Options, w io.Writer, name string, variants []variant, n int) error {
	pats := traffic.Patterns(n, baseConfig(o).Seed+5)
	if o.Tiny {
		pats = pats[:2] // uniform + hotspot
	}
	rates := fig11Rates(o)
	var jobs []pointJob
	for _, pat := range pats {
		for _, v := range variants {
			pat, v := pat, v
			jobs = append(jobs, pointJob{
				key: fmt.Sprintf("%s/%s/%s", name, pat.Name(), v.Name),
				run: func() ([]Result, error) { return sweepRates(v, pat, rates) },
			})
		}
	}
	outs, err := runJobs(o, jobs)
	var all []Result
	i := 0
	for _, pat := range pats {
		fmt.Fprintf(w, "--- %s / %s ---\n", name, pat.Name())
		plot := &asciiPlot{Title: fmt.Sprintf("%s / %s: latency vs injection rate", name, pat.Name())}
		for _, v := range variants {
			rs := outs[i]
			i++
			for _, r := range rs {
				fmt.Fprintln(w, r)
			}
			plot.add(v.Name, rs)
			all = append(all, rs...)
		}
		plot.render(w)
	}
	if e := emitResults(o, name, all); err == nil {
		err = e
	}
	return err
}

// runFig11 reproduces Figure 11: hetero-PHY-based 2D-torus vs the uniform
// baselines on six traffic patterns, 4×4 chiplets of 4×4 nodes (256 nodes).
func runFig11(o Options, w io.Writer) error {
	c := pick(o, 4, 4, 2)
	vs := heteroPHYVariants(baseConfig(o), c, c, 4, 4)
	return runPatternFigure(o, w, "fig11", vs, c*c*16)
}

// runFig14 reproduces Figure 14: hetero-channel vs uniform mesh/hypercube
// on six traffic patterns. Full mode uses the paper's 8×8 chiplets of 7×7
// nodes (3136 nodes); short mode scales down to 4×4 chiplets of 7×7 nodes
// (784 nodes) to stay CI-runnable.
func runFig14(o Options, w io.Writer) error {
	cx := pick(o, 8, 4, 2)
	nx := pick(o, 7, 7, 4)
	vs := heteroChannelVariants(baseConfig(o), cx, cx, nx, nx)
	return runPatternFigure(o, w, "fig14", vs, cx*cx*nx*nx)
}

// runTable3 reproduces Table 3: average latency reduction of the hetero-IF
// systems vs both uniform baselines at 0.1 flits/cycle/node uniform
// traffic, across five system scales.
func runTable3(o Options, w io.Writer) error {
	type scale struct {
		label          string
		cx, cy, nx, ny int
		heteroChannel  bool // hypercube systems need ≥4 power-of-2 chiplets
	}
	scales := []scale{
		{"4x(2x2)", 2, 2, 2, 2, true},
		{"16x(2x2)", 4, 4, 2, 2, true},
		{"16x(4x4)", 4, 4, 4, 4, true},
		{"16x(6x6)", 4, 4, 6, 6, true},
		{"64x(7x7)", 8, 8, 7, 7, true},
	}
	// The paper reports hetero-channel only for the three largest scales.
	scales[0].heteroChannel = false
	scales[1].heteroChannel = false
	if o.Tiny {
		scales = scales[:3]
	}

	const rate = 0.1
	cfg := baseConfig(o)

	// One job per measured system per scale (3 hetero-PHY comparisons
	// everywhere, plus 2 hetero-channel systems at the larger scales).
	var jobs []pointJob
	latJob := func(label string, v variant) pointJob {
		return point(fmt.Sprintf("table3/%s/%s", label, v.Name), func() (Result, error) {
			return runPoint(v, traffic.Uniform{}, rate)
		})
	}
	for _, s := range scales {
		phyVars := heteroPHYVariants(cfg, s.cx, s.cy, s.nx, s.ny)
		jobs = append(jobs, latJob(s.label, phyVars[0]), latJob(s.label, phyVars[1]), latJob(s.label, phyVars[2]))
		if s.heteroChannel {
			chVars := heteroChannelVariants(cfg, s.cx, s.cy, s.nx, s.ny)
			jobs = append(jobs, latJob(s.label, chVars[1]), latJob(s.label, chVars[2]))
		}
	}
	outs, err := runJobs(o, jobs)
	if err != nil {
		return err
	}
	lat := func(i int) float64 { return outs[i][0].MeanLatency }

	fmt.Fprintf(w, "%-10s %-16s %-16s\n", "Scale", "Hetero-PHY", "Hetero-Channel")
	var rows [][]string
	i := 0
	for _, s := range scales {
		latPar, latSer, latPHY := lat(i), lat(i+1), lat(i+2)
		i += 3
		phyRed := fmt.Sprintf("%.1f%% / %.1f%%", 100*(1-latPHY/latPar), 100*(1-latPHY/latSer))
		chRed := "-"
		if s.heteroChannel {
			latCube, latCh := lat(i), lat(i+1)
			i += 2
			chRed = fmt.Sprintf("%.1f%% / %.1f%%", 100*(1-latCh/latPar), 100*(1-latCh/latCube))
		}
		fmt.Fprintf(w, "%-10s %-16s %-16s\n", s.label, phyRed, chRed)
		rows = append(rows, []string{s.label, phyRed, chRed})
	}
	return emitTable(o, "table3", []string{"scale", "hetero_phy_vs_parallel/serial", "hetero_channel_vs_parallel/serial"}, rows)
}

// energyVariantsPHY returns the Fig. 16(a)/17(a) systems: the two uniform
// baselines plus hetero-PHY with balanced and with energy-efficient
// adapter scheduling.
func energyVariantsPHY(cfg network.Config, cx, cy, nx, ny int) []variant {
	spec := func(s topology.System, pol string) topology.Spec {
		sp := topology.Spec{System: s, ChipletsX: cx, ChipletsY: cy, NodesX: nx, NodesY: ny}
		if pol == "energy" {
			sp.Policy = core.EnergyEfficient{}
		}
		return sp
	}
	return []variant{
		{"uniform-parallel-mesh", cfg, spec(topology.UniformParallelMesh, "")},
		{"uniform-serial-torus", cfg, spec(topology.UniformSerialTorus, "")},
		{"hetero-phy-balanced", cfg, spec(topology.HeteroPHYTorus, "")},
		{"hetero-phy-energy-eff", cfg, spec(topology.HeteroPHYTorus, "energy")},
	}
}

// runEnergyPoint builds a variant (optionally swapping in the
// energy-efficient Eq. 5 bias for hetero-channel systems) and measures one
// operating point.
func runEnergyPoint(v variant, energyBias bool, pat traffic.Pattern, rate float64) (Result, error) {
	in, err := Build(v.Cfg, v.Spec)
	if err != nil {
		return Result{}, err
	}
	if energyBias && v.Spec.System == topology.HeteroChannel {
		in.Net.Routing = &routing.HeteroChannel{
			T:    in.Topo,
			Bias: v.Cfg.SerialPJPerBit / v.Cfg.ParallelPJPerBit,
		}
	}
	if err := in.RunSynthetic(pat, rate); err != nil {
		return Result{}, err
	}
	return in.Measure(v.Name, pat.Name(), rate), nil
}

// runFig16 reproduces Figure 16: average per-packet energy on uniform
// traffic at 0.1 flits/cycle/node. (a) hetero-PHY on the large 2D system
// (6×6 chiplets of 6×6 nodes); (b) hetero-channel on the large cube system.
func runFig16(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	cp := pick(o, 6, 6, 2)
	np := pick(o, 6, 6, 4)
	cx := pick(o, 8, 4, 2)
	nn := pick(o, 7, 7, 4)

	var jobs []pointJob
	phyVars := energyVariantsPHY(cfg, cp, cp, np, np)
	for _, v := range phyVars {
		v := v
		jobs = append(jobs, point("fig16/phy/"+v.Name, func() (Result, error) {
			return runEnergyPoint(v, false, traffic.Uniform{}, 0.1)
		}))
	}
	chVars := heteroChannelVariants(cfg, cx, cx, nn, nn)
	chSet := []variant{chVars[0], chVars[1], chVars[2], chVars[2]}
	for i, v := range chSet {
		i, v := i, v
		name := v.Name
		if i == 3 {
			name = "hetero-channel-energy-eff"
		}
		jobs = append(jobs, point("fig16/channel/"+name, func() (Result, error) {
			r, err := runEnergyPoint(v, i == 3, traffic.Uniform{}, 0.1)
			r.System = name
			return r, err
		}))
	}
	outs, err := runJobs(o, jobs)
	if err != nil {
		return err
	}

	var all []Result
	printPoint := func(r Result) {
		fmt.Fprintf(w, "%-26s energy/pkt=%8.1f pJ (on-chip %.1f + interface %.1f), lat=%.1f\n",
			r.System, r.EnergyPJ, r.EnergyOnChipPJ, r.EnergyIfacePJ, r.MeanLatency)
		all = append(all, r)
	}
	fmt.Fprintf(w, "--- Fig 16(a): hetero-PHY, %dx%d chiplets of %dx%d nodes, uniform @ 0.1 ---\n", cp, cp, np, np)
	for i := range phyVars {
		printPoint(outs[i][0])
	}
	fmt.Fprintf(w, "--- Fig 16(b): hetero-channel, %dx%d chiplets of %dx%d nodes, uniform @ 0.1 ---\n", cx, cx, nn, nn)
	for i := range chSet {
		printPoint(outs[len(phyVars)+i][0])
	}
	return emitResults(o, "fig16", all)
}

// runFig18 reproduces Figure 18: average per-packet energy as the traffic
// locality scale varies (communication confined to k×k chiplet blocks),
// uniform @ 0.01 flits/cycle/node, on the hetero-channel system.
func runFig18(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	cx := pick(o, 8, 4, 2)
	nn := pick(o, 7, 7, 4)
	scales := []int{1, 2, 4, 8}
	if !o.Full {
		scales = []int{1, 2, 4}
	}
	if o.Tiny {
		scales = []int{1, 2}
	}
	vars := heteroChannelVariants(cfg, cx, cx, nn, nn)[:3]
	var jobs []pointJob
	for _, k := range scales {
		for _, v := range vars {
			k, v := k, v
			jobs = append(jobs, point(fmt.Sprintf("fig18/scale%d/%s", k, v.Name), func() (Result, error) {
				pat := &traffic.LocalUniform{
					ChipletsX: cx, NodesX: nn, NodesY: nn, GX: cx * nn,
					BlockChiplets: k,
				}
				return runEnergyPoint(v, false, pat, 0.01)
			}))
		}
	}
	outs, err := runJobs(o, jobs)
	if err != nil {
		return err
	}
	var all []Result
	i := 0
	for _, k := range scales {
		fmt.Fprintf(w, "--- Fig 18: local scale %dx%d chiplets ---\n", k, k)
		for range vars {
			r := outs[i][0]
			i++
			fmt.Fprintf(w, "%-26s scale=%d energy/pkt=%8.1f pJ (on-chip %.1f + interface %.1f)\n",
				r.System, k, r.EnergyPJ, r.EnergyOnChipPJ, r.EnergyIfacePJ)
			all = append(all, r)
		}
	}
	return emitResults(o, "fig18", all)
}
