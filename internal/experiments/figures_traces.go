package experiments

import (
	"fmt"
	"io"

	"heteroif/internal/network"
	"heteroif/internal/routing"
	"heteroif/internal/topology"
	"heteroif/internal/trace"
)

// replayPoint builds a variant, replays a trace at the given speedup, and
// measures the result. energyBias enables the Eq. 5 energy weighting on
// hetero-channel systems.
func replayPoint(v variant, tr *trace.Trace, speedup float64, energyBias bool) (Result, error) {
	in, err := Build(v.Cfg, v.Spec)
	if err != nil {
		return Result{}, err
	}
	if energyBias && v.Spec.System == topology.HeteroChannel {
		in.Net.Routing = &routing.HeteroChannel{
			T:    in.Topo,
			Bias: v.Cfg.SerialPJPerBit / v.Cfg.ParallelPJPerBit,
		}
	}
	m, err := rankMap(in.Topo, int(tr.Ranks))
	if err != nil {
		return Result{}, err
	}
	rep, err := trace.NewReplayer(tr, in.Net, m, speedup)
	if err != nil {
		return Result{}, err
	}
	rep.MeasureFrom = v.Cfg.WarmupCycles
	if err := in.Net.Run(v.Cfg.SimCycles, rep.Drive); err != nil {
		return Result{}, fmt.Errorf("%s/%s: %w", v.Name, tr.Name, err)
	}
	r := in.Measure(v.Name, tr.Name, rep.ActualOfferedRate(in.Net.Now, in.Topo.N))
	return r, nil
}

// rankMap places trace ranks onto nodes. When ranks fit, it spreads them
// evenly across chiplets using each chiplet's core (interior) nodes first —
// the Sec. 8.1.2 "core nodes of each chiplet" placement; when the system is
// smaller than the rank space (short-mode runs only), ranks wrap around.
func rankMap(t *topology.Topo, ranks int) ([]network.NodeID, error) {
	var cores []network.NodeID
	perChiplet := ranks / (t.ChipletsX * t.ChipletsY)
	if perChiplet == 0 {
		perChiplet = 1
	}
	// Interior nodes per chiplet, row-major.
	var interior [][2]int
	for ny := 0; ny < t.NodesY; ny++ {
		for nx := 0; nx < t.NodesX; nx++ {
			if t.NodesX > 2 && t.NodesY > 2 &&
				(nx == 0 || ny == 0 || nx == t.NodesX-1 || ny == t.NodesY-1) {
				continue
			}
			interior = append(interior, [2]int{nx, ny})
		}
	}
	for c := 0; c < t.ChipletsX*t.ChipletsY; c++ {
		ox, oy := t.ChipletOrigin(c)
		for i := 0; i < perChiplet && i < len(interior); i++ {
			cores = append(cores, t.NodeAt(ox+interior[i][0], oy+interior[i][1]))
		}
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("experiments: no core nodes available for rank mapping")
	}
	m := make([]network.NodeID, ranks)
	for r := range m {
		m[r] = cores[r%len(cores)]
	}
	return m, nil
}

// runFig12 reproduces Figure 12: PARSEC traces on the 64-node systems
// (4×4 chiplets of 2×2 nodes), reporting average latency and its standard
// deviation per workload for the four hetero-PHY comparison systems.
func runFig12(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	workloads := trace.PARSECWorkloads()
	if !o.Full {
		workloads = []string{"blackscholes", "canneal", "fluidanimate", "x264"}
	}
	if o.Tiny {
		workloads = workloads[:1]
	}
	vs := heteroPHYVariants(cfg, 4, 4, 2, 2)
	var all []Result
	for _, wl := range workloads {
		tr, err := trace.GeneratePARSEC(wl, cfg.SimCycles, cfg.Seed+31)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "--- fig12 / %s (offered %.4f flits/cycle/node) ---\n", wl, tr.OfferedRate())
		for _, v := range vs {
			r, err := replayPoint(v, tr, 1, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-26s lat=%7.1f ± %6.1f cycles, p99=%5d, %d pkts\n",
				r.System, r.MeanLatency, r.StdDev, r.P99Latency, r.Packets)
			all = append(all, r)
		}
	}
	return writeCSV(o.CSVDir, "fig12", resultHeader, resultRows(all))
}

// hpcTargets is the Fig. 13/15 injection-rate sweep in flits/cycle/node:
// the same trace is time-compressed so its offered load hits each target,
// which gives the same x-axis as the paper's curves.
func hpcTargets(o Options) []float64 {
	if o.Tiny {
		return []float64{0.05}
	}
	if o.Full {
		return []float64{0.05, 0.10, 0.20, 0.40, 0.80}
	}
	return []float64{0.05, 0.15, 0.40}
}

// runHPCFigure is the shared driver for Figs. 13 and 15.
func runHPCFigure(o Options, w io.Writer, name string, vs []variant, nodes int) error {
	cfg := baseConfig(o)
	mult := int64(4)
	if o.Full {
		mult = 8 // enough trace to cover the window at the highest target
	}
	var all []Result
	for _, gen := range []func() *trace.Trace{
		func() *trace.Trace { return trace.GenerateCNS(cfg.SimCycles*mult, cfg.Seed+41) },
		func() *trace.Trace { return trace.GenerateMOC(cfg.SimCycles*mult, cfg.Seed+43) },
	} {
		base := gen()
		flits := float64(base.TotalFlits())
		plot := &asciiPlot{Title: fmt.Sprintf("%s / %s: latency vs offered load", name, base.Name)}
		perVariant := make(map[string][]Result)
		var order []string
		for _, target := range hpcTargets(o) {
			// offered = flits / (duration/speedup) / nodes ⇒ speedup.
			speedup := target * float64(nodes) * float64(base.Cycles) / flits
			fmt.Fprintf(w, "--- %s / %s target=%.2f flits/cycle/node (speedup %.2f) ---\n",
				name, base.Name, target, speedup)
			for _, v := range vs {
				r, err := replayPoint(v, base, speedup, false)
				if err != nil {
					return err
				}
				fmt.Fprintln(w, r)
				all = append(all, r)
				if _, seen := perVariant[v.Name]; !seen {
					order = append(order, v.Name)
				}
				perVariant[v.Name] = append(perVariant[v.Name], r)
			}
		}
		for _, vn := range order {
			plot.add(vn, perVariant[vn])
		}
		plot.render(w)
	}
	return writeCSV(o.CSVDir, name, resultHeader, resultRows(all))
}

// runFig13 reproduces Figure 13: HPC traces (CNS and MOC) on the 1296-node
// hetero-PHY systems (6×6 chiplets of 6×6 nodes; the 1024 ranks spread
// across chiplet cores).
func runFig13(o Options, w io.Writer) error {
	cx := pick(o, 6, 4, 2)
	nx := pick(o, 6, 4, 4)
	vs := heteroPHYVariants(baseConfig(o), cx, cx, nx, nx)
	return runHPCFigure(o, w, "fig13", vs, cx*cx*nx*nx)
}

// runFig15 reproduces Figure 15: HPC traces on the 3136-node
// hetero-channel systems (8×8 chiplets of 7×7 nodes, ranks on core nodes).
func runFig15(o Options, w io.Writer) error {
	cx := pick(o, 8, 4, 2)
	nx := pick(o, 7, 7, 4)
	vs := heteroChannelVariants(baseConfig(o), cx, cx, nx, nx)
	return runHPCFigure(o, w, "fig15", vs, cx*cx*nx*nx)
}

// runFig17 reproduces Figure 17: average per-packet energy on the MOC
// trace. (a) hetero-PHY systems; (b) hetero-channel systems including the
// energy-efficient Eq. 5 bias.
func runFig17(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	moc := trace.GenerateMOC(cfg.SimCycles, cfg.Seed+43)
	var all []Result

	cxPHY := pick(o, 6, 4, 2)
	nxPHY := pick(o, 6, 4, 4)
	cxCh := pick(o, 8, 4, 2)
	nCh := pick(o, 7, 7, 4)
	fmt.Fprintln(w, "--- Fig 17(a): hetero-PHY on MOC ---")
	for _, v := range energyVariantsPHY(cfg, cxPHY, cxPHY, nxPHY, nxPHY) {
		r, err := replayPoint(v, moc, 1, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-26s energy/pkt=%8.1f pJ (on-chip %.1f + interface %.1f)\n",
			r.System, r.EnergyPJ, r.EnergyOnChipPJ, r.EnergyIfacePJ)
		all = append(all, r)
	}
	fmt.Fprintln(w, "--- Fig 17(b): hetero-channel on MOC ---")
	chVars := heteroChannelVariants(cfg, cxCh, cxCh, nCh, nCh)
	for i, v := range []variant{chVars[0], chVars[1], chVars[2], chVars[2]} {
		bias := i == 3
		r, err := replayPoint(v, moc, 1, bias)
		if err != nil {
			return err
		}
		if bias {
			r.System = "hetero-channel-energy-eff"
		}
		fmt.Fprintf(w, "%-26s energy/pkt=%8.1f pJ (on-chip %.1f + interface %.1f)\n",
			r.System, r.EnergyPJ, r.EnergyOnChipPJ, r.EnergyIfacePJ)
		all = append(all, r)
	}
	return writeCSV(o.CSVDir, "fig17", resultHeader, resultRows(all))
}
