package experiments

import (
	"fmt"
	"io"

	"heteroif/internal/network"
	"heteroif/internal/routing"
	"heteroif/internal/topology"
	"heteroif/internal/trace"
)

// replayPoint builds a variant, replays a trace at the given speedup, and
// measures the result. energyBias enables the Eq. 5 energy weighting on
// hetero-channel systems.
func replayPoint(v variant, tr *trace.Trace, speedup float64, energyBias bool) (Result, error) {
	in, err := Build(v.Cfg, v.Spec)
	if err != nil {
		return Result{}, err
	}
	if energyBias && v.Spec.System == topology.HeteroChannel {
		in.Net.Routing = &routing.HeteroChannel{
			T:    in.Topo,
			Bias: v.Cfg.SerialPJPerBit / v.Cfg.ParallelPJPerBit,
		}
	}
	m, err := rankMap(in.Topo, int(tr.Ranks))
	if err != nil {
		return Result{}, err
	}
	rep, err := trace.NewReplayer(tr, in.Net, m, speedup)
	if err != nil {
		return Result{}, err
	}
	rep.MeasureFrom = v.Cfg.WarmupCycles
	// Trace gaps are fast-forwarded: the replayer publishes its next
	// injection time, so idle stretches between communication phases cost
	// nothing.
	if err := in.Net.RunWith(v.Cfg.SimCycles, rep.Drive, rep.NextInjection); err != nil {
		return Result{}, fmt.Errorf("%s/%s: %w", v.Name, tr.Name, err)
	}
	r := in.Measure(v.Name, tr.Name, rep.ActualOfferedRate(in.Net.Now, in.Topo.N))
	return r, nil
}

// rankMap places trace ranks onto nodes. When ranks fit, it spreads them
// evenly across chiplets using each chiplet's core (interior) nodes first —
// the Sec. 8.1.2 "core nodes of each chiplet" placement; when the system is
// smaller than the rank space (short-mode runs only), ranks wrap around.
func rankMap(t *topology.Topo, ranks int) ([]network.NodeID, error) {
	var cores []network.NodeID
	perChiplet := ranks / (t.ChipletsX * t.ChipletsY)
	if perChiplet == 0 {
		perChiplet = 1
	}
	// Interior nodes per chiplet, row-major.
	var interior [][2]int
	for ny := 0; ny < t.NodesY; ny++ {
		for nx := 0; nx < t.NodesX; nx++ {
			if t.NodesX > 2 && t.NodesY > 2 &&
				(nx == 0 || ny == 0 || nx == t.NodesX-1 || ny == t.NodesY-1) {
				continue
			}
			interior = append(interior, [2]int{nx, ny})
		}
	}
	for c := 0; c < t.ChipletsX*t.ChipletsY; c++ {
		ox, oy := t.ChipletOrigin(c)
		for i := 0; i < perChiplet && i < len(interior); i++ {
			cores = append(cores, t.NodeAt(ox+interior[i][0], oy+interior[i][1]))
		}
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("experiments: no core nodes available for rank mapping")
	}
	m := make([]network.NodeID, ranks)
	for r := range m {
		m[r] = cores[r%len(cores)]
	}
	return m, nil
}

// runFig12 reproduces Figure 12: PARSEC traces on the 64-node systems
// (4×4 chiplets of 2×2 nodes), reporting average latency and its standard
// deviation per workload for the four hetero-PHY comparison systems.
func runFig12(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	workloads := trace.PARSECWorkloads()
	if !o.Full {
		workloads = []string{"blackscholes", "canneal", "fluidanimate", "x264"}
	}
	if o.Tiny {
		workloads = workloads[:1]
	}
	vs := heteroPHYVariants(cfg, 4, 4, 2, 2)

	// Traces are generated once up front (their generator state is
	// sequential), then shared read-only by the replay jobs.
	traces := make([]*trace.Trace, len(workloads))
	for i, wl := range workloads {
		tr, err := trace.GeneratePARSEC(wl, cfg.SimCycles, cfg.Seed+31)
		if err != nil {
			return err
		}
		traces[i] = tr
	}
	var jobs []pointJob
	for _, tr := range traces {
		for _, v := range vs {
			tr, v := tr, v
			jobs = append(jobs, point(fmt.Sprintf("fig12/%s/%s", tr.Name, v.Name), func() (Result, error) {
				return replayPoint(v, tr, 1, false)
			}))
		}
	}
	outs, err := runJobs(o, jobs)
	if err != nil {
		return err
	}
	var all []Result
	i := 0
	for ti, tr := range traces {
		fmt.Fprintf(w, "--- fig12 / %s (offered %.4f flits/cycle/node) ---\n", workloads[ti], tr.OfferedRate())
		for range vs {
			r := outs[i][0]
			i++
			fmt.Fprintf(w, "%-26s lat=%7.1f ± %6.1f cycles, p99=%5d, %d pkts\n",
				r.System, r.MeanLatency, r.StdDev, r.P99Latency, r.Packets)
			all = append(all, r)
		}
	}
	return emitResults(o, "fig12", all)
}

// hpcTargets is the Fig. 13/15 injection-rate sweep in flits/cycle/node:
// the same trace is time-compressed so its offered load hits each target,
// which gives the same x-axis as the paper's curves.
func hpcTargets(o Options) []float64 {
	if o.Tiny {
		return []float64{0.05}
	}
	if o.Full {
		return []float64{0.05, 0.10, 0.20, 0.40, 0.80}
	}
	return []float64{0.05, 0.15, 0.40}
}

// runHPCFigure is the shared driver for Figs. 13 and 15. The traces are
// generated once and shared read-only; each (trace, target, variant)
// replay is one orchestrator job.
func runHPCFigure(o Options, w io.Writer, name string, vs []variant, nodes int) error {
	cfg := baseConfig(o)
	mult := int64(4)
	if o.Full {
		mult = 8 // enough trace to cover the window at the highest target
	}
	traces := []*trace.Trace{
		trace.GenerateCNS(cfg.SimCycles*mult, cfg.Seed+41),
		trace.GenerateMOC(cfg.SimCycles*mult, cfg.Seed+43),
	}
	targets := hpcTargets(o)

	var jobs []pointJob
	speedups := make(map[*trace.Trace][]float64)
	for _, base := range traces {
		flits := float64(base.TotalFlits())
		for _, target := range targets {
			// offered = flits / (duration/speedup) / nodes ⇒ speedup.
			speedup := target * float64(nodes) * float64(base.Cycles) / flits
			speedups[base] = append(speedups[base], speedup)
			for _, v := range vs {
				base, v, speedup := base, v, speedup
				jobs = append(jobs, point(fmt.Sprintf("%s/%s@%.2f/%s", name, base.Name, target, v.Name),
					func() (Result, error) { return replayPoint(v, base, speedup, false) }))
			}
		}
	}
	outs, err := runJobs(o, jobs)
	if err != nil {
		return err
	}

	var all []Result
	i := 0
	for _, base := range traces {
		plot := &asciiPlot{Title: fmt.Sprintf("%s / %s: latency vs offered load", name, base.Name)}
		perVariant := make(map[string][]Result)
		var order []string
		for ti, target := range targets {
			fmt.Fprintf(w, "--- %s / %s target=%.2f flits/cycle/node (speedup %.2f) ---\n",
				name, base.Name, target, speedups[base][ti])
			for _, v := range vs {
				r := outs[i][0]
				i++
				fmt.Fprintln(w, r)
				all = append(all, r)
				if _, seen := perVariant[v.Name]; !seen {
					order = append(order, v.Name)
				}
				perVariant[v.Name] = append(perVariant[v.Name], r)
			}
		}
		for _, vn := range order {
			plot.add(vn, perVariant[vn])
		}
		plot.render(w)
	}
	return emitResults(o, name, all)
}

// runFig13 reproduces Figure 13: HPC traces (CNS and MOC) on the 1296-node
// hetero-PHY systems (6×6 chiplets of 6×6 nodes; the 1024 ranks spread
// across chiplet cores).
func runFig13(o Options, w io.Writer) error {
	cx := pick(o, 6, 4, 2)
	nx := pick(o, 6, 4, 4)
	vs := heteroPHYVariants(baseConfig(o), cx, cx, nx, nx)
	return runHPCFigure(o, w, "fig13", vs, cx*cx*nx*nx)
}

// runFig15 reproduces Figure 15: HPC traces on the 3136-node
// hetero-channel systems (8×8 chiplets of 7×7 nodes, ranks on core nodes).
func runFig15(o Options, w io.Writer) error {
	cx := pick(o, 8, 4, 2)
	nx := pick(o, 7, 7, 4)
	vs := heteroChannelVariants(baseConfig(o), cx, cx, nx, nx)
	return runHPCFigure(o, w, "fig15", vs, cx*cx*nx*nx)
}

// runFig17 reproduces Figure 17: average per-packet energy on the MOC
// trace. (a) hetero-PHY systems; (b) hetero-channel systems including the
// energy-efficient Eq. 5 bias.
func runFig17(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	moc := trace.GenerateMOC(cfg.SimCycles, cfg.Seed+43)

	cxPHY := pick(o, 6, 4, 2)
	nxPHY := pick(o, 6, 4, 4)
	cxCh := pick(o, 8, 4, 2)
	nCh := pick(o, 7, 7, 4)
	phyVars := energyVariantsPHY(cfg, cxPHY, cxPHY, nxPHY, nxPHY)
	chVars := heteroChannelVariants(cfg, cxCh, cxCh, nCh, nCh)
	chSet := []variant{chVars[0], chVars[1], chVars[2], chVars[2]}

	var jobs []pointJob
	for _, v := range phyVars {
		v := v
		jobs = append(jobs, point("fig17/phy/"+v.Name, func() (Result, error) {
			return replayPoint(v, moc, 1, false)
		}))
	}
	for i, v := range chSet {
		i, v := i, v
		name := v.Name
		if i == 3 {
			name = "hetero-channel-energy-eff"
		}
		jobs = append(jobs, point("fig17/channel/"+name, func() (Result, error) {
			r, err := replayPoint(v, moc, 1, i == 3)
			r.System = name
			return r, err
		}))
	}
	outs, err := runJobs(o, jobs)
	if err != nil {
		return err
	}

	var all []Result
	printPoint := func(r Result) {
		fmt.Fprintf(w, "%-26s energy/pkt=%8.1f pJ (on-chip %.1f + interface %.1f)\n",
			r.System, r.EnergyPJ, r.EnergyOnChipPJ, r.EnergyIfacePJ)
		all = append(all, r)
	}
	fmt.Fprintln(w, "--- Fig 17(a): hetero-PHY on MOC ---")
	for i := range phyVars {
		printPoint(outs[i][0])
	}
	fmt.Fprintln(w, "--- Fig 17(b): hetero-channel on MOC ---")
	for i := range chSet {
		printPoint(outs[len(phyVars)+i][0])
	}
	return emitResults(o, "fig17", all)
}
