package experiments

import (
	"testing"

	"heteroif/internal/core"
	"heteroif/internal/network"
	"heteroif/internal/phymodel"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// TestHeteroLinkInNetworkEq1 drives a hetero-PHY system with in-order
// traffic at high load and checks the reorder buffers stay within the
// Eq. 1 capacity estimate (S_rob = B_p × (D_s − D_p)) plus one cycle of
// arrival slack — the paper's sizing argument, validated in situ.
func TestHeteroLinkInNetworkEq1(t *testing.T) {
	cfg := shortCfg()
	cfg.SimCycles = 6000
	spec := topology.Spec{
		System:    topology.HeteroPHYTorus,
		ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2,
		Policy: core.PerformanceFirst{}, // maximum PHY mixing → worst-case reordering
	}
	in, err := Build(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	gen := traffic.NewGenerator(in.Net, traffic.Uniform{}, 0.5, 23)
	gen.Class = network.ClassInOrder
	if err := in.Net.Run(cfg.SimCycles, gen.Drive); err != nil {
		t.Fatal(err)
	}
	if in.Net.PacketsDelivered() == 0 {
		t.Fatal("nothing delivered")
	}
	bound := phymodel.ROBCapacity(cfg.ParallelBandwidth, cfg.SerialDelay, cfg.ParallelDelay)
	slack := cfg.ParallelBandwidth + cfg.SerialBandwidth
	maxSeen, serialUsed := 0, uint64(0)
	for _, a := range in.Topo.Adapters {
		if a.MaxROBOccupancy() > maxSeen {
			maxSeen = a.MaxROBOccupancy()
		}
		serialUsed += a.SerialFlits()
	}
	if serialUsed == 0 {
		t.Fatal("performance-first never used the serial PHY; reordering untested")
	}
	if maxSeen > bound+slack {
		t.Fatalf("ROB occupancy %d exceeds Eq.1 bound %d (+%d slack)", maxSeen, bound, slack)
	}
	if maxSeen == 0 {
		t.Fatal("no reordering observed at 0.5 load with performance-first")
	}
	t.Logf("max ROB occupancy %d, Eq.1 bound %d", maxSeen, bound)
}

// TestHeteroLinkHalvedBandwidth checks the pin-constrained configuration
// degrades gracefully: same traffic delivered, lower saturation headroom.
func TestHeteroLinkHalvedBandwidth(t *testing.T) {
	spec := topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2}
	full, err := Build(shortCfg(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.RunSynthetic(traffic.Uniform{}, 0.3); err != nil {
		t.Fatal(err)
	}
	half, err := Build(shortCfg().Halved(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := half.RunSynthetic(traffic.Uniform{}, 0.3); err != nil {
		t.Fatal(err)
	}
	if half.Stats.MeanLatency() <= full.Stats.MeanLatency() {
		t.Errorf("halved interfaces (%.1f) should be slower than full (%.1f)",
			half.Stats.MeanLatency(), full.Stats.MeanLatency())
	}
}

// TestExclusiveModeMatchesUniform: a hetero-PHY chiplet running its
// parallel PHY exclusively (EnergyEfficient policy and no wraparound use)
// behaves like the uniform parallel system at low load — the Sec. 3.1
// "exclusive usage" equivalence, modulo the adapter's queueing cycle.
func TestExclusiveModeMatchesUniform(t *testing.T) {
	spec := topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 2, ChipletsY: 2, NodesX: 3, NodesY: 3,
		Policy: core.EnergyEfficient{}}
	hetero, err := Build(shortCfg(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetero.RunSynthetic(traffic.Uniform{}, 0.05); err != nil {
		t.Fatal(err)
	}
	uspec := spec
	uspec.System = topology.UniformParallelMesh
	uspec.Policy = nil
	uniform, err := Build(shortCfg(), uspec)
	if err != nil {
		t.Fatal(err)
	}
	if err := uniform.RunSynthetic(traffic.Uniform{}, 0.05); err != nil {
		t.Fatal(err)
	}
	hl, ul := hetero.Stats.MeanLatency(), uniform.Stats.MeanLatency()
	// The torus retains serial-only wraparounds, so it can be a bit faster
	// on far pairs; the adapter can cost a cycle on near pairs. Demand
	// agreement within 15%.
	if hl > ul*1.15 || ul > hl*1.15 {
		t.Errorf("exclusive-parallel hetero (%.1f) diverges from uniform parallel (%.1f)", hl, ul)
	}
	// And the serial PHYs of the hetero links must be dark.
	for _, a := range hetero.Topo.Adapters {
		if a.SerialFlits() != 0 {
			t.Fatal("energy-efficient adapter used its serial PHY")
		}
	}
}
