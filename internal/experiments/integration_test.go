package experiments

import (
	"testing"

	"heteroif/internal/network"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// shortCfg returns a reduced-window configuration with invariant checks on.
func shortCfg() network.Config {
	cfg := network.DefaultConfig()
	cfg.SimCycles = 4000
	cfg.WarmupCycles = 500
	cfg.DrainCycles = 30000
	cfg.DeadlockThreshold = 3000
	cfg.CheckInvariants = true
	return cfg
}

func smallSpec(sys topology.System) topology.Spec {
	spec := topology.Spec{System: sys, ChipletsX: 2, ChipletsY: 2, NodesX: 3, NodesY: 3}
	return spec
}

// TestAllSystemsDeliverUniformTraffic end-to-end: every system type builds,
// routes uniform traffic without deadlock, and delivers every packet.
func TestAllSystemsDeliverUniformTraffic(t *testing.T) {
	systems := []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
		topology.UniformSerialHypercube,
		topology.HeteroChannel,
	}
	for _, sys := range systems {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			in, err := Build(shortCfg(), smallSpec(sys))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := in.RunSynthetic(traffic.Uniform{}, 0.10); err != nil {
				t.Fatalf("run: %v", err)
			}
			drained, err := in.Net.Drain()
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			if !drained {
				t.Fatalf("network did not drain: %d flits in flight, %d packets queued",
					in.Net.InFlightFlits(), in.Net.QueuedPackets())
			}
			if got, want := in.Net.PacketsDelivered(), in.Net.PacketsInjected(); got != want {
				t.Fatalf("delivered %d of %d injected packets", got, want)
			}
			if in.Stats.Count() == 0 {
				t.Fatal("no packets measured")
			}
			if err := in.Net.CheckCredits(); err != nil {
				t.Fatalf("credit invariant: %v", err)
			}
			t.Logf("%s: %d packets, mean latency %.1f cycles",
				sys, in.Stats.Count(), in.Stats.MeanLatency())
		})
	}
}

// TestHighLoadNoDeadlock pushes every system well past saturation and
// checks the deadlock watchdog stays quiet (the escape subnetworks keep
// packets moving).
func TestHighLoadNoDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("high-load soak skipped in -short mode")
	}
	systems := []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
		topology.UniformSerialHypercube,
		topology.HeteroChannel,
	}
	for _, sys := range systems {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			cfg := shortCfg()
			cfg.SimCycles = 6000
			in, err := Build(cfg, smallSpec(sys))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			// Saturating load plus an adversarial pattern.
			if err := in.RunSynthetic(traffic.BitReverse(), 0.9); err != nil {
				t.Fatalf("run at saturation: %v", err)
			}
			if in.Net.DeadlockAt >= 0 {
				t.Fatalf("deadlock at cycle %d", in.Net.DeadlockAt)
			}
			if in.Net.PacketsDelivered() == 0 {
				t.Fatal("no packets delivered under load")
			}
		})
	}
}

// TestLatencyOrderingLowLoad checks the paper's zero-load ordering at small
// scale (Fig. 12 discussion): the serial-IF torus pays its 20-cycle
// interface delay, so the parallel mesh and the hetero-PHY torus must both
// beat it, and hetero-PHY must not lose to the parallel mesh.
func TestLatencyOrderingLowLoad(t *testing.T) {
	lat := map[topology.System]float64{}
	for _, sys := range []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
	} {
		in, err := Build(shortCfg(), smallSpec(sys))
		if err != nil {
			t.Fatalf("Build(%v): %v", sys, err)
		}
		if err := in.RunSynthetic(traffic.Uniform{}, 0.02); err != nil {
			t.Fatalf("run(%v): %v", sys, err)
		}
		lat[sys] = in.Stats.MeanLatency()
	}
	if lat[topology.UniformSerialTorus] <= lat[topology.UniformParallelMesh] {
		t.Errorf("serial torus (%.1f) should be slower than parallel mesh (%.1f) at low load on a small system",
			lat[topology.UniformSerialTorus], lat[topology.UniformParallelMesh])
	}
	if lat[topology.HeteroPHYTorus] > lat[topology.UniformSerialTorus] {
		t.Errorf("hetero-PHY torus (%.1f) should not be slower than serial torus (%.1f)",
			lat[topology.HeteroPHYTorus], lat[topology.UniformSerialTorus])
	}
}
