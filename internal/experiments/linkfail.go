package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"heteroif/internal/network"
	"heteroif/internal/sweep"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// countTrue counts set entries (used to label fault-injection jobs).
func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// runLinkFail quantifies Sec. 9 "Fault tolerance": hetero-IF systems carry
// extra channel diversity, so killing a growing fraction of their
// *adaptive* channels (serial wraparounds / cube links) degrades latency
// gracefully while every packet still delivers over the escape subnetwork.
func runLinkFail(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	rng := rand.New(rand.NewSource(cfg.Seed + 97))
	fracs := []float64{0, 0.1, 0.25, 0.5, 1.0}
	if o.Tiny {
		fracs = []float64{0, 0.5}
	}
	cx := pick(o, 4, 4, 2)
	systems := []topology.System{topology.HeteroPHYTorus, topology.HeteroChannel}

	// The kill decisions come from one rng consumed sequentially across
	// all fault levels (matching the historical draw order exactly), so
	// they are pre-rolled here — one probe build per system enumerates the
	// failable ports in deterministic order — and the simulations then run
	// as independent orchestrator jobs.
	type faultCase struct {
		sys       topology.System
		decisions []bool // one per failable port, in enumeration order
	}
	var cases []faultCase
	for _, sys := range systems {
		probe, err := Build(cfg, topology.Spec{System: sys, ChipletsX: cx, ChipletsY: cx, NodesX: 4, NodesY: 4})
		if err != nil {
			return err
		}
		failable := 0
		for n := range probe.Topo.OutPorts {
			for port := 1; port < len(probe.Topo.OutPorts[n]); port++ {
				p := &probe.Topo.OutPorts[n][port]
				if p.Wrap || p.CubeDim >= 0 {
					failable++
				}
			}
		}
		for _, frac := range fracs {
			dec := make([]bool, failable)
			for i := range dec {
				dec[i] = rng.Float64() < frac
			}
			cases = append(cases, faultCase{sys: sys, decisions: dec})
		}
	}

	type faultRow struct {
		failed, failable int
		meanLat          float64
		delivered        bool
	}
	jobs := make([]sweep.Job[faultRow], len(cases))
	for i, fc := range cases {
		fc := fc
		jobs[i] = sweep.Job[faultRow]{
			Key: fmt.Sprintf("linkfail/%v/%d-killed", fc.sys, countTrue(fc.decisions)),
			Run: func() (faultRow, error) {
				var row faultRow
				in, err := Build(cfg, topology.Spec{System: fc.sys, ChipletsX: cx, ChipletsY: cx, NodesX: 4, NodesY: 4})
				if err != nil {
					return row, err
				}
				idx := 0
				for n := range in.Topo.OutPorts {
					for port := 1; port < len(in.Topo.OutPorts[n]); port++ {
						p := &in.Topo.OutPorts[n][port]
						if !p.Wrap && p.CubeDim < 0 {
							continue
						}
						row.failable++
						kill := fc.decisions[idx]
						idx++
						if !kill {
							continue
						}
						if err := in.Topo.FailLink(network.NodeID(n), port); err == nil {
							row.failed++
						}
					}
				}
				if err := in.RunSynthetic(traffic.Uniform{}, 0.1); err != nil {
					return row, fmt.Errorf("%v with %d faults: %w", fc.sys, row.failed, err)
				}
				drained, err := in.Net.Drain()
				if err != nil || !drained {
					return row, fmt.Errorf("%v with %d faults did not drain: %v", fc.sys, row.failed, err)
				}
				row.meanLat = in.Stats.MeanLatency()
				row.delivered = in.Net.PacketsDelivered() == in.Net.PacketsInjected()
				return row, nil
			},
		}
	}
	outs := sweep.Run(jobs, sweep.Options{Jobs: o.Jobs, Timeout: o.JobTimeout, OnProgress: o.Progress})

	var rows [][]string
	i := 0
	for _, sys := range systems {
		fmt.Fprintf(w, "--- %s: uniform @ 0.1 with failed adaptive channels ---\n", sys)
		for range fracs {
			out := &outs[i]
			i++
			if out.Failed() {
				o.Manifest.RecordFailure(out.Key, out.Err)
				return out.Err
			}
			row := out.Value
			fmt.Fprintf(w, "failed %3d/%3d adaptive links: lat=%7.1f cycles, all delivered=%v\n",
				row.failed, row.failable, row.meanLat, row.delivered)
			rows = append(rows, []string{
				sys.String(), strconv.Itoa(row.failed), strconv.Itoa(row.failable),
				strconv.FormatFloat(row.meanLat, 'f', 2, 64),
				strconv.FormatBool(row.delivered),
			})
			if !row.delivered {
				return fmt.Errorf("%v lost packets with %d faults", sys, row.failed)
			}
		}
	}
	fmt.Fprintln(w, "\nall traffic delivered at every fault level: the escape subnetwork")
	fmt.Fprintln(w, "guarantees connectivity; the surviving adaptive channels soften the")
	fmt.Fprintln(w, "latency loss (Sec. 9: diversity improves fault tolerance).")
	return emitTable(o, "linkfail", []string{"system", "failed_links", "failable_links", "mean_latency", "all_delivered"}, rows)
}

// runCompromised evaluates the Sec. 2.2 "compromised interface" (BoW/UCIe-
// style middle ground: better latency than SerDes, better reach than AIB,
// outstanding at neither) as a simulated system — an extension beyond the
// paper's analytical Fig. 8 treatment. The compromised uniform interface is
// modeled with 3-flit/cycle links at 10-cycle delay and 0.7 pJ/bit
// (BoW-like, Table 1) on the torus wiring.
func runCompromised(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	cc := pick(o, 4, 4, 2)
	bow := cfg
	bow.SerialBandwidth = 3
	bow.SerialDelay = 10
	bow.SerialPJPerBit = 0.7
	vs := []variant{
		{"uniform-parallel-mesh", cfg, topology.Spec{System: topology.UniformParallelMesh, ChipletsX: cc, ChipletsY: cc, NodesX: 4, NodesY: 4}},
		{"uniform-serial-torus", cfg, topology.Spec{System: topology.UniformSerialTorus, ChipletsX: cc, ChipletsY: cc, NodesX: 4, NodesY: 4}},
		{"compromised-bow-torus", bow, topology.Spec{System: topology.UniformSerialTorus, ChipletsX: cc, ChipletsY: cc, NodesX: 4, NodesY: 4}},
		{"hetero-phy-full", cfg, topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: cc, ChipletsY: cc, NodesX: 4, NodesY: 4}},
	}
	rates := []float64{0.05, 0.2, 0.4}
	var jobs []pointJob
	for _, rate := range rates {
		for _, v := range vs {
			rate, v := rate, v
			jobs = append(jobs, point(fmt.Sprintf("compromised/uniform@%.2f/%s", rate, v.Name),
				func() (Result, error) { return runPoint(v, traffic.Uniform{}, rate) }))
		}
	}
	outs, err := runJobs(o, jobs)
	if err != nil {
		return err
	}
	var all []Result
	i := 0
	for _, rate := range rates {
		fmt.Fprintf(w, "--- compromised-IF comparison, uniform @ %.2f ---\n", rate)
		for range vs {
			r := outs[i][0]
			i++
			fmt.Fprintln(w, r)
			all = append(all, r)
		}
	}
	fmt.Fprintln(w, "\nthe compromised interface improves hugely on the serial torus and is")
	fmt.Fprintln(w, "honestly competitive at this scale: behind the mesh and hetero-IF at")
	fmt.Fprintln(w, "low load (its 10-cycle hop tax), ahead once the mesh saturates. What")
	fmt.Fprintln(w, "the flit-level model cannot show is the Sec. 2.2 structural point:")
	fmt.Fprintln(w, "BoW's 32 Gbps per-lane ceiling caps how far the 3-flit/cycle links")
	fmt.Fprintln(w, "scale, while the hetero-IF keeps the full serial data rate in reserve")
	fmt.Fprintln(w, "and the parallel PHY's energy at short reach.")
	return emitResults(o, "compromised", all)
}
