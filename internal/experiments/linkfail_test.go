package experiments

import (
	"testing"

	"heteroif/internal/network"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// TestFaultToleranceWraparounds kills every wraparound link of a hetero-PHY
// torus; the adaptive routing must keep delivering all traffic over the
// mesh escape (Sec. 9 "Fault tolerance").
func TestFaultToleranceWraparounds(t *testing.T) {
	cfg := shortCfg()
	in, err := Build(cfg, topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 2, ChipletsY: 2, NodesX: 3, NodesY: 3})
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for n := range in.Topo.OutPorts {
		for port := 1; port < len(in.Topo.OutPorts[n]); port++ {
			if in.Topo.OutPorts[n][port].Wrap {
				if err := in.Topo.FailLink(network.NodeID(n), port); err != nil {
					t.Fatalf("fail wrap: %v", err)
				}
				failed++
			}
		}
	}
	if failed == 0 {
		t.Fatal("no wraparound links found to fail")
	}
	if err := in.RunSynthetic(traffic.Uniform{}, 0.1); err != nil {
		t.Fatalf("run with %d failed links: %v", failed, err)
	}
	drained, err := in.Net.Drain()
	if err != nil || !drained {
		t.Fatalf("drain after faults: %v %v", drained, err)
	}
	if got, want := in.Net.PacketsDelivered(), in.Net.PacketsInjected(); got != want {
		t.Fatalf("delivered %d of %d with failed wraparounds", got, want)
	}
	// No flit may have used a dead link.
	for _, l := range in.Net.Links {
		if in.Topo.OutPorts[l.Src][l.SrcPort].Dead && l.SentTotal > 0 {
			t.Fatalf("dead link %d carried %d flits", l.ID, l.SentTotal)
		}
	}
}

// TestFaultToleranceCubeLinks kills one cube link per (chiplet, dim) pair
// on a hetero-channel system — the channel diversity of the multi-link
// hypercube absorbs it.
func TestFaultToleranceCubeLinks(t *testing.T) {
	cfg := shortCfg()
	in, err := Build(cfg, topology.Spec{System: topology.HeteroChannel, ChipletsX: 2, ChipletsY: 2, NodesX: 4, NodesY: 4})
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for c := 0; c < 4; c++ {
		for d := 0; d < in.Topo.CubeDims; d++ {
			owners := in.Topo.CubeLinkNodes(c, d)
			if len(owners) < 2 {
				continue
			}
			n := owners[0]
			for port := 1; port < len(in.Topo.OutPorts[n]); port++ {
				if in.Topo.OutPorts[n][port].CubeDim == int8(d) {
					if err := in.Topo.FailLink(n, port); err != nil {
						t.Fatalf("fail cube link: %v", err)
					}
					failed++
					break
				}
			}
		}
	}
	if failed == 0 {
		t.Fatal("no cube links failed")
	}
	if err := in.RunSynthetic(traffic.Uniform{}, 0.1); err != nil {
		t.Fatalf("run with %d failed cube links: %v", failed, err)
	}
	if drained, err := in.Net.Drain(); err != nil || !drained {
		t.Fatalf("drain after cube faults: %v %v", drained, err)
	}
	if got, want := in.Net.PacketsDelivered(), in.Net.PacketsInjected(); got != want {
		t.Fatalf("delivered %d of %d with failed cube links", got, want)
	}
}

// TestFailLinkValidation: escape-subnetwork channels refuse to fail, as
// does the last cube link of a dimension.
func TestFailLinkValidation(t *testing.T) {
	cfg := shortCfg()
	in, err := Build(cfg, topology.Spec{System: topology.HeteroPHYTorus, ChipletsX: 2, ChipletsY: 2, NodesX: 3, NodesY: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Find an on-chip (escape) port.
	for port := 1; port < len(in.Topo.OutPorts[0]); port++ {
		p := in.Topo.OutPorts[0][port]
		if p.Kind == network.KindOnChip && !p.Wrap {
			if err := in.Topo.FailLink(0, port); err == nil {
				t.Fatal("escape channel accepted a fault")
			}
			break
		}
	}
	if err := in.Topo.FailLink(0, 99); err == nil {
		t.Fatal("bogus port accepted")
	}

	// Hypercube: failing every link of one (chiplet, dim) must be refused
	// at the last one.
	cube, err := Build(cfg, topology.Spec{System: topology.UniformSerialHypercube, ChipletsX: 2, ChipletsY: 2, NodesX: 3, NodesY: 3})
	if err != nil {
		t.Fatal(err)
	}
	owners := cube.Topo.CubeLinkNodes(0, 0)
	var lastErr error
	for _, n := range owners {
		for port := 1; port < len(cube.Topo.OutPorts[n]); port++ {
			if cube.Topo.OutPorts[n][port].CubeDim == 0 {
				lastErr = cube.Topo.FailLink(n, port)
			}
		}
	}
	if lastErr == nil {
		t.Fatal("the last cube link of a dimension accepted a fault")
	}
}
