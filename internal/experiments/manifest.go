package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// ManifestSchemaVersion is bumped on any incompatible change to the
// manifest JSON layout (including Result field renames).
const ManifestSchemaVersion = 1

// Manifest is the machine-readable result of one experiment run, written
// as BENCH_<experiment>.json next to the CSV output. CI diffs these files
// across commits to track performance trajectories; cmd/checkmanifest
// validates them.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment"`
	Title         string `json:"title"`
	// Git is `git describe --always --dirty` of the producing tree, when
	// known.
	Git    string         `json:"git,omitempty"`
	Config ManifestConfig `json:"config"`
	// Points holds one row per measured operating point, in deterministic
	// (submission) order. Failed points carry Failed/Err and zero metrics.
	Points []ManifestPoint `json:"points"`
	// Tables holds the rows of experiments that report derived tables
	// rather than per-point Results (table1, table3, table4, economy,
	// topo, fault, fig08), keyed by CSV name. Row 0 is the header.
	Tables map[string][][]string `json:"tables,omitempty"`
	// FailedPoints counts points with Failed set.
	FailedPoints int `json:"failed_points"`
	// WallClockMS is the experiment's total wall-clock time.
	WallClockMS int64 `json:"wall_clock_ms"`

	mu sync.Mutex
}

// ManifestConfig pins the options the run was produced with, so two
// manifests are comparable only when their configs match.
type ManifestConfig struct {
	Full    bool  `json:"full"`
	Tiny    bool  `json:"tiny"`
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	Jobs    int   `json:"jobs"`
}

// ManifestPoint is one operating point: an embedded Result plus failure
// reporting for points that panicked, timed out or errored.
type ManifestPoint struct {
	// Key identifies failed points that produced no Result (successful
	// points are identified by the Result's system/workload/rate).
	Key string `json:"key,omitempty"`
	Result
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"err,omitempty"`
}

// NewManifest starts a manifest for one experiment run.
func NewManifest(e Experiment, git string, o Options) *Manifest {
	return &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Experiment:    e.ID,
		Title:         e.Title,
		Git:           git,
		Config: ManifestConfig{
			Full: o.Full, Tiny: o.Tiny, Seed: o.Seed,
			Workers: o.Workers, Jobs: o.Jobs,
		},
	}
}

// Record appends successful result rows. Safe on a nil manifest and for
// concurrent use. NaN/Inf metrics — possible only for points that measured
// zero packets — are recorded as 0, since JSON has no encoding for them.
func (m *Manifest) Record(rs ...Result) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range rs {
		m.Points = append(m.Points, ManifestPoint{Result: sanitizeResult(r)})
	}
}

// RecordFailure appends a failed point. Safe on a nil manifest.
func (m *Manifest) RecordFailure(key string, err error) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Points = append(m.Points, ManifestPoint{Key: key, Failed: true, Err: err.Error()})
	m.FailedPoints++
}

// RecordTable stores a derived table (header + rows). Safe on a nil
// manifest.
func (m *Manifest) RecordTable(name string, header []string, rows [][]string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Tables == nil {
		m.Tables = make(map[string][][]string)
	}
	m.Tables[name] = append([][]string{header}, rows...)
}

func sanitizeResult(r Result) Result {
	for _, f := range []*float64{
		&r.Rate, &r.MeanLatency, &r.NetLatency, &r.StdDev, &r.Throughput,
		&r.EnergyPJ, &r.EnergyOnChipPJ, &r.EnergyIfacePJ, &r.HopsOnChip, &r.HopsIface,
	} {
		if math.IsNaN(*f) || math.IsInf(*f, 0) {
			*f = 0
		}
	}
	return r
}

// ManifestPath returns dir/BENCH_<id>.json.
func ManifestPath(dir, id string) string {
	return filepath.Join(dir, "BENCH_"+id+".json")
}

// Write emits the manifest as indented JSON to ManifestPath(dir,
// m.Experiment), creating dir as needed.
func (m *Manifest) Write(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(ManifestPath(dir, m.Experiment), data, 0o644)
}

// ReadManifest parses a manifest file, rejecting unknown fields.
func ReadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Manifest
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("experiments: malformed manifest %s: %w", path, err)
	}
	return &m, nil
}

// Check validates a manifest for CI: schema version, identity, internal
// failure-count consistency, non-emptiness, and zero failed points.
func (m *Manifest) Check() error {
	if m.SchemaVersion != ManifestSchemaVersion {
		return fmt.Errorf("manifest schema version %d, want %d", m.SchemaVersion, ManifestSchemaVersion)
	}
	if m.Experiment == "" {
		return fmt.Errorf("manifest has no experiment ID")
	}
	if len(m.Points) == 0 && len(m.Tables) == 0 {
		return fmt.Errorf("manifest %s is empty: no points and no tables", m.Experiment)
	}
	failed := 0
	for _, p := range m.Points {
		if p.Failed {
			failed++
		}
	}
	if failed != m.FailedPoints {
		return fmt.Errorf("manifest %s is inconsistent: failed_points=%d but %d points marked failed",
			m.Experiment, m.FailedPoints, failed)
	}
	if failed > 0 {
		first := ""
		for _, p := range m.Points {
			if p.Failed {
				first = fmt.Sprintf("%s: %s", p.Key, p.Err)
				break
			}
		}
		return fmt.Errorf("manifest %s has %d failed point(s); first: %s", m.Experiment, failed, first)
	}
	return nil
}
