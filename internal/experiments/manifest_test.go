package experiments

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testManifest() *Manifest {
	return NewManifest(
		Experiment{ID: "fig99", Title: "synthetic test experiment"},
		"v0-test",
		Options{Tiny: true, Seed: 7, Workers: 2, Jobs: 4},
	)
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	m.Record(
		Result{System: "hetero-phy-torus", Workload: "uniform", Rate: 0.1, MeanLatency: 33.5, Packets: 1000},
		Result{System: "hetero-phy-torus", Workload: "uniform", Rate: 0.2, MeanLatency: 41.0, Packets: 2000, Saturated: true},
	)
	m.RecordTable("fig99_extra", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	m.WallClockMS = 1234

	dir := t.TempDir()
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	path := ManifestPath(dir, "fig99")
	if filepath.Base(path) != "BENCH_fig99.json" {
		t.Fatalf("manifest path %s", path)
	}

	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(); err != nil {
		t.Fatalf("round-tripped manifest fails Check: %v", err)
	}
	if got.Experiment != "fig99" || got.Git != "v0-test" || got.WallClockMS != 1234 {
		t.Fatalf("identity lost: %+v", got)
	}
	if got.Config != m.Config {
		t.Fatalf("config lost: %+v vs %+v", got.Config, m.Config)
	}
	if !reflect.DeepEqual(got.Points, m.Points) {
		t.Fatalf("points differ:\n got %+v\nwant %+v", got.Points, m.Points)
	}
	if !reflect.DeepEqual(got.Tables, m.Tables) {
		t.Fatalf("tables differ:\n got %+v\nwant %+v", got.Tables, m.Tables)
	}
}

// NaN and Inf have no JSON encoding; Record must flatten them to 0 so
// Write never fails on a zero-packet operating point.
func TestManifestSanitizesNonFiniteMetrics(t *testing.T) {
	m := testManifest()
	m.Record(Result{
		System: "s", Workload: "w", Rate: 0.9,
		MeanLatency: math.NaN(), NetLatency: math.Inf(1), StdDev: math.Inf(-1),
	})
	p := m.Points[0]
	if p.MeanLatency != 0 || p.NetLatency != 0 || p.StdDev != 0 {
		t.Fatalf("non-finite metrics not sanitized: %+v", p)
	}
	if p.Rate != 0.9 {
		t.Fatalf("finite metric clobbered: %+v", p)
	}
	if err := m.Write(t.TempDir()); err != nil {
		t.Fatalf("write after sanitize: %v", err)
	}
}

func TestReadManifestRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.json": `{"schema_version": 1, "experiment": "fig11"`,
		"unknown.json":   `{"schema_version": 1, "experiment": "fig11", "bogus_field": true}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(path); err == nil {
			t.Fatalf("%s: malformed manifest accepted", name)
		}
	}
	if _, err := ReadManifest(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

func TestManifestCheckFailures(t *testing.T) {
	ok := Result{System: "s", Workload: "w", Rate: 0.1}

	wrongVersion := testManifest()
	wrongVersion.SchemaVersion = 99
	wrongVersion.Record(ok)

	noID := testManifest()
	noID.Experiment = ""
	noID.Record(ok)

	empty := testManifest()

	withFailure := testManifest()
	withFailure.Record(ok)
	withFailure.RecordFailure("s/w@0.2", errors.New("job panicked"))

	inconsistent := testManifest()
	inconsistent.Record(ok)
	inconsistent.FailedPoints = 3 // no point actually marked failed

	for _, tc := range []struct {
		name string
		m    *Manifest
		want string
	}{
		{"schema version", wrongVersion, "schema version"},
		{"experiment ID", noID, "no experiment"},
		{"empty", empty, "empty"},
		{"failed point", withFailure, "job panicked"},
		{"inconsistent counts", inconsistent, "inconsistent"},
	} {
		err := tc.m.Check()
		if err == nil {
			t.Fatalf("%s: Check passed, want failure", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// A nil manifest is the no -json case: every recording method must be a
// no-op rather than a crash.
func TestNilManifestSafe(t *testing.T) {
	var m *Manifest
	m.Record(Result{System: "s"})
	m.RecordFailure("k", errors.New("x"))
	m.RecordTable("t", []string{"h"}, nil)
}
