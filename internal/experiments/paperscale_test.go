package experiments

import (
	"os"
	"testing"

	"heteroif/internal/traffic"
)

// TestPaperScaleOrdering runs one operating point (uniform @ 0.1) on the
// paper-scale 3136-node systems — roughly ten minutes of CPU — and checks
// the headline Fig. 14 claim at the scale the paper actually evaluates:
// hetero-channel beats both uniform baselines decisively (measured: 87
// cycles unsaturated vs 408 for the saturated mesh and 653 for the
// saturated hypercube). Known deviation, logged not asserted: our
// hypercube baseline stays behind the mesh even at 3136 nodes — its
// phase-partitioned escape discipline spends both Table 2 VCs, whereas
// [30]'s original construction presumably provisions more; see
// EXPERIMENTS.md. Gated behind HETEROIF_PAPERSCALE=1 so regular test runs
// stay fast.
func TestPaperScaleOrdering(t *testing.T) {
	if os.Getenv("HETEROIF_PAPERSCALE") == "" {
		t.Skip("set HETEROIF_PAPERSCALE=1 to run the 3136-node spot check")
	}
	cfg := baseConfig(Options{}) // CI windows: 20k cycles
	lat := map[string]float64{}
	thr := map[string]float64{}
	for _, v := range heteroChannelVariants(cfg, 8, 8, 7, 7) {
		r, err := runPoint(v, traffic.Uniform{}, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		lat[v.Name] = r.MeanLatency
		thr[v.Name] = r.Throughput
		t.Logf("%-26s lat=%8.1f thr=%.4f sat=%v", v.Name, r.MeanLatency, r.Throughput, r.Saturated)
	}
	if lat["uniform-serial-hypercube"] >= lat["uniform-parallel-mesh"] {
		t.Logf("deviation (documented): hypercube %.1f behind mesh %.1f at 3136 nodes",
			lat["uniform-serial-hypercube"], lat["uniform-parallel-mesh"])
	}
	if lat["hetero-channel-full"] >= lat["uniform-serial-hypercube"] ||
		lat["hetero-channel-full"] >= lat["uniform-parallel-mesh"] {
		t.Errorf("hetero-channel (%.1f) must beat both baselines (mesh %.1f, cube %.1f)",
			lat["hetero-channel-full"], lat["uniform-parallel-mesh"], lat["uniform-serial-hypercube"])
	}
	if thr["hetero-channel-full"] < 0.095 {
		t.Errorf("hetero-channel should sustain ≈0.1 flits/cycle/node, got %.4f", thr["hetero-channel-full"])
	}
}
