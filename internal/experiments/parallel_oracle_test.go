package experiments

import (
	"encoding/binary"
	"flag"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"testing"

	"heteroif/internal/fault"
	"heteroif/internal/network"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// oracle.workers selects the worker counts checked against the sequential
// run; the CI race job pins it explicitly so the matrix is visible in the
// workflow file.
var oracleWorkers = flag.String("oracle.workers", "2,4,8",
	"comma-separated worker counts TestParallelOracle compares against workers=1")

// oracleFingerprint reduces a run to everything the parallel engine could
// plausibly perturb: a per-packet arrival hash (identity, timing, energy,
// hop mix, in sink order — which the coordinator merge fixes), injection
// and delivery totals, VC-allocation failure counts and the
// switch-allocation grant mix. Two runs are bit-identical iff their
// fingerprints are equal.
type oracleFingerprint struct {
	arrivalHash uint64
	injected    int64
	delivered   int64
	vaFailures  uint64
	grants      [8]uint64
}

// oracleRun executes one full build+run+drain at the given worker count and
// returns its fingerprint. With faults set it layers the seeded error model
// and link-layer retry on top and verifies delivered-packet integrity.
func oracleRun(t *testing.T, sys topology.System, workers int, faults bool) oracleFingerprint {
	t.Helper()
	cfg := shortCfg()
	cfg.SimCycles = 3000
	cfg.Workers = workers
	in, err := Build(cfg, topology.Spec{System: sys, ChipletsX: 2, ChipletsY: 2, NodesX: 4, NodesY: 4})
	if err != nil {
		t.Fatalf("Build(%v, workers=%d): %v", sys, workers, err)
	}

	// Wrap the stats sink with an order-sensitive FNV-1a digest of every
	// delivered packet. Sinks run in deterministic coordinator order, so
	// any reordering, loss, duplication or field corruption introduced by
	// parallel stepping changes the hash.
	prev := in.Net.Sink
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	in.Net.Sink = func(p *network.Packet) {
		put(p.ID)
		put(uint64(uint32(p.Src))<<32 | uint64(uint32(p.Dst)))
		put(uint64(p.Length)<<8 | uint64(p.Class))
		put(uint64(p.CreatedAt))
		put(uint64(p.InjectedAt))
		put(uint64(p.ArrivedAt))
		put(uint64(uint32(p.HopsOnChip))<<32 | uint64(uint32(p.HopsParallel)))
		put(uint64(uint32(p.HopsSerial))<<32 | uint64(uint32(p.HopsHetero)))
		put(math.Float64bits(p.EnergyPJ))
		put(math.Float64bits(p.EnergyOnChipPJ))
		put(math.Float64bits(p.EnergyIfacePJ))
		prev(p)
	}

	var chk *fault.IntegrityChecker
	if faults {
		fault.Attach(in.Net, fault.Config{SerialBER: 2e-4, ParallelBER: 2e-6, Seed: 7})
		chk = fault.NewIntegrityChecker(in.Net)
	}

	if err := in.RunSynthetic(traffic.Uniform{}, 0.15); err != nil {
		t.Fatalf("%v workers=%d: run: %v", sys, workers, err)
	}
	drained, err := in.Net.Drain()
	if err != nil {
		t.Fatalf("%v workers=%d: drain: %v", sys, workers, err)
	}
	if !drained {
		t.Fatalf("%v workers=%d: did not drain (%d flits in flight)", sys, workers, in.Net.InFlightFlits())
	}
	if err := in.Net.CheckCredits(); err != nil {
		t.Fatalf("%v workers=%d: credit conservation: %v", sys, workers, err)
	}
	if chk != nil {
		if err := chk.Check(in.Net); err != nil {
			t.Fatalf("%v workers=%d: integrity: %v", sys, workers, err)
		}
	}

	return oracleFingerprint{
		arrivalHash: h.Sum64(),
		injected:    in.Net.PacketsInjected(),
		delivered:   in.Net.PacketsDelivered(),
		vaFailures:  in.Net.VAFailures,
		grants:      in.Net.GrantsByKind,
	}
}

func parseOracleWorkers(t *testing.T) []int {
	var ws []int
	for _, f := range strings.Split(*oracleWorkers, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 2 {
			t.Fatalf("-oracle.workers: bad worker count %q", f)
		}
		ws = append(ws, n)
	}
	if len(ws) == 0 {
		t.Fatal("-oracle.workers: empty")
	}
	return ws
}

// TestParallelOracle is the cross-worker-count bit-identity oracle for the
// parallel stepper: on every Table-2 system (64 nodes, 2×2 chiplets of
// 4×4), a full run+drain at each -oracle.workers count must reproduce the
// sequential run's fingerprint exactly — arrival stream, energies, hop
// mix, VC-allocation failures, grant mix — with credits conserved. A final
// variant re-runs the hetero-PHY torus with the seeded fault model and
// link-layer retry active, so retransmission timing also goes through the
// sharded engine. The CI race job runs this test under -race with worker
// dispatch forced, which upgrades bit-identity into a data-race check on
// the shard ownership discipline.
func TestParallelOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run oracle skipped in -short mode")
	}
	counts := parseOracleWorkers(t)
	systems := []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
		topology.UniformSerialHypercube,
		topology.HeteroChannel,
	}
	for _, sys := range systems {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			want := oracleRun(t, sys, 1, false)
			if want.delivered == 0 || want.delivered != want.injected {
				t.Fatalf("sequential reference degenerate: delivered %d of %d", want.delivered, want.injected)
			}
			for _, w := range counts {
				if got := oracleRun(t, sys, w, false); got != want {
					t.Errorf("workers=%d diverged from sequential:\n got %+v\nwant %+v", w, got, want)
				}
			}
		})
	}
	t.Run("hetero-phy-torus/faults+retry", func(t *testing.T) {
		want := oracleRun(t, topology.HeteroPHYTorus, 1, true)
		if want.delivered == 0 || want.delivered != want.injected {
			t.Fatalf("sequential reference degenerate: delivered %d of %d", want.delivered, want.injected)
		}
		for _, w := range counts {
			if got := oracleRun(t, topology.HeteroPHYTorus, w, true); got != want {
				t.Errorf("workers=%d diverged from sequential:\n got %+v\nwant %+v", w, got, want)
			}
		}
	})
}
