package experiments

import (
	"testing"
	"time"

	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// TestParallelWorkersEndToEnd: the Workers option produces identical
// statistics on a full system build, and does not slow small systems
// catastrophically.
func TestParallelWorkersEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second determinism check")
	}
	run := func(sys topology.System, workers int) (float64, int64, time.Duration) {
		cfg := shortCfg()
		cfg.SimCycles = 6000
		cfg.Workers = workers
		in, err := Build(cfg, topology.Spec{System: sys, ChipletsX: 2, ChipletsY: 2, NodesX: 4, NodesY: 4})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := in.RunSynthetic(traffic.Uniform{}, 0.2); err != nil {
			t.Fatal(err)
		}
		return in.Stats.MeanLatency(), in.Stats.Count(), time.Since(start)
	}
	// Hetero-channel exercises cube links; hetero-PHY exercises adapter
	// links, whose TX/RX halves run in different parallel phases.
	for _, sys := range []topology.System{topology.HeteroChannel, topology.HeteroPHYTorus} {
		seqLat, seqN, _ := run(sys, 1)
		parLat, parN, _ := run(sys, 4)
		if seqLat != parLat || seqN != parN {
			t.Fatalf("%v: parallel run diverged: lat %.4f/%.4f, n %d/%d", sys, seqLat, parLat, seqN, parN)
		}
	}
}
