package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// asciiPlot renders latency-vs-injection curves as a terminal chart, the
// textual analogue of the Fig. 11/13/14/15 panels. Each series gets a
// marker; saturated points render as '!'.
type asciiPlot struct {
	Title  string
	Width  int
	Height int

	series []plotSeries
}

type plotSeries struct {
	name   string
	marker byte
	pts    [][3]float64 // x, y, saturated(1/0)
}

var plotMarkers = []byte{'o', '*', '+', 'x', '#', '@'}

// add appends a series from results (x = offered rate, y = mean latency).
func (p *asciiPlot) add(name string, rs []Result) {
	s := plotSeries{name: name, marker: plotMarkers[len(p.series)%len(plotMarkers)]}
	for _, r := range rs {
		sat := 0.0
		if r.Saturated {
			sat = 1
		}
		if !math.IsNaN(r.MeanLatency) {
			s.pts = append(s.pts, [3]float64{r.Rate, r.MeanLatency, sat})
		}
	}
	p.series = append(p.series, s)
}

// render draws the chart. The y axis is clipped at 4× the lowest zero-load
// latency so saturation blowups don't flatten the interesting region.
func (p *asciiPlot) render(w io.Writer) {
	if len(p.series) == 0 {
		return
	}
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 56
	}
	if height <= 0 {
		height = 14
	}
	minY, maxX := math.Inf(1), 0.0
	for _, s := range p.series {
		for _, pt := range s.pts {
			minY = math.Min(minY, pt[1])
			maxX = math.Max(maxX, pt[0])
		}
	}
	if math.IsInf(minY, 1) || maxX == 0 {
		return
	}
	maxY := 4 * minY
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.series {
		pts := append([][3]float64(nil), s.pts...)
		sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
		for _, pt := range pts {
			cx := int(pt[0] / maxX * float64(width-1))
			y := pt[1]
			marker := s.marker
			if pt[2] > 0 || y > maxY {
				y = maxY
				marker = '!'
			}
			cy := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if cy < 0 {
				cy = 0
			}
			if cy >= height {
				cy = height - 1
			}
			grid[cy][cx] = marker
		}
	}
	fmt.Fprintf(w, "\n%s  (y: %.0f..%.0f cycles, x: 0..%.2f flits/cycle/node, '!' = saturated)\n",
		p.Title, minY, maxY, maxX)
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = fmt.Sprintf("%5.0f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%5.0f ", minY)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "      +%s\n", strings.Repeat("-", width))
	var legend []string
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.marker, s.name))
	}
	fmt.Fprintf(w, "       %s\n\n", strings.Join(legend, "  "))
}
