package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAsciiPlotRendersSeries(t *testing.T) {
	p := &asciiPlot{Title: "test chart"}
	p.add("alpha", []Result{
		{Rate: 0.1, MeanLatency: 20},
		{Rate: 0.2, MeanLatency: 25},
		{Rate: 0.3, MeanLatency: 60, Saturated: true},
	})
	p.add("beta", []Result{
		{Rate: 0.1, MeanLatency: 30},
		{Rate: 0.3, MeanLatency: 40},
	})
	var buf bytes.Buffer
	p.render(&buf)
	out := buf.String()
	for _, want := range []string{"test chart", "o=alpha", "*=beta", "!"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 10 {
		t.Errorf("plot suspiciously small (%d lines)", lines)
	}
}

func TestAsciiPlotEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	(&asciiPlot{Title: "empty"}).render(&buf)
	if buf.Len() != 0 {
		t.Error("empty plot rendered output")
	}
	p := &asciiPlot{Title: "zero-x"}
	p.add("a", []Result{{Rate: 0, MeanLatency: 10}})
	buf.Reset()
	p.render(&buf)
	if buf.Len() != 0 {
		t.Error("zero-range plot rendered output")
	}
}

func TestAsciiPlotClipsSaturationBlowups(t *testing.T) {
	p := &asciiPlot{Title: "clip"}
	p.add("a", []Result{
		{Rate: 0.1, MeanLatency: 20},
		{Rate: 0.2, MeanLatency: 90000}, // post-saturation blowup
	})
	var buf bytes.Buffer
	p.render(&buf)
	if !strings.Contains(buf.String(), "y: 20..80") {
		t.Errorf("y axis not clipped at 4× zero-load:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "!") {
		t.Error("clipped point not marked saturated")
	}
}
