package experiments

import (
	"testing"

	"heteroif/internal/traffic"
)

// TestTable3Probe checks the headline Table 3 property at one mid scale:
// hetero-IF reduces latency against BOTH uniform baselines at 0.1 uniform.
func TestTable3Probe(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale probe")
	}
	cfg := shortCfg()
	cfg.SimCycles = 10000
	cfg.WarmupCycles = 2000
	lat := map[string]float64{}
	for _, v := range heteroPHYVariants(cfg, 4, 4, 4, 4)[:3] {
		r, err := runPoint(v, traffic.Uniform{}, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		lat[v.Name] = r.MeanLatency
		t.Logf("%-26s lat=%.1f", v.Name, r.MeanLatency)
	}
	for _, v := range heteroChannelVariants(cfg, 4, 4, 4, 4)[1:3] {
		r, err := runPoint(v, traffic.Uniform{}, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		lat[v.Name] = r.MeanLatency
		t.Logf("%-26s lat=%.1f", v.Name, r.MeanLatency)
	}
	if lat["hetero-phy-full"] >= lat["uniform-parallel-mesh"] {
		t.Errorf("hetero-PHY (%.1f) should beat uniform parallel mesh (%.1f)", lat["hetero-phy-full"], lat["uniform-parallel-mesh"])
	}
	if lat["hetero-phy-full"] >= lat["uniform-serial-torus"] {
		t.Errorf("hetero-PHY (%.1f) should beat uniform serial torus (%.1f)", lat["hetero-phy-full"], lat["uniform-serial-torus"])
	}
	if lat["hetero-channel-full"] >= lat["uniform-serial-hypercube"] {
		t.Errorf("hetero-channel (%.1f) should beat uniform serial hypercube (%.1f)", lat["hetero-channel-full"], lat["uniform-serial-hypercube"])
	}
}

// TestHeteroPHYSmallScaleZeroLoad inspects the 4×(2×2) hetero-PHY system:
// at 0.1 uniform the balanced policy should keep almost everything on the
// parallel PHYs, and latency should not lose to the uniform parallel mesh.
func TestHeteroPHYSmallScaleZeroLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	cfg := shortCfg()
	cfg.SimCycles = 10000
	cfg.WarmupCycles = 2000
	vs := heteroPHYVariants(cfg, 2, 2, 2, 2)
	var latMesh, latHet float64
	for _, v := range []variant{vs[0], vs[2]} {
		in, err := Build(v.Cfg, v.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.RunSynthetic(traffic.Uniform{}, 0.1); err != nil {
			t.Fatal(err)
		}
		r := in.Measure(v.Name, "uniform", 0.1)
		var par, ser uint64
		for _, a := range in.Topo.Adapters {
			par += a.ParallelFlits()
			ser += a.SerialFlits()
		}
		oc, pa, se, he := in.Stats.MeanHops()
		t.Logf("%-24s lat=%.1f hops(on=%.1f par=%.1f ser=%.1f het=%.1f) phyFlits par=%d ser=%d",
			v.Name, r.MeanLatency, oc, pa, se, he, par, ser)
		if v.Name == "uniform-parallel-mesh" {
			latMesh = r.MeanLatency
		} else {
			latHet = r.MeanLatency
		}
	}
	// At this degenerate scale (wraparounds never pay off) the paper still
	// reports a win; our model shows parity — the adapter costs a fraction
	// of a cycle per crossing (see EXPERIMENTS.md). Assert parity.
	if latHet > latMesh*1.05 {
		t.Errorf("hetero-PHY (%.1f) loses to parallel mesh (%.1f) at small scale", latHet, latMesh)
	}
}

// TestFig11HeadlineSaturation guards the paper's headline claim: at 0.45
// flits/cycle/node uniform traffic on the 256-node system, the
// uniform-parallel mesh is saturated while the full-bandwidth hetero-PHY
// torus still accepts the full load (Fig. 11 / Sec. 8.1.1).
func TestFig11HeadlineSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second saturation probe")
	}
	cfg := shortCfg()
	cfg.SimCycles = 15000
	cfg.WarmupCycles = 3000
	vs := heteroPHYVariants(cfg, 4, 4, 4, 4)
	mesh, err := runPoint(vs[0], traffic.Uniform{}, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	het, err := runPoint(vs[2], traffic.Uniform{}, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if !mesh.Saturated {
		t.Errorf("uniform-parallel mesh should saturate at 0.45 (thr %.3f)", mesh.Throughput)
	}
	if het.Saturated {
		t.Errorf("hetero-PHY full should sustain 0.45 (thr %.3f)", het.Throughput)
	}
	if het.MeanLatency >= mesh.MeanLatency {
		t.Errorf("hetero-PHY latency %.1f should beat the saturated mesh %.1f", het.MeanLatency, mesh.MeanLatency)
	}
}

// TestFig14HeadlineOrdering guards the hetero-channel claim at a moderate
// load on the (short-mode) 784-node system: hetero-channel-full beats both
// the parallel mesh and the serial hypercube (Fig. 14 / Sec. 8.1.2).
func TestFig14HeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second saturation probe")
	}
	cfg := shortCfg()
	cfg.SimCycles = 12000
	cfg.WarmupCycles = 3000
	vs := heteroChannelVariants(cfg, 4, 4, 7, 7)
	lat := map[string]float64{}
	for _, v := range vs[:3] {
		r, err := runPoint(v, traffic.Uniform{}, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		lat[v.Name] = r.MeanLatency
		t.Logf("%-26s lat=%.1f thr=%.3f sat=%v", v.Name, r.MeanLatency, r.Throughput, r.Saturated)
	}
	if lat["hetero-channel-full"] >= lat["uniform-parallel-mesh"] {
		t.Errorf("hetero-channel (%.1f) should beat the mesh (%.1f)", lat["hetero-channel-full"], lat["uniform-parallel-mesh"])
	}
	if lat["hetero-channel-full"] >= lat["uniform-serial-hypercube"] {
		t.Errorf("hetero-channel (%.1f) should beat the hypercube (%.1f)", lat["hetero-channel-full"], lat["uniform-serial-hypercube"])
	}
}
