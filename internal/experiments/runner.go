// Package experiments builds complete systems (network + topology +
// routing + statistics) and contains one runner per table and figure of the
// paper's evaluation (Sec. 8). cmd/hetsim exposes them on the command line;
// bench_test.go at the repository root exposes them as Go benchmarks.
package experiments

import (
	"fmt"

	"heteroif/internal/network"
	"heteroif/internal/routing"
	"heteroif/internal/stats"
	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// Instance is a ready-to-run system: network, topology metadata, routing
// and a statistics collector wired into the packet sink.
type Instance struct {
	Net   *network.Network
	Topo  *topology.Topo
	Stats *stats.Collector
}

// Build constructs a system and attaches the matching routing algorithm.
func Build(cfg network.Config, spec topology.Spec) (*Instance, error) {
	net, topo, err := topology.Build(cfg, spec)
	if err != nil {
		return nil, err
	}
	alg, err := routing.ForSystem(topo, &net.Cfg)
	if err != nil {
		return nil, err
	}
	net.Routing = alg
	in := &Instance{Net: net, Topo: topo, Stats: &stats.Collector{Warmup: cfg.WarmupCycles}}
	net.Sink = func(p *network.Packet) {
		in.Stats.Record(stats.Measured{
			Class:          uint8(p.Class),
			CreatedAt:      p.CreatedAt,
			InjectedAt:     p.InjectedAt,
			ArrivedAt:      p.ArrivedAt,
			Length:         p.Length,
			EnergyPJ:       p.EnergyPJ,
			EnergyOnChipPJ: p.EnergyOnChipPJ,
			EnergyIfacePJ:  p.EnergyIfacePJ,
			HopsOnChip:     p.HopsOnChip,
			HopsParallel:   p.HopsParallel,
			HopsSerial:     p.HopsSerial,
			HopsHetero:     p.HopsHetero,
		})
	}
	net.Finalize()
	// The sink above copies every field it needs into a value struct, so
	// delivered packets can be recycled.
	net.PoolPackets = true
	// A generous hop bound (several diameters) catches any residual
	// wandering — reachable only under fault injection, where the torus
	// weighted-distance heuristic can point at a dead wraparound.
	net.LivelockHopBound = 6 * (topo.GX + topo.GY)
	// Shard the parallel stepper along chiplet rows so cross-shard traffic
	// rides the D2D interface links.
	net.SetShardCuts(topo.ShardCuts())
	if cfg.Workers > 1 {
		net.SetWorkers(cfg.Workers)
	}
	return in, nil
}

// RunSynthetic drives the instance with a synthetic pattern at the given
// offered load (flits/cycle/node) for cfg.SimCycles cycles.
func (in *Instance) RunSynthetic(p traffic.Pattern, rate float64) error {
	gen := traffic.NewGenerator(in.Net, p, rate, in.Net.Cfg.Seed+17)
	return in.Net.Run(in.Net.Cfg.SimCycles-in.Net.Now, gen.Drive)
}

// Result is one measured operating point. The JSON tags define the
// machine-readable manifest row format (see Manifest); renaming a field is
// a manifest schema change.
type Result struct {
	System         string  `json:"system"`
	Workload       string  `json:"workload"`
	Rate           float64 `json:"offered_rate"` // offered flits/cycle/node
	MeanLatency    float64 `json:"mean_latency"` // cycles, creation→delivery
	NetLatency     float64 `json:"net_latency"`  // cycles, injection→delivery
	P99Latency     int64   `json:"p99_latency"`
	StdDev         float64 `json:"stddev"`
	Throughput     float64 `json:"throughput"`        // accepted flits/cycle/node
	EnergyPJ       float64 `json:"energy_pj_per_pkt"` // per packet
	EnergyOnChipPJ float64 `json:"energy_onchip_pj"`
	EnergyIfacePJ  float64 `json:"energy_iface_pj"`
	Packets        int64   `json:"packets"`
	HopsOnChip     float64 `json:"hops_onchip"`
	HopsIface      float64 `json:"hops_iface"` // parallel+serial+hetero
	Saturated      bool    `json:"saturated"`
}

// Measure summarizes the instance's collector into a Result.
func (in *Instance) Measure(system, workload string, rate float64) Result {
	c := in.Stats
	window := in.Net.Now - in.Net.Cfg.WarmupCycles
	oc, pa, se, he := c.MeanHops()
	eOn, eIf := c.MeanEnergyBreakdownPJ()
	r := Result{
		System:         system,
		Workload:       workload,
		Rate:           rate,
		MeanLatency:    c.MeanLatency(),
		NetLatency:     c.MeanNetLatency(),
		P99Latency:     c.Percentile(0.99),
		StdDev:         c.LatencyStdDev(),
		Throughput:     c.Throughput(window, in.Topo.N),
		EnergyPJ:       c.MeanEnergyPJ(),
		EnergyOnChipPJ: eOn,
		EnergyIfacePJ:  eIf,
		Packets:        c.Count(),
		HopsOnChip:     oc,
		HopsIface:      pa + se + he,
	}
	// A network is saturated when it accepts meaningfully less than
	// offered or when queues grew without bound during the run.
	if rate > 0 && r.Throughput < 0.85*rate {
		r.Saturated = true
	}
	if in.Net.QueuedPackets() > in.Topo.N {
		r.Saturated = true
	}
	return r
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-26s %-18s rate=%.3f lat=%8.1f net=%8.1f p99=%6d thr=%.4f e/pkt=%7.1fpJ sat=%v",
		r.System, r.Workload, r.Rate, r.MeanLatency, r.NetLatency, r.P99Latency, r.Throughput, r.EnergyPJ, r.Saturated)
}
