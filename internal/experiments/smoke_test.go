package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentSmokes runs the complete registry at Tiny scale: every
// runner must execute without error, produce output, and write its CSV.
// This is the regression net for the experiment harness itself; the
// CI-scale and paper-scale runs happen through cmd/hetsim and the root
// benchmarks.
func TestEveryExperimentSmokes(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite takes ~a minute")
	}
	dir := t.TempDir()
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Options{Tiny: true, CSVDir: dir}, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if strings.Contains(buf.String(), "NaN") {
				t.Errorf("%s output contains NaN:\n%s", e.ID, buf.String())
			}
		})
	}
}
