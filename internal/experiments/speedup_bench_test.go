package experiments

import (
	"testing"

	"heteroif/internal/topology"
	"heteroif/internal/traffic"
)

// BenchmarkWorkersScaling measures the parallel stepper on a paper-scale
// (3136-node) hetero-channel system.
func BenchmarkWorkersScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			cfg := shortCfg()
			cfg.SimCycles = 1 << 62
			cfg.DeadlockThreshold = 0
			cfg.CheckInvariants = false
			cfg.Workers = workers
			in, err := Build(cfg, topology.Spec{System: topology.HeteroChannel, ChipletsX: 8, ChipletsY: 8, NodesX: 7, NodesY: 7})
			if err != nil {
				b.Fatal(err)
			}
			gen := traffic.NewGenerator(in.Net, traffic.Uniform{}, 0.1, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen.Drive(in.Net.Now)
				in.Net.Step()
			}
			b.ReportMetric(float64(in.Topo.N), "nodes")
		})
	}
}
