package experiments

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestSweepDeterminism is the contract behind the -jobs flag: a sweep at
// -jobs 1 and -jobs 8 must produce identical Result rows (and identical
// human-readable output) — parallelism may only change wall-clock time.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig11 twice at tiny scale")
	}
	e, err := ByID("fig11")
	if err != nil {
		t.Fatal(err)
	}
	run := func(jobs int) (*Manifest, string) {
		o := Options{Tiny: true, Jobs: jobs}
		o.Manifest = NewManifest(e, "test", o)
		var buf bytes.Buffer
		if err := e.Run(o, &buf); err != nil {
			t.Fatalf("fig11 at jobs=%d: %v", jobs, err)
		}
		return o.Manifest, buf.String()
	}
	m1, out1 := run(1)
	m8, out8 := run(8)

	if len(m1.Points) == 0 {
		t.Fatal("fig11 recorded no points")
	}
	if !reflect.DeepEqual(m1.Points, m8.Points) {
		t.Errorf("Result rows differ between jobs=1 and jobs=8:\n jobs=1: %+v\n jobs=8: %+v",
			m1.Points, m8.Points)
	}
	if out1 != out8 {
		t.Errorf("human-readable output differs between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			out1, out8)
	}
	if m1.FailedPoints != 0 || m8.FailedPoints != 0 {
		t.Errorf("unexpected failed points: %d / %d", m1.FailedPoints, m8.FailedPoints)
	}
}

// TestRunJobsRecordsFailures: a failing point must be recorded in the
// manifest and surfaced as the sweep error, while sibling points still
// deliver their results (runJobs returns only after all jobs complete).
func TestRunJobsRecordsFailures(t *testing.T) {
	boom := errors.New("synthetic point failure")
	jobs := []pointJob{
		point("ok/a", func() (Result, error) {
			return Result{System: "a", Rate: 0.1}, nil
		}),
		point("bad/b", func() (Result, error) {
			return Result{}, boom
		}),
		point("ok/c", func() (Result, error) {
			return Result{System: "c", Rate: 0.3}, nil
		}),
	}
	for _, nj := range []int{1, 4} {
		m := NewManifest(Experiment{ID: "synthetic"}, "", Options{})
		res, err := runJobs(Options{Jobs: nj, Manifest: m}, jobs)
		if !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: error %v, want %v", nj, err, boom)
		}
		if len(res) != 3 || res[0][0].System != "a" || res[2][0].System != "c" {
			t.Fatalf("jobs=%d: sibling results lost: %+v", nj, res)
		}
		if res[1] != nil {
			t.Fatalf("jobs=%d: failed job returned results: %+v", nj, res[1])
		}
		if m.FailedPoints != 1 {
			t.Fatalf("jobs=%d: manifest failed_points = %d, want 1", nj, m.FailedPoints)
		}
		// Points holds only the failure here: successes are recorded later
		// by emitResults, not by runJobs.
		if len(m.Points) != 1 || m.Points[0].Key != "bad/b" || !m.Points[0].Failed ||
			!strings.Contains(m.Points[0].Err, "synthetic point failure") {
			t.Fatalf("jobs=%d: failure not recorded correctly: %+v", nj, m.Points)
		}
	}
}
