package experiments

import (
	"fmt"
	"io"
	"strconv"

	"heteroif/internal/rtl"
)

// runTable4 reproduces Table 4: post-synthesis estimates for the adapter
// RX/TX and the regular vs heterogeneous router, plus the paper's headline
// ratios (hetero router ≈ +45% area / +33% power, frequency ≈ unchanged).
func runTable4(o Options, w io.Writer) error {
	reports := rtl.Table4()
	var rows [][]string
	for _, r := range reports {
		fmt.Fprintln(w, r)
		rows = append(rows, []string{
			r.Name,
			strconv.FormatFloat(r.AreaUM2, 'f', 0, 64),
			strconv.FormatFloat(r.PowerMW, 'f', 2, 64),
			strconv.FormatFloat(r.FJPerBit, 'f', 1, 64),
			strconv.FormatFloat(r.FreqGHz, 'f', 2, 64),
			strconv.FormatFloat(r.CriticalPathNS, 'f', 2, 64),
		})
	}
	reg, het := reports[2], reports[3]
	fmt.Fprintf(w, "\nhetero vs regular router: area %+0.0f%%, power %+0.0f%%, freq %0.0f%% of regular\n",
		100*(het.AreaUM2/reg.AreaUM2-1), 100*(het.PowerMW/reg.PowerMW-1), 100*het.FreqGHz/reg.FreqGHz)
	return emitTable(o, "table4",
		[]string{"module", "area_um2", "power_mw", "fj_per_bit", "freq_ghz", "critical_path_ns"}, rows)
}
