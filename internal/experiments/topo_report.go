package experiments

import (
	"fmt"
	"io"
	"strconv"

	"heteroif/internal/analysis"
	"heteroif/internal/topology"
)

// runTopo prints the static metrics behind the paper's motivation: a flat
// parallel mesh's diameter grows as O(√N) (Sec. 1), the serial torus and
// hypercube shrink it at a per-hop latency cost, and the heterogeneous
// systems combine the low per-hop latency with the shortcut diameter.
// Both hop metrics and zero-load latency metrics (Eq. 3/4 weights) are
// reported for every system at three scales.
func runTopo(o Options, w io.Writer) error {
	cfg := baseConfig(o)
	scales := []struct {
		label          string
		cx, cy, nx, ny int
	}{
		{"16x(2x2)", 4, 4, 2, 2},
		{"16x(4x4)", 4, 4, 4, 4},
		{"64x(7x7)", 8, 8, 7, 7},
	}
	if !o.Full {
		scales = scales[:2]
	}
	if o.Tiny {
		scales = scales[:1]
	}
	systems := []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
		topology.UniformSerialHypercube,
		topology.HeteroChannel,
	}
	var rows [][]string
	for _, sc := range scales {
		fmt.Fprintf(w, "--- scale %s ---\n", sc.label)
		for _, sys := range systems {
			_, topo, err := topology.Build(cfg, topology.Spec{
				System: sys, ChipletsX: sc.cx, ChipletsY: sc.cy, NodesX: sc.nx, NodesY: sc.ny,
			})
			if err != nil {
				return err
			}
			hop := analysis.Analyze(topo, &cfg, analysis.HopCosts())
			lat := analysis.Analyze(topo, &cfg, analysis.LatencyCosts(&cfg))
			fmt.Fprintf(w, "%-26s hops: diam=%-3d avg=%-6.2f  latency: diam=%-4d avg=%-7.2f  bisection=%-4d ifBW=%d\n",
				sys, hop.Diameter, hop.AvgDistance, lat.Diameter, lat.AvgDistance, hop.BisectionFlits, hop.InterfacePins)
			rows = append(rows, []string{
				sc.label, sys.String(),
				strconv.Itoa(hop.Diameter), strconv.FormatFloat(hop.AvgDistance, 'f', 2, 64),
				strconv.Itoa(lat.Diameter), strconv.FormatFloat(lat.AvgDistance, 'f', 2, 64),
				strconv.Itoa(hop.BisectionFlits), strconv.Itoa(hop.InterfacePins),
			})
		}
	}
	return emitTable(o, "topo", []string{
		"scale", "system", "hop_diameter", "hop_avg", "latency_diameter", "latency_avg", "bisection_flits", "interface_bw",
	}, rows)
}
