package fault

import (
	"math"
	"math/rand"

	"heteroif/internal/core"
	"heteroif/internal/network"
)

// EventKind classifies a scripted fault event.
type EventKind uint8

const (
	// EventBurst raises the per-flit corruption probability to P during
	// [From, To) — a transient noise burst.
	EventBurst EventKind = iota
	// EventDegrade models a stuck/marginal lane: corruption probability at
	// least P from From on (To < 0) or during [From, To).
	EventDegrade
	// EventDown kills the wire during [From, To); To < 0 is permanent.
	// Transmissions attempted while down are lost outright (no arrival,
	// no CRC event) and recovered by the retry timeout.
	EventDown
)

// Fault sites for Event.Phy.
const (
	// PhyLink targets a plain link's own pipeline.
	PhyLink int8 = -1
	// PhyParallel / PhySerial target one PHY of a hetero-PHY adapter link.
	PhyParallel int8 = 0
	PhySerial   int8 = 1
)

// Event is one scripted fault. Events compose with the background BER: the
// effective corruption probability at any cycle is the maximum of the BER-
// derived base rate and every active Burst/Degrade event's P.
type Event struct {
	Kind EventKind
	// Link selects a link ID, or -1 for every link the Phy selector
	// matches.
	Link int
	// Phy selects the fault site (PhyLink, PhyParallel or PhySerial).
	Phy int8
	// From and To bound the active interval [From, To); To < 0 means the
	// event never ends.
	From, To int64
	// P is the per-flit corruption probability while active (ignored for
	// EventDown).
	P float64
}

func (e Event) active(now int64) bool {
	return now >= e.From && (e.To < 0 || now < e.To)
}

// Config describes the fault environment of one run. The zero value
// injects nothing (and Attach then arms no retry machinery at all).
type Config struct {
	// Seed drives every fault draw through Split streams; 0 derives one
	// from the network's seed. Traffic uses Root streams, so the same root
	// seed never aliases the two.
	Seed int64

	// Per-bit error rates by interface class. The paper's reliability gap
	// (Sec. 2.1): long-reach serial runs at a real BER, short-reach
	// parallel and on-chip wires are effectively clean, so
	// SerialBER >> ParallelBER ≈ OnChipBER.
	SerialBER   float64
	ParallelBER float64
	OnChipBER   float64

	// Window and Timeout override the per-link retry replay capacity
	// (flits) and retransmission timeout (cycles); <= 0 derives defaults
	// from each link's bandwidth and delay.
	Window  int
	Timeout int

	// Events are scripted faults layered on top of the background BER.
	Events []Event
}

// enabled reports whether the config injects anything at all.
func (fc Config) enabled() bool {
	return fc.SerialBER > 0 || fc.ParallelBER > 0 || fc.OnChipBER > 0 || len(fc.Events) > 0
}

// PerFlit converts a per-bit error rate to the per-flit corruption
// probability for the given flit width: 1 - (1-ber)^bits.
func PerFlit(ber float64, bits int) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return 1 - math.Pow(1-ber, float64(bits))
}

// hook is the per-site TxFault implementation: a private Split RNG stream
// plus the static fault script. Faults are evaluated per transmission
// event, never per cycle, so outcomes are independent of quiescence
// fast-forward and of how many cycles the engine actually visits.
type hook struct {
	rng    *rand.Rand
	pFlit  float64
	events []Event
}

func (h *hook) Corrupt(now int64) bool {
	p := h.pFlit
	for _, e := range h.events {
		if e.Kind != EventDown && e.P > p && e.active(now) {
			p = e.P
		}
	}
	if p <= 0 {
		return false
	}
	return h.rng.Float64() < p
}

func (h *hook) Down(now int64) bool {
	for _, e := range h.events {
		if e.Kind == EventDown && e.active(now) {
			return true
		}
	}
	return false
}

// siteHook builds the fault hook for one site, or nil when the site is
// clean (no BER, no matching events) — a clean site gets no retry
// machinery, keeping it bit-identical to a fault-free run.
func siteHook(fc Config, seed int64, linkID int, phy int8, ber float64, bits int) network.TxFault {
	var evs []Event
	for _, e := range fc.Events {
		if e.Phy != phy {
			continue
		}
		if e.Link >= 0 && e.Link != linkID {
			continue
		}
		evs = append(evs, e)
	}
	p := PerFlit(ber, bits)
	if p == 0 && len(evs) == 0 {
		return nil
	}
	domain, index := DomainLink, uint64(linkID)
	if phy != PhyLink {
		domain, index = DomainPHY, uint64(2*linkID+int(phy))
	}
	return &hook{rng: Split(seed, domain, index), pFlit: p, events: evs}
}

// Attach walks a built (pre-run) network and arms the retry protocol with
// the configured error model on every faulted site: plain links get
// link-level retry, hetero-PHY adapter links get per-PHY retry. Sites the
// config leaves clean are not touched at all, so a Config that injects
// nothing leaves the network bit-identical to one never passed through
// Attach.
func Attach(net *network.Network, fc Config) {
	if !fc.enabled() {
		return
	}
	seed := fc.Seed
	if seed == 0 {
		seed = net.Cfg.Seed + 40129
	}
	bits := net.Cfg.FlitBits
	for _, l := range net.Links {
		if l.Adapter != nil {
			ad, ok := l.Adapter.(*core.HeteroPHYAdapter)
			if !ok {
				continue
			}
			if h := siteHook(fc, seed, l.ID, PhyParallel, fc.ParallelBER, bits); h != nil {
				ad.EnableRetry(core.PHYParallel, h, fc.Window, fc.Timeout)
			}
			if h := siteHook(fc, seed, l.ID, PhySerial, fc.SerialBER, bits); h != nil {
				ad.EnableRetry(core.PHYSerial, h, fc.Window, fc.Timeout)
			}
			continue
		}
		var ber float64
		switch l.Kind {
		case network.KindSerial:
			ber = fc.SerialBER
		case network.KindParallel:
			ber = fc.ParallelBER
		case network.KindOnChip:
			ber = fc.OnChipBER
		default:
			continue
		}
		if h := siteHook(fc, seed, l.ID, PhyLink, ber, bits); h != nil {
			l.EnableRetry(h, fc.Window, fc.Timeout)
		}
	}
}

// Summary aggregates link-layer reliability counters across every
// retry-enabled site of a network.
type Summary struct {
	network.RetryStats
	// Sites counts retry-enabled fault sites (links and adapter PHYs).
	Sites int
	// Rescued counts flits the failover eviction path re-issued through a
	// parallel PHY.
	Rescued uint64
}

// Summarize collects the Summary of a network after (or during) a run.
func Summarize(net *network.Network) Summary {
	var s Summary
	for _, l := range net.Links {
		if rp := l.Retry(); rp != nil {
			s.Add(rp.Stats)
			s.Sites++
		}
		if l.Adapter == nil {
			continue
		}
		ad, ok := l.Adapter.(*core.HeteroPHYAdapter)
		if !ok {
			continue
		}
		if rp := ad.ParallelRetry(); rp != nil {
			s.Add(rp.Stats)
			s.Sites++
		}
		if rp := ad.SerialRetry(); rp != nil {
			s.Add(rp.Stats)
			s.Sites++
		}
		s.Rescued += ad.Rescued()
	}
	return s
}
