package fault

import (
	"math"
	"testing"

	"heteroif/internal/core"
	"heteroif/internal/network"
	"heteroif/internal/network/netbench"
)

func TestPerFlit(t *testing.T) {
	if got := PerFlit(0, 64); got != 0 {
		t.Fatalf("PerFlit(0) = %v", got)
	}
	if got := PerFlit(2, 64); got != 1 {
		t.Fatalf("PerFlit(>=1) = %v, want 1", got)
	}
	// Small-BER regime: p ≈ ber × bits.
	if got, want := PerFlit(1e-6, 64), 64e-6; math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("PerFlit(1e-6, 64) = %v, want ≈%v", got, want)
	}
	if PerFlit(1e-4, 128) <= PerFlit(1e-4, 64) {
		t.Fatal("PerFlit not monotonic in flit width")
	}
}

// TestHookEventComposition: scripted events gate on their interval; Burst
// raises the corruption probability to P, Down kills the wire, and a clean
// hook never draws from its RNG (zero-draw skip keeps clean cycles free).
func TestHookEventComposition(t *testing.T) {
	h := &hook{rng: Split(1, DomainLink, 0), events: []Event{
		{Kind: EventBurst, From: 10, To: 20, P: 1},
		{Kind: EventDown, From: 30, To: 40},
		{Kind: EventDegrade, From: 50, To: -1, P: 1},
	}}
	for _, tc := range []struct {
		now          int64
		corrupt, dwn bool
	}{
		{5, false, false},   // nothing active
		{10, true, false},   // burst, P=1 → certain corruption
		{19, true, false},   // burst still active (half-open interval)
		{20, false, false},  // burst over
		{35, false, true},   // down window
		{40, false, false},  // down over
		{50, true, false},   // permanent degrade (To < 0)
		{9999, true, false}, // still degraded
	} {
		if got := h.Down(tc.now); got != tc.dwn {
			t.Fatalf("Down(%d) = %v, want %v", tc.now, got, tc.dwn)
		}
		if got := h.Corrupt(tc.now); got != tc.corrupt {
			t.Fatalf("Corrupt(%d) = %v, want %v", tc.now, got, tc.corrupt)
		}
	}
}

// TestSiteHookFiltering: a site hook sees only the events addressed to it,
// and clean sites get no hook (hence no retry machinery) at all.
func TestSiteHookFiltering(t *testing.T) {
	fc := Config{Events: []Event{
		{Kind: EventDown, Link: 3, Phy: PhyLink, From: 0, To: -1},
		{Kind: EventDown, Link: -1, Phy: PhySerial, From: 0, To: -1},
	}}
	if h := siteHook(fc, 1, 3, PhyLink, 0, 64); h == nil || !h.Down(0) {
		t.Fatal("link 3 did not receive its scripted event")
	}
	if h := siteHook(fc, 1, 4, PhyLink, 0, 64); h != nil {
		t.Fatal("link 4 received an event addressed to link 3")
	}
	if h := siteHook(fc, 1, 9, PhySerial, 0, 64); h == nil || !h.Down(0) {
		t.Fatal("wildcard serial-PHY event did not reach link 9's serial PHY")
	}
	if h := siteHook(fc, 1, 9, PhyParallel, 0, 64); h != nil {
		t.Fatal("serial-PHY event leaked onto the parallel PHY")
	}
	if h := siteHook(Config{}, 1, 0, PhyLink, 1e-3, 64); h == nil {
		t.Fatal("nonzero BER produced no hook")
	}
}

// TestAttachArmsOnlyFaultedSites: Attach must leave clean sites untouched
// (zero-cost-when-disabled) and arm exactly the configured ones, including
// per-PHY retry behind hetero-PHY adapters.
func TestAttachArmsOnlyFaultedSites(t *testing.T) {
	build := func() (*network.Network, *network.Link, *network.Link, *core.HeteroPHYAdapter) {
		cfg := network.DefaultConfig()
		net, err := network.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.AddNodes(2)
		serial := net.Connect(network.KindSerial, 0, 1)
		par := net.Connect(network.KindParallel, 1, 0)
		hl := net.Connect(network.KindHeteroPHY, 0, 1)
		ad := core.NewHeteroPHYAdapter(&net.Cfg, core.Balanced{})
		net.SetAdapter(hl, ad)
		return net, serial, par, ad
	}

	net, serial, par, ad := build()
	Attach(net, Config{})
	if serial.Retry() != nil || par.Retry() != nil || ad.SerialRetry() != nil || ad.ParallelRetry() != nil {
		t.Fatal("zero-value Config armed retry machinery")
	}

	net, serial, par, ad = build()
	Attach(net, Config{SerialBER: 1e-3})
	if serial.Retry() == nil {
		t.Fatal("serial link not armed by SerialBER")
	}
	if par.Retry() != nil || ad.ParallelRetry() != nil {
		t.Fatal("SerialBER armed a parallel site")
	}
	if ad.SerialRetry() == nil {
		t.Fatal("adapter serial PHY not armed by SerialBER")
	}
	if s := Summarize(net); s.Sites != 2 {
		t.Fatalf("Summarize counted %d sites, want 2", s.Sites)
	}
}

// TestFaultRunFastForwardOracle is the fault-injected fast-forward oracle:
// with a seeded error model active, RunWith (quiescence skipping enabled)
// must reproduce the cycle-by-cycle run exactly — faults are drawn per
// transmission event, and retry-busy links hold the engine awake. It also
// closes the integrity loop: every injected packet delivered exactly once.
func TestFaultRunFastForwardOracle(t *testing.T) {
	const side, cycles, chunk = 4, 2048, 512
	fc := Config{OnChipBER: 1e-3}

	type arrival struct {
		id       uint64
		arr      int64
		energyPJ float64
	}
	run := func(fastForward bool) ([]arrival, Summary, *network.Network) {
		net := netbench.BuildMesh(side)
		Attach(net, fc)
		chk := NewIntegrityChecker(net)
		var log []arrival
		prev := net.Sink
		net.Sink = func(p *network.Packet) {
			log = append(log, arrival{p.ID, p.ArrivedAt, p.EnergyPJ})
			prev(p)
		}
		sched := &netbench.Schedule{Net: net, Interval: 100, Length: net.Cfg.PacketLength}
		if fastForward {
			for net.Now < cycles {
				if err := net.RunWith(chunk, sched.Drive, sched.NextInjection); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for net.Now < cycles {
				sched.Drive(net.Now)
				net.Step()
			}
		}
		if ok, err := net.Drain(); err != nil || !ok {
			t.Fatalf("drain (fastForward=%v): ok=%v err=%v", fastForward, ok, err)
		}
		if err := chk.Check(net); err != nil {
			t.Fatalf("integrity (fastForward=%v): %v", fastForward, err)
		}
		if err := net.CheckCredits(); err != nil {
			t.Fatalf("credits (fastForward=%v): %v", fastForward, err)
		}
		return log, Summarize(net), net
	}

	refLog, refSum, _ := run(false)
	ffLog, ffSum, _ := run(true)

	if len(refLog) == 0 {
		t.Fatal("no packets delivered — schedule broken")
	}
	if refSum.Corrupted == 0 || refSum.Retransmits == 0 {
		t.Fatalf("BER %v injected no faults: %+v", fc.OnChipBER, refSum.RetryStats)
	}
	if len(ffLog) != len(refLog) {
		t.Fatalf("delivered %d packets fast-forwarded vs %d stepped", len(ffLog), len(refLog))
	}
	for i := range refLog {
		if refLog[i] != ffLog[i] {
			t.Fatalf("arrival %d diverged: stepped %+v, fast-forwarded %+v", i, refLog[i], ffLog[i])
		}
	}
	if refSum != ffSum {
		t.Fatalf("fault summaries diverged:\nstepped        %+v\nfast-forwarded %+v", refSum, ffSum)
	}
}

// TestFaultRunReplayable: two runs with identical seeds are bit-identical;
// changing the fault seed changes the fault realization but never breaks
// delivery integrity.
func TestFaultRunReplayable(t *testing.T) {
	run := func(seed int64) (Summary, int64) {
		net := netbench.BuildMesh(4)
		Attach(net, Config{OnChipBER: 1e-3, Seed: seed})
		chk := NewIntegrityChecker(net)
		sched := &netbench.Schedule{Net: net, Interval: 50, Length: net.Cfg.PacketLength}
		var lastArr int64
		prev := net.Sink
		net.Sink = func(p *network.Packet) { lastArr = p.ArrivedAt; prev(p) }
		if err := net.RunWith(1024, sched.Drive, sched.NextInjection); err != nil {
			t.Fatal(err)
		}
		if ok, err := net.Drain(); err != nil || !ok {
			t.Fatalf("drain: ok=%v err=%v", ok, err)
		}
		if err := chk.Check(net); err != nil {
			t.Fatal(err)
		}
		return Summarize(net), lastArr
	}
	s1, a1 := run(7)
	s2, a2 := run(7)
	if s1 != s2 || a1 != a2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, a1, s2, a2)
	}
	s3, _ := run(8)
	if s1.RetryStats == s3.RetryStats {
		t.Fatal("different fault seeds produced identical fault realizations")
	}
}
