package fault

import (
	"fmt"

	"heteroif/internal/network"
)

// IntegrityChecker verifies exactly-once delivery under fault injection: it
// chains into the network's packet sink, records every delivered packet ID
// and flags duplicates. Per-packet flit ordering is enforced by the engine
// itself (the router panics on an out-of-order or duplicate flit at a VC
// front), so exactly-once packet delivery plus a clean drain is the full
// integrity statement.
type IntegrityChecker struct {
	seen      map[uint64]struct{}
	delivered uint64
	dups      uint64
}

// NewIntegrityChecker wraps the network's current sink (call after the
// sink is installed, e.g. after experiments.Build).
func NewIntegrityChecker(net *network.Network) *IntegrityChecker {
	c := &IntegrityChecker{seen: make(map[uint64]struct{})}
	prev := net.Sink
	net.Sink = func(p *network.Packet) {
		c.delivered++
		if _, dup := c.seen[p.ID]; dup {
			c.dups++
		} else {
			c.seen[p.ID] = struct{}{}
		}
		if prev != nil {
			prev(p)
		}
	}
	return c
}

// Delivered returns how many packet deliveries the checker observed.
func (c *IntegrityChecker) Delivered() uint64 { return c.delivered }

// Duplicates returns how many deliveries repeated an already-seen ID.
func (c *IntegrityChecker) Duplicates() uint64 { return c.dups }

// Check returns nil when every injected packet was delivered exactly once
// and nothing is left in flight. Call it after the network drained.
func (c *IntegrityChecker) Check(net *network.Network) error {
	if c.dups > 0 {
		return fmt.Errorf("fault: %d duplicate packet deliveries", c.dups)
	}
	if d, i := net.PacketsDelivered(), net.PacketsInjected(); d != i {
		return fmt.Errorf("fault: delivered %d of %d injected packets", d, i)
	}
	if n := net.InFlightFlits(); n != 0 {
		return fmt.Errorf("fault: %d flits still in flight after drain", n)
	}
	return nil
}
