// Package fault implements the deterministic fault-injection and
// link-reliability subsystem: seeded per-link bit-error models, scriptable
// fault events (transient bursts, stuck-lane degradation, permanent
// link-down), and the wiring that attaches them — together with the
// link-layer retry protocol of internal/network — to a built network.
//
// Everything here is replayable: all randomness flows from one root seed
// through Split, so a run is a pure function of (topology, workload seed,
// fault seed) regardless of worker count or job interleaving.
package fault

import "math/rand"

// Root returns the historical root stream for a seed: exactly
// rand.New(rand.NewSource(seed)). internal/traffic draws its injection and
// destination randomness from Root, which keeps every pre-fault simulation
// result bit-identical. New subsystems must NOT use Root — derive an
// independent stream with Split instead.
func Root(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Domains for Split. Each subsystem draws from its own domain so streams
// never collide even when two subsystems index by the same small integers
// (e.g. traffic per-node streams vs fault per-link streams).
const (
	// DomainLink seeds the per-link error-injection stream (index = link ID).
	DomainLink uint64 = 1
	// DomainPHY seeds per-adapter-PHY error streams
	// (index = 2*linkID + phy).
	DomainPHY uint64 = 2
)

// Split derives an independent deterministic stream for (seed, domain,
// index) by running the tuple through a SplitMix64-style mixer. The mixed
// seed is guaranteed to fall outside the "root band" of small seeds that
// Root (and the historical seed+offset call sites) use, so a fault stream
// can never alias a traffic stream under any root seed a user plausibly
// passes on the command line.
func Split(seed int64, domain, index uint64) *rand.Rand {
	return rand.New(rand.NewSource(splitSeed(seed, domain, index)))
}

// splitSeed mixes the (seed, domain, index) tuple into a source seed
// outside the root band.
func splitSeed(seed int64, domain, index uint64) int64 {
	x := uint64(seed)
	x = mix64(x ^ 0x9e3779b97f4a7c15)
	x = mix64(x ^ domain*0xbf58476d1ce4e5b9)
	x = mix64(x ^ index*0x94d049bb133111eb)
	// Keep remixing until the seed is far from every plausible root seed
	// (|seed| < 2^32). Terminates immediately with probability 1-2^-31.
	for x>>32 == 0 || x>>32 == 0xffffffff {
		x = mix64(x)
	}
	return int64(x)
}

// mix64 is the SplitMix64 finalizer (Steele et al., "Fast Splittable
// Pseudorandom Number Generators").
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
