package fault

import (
	"math/rand"
	"testing"
)

// TestRootMatchesHistoricalStream: Root must be bit-identical to the
// rand.New(rand.NewSource(seed)) idiom traffic always used, or every
// pre-fault simulation result changes.
func TestRootMatchesHistoricalStream(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		a, b := Root(seed), rand.New(rand.NewSource(seed))
		for i := 0; i < 32; i++ {
			if x, y := a.Int63(), b.Int63(); x != y {
				t.Fatalf("seed %d draw %d: Root %d != historical %d", seed, i, x, y)
			}
		}
	}
}

// TestSplitDeterministic: the same tuple always yields the same stream.
func TestSplitDeterministic(t *testing.T) {
	a, b := Split(42, DomainLink, 7), Split(42, DomainLink, 7)
	for i := 0; i < 32; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

// TestSplitDistinctStreams: varying any tuple component yields a different
// stream (compared over a few draws — collision means a mixing bug, not
// bad luck).
func TestSplitDistinctStreams(t *testing.T) {
	base := [4]int64{}
	fill := func(r *rand.Rand) (v [4]int64) {
		for i := range v {
			v[i] = r.Int63()
		}
		return v
	}
	base = fill(Split(42, DomainLink, 7))
	for name, r := range map[string]*rand.Rand{
		"seed":   Split(43, DomainLink, 7),
		"domain": Split(42, DomainPHY, 7),
		"index":  Split(42, DomainLink, 8),
		"root":   Root(42),
	} {
		if fill(r) == base {
			t.Fatalf("%s variation did not change the stream", name)
		}
	}
}

// TestSplitSeedAvoidsRootBand: mixed seeds must land outside the band of
// plausible root seeds (|seed| < 2^32), including seed+offset call sites,
// for every tuple — that is the no-aliasing guarantee.
func TestSplitSeedAvoidsRootBand(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 12345, 1 << 31} {
		for domain := uint64(1); domain <= 4; domain++ {
			for index := uint64(0); index < 256; index++ {
				s := splitSeed(seed, domain, index)
				if s > -(1<<32) && s < 1<<32 {
					t.Fatalf("splitSeed(%d,%d,%d) = %d lands in the root band", seed, domain, index, s)
				}
			}
		}
	}
}
