package network

import "testing"

// Micro-benchmarks for the two router hot stages in isolation. The
// whole-engine numbers live in BenchmarkStep (and BENCH_kernel.json);
// these pin down where a regression sits when that number moves.
//
// Both run on a "blockage fixed point": an 8×8 mesh is driven to
// saturation by real stepping, then router ticks run with the link phase
// frozen until credits are exhausted and nothing can move. That state is
// reproducible per iteration — every VC allocation fails (and re-parks
// idempotently), every switch pass finds its ready set parked — so the
// benchmarks measure exactly the per-cycle overhead a saturated router
// pays between grants, the cost the work-list/parking design attacks.

// blockedMesh drives a side×side mesh to the blockage fixed point and
// returns the busy routers plus a tick context bound to the sequential
// scratch.
func blockedMesh(tb testing.TB, side int) (*Network, []*Router, tickContext) {
	net := buildXYMesh(tb, side, false)
	for net.Now < 2000 {
		saturateXYMesh(net, net.Now)
		net.Step()
	}
	ctx := tickContext{net: net, scratch: &net.seqScratch}
	for i := 0; i < 64; i++ {
		for _, r := range net.Nodes {
			if r.buffered > 0 {
				r.tickCtx(&ctx)
			}
		}
	}
	before := 0
	for _, r := range net.Nodes {
		before += r.buffered
	}
	for _, r := range net.Nodes {
		if r.buffered > 0 {
			r.tickCtx(&ctx)
		}
	}
	after := 0
	for _, r := range net.Nodes {
		after += r.buffered
	}
	if before != after {
		tb.Fatalf("no blockage fixed point: buffered %d -> %d", before, after)
	}
	var busy []*Router
	for _, r := range net.Nodes {
		if r.buffered > 0 {
			busy = append(busy, r)
		}
	}
	if len(busy) == 0 {
		tb.Fatal("blockage fixed point has no busy routers")
	}
	return net, busy, ctx
}

// BenchmarkAllocate measures the RC+VA retry path: per op, every parked
// input VC in the mesh is returned to the pending set and re-allocated
// (each attempt fails on exhausted credits/held VCs and re-parks). This is
// the retry storm a saturated router would pay every cycle without VA
// parking, and the stage where route memoization and the bitmask VC scan
// live.
func BenchmarkAllocate(b *testing.B) {
	_, busy, ctx := blockedMesh(b, 8)
	type snap struct {
		r    *Router
		pend []uint64
	}
	var snaps []snap
	slots := 0
	for _, r := range busy {
		if r.vaParkedCount == 0 {
			continue
		}
		snaps = append(snaps, snap{r, append([]uint64(nil), r.vaParked...)})
		slots += r.vaParkedCount
	}
	if slots == 0 {
		b.Skip("no parked allocations at the blockage fixed point")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range snaps {
			copy(s.r.allocPend, s.pend)
			s.r.vaStage(&ctx)
		}
	}
	b.ReportMetric(float64(slots), "vaslots/op")
}

// BenchmarkSwitchAlloc measures the switch-allocation pass over every
// saturated router: budget prologue, ready-list scan and round-robin
// advance, with all slots parked on credits — the per-cycle floor the SA
// stage costs a blocked router.
func BenchmarkSwitchAlloc(b *testing.B) {
	_, busy, ctx := blockedMesh(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range busy {
			r.switchAlloc(&ctx)
		}
	}
	b.ReportMetric(float64(len(busy)), "routers/op")
}
