package network_test

import (
	"testing"

	"heteroif/internal/network/netbench"
)

// BenchmarkStep measures the per-cycle cost of the engine at three
// operating points (idle, low-load, saturated) and three mesh sizes
// (16/64/256 nodes). cmd/benchkernel runs the same cases and records them
// in BENCH_kernel.json so future PRs have a perf trajectory to compare
// against. The low-load cases step through Network.RunWith, so quiescence
// fast-forward is part of what is measured — exactly as a Fig. 11-style
// latency sweep would experience it.
func BenchmarkStep(b *testing.B) {
	for _, c := range netbench.Cases() {
		b.Run(c.Name, c.Bench)
	}
}
