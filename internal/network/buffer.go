package network

// FlitQueue is a bounded FIFO of flits backed by a ring buffer. It is the
// storage behind every virtual-channel input buffer and adapter queue.
type FlitQueue struct {
	buf  []Flit
	head int
	n    int
}

// NewFlitQueue returns a queue with the given capacity in flits.
func NewFlitQueue(capacity int) *FlitQueue {
	if capacity <= 0 {
		capacity = 1
	}
	return &FlitQueue{buf: make([]Flit, capacity)}
}

// Cap returns the queue capacity.
func (q *FlitQueue) Cap() int { return len(q.buf) }

// Len returns the number of buffered flits.
func (q *FlitQueue) Len() int { return q.n }

// Free returns the remaining capacity.
func (q *FlitQueue) Free() int { return len(q.buf) - q.n }

// Empty reports whether the queue holds no flits.
func (q *FlitQueue) Empty() bool { return q.n == 0 }

// Push appends a flit. It reports false (dropping nothing) when full; flow
// control is supposed to prevent that, and callers treat false as a bug.
// Indices wrap by conditional subtraction, not modulo: head and n are both
// < len(buf), and the engine hits these paths once per flit movement.
func (q *FlitQueue) Push(f Flit) bool {
	if q.n == len(q.buf) {
		return false
	}
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = f
	q.n++
	return true
}

// Front returns the oldest flit without removing it. It must not be called
// on an empty queue.
func (q *FlitQueue) Front() Flit { return q.buf[q.head] }

// At returns the i-th oldest flit (0 = front). It must be in range.
func (q *FlitQueue) At(i int) Flit {
	j := q.head + i
	if j >= len(q.buf) {
		j -= len(q.buf)
	}
	return q.buf[j]
}

// Pop removes and returns the oldest flit. It must not be called on an
// empty queue.
func (q *FlitQueue) Pop() Flit {
	f := q.buf[q.head]
	q.buf[q.head] = Flit{}
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return f
}

// Reset discards all buffered flits.
func (q *FlitQueue) Reset() {
	for i := range q.buf {
		q.buf[i] = Flit{}
	}
	q.head, q.n = 0, 0
}
