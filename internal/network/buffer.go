package network

// FlitQueue is a bounded FIFO of flits backed by a ring buffer. It is the
// storage behind every virtual-channel input buffer and adapter queue.
//
// wpos/pend implement direct staging for Delay-1 plain links (see
// Link.direct): the producing link writes arriving flits into the ring at
// wpos during its source router's tick and the next cycle's link phase
// publishes them in bulk. The ring splits into two disjoint regions —
// [head, head+n) live, [head+n, head+n+pend) staged — with head and n
// owned by the consuming router and wpos/pend owned by the single
// producing link. head+n is invariant under Pop and Drop, so the producer
// cursor tracks the live end by pure increments without ever reading
// consumer state (which would race under parallel stepping).
type FlitQueue struct {
	buf  []Flit
	head int
	n    int

	wpos int
	pend int
}

// NewFlitQueue returns a queue with the given capacity in flits.
func NewFlitQueue(capacity int) *FlitQueue {
	if capacity <= 0 {
		capacity = 1
	}
	return &FlitQueue{buf: make([]Flit, capacity)}
}

// Cap returns the queue capacity.
func (q *FlitQueue) Cap() int { return len(q.buf) }

// Len returns the number of buffered flits.
func (q *FlitQueue) Len() int { return q.n }

// Free returns the remaining capacity.
func (q *FlitQueue) Free() int { return len(q.buf) - q.n }

// Empty reports whether the queue holds no flits.
func (q *FlitQueue) Empty() bool { return q.n == 0 }

// Push appends a flit. It reports false (dropping nothing) when full; flow
// control is supposed to prevent that, and callers treat false as a bug.
// Indices wrap by conditional subtraction, not modulo: head and n are both
// < len(buf), and the engine hits these paths once per flit movement.
func (q *FlitQueue) Push(f Flit) bool {
	if q.n == len(q.buf) {
		return false
	}
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = f
	q.n++
	return true
}

// PushRun appends a run of flits in order, reporting false (appending
// nothing) when the whole run does not fit — the bulk counterpart of Push,
// with the same "full means protocol bug" contract.
func (q *FlitQueue) PushRun(fs []Flit) bool {
	if q.n+len(fs) > len(q.buf) {
		return false
	}
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	n := copy(q.buf[i:], fs)
	if n < len(fs) {
		copy(q.buf, fs[n:])
	}
	q.n += len(fs)
	return true
}

// Front returns the oldest flit without removing it. It must not be called
// on an empty queue.
func (q *FlitQueue) Front() Flit { return q.buf[q.head] }

// FrontPkt returns the packet of the oldest flit without copying the whole
// flit (the switch stage re-checks packet identity once per granted flit).
// It must not be called on an empty queue.
func (q *FlitQueue) FrontPkt() *Packet { return q.buf[q.head].Pkt }

// FrontSeq returns the sequence number of the oldest flit without copying
// the whole flit. It must not be called on an empty queue.
func (q *FlitQueue) FrontSeq() int32 { return q.buf[q.head].Seq }

// frontRef returns a pointer to the oldest flit in place. The reference is
// invalidated by the next mutation. It must not be called on an empty
// queue.
func (q *FlitQueue) frontRef() *Flit { return &q.buf[q.head] }

// At returns the i-th oldest flit (0 = front). It must be in range.
func (q *FlitQueue) At(i int) Flit {
	j := q.head + i
	if j >= len(q.buf) {
		j -= len(q.buf)
	}
	return q.buf[j]
}

// PeekRun returns views of the n oldest flits without removing them, as up
// to two contiguous slices (the run may wrap the ring). n must not exceed
// Len. The views are invalidated by the next mutation; pair with Drop.
func (q *FlitQueue) PeekRun(n int) (a, b []Flit) {
	end := q.head + n
	if end <= len(q.buf) {
		return q.buf[q.head:end], nil
	}
	return q.buf[q.head:], q.buf[:end-len(q.buf)]
}

// Drop removes the n oldest flits, releasing their packet pointers. Only
// the Pkt field is cleared: the scalar remainder of a dead slot is never
// read (Push/stagePut/stageSpan overwrite whole flits), and zeroing 8 of
// the 64 bytes keeps the GC write out of the drain hot path. n must not
// exceed Len.
func (q *FlitQueue) Drop(n int) {
	a, b := q.PeekRun(n)
	for i := range a {
		a[i].Pkt = nil
	}
	for i := range b {
		b[i].Pkt = nil
	}
	q.head += n
	if q.head >= len(q.buf) {
		q.head -= len(q.buf)
	}
	q.n -= n
}

// Pop removes and returns the oldest flit (releasing the slot's packet
// pointer, like Drop). It must not be called on an empty queue.
func (q *FlitQueue) Pop() Flit {
	f := q.buf[q.head]
	q.buf[q.head].Pkt = nil
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return f
}

// Reset discards all buffered flits, staged ones included.
func (q *FlitQueue) Reset() {
	for i := range q.buf {
		q.buf[i] = Flit{}
	}
	q.head, q.n = 0, 0
	q.wpos, q.pend = 0, 0
}

// syncStage aligns the producer cursor with the live end. Finalize calls
// it when arming a link for direct staging; it must never run with flits
// staged (they would be orphaned).
func (q *FlitQueue) syncStage() {
	if q.pend != 0 {
		panic("network: syncStage with staged flits")
	}
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.wpos = i
}

// stagePut writes a flit at the producer cursor without publishing it.
// Credit flow control guarantees the slot is free — the staging twin of
// Push's "full means protocol bug" contract, unchecked here because the
// producer may not read the consumer-owned occupancy.
func (q *FlitQueue) stagePut(f Flit) {
	q.buf[q.wpos] = f
	q.wpos++
	if q.wpos == len(q.buf) {
		q.wpos = 0
	}
	q.pend++
}

// stageSpan reserves n staged slots at the producer cursor and returns
// them as up to two contiguous views (the reservation may wrap the ring),
// for bulk-copy staging — the run counterpart of stagePut, with the same
// unchecked credit-backed capacity contract.
func (q *FlitQueue) stageSpan(n int) (a, b []Flit) {
	end := q.wpos + n
	if end <= len(q.buf) {
		a = q.buf[q.wpos:end]
		if end == len(q.buf) {
			end = 0
		}
	} else {
		end -= len(q.buf)
		a, b = q.buf[q.wpos:], q.buf[:end]
	}
	q.wpos = end
	q.pend += n
	return
}

// publish makes k staged flits visible to the consumer. Runs in the link
// phase, after the barrier that quiesces the producer.
func (q *FlitQueue) publish(k int) {
	q.n += k
	q.pend -= k
}
