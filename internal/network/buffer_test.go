package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlitQueueBasics(t *testing.T) {
	q := NewFlitQueue(3)
	if !q.Empty() || q.Len() != 0 || q.Cap() != 3 || q.Free() != 3 {
		t.Fatalf("fresh queue state wrong: len=%d cap=%d free=%d", q.Len(), q.Cap(), q.Free())
	}
	pkt := &Packet{ID: 1, Length: 4}
	for i := 0; i < 3; i++ {
		if !q.Push(Flit{Pkt: pkt, Seq: int32(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(Flit{Pkt: pkt, Seq: 3}) {
		t.Fatal("push into full queue succeeded")
	}
	if got := q.Front().Seq; got != 0 {
		t.Fatalf("front seq = %d, want 0", got)
	}
	if got := q.At(2).Seq; got != 2 {
		t.Fatalf("At(2) seq = %d, want 2", got)
	}
	for i := 0; i < 3; i++ {
		if got := q.Pop().Seq; got != int32(i) {
			t.Fatalf("pop %d returned seq %d", i, got)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestFlitQueueZeroCapacityClamped(t *testing.T) {
	q := NewFlitQueue(0)
	if q.Cap() != 1 {
		t.Fatalf("capacity %d, want clamp to 1", q.Cap())
	}
}

func TestFlitQueueReset(t *testing.T) {
	q := NewFlitQueue(4)
	pkt := &Packet{ID: 2, Length: 2}
	q.Push(Flit{Pkt: pkt})
	q.Push(Flit{Pkt: pkt, Seq: 1})
	q.Reset()
	if !q.Empty() || q.Free() != 4 {
		t.Fatalf("reset left len=%d free=%d", q.Len(), q.Free())
	}
}

// TestFlitQueueFIFOProperty drives random push/pop sequences against a
// slice reference model.
func TestFlitQueueFIFOProperty(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewFlitQueue(8)
		var ref []int32
		next := int32(0)
		pkt := &Packet{ID: 9, Length: 1 << 30}
		for _, push := range ops {
			if push {
				ok := q.Push(Flit{Pkt: pkt, Seq: next})
				if ok != (len(ref) < 8) {
					return false
				}
				if ok {
					ref = append(ref, next)
					next++
				}
			} else if len(ref) > 0 {
				if got := q.Pop().Seq; got != ref[0] {
					return false
				}
				ref = ref[1:]
			}
			if q.Len() != len(ref) {
				return false
			}
			_ = rng
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlitHeadTail(t *testing.T) {
	pkt := &Packet{ID: 1, Length: 3}
	if !(Flit{Pkt: pkt, Seq: 0}).IsHead() {
		t.Error("seq 0 should be head")
	}
	if (Flit{Pkt: pkt, Seq: 1}).IsHead() || (Flit{Pkt: pkt, Seq: 1}).IsTail() {
		t.Error("seq 1 of 3 should be body")
	}
	if !(Flit{Pkt: pkt, Seq: 2}).IsTail() {
		t.Error("seq 2 of 3 should be tail")
	}
	single := &Packet{ID: 2, Length: 1}
	f := Flit{Pkt: single, Seq: 0}
	if !f.IsHead() || !f.IsTail() {
		t.Error("single-flit packet should be head and tail")
	}
}
