package network

import "fmt"

// LinkKind classifies a physical channel. It selects bandwidth, delay and
// energy parameters and is the unit at which the routing algorithms reason
// about channel classes (Algorithm 1 distinguishes C_N, C_P, C_S).
type LinkKind uint8

const (
	// KindOnChip is an intra-chiplet NoC wire.
	KindOnChip LinkKind = iota
	// KindParallel is an AIB-like parallel die-to-die interface: low
	// latency, low power, short reach, moderate bandwidth.
	KindParallel
	// KindSerial is a SerDes-like serial die-to-die interface: high
	// bandwidth, long reach, high latency, high power.
	KindSerial
	// KindHeteroPHY is a heterogeneous-PHY interface: one adapter driving
	// a parallel PHY and a serial PHY concurrently (Sec. 3.1/4.2).
	KindHeteroPHY
	// KindLocal is the injection/ejection channel between a node's core
	// and its router.
	KindLocal
)

// String returns the kind name.
func (k LinkKind) String() string {
	switch k {
	case KindOnChip:
		return "on-chip"
	case KindParallel:
		return "parallel"
	case KindSerial:
		return "serial"
	case KindHeteroPHY:
		return "hetero-phy"
	case KindLocal:
		return "local"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Config carries the simulator parameters. The zero value is not useful;
// start from DefaultConfig (Table 2 of the paper).
type Config struct {
	// PacketLength is the default packet length in flits for synthetic
	// traffic (trace-driven packets carry their own lengths).
	PacketLength int

	// VCs is the number of virtual channels per physical channel.
	VCs int

	// Per-kind link bandwidth in flits/cycle and extra propagation delay
	// in cycles. On-chip transmission is 1 cycle; interface kinds add
	// their propagation delay on top of nothing — the delay below is the
	// total link traversal time in cycles.
	OnChipBandwidth   int
	OnChipDelay       int
	ParallelBandwidth int
	ParallelDelay     int
	SerialBandwidth   int
	SerialDelay       int

	// OnChipBufPerVC and IfaceBufPerVC are input buffer depths per VC in
	// flits (Table 2: 32 flits for on-chip buffers and 64 flits for
	// interface buffers; we provision them per VC). Interface buffers are
	// automatically enlarged to cover the credit round trip
	// (bandwidth × 2×delay), the "additional buffer" of Sec. 7.1.
	OnChipBufPerVC int
	IfaceBufPerVC  int

	// InjectionBandwidth and EjectionBandwidth bound how many flits per
	// cycle a node can source/sink through its local port.
	InjectionBandwidth int
	EjectionBandwidth  int

	// AdapterQueueDepth is the hetero-PHY TX multi-width FIFO depth in
	// flits (Sec. 7.3: 16-deep).
	AdapterQueueDepth int

	// Energy model, per Sec. 8.3. FlitBits is the flit width (the PARSEC
	// traces use 8-byte flits). Energies are pJ/bit for link traversal
	// plus a per-flit router traversal energy in pJ.
	FlitBits         int
	OnChipPJPerBit   float64
	ParallelPJPerBit float64
	SerialPJPerBit   float64
	RouterPJPerFlit  float64

	// SimCycles and WarmupCycles delimit the measurement window: packets
	// created during warm-up are excluded from statistics.
	SimCycles    int64
	WarmupCycles int64

	// DrainCycles bounds the post-injection drain period used by
	// trace-driven runs that want every packet delivered.
	DrainCycles int64

	// DeadlockThreshold is the number of consecutive cycles with in-flight
	// flits but zero flit movement after which the engine reports a
	// deadlock. Zero disables the watchdog.
	DeadlockThreshold int64

	// RouterPipelineExtra adds this many cycles of router pipeline latency
	// to every hop (0 = the Sec. 7.1 ideal where RC/VA/SA complete in the
	// arrival cycle). Modeled as extra link pipeline stages; an ablation
	// knob for pipeline-depth sensitivity.
	RouterPipelineExtra int

	// WormholeAdmission switches VC allocation from virtual cut-through
	// (whole-packet buffer reservation, the default — required by the
	// deadlock-freedom arguments in DESIGN.md) to plain wormhole (one free
	// slot suffices). Ablation only: wormhole admission re-opens the
	// adaptive-commitment deadlock window at saturation.
	WormholeAdmission bool

	// CheckInvariants enables internal consistency checks (credit
	// conservation, buffer bounds). Tests enable it; benchmarks do not.
	CheckInvariants bool

	// RouteLUTNodes caps the network size (in nodes) up to which a
	// RoutePure routing algorithm gets a precomputed per-(router, dst,
	// restricted) route LUT on the first Step. The LUT holds
	// O(nodes² × avg candidates) entries, so it is gated by size: 0 means
	// the default cap (512 nodes, ≈ tens of MB worst case), negative
	// disables the LUT entirely. Networks above the cap — e.g. the
	// paper-scale 3136-node systems — still get per-VC candidate
	// memoization across VA retries.
	RouteLUTNodes int

	// Workers enables deterministic parallel stepping across this many
	// shards (≤1 = sequential). Shards cut along chiplet boundaries when
	// the topology declares them (Network.SetShardCuts) and rebalance to
	// the live load at quiescence points; on a single-CPU process the
	// shards run inline. Results are bit-identical to sequential runs for
	// any value; worth it for saturated many-chiplet systems (1K+ nodes).
	Workers int

	// Seed seeds the run's random source.
	Seed int64
}

// DefaultConfig returns the paper's Table 2 parameters with full-bandwidth
// interfaces (4-flit/cycle serial, 2-flit/cycle parallel).
func DefaultConfig() Config {
	return Config{
		PacketLength:       16,
		VCs:                2,
		OnChipBandwidth:    2,
		OnChipDelay:        1,
		ParallelBandwidth:  2,
		ParallelDelay:      5,
		SerialBandwidth:    4,
		SerialDelay:        20,
		OnChipBufPerVC:     32,
		IfaceBufPerVC:      64,
		InjectionBandwidth: 2,
		EjectionBandwidth:  4,
		AdapterQueueDepth:  16,
		FlitBits:           64,
		OnChipPJPerBit:     0.1,
		ParallelPJPerBit:   1.0,
		SerialPJPerBit:     2.4,
		RouterPJPerFlit:    1.0,
		SimCycles:          100000,
		WarmupCycles:       10000,
		DrainCycles:        200000,
		DeadlockThreshold:  20000,
		Seed:               1,
	}
}

// Halved returns a copy of c with halved interface bandwidth (2-flit/cycle
// serial, 1-flit/cycle parallel), the pin-constrained configuration of
// Sec. 7.2 used by the "half" hetero-IF systems.
func (c Config) Halved() Config {
	c.ParallelBandwidth = max(1, c.ParallelBandwidth/2)
	c.SerialBandwidth = max(1, c.SerialBandwidth/2)
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.PacketLength <= 0:
		return fmt.Errorf("network: packet length %d must be positive", c.PacketLength)
	case c.VCs <= 0 || c.VCs > 8:
		return fmt.Errorf("network: VC count %d out of range [1,8]", c.VCs)
	case c.OnChipBandwidth <= 0 || c.ParallelBandwidth <= 0 || c.SerialBandwidth <= 0:
		return fmt.Errorf("network: bandwidths must be positive")
	case c.OnChipDelay <= 0 || c.ParallelDelay <= 0 || c.SerialDelay <= 0:
		return fmt.Errorf("network: delays must be positive")
	case c.OnChipBufPerVC <= 0 || c.IfaceBufPerVC <= 0:
		return fmt.Errorf("network: buffer depths must be positive")
	case c.SimCycles <= c.WarmupCycles:
		return fmt.Errorf("network: sim cycles %d must exceed warm-up %d", c.SimCycles, c.WarmupCycles)
	}
	return nil
}

// Bandwidth returns the configured bandwidth for a link kind; hetero-PHY is
// the sum of the two bonded PHYs.
func (c *Config) Bandwidth(k LinkKind) int {
	switch k {
	case KindOnChip:
		return c.OnChipBandwidth
	case KindParallel:
		return c.ParallelBandwidth
	case KindSerial:
		return c.SerialBandwidth
	case KindHeteroPHY:
		return c.ParallelBandwidth + c.SerialBandwidth
	case KindLocal:
		return c.InjectionBandwidth
	}
	return 1
}

// Delay returns the configured traversal delay for a link kind (plus any
// extra router pipeline depth); for hetero-PHY it is the parallel
// (minimum) delay — the adapter model applies per-PHY delays itself.
func (c *Config) Delay(k LinkKind) int {
	base := 1
	switch k {
	case KindOnChip, KindLocal:
		base = c.OnChipDelay
	case KindParallel:
		base = c.ParallelDelay
	case KindSerial:
		base = c.SerialDelay
	case KindHeteroPHY:
		base = c.ParallelDelay
	}
	return base + c.RouterPipelineExtra
}

// BufPerVC returns the per-VC input buffer depth for a channel of kind k,
// including the credit-round-trip enlargement for interface channels.
func (c *Config) BufPerVC(k LinkKind) int {
	base := c.OnChipBufPerVC
	if k != KindOnChip && k != KindLocal {
		base = c.IfaceBufPerVC
	}
	// Cover the credit round trip so flow control does not artificially
	// throttle a saturated channel (Sec. 7.1 "additional buffer").
	var rtt int
	switch k {
	case KindParallel:
		rtt = 2 * c.ParallelDelay * c.ParallelBandwidth
	case KindSerial:
		rtt = 2 * c.SerialDelay * c.SerialBandwidth
	case KindHeteroPHY:
		rtt = 2 * c.SerialDelay * (c.SerialBandwidth + c.ParallelBandwidth)
	case KindOnChip, KindLocal:
		rtt = 2 * c.OnChipDelay * c.OnChipBandwidth
	}
	return max(base, rtt)
}

// LinkPJPerBit returns the per-bit traversal energy for a link kind.
// Hetero-PHY links account energy per PHY inside the adapter, so this
// returns 0 for them.
func (c *Config) LinkPJPerBit(k LinkKind) float64 {
	switch k {
	case KindOnChip:
		return c.OnChipPJPerBit
	case KindParallel:
		return c.ParallelPJPerBit
	case KindSerial:
		return c.SerialPJPerBit
	default:
		return 0
	}
}
