package network

import "testing"

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	checks := []struct {
		name      string
		got, want int
	}{
		{"packet length", cfg.PacketLength, 16},
		{"VCs per link", cfg.VCs, 2},
		{"on-chip bandwidth", cfg.OnChipBandwidth, 2},
		{"parallel bandwidth", cfg.ParallelBandwidth, 2},
		{"parallel delay", cfg.ParallelDelay, 5},
		{"serial bandwidth", cfg.SerialBandwidth, 4},
		{"serial delay", cfg.SerialDelay, 20},
		{"on-chip buffer", cfg.OnChipBufPerVC, 32},
		{"interface buffer", cfg.IfaceBufPerVC, 64},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (Table 2)", c.name, c.got, c.want)
		}
	}
	if cfg.SimCycles != 100000 || cfg.WarmupCycles != 10000 {
		t.Errorf("window %d/%d, want 100000/10000 (Table 2)", cfg.SimCycles, cfg.WarmupCycles)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestHalvedConfig(t *testing.T) {
	cfg := DefaultConfig().Halved()
	if cfg.ParallelBandwidth != 1 || cfg.SerialBandwidth != 2 {
		t.Errorf("halved bandwidths = %d/%d, want 1/2", cfg.ParallelBandwidth, cfg.SerialBandwidth)
	}
	// Halving twice clamps at 1.
	cfg = cfg.Halved().Halved()
	if cfg.ParallelBandwidth != 1 || cfg.SerialBandwidth != 1 {
		t.Errorf("repeated halving = %d/%d, want 1/1", cfg.ParallelBandwidth, cfg.SerialBandwidth)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.PacketLength = 0 },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.VCs = 9 },
		func(c *Config) { c.OnChipBandwidth = 0 },
		func(c *Config) { c.SerialDelay = -1 },
		func(c *Config) { c.OnChipBufPerVC = 0 },
		func(c *Config) { c.SimCycles = 5; c.WarmupCycles = 10 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestBufPerVCCoversCreditRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	for _, k := range []LinkKind{KindOnChip, KindParallel, KindSerial, KindHeteroPHY, KindLocal} {
		rtt := 2 * cfg.Delay(k) * cfg.Bandwidth(k)
		if got := cfg.BufPerVC(k); got < rtt {
			t.Errorf("%v buffer %d does not cover credit round trip %d", k, got, rtt)
		}
	}
	// Serial: 2×20×4 = 160 > the Table-2 base of 64.
	if got := cfg.BufPerVC(KindSerial); got != 160 {
		t.Errorf("serial buffer = %d, want 160", got)
	}
	// On-chip: round trip tiny, Table-2 base of 32 wins.
	if got := cfg.BufPerVC(KindOnChip); got != 32 {
		t.Errorf("on-chip buffer = %d, want 32", got)
	}
}

func TestBandwidthAndDelayByKind(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.Bandwidth(KindHeteroPHY); got != 6 {
		t.Errorf("hetero-PHY bandwidth = %d, want parallel+serial = 6", got)
	}
	if got := cfg.Delay(KindHeteroPHY); got != cfg.ParallelDelay {
		t.Errorf("hetero-PHY delay = %d, want parallel delay %d", got, cfg.ParallelDelay)
	}
	if cfg.LinkPJPerBit(KindHeteroPHY) != 0 {
		t.Error("hetero-PHY links must not double-count energy (adapter accounts per PHY)")
	}
	if cfg.LinkPJPerBit(KindSerial) != 2.4 || cfg.LinkPJPerBit(KindParallel) != 1.0 {
		t.Error("interface energies should match Sec. 8.3 (1 pJ/bit parallel, 2.4 pJ/bit serial)")
	}
}

func TestKindAndClassStrings(t *testing.T) {
	if KindHeteroPHY.String() != "hetero-phy" || KindOnChip.String() != "on-chip" {
		t.Error("LinkKind strings wrong")
	}
	if ClassInOrder.String() != "in-order" || Class(250).String() == "" {
		t.Error("Class strings wrong")
	}
	if LinkKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestRouterPipelineExtraAddsPerHopLatency(t *testing.T) {
	cfg := DefaultConfig()
	base := cfg.Delay(KindOnChip)
	cfg.RouterPipelineExtra = 2
	if got := cfg.Delay(KindOnChip); got != base+2 {
		t.Fatalf("on-chip delay = %d, want %d", got, base+2)
	}
	if got := cfg.Delay(KindSerial); got != cfg.SerialDelay+2 {
		t.Fatalf("serial delay = %d, want %d", got, cfg.SerialDelay+2)
	}
	// End to end: one hop costs exactly 2 more cycles at zero load.
	lat := func(extra int) int64 {
		c := DefaultConfig()
		c.RouterPipelineExtra = extra
		net, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		net.AddNodes(2)
		net.Connect(KindOnChip, 0, 1)
		net.Routing = forwardRouting{}
		net.Finalize()
		var arrived int64 = -1
		net.Sink = func(p *Packet) { arrived = p.ArrivedAt }
		net.Offer(net.NewPacket(0, 1, 1, 0))
		if err := net.Run(100, nil); err != nil {
			t.Fatal(err)
		}
		return arrived
	}
	if d := lat(2) - lat(0); d != 2 {
		t.Fatalf("pipeline extra changed latency by %d, want 2", d)
	}
}
