package network

import (
	"fmt"
	"sort"
	"strings"
)

// Snapshot is a point-in-time congestion summary, for debugging and the
// hetsim -diag output.
type Snapshot struct {
	Cycle          int64
	FlitsBuffered  int64
	FlitsByKind    map[LinkKind]int64 // buffered at inputs fed by this kind
	FlitsInLinks   int64
	RestrictedPkts int
	ActivePkts     int
	QueuedPkts     int
	// TopNodes lists the most congested routers (buffered flit counts).
	TopNodes []NodeOccupancy
}

// NodeOccupancy is one router's buffered-flit count.
type NodeOccupancy struct {
	Node  NodeID
	Flits int
}

// TakeSnapshot walks the network state. It is O(network) and intended for
// debugging, not per-cycle use.
func (net *Network) TakeSnapshot(topN int) Snapshot {
	s := Snapshot{
		Cycle:       net.Now,
		FlitsByKind: make(map[LinkKind]int64),
		QueuedPkts:  net.QueuedPackets(),
	}
	seen := make(map[uint64]bool)
	for _, r := range net.Nodes {
		occ := 0
		for _, in := range r.In {
			for v := range in.VCs {
				buf := &in.VCs[v].Buf
				n := buf.Len()
				occ += n
				s.FlitsBuffered += int64(n)
				s.FlitsByKind[in.Kind] += int64(n)
				for i := 0; i < n; i++ {
					p := buf.At(i).Pkt
					if !seen[p.ID] {
						seen[p.ID] = true
						s.ActivePkts++
						if p.Restricted {
							s.RestrictedPkts++
						}
					}
				}
			}
		}
		if occ > 0 {
			s.TopNodes = append(s.TopNodes, NodeOccupancy{Node: r.ID, Flits: occ})
		}
	}
	for _, l := range net.Links {
		s.FlitsInLinks += int64(l.InFlight())
	}
	sort.Slice(s.TopNodes, func(i, j int) bool { return s.TopNodes[i].Flits > s.TopNodes[j].Flits })
	if len(s.TopNodes) > topN {
		s.TopNodes = s.TopNodes[:topN]
	}
	return s
}

// DeadlockReport classifies every stalled input VC: whether it holds an
// output allocation (and what it is waiting on) or failed VC allocation.
// Used to debug routing deadlocks.
func (net *Network) DeadlockReport(limit int) string {
	var b strings.Builder
	active, inactive := 0, 0
	for _, r := range net.Nodes {
		for ip, in := range r.In {
			for v := range in.VCs {
				vc := &in.VCs[v]
				if vc.Buf.Empty() {
					continue
				}
				if vc.Active {
					active++
					out := r.Out[vc.OutPort]
					if active <= limit {
						credits := -1
						held := false
						slots := -1
						if out.Link != nil {
							credits = out.Credits[vc.OutVC]
							held = out.Held[vc.OutVC]
							slots = out.Link.FreeSlots()
						}
						f := vc.Buf.Front()
						fmt.Fprintf(&b, "ACTIVE node=%d in=%d/%v vc=%d pkt=%d seq=%d len=%d -> out=%d/%v outVC=%d credits=%d held=%v slots=%d buffered=%d\n",
							r.ID, ip, in.Kind, v, f.Pkt.ID, f.Seq, f.Pkt.Length, vc.OutPort, out.Kind, vc.OutVC, credits, held, slots, vc.Buf.Len())
					}
				} else {
					inactive++
					if inactive <= limit {
						f := vc.Buf.Front()
						fmt.Fprintf(&b, "VA-WAIT node=%d in=%d/%v vc=%d pkt=%d dst=%d restricted=%v buffered=%d\n",
							r.ID, ip, in.Kind, v, f.Pkt.ID, f.Pkt.Dst, f.Pkt.Restricted, vc.Buf.Len())
					}
				}
			}
		}
	}
	fmt.Fprintf(&b, "total: %d active-stalled VCs, %d VA-waiting VCs\n", active, inactive)

	// Cross-check Held flags against active owners: a held output VC with
	// no active input VC pointing at it is a leaked allocation.
	heldTotal, leaked, lowCredit := 0, 0, 0
	for _, r := range net.Nodes {
		for op, out := range r.Out {
			for ov := range out.Held {
				if out.Credits != nil && out.Link != nil && out.Credits[ov] < out.Depth/2 {
					lowCredit++
				}
				if !out.Held[ov] {
					continue
				}
				heldTotal++
				owned := false
				for _, in := range r.In {
					for v := range in.VCs {
						vc := &in.VCs[v]
						if vc.Active && vc.OutPort == op && int(vc.OutVC) == ov {
							owned = true
						}
					}
				}
				if !owned {
					leaked++
					if leaked <= limit {
						fmt.Fprintf(&b, "LEAKED-HELD node=%d out=%d/%v vc=%d credits=%d\n", r.ID, op, out.Kind, ov, out.Credits[ov])
					}
				}
			}
		}
	}
	fmt.Fprintf(&b, "held=%d leaked=%d lowCreditVCs=%d\n", heldTotal, leaked, lowCredit)
	return b.String()
}

// String renders the snapshot.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: %d flits buffered (%d in links), %d active pkts (%d restricted), %d queued\n",
		s.Cycle, s.FlitsBuffered, s.FlitsInLinks, s.ActivePkts, s.RestrictedPkts, s.QueuedPkts)
	for k, n := range s.FlitsByKind {
		fmt.Fprintf(&b, "  buffered at %v inputs: %d\n", k, n)
	}
	for _, tn := range s.TopNodes {
		fmt.Fprintf(&b, "  node %d: %d flits\n", tn.Node, tn.Flits)
	}
	return b.String()
}
