package network

import "testing"

// TestInjectVCChoiceByClass pins the injection-VC choice per traffic class:
// latency-sensitive packets take the highest VC with free space, throughput
// packets the lowest, best-effort the one with the most free space.
func TestInjectVCChoiceByClass(t *testing.T) {
	for _, tc := range []struct {
		class Class
		want  VCID
	}{
		{ClassLatencySensitive, 3}, // highest eligible (VC0 is full)
		{ClassThroughput, 1},       // lowest eligible
		{ClassBestEffort, 2},       // most free space
	} {
		net, _ := twoNodeNet(t, KindOnChip, func(c *Config) { c.VCs = 4 })
		r := net.Nodes[0]
		in := r.In[r.InjectPort]
		// Fill the injection buffers to the free-space pattern [0, 3, 5, 2].
		for v, free := range []int{0, 3, 5, 2} {
			buf := &in.VCs[v].Buf
			for buf.Free() > free {
				buf.Push(Flit{})
			}
		}
		p := net.NewPacket(0, 1, 4, 0)
		p.Class = tc.class
		net.Offer(p)
		net.injectNode(0, &net.seqScratch, false)
		s := &net.sources[0]
		if s.cur != p {
			t.Fatalf("%v: packet not picked up by injectNode", tc.class)
		}
		if s.curVC != tc.want {
			t.Errorf("%v: injected into VC %d, want VC %d", tc.class, s.curVC, tc.want)
		}
	}
}

// blockedNet builds a two-node net whose only path 0→1 can never allocate
// an output VC (no credits, all VCs held), then offers one packet: its
// flits enter the injection buffer (flitsIn > flitsOut) and nothing ever
// moves again — the canonical watchdog scenario.
func blockedNet(t *testing.T) *Network {
	t.Helper()
	net, _ := twoNodeNet(t, KindOnChip, func(c *Config) { c.DeadlockThreshold = 100 })
	r := net.Nodes[0]
	for _, out := range r.Out {
		if out.Link == nil || out.Link.Dst != 1 {
			continue
		}
		for v := range out.Credits {
			out.Credits[v] = 0
			out.Held[v] = true
		}
	}
	net.Offer(net.NewPacket(0, 1, 16, 0))
	return net
}

// TestDeadlockWatchdogUnderFastForward: a quiescent-but-undelivered network
// (flitsIn > flitsOut, moved == 0) must never be fast-forwarded — RunWith
// has to trip DeadlockAt at exactly the same cycle as the plain Step loop.
func TestDeadlockWatchdogUnderFastForward(t *testing.T) {
	ref := blockedNet(t)
	for i := 0; i < 2000 && ref.DeadlockAt < 0; i++ {
		ref.Step()
	}
	if ref.DeadlockAt < 0 {
		t.Fatal("reference Step loop never tripped the watchdog")
	}

	ff := blockedNet(t)
	err := ff.RunWith(2000, nil, func(now int64) int64 { return -1 })
	if err == nil {
		t.Fatal("RunWith returned no deadlock error")
	}
	if ff.DeadlockAt != ref.DeadlockAt {
		t.Errorf("fast-forward engine tripped DeadlockAt=%d, Step loop at %d", ff.DeadlockAt, ref.DeadlockAt)
	}
}

// TestDrainFastForwardsFutureOffers: an idle network holding only a
// future-timestamped packet must skip straight to its CreatedAt and still
// deliver it.
func TestDrainFastForwardsFutureOffers(t *testing.T) {
	net, _ := twoNodeNet(t, KindOnChip, nil)
	var arrivedAt int64 = -1
	net.Sink = func(p *Packet) { arrivedAt = p.ArrivedAt }
	net.Offer(net.NewPacket(0, 1, 4, 500))
	ok, err := net.Drain()
	if err != nil || !ok {
		t.Fatalf("drain: ok=%v err=%v", ok, err)
	}
	if arrivedAt < 500 {
		t.Fatalf("packet arrived at %d, before its CreatedAt 500", arrivedAt)
	}
	if arrivedAt > 540 {
		t.Errorf("packet arrived at %d, far beyond CreatedAt 500 — skip overshot?", arrivedAt)
	}
	if err := net.CheckCredits(); err != nil {
		t.Error(err)
	}
}

// TestStepIdleZeroAllocs asserts the steady-state guarantee the CI bench
// smoke job checks: once a network is idle, Step allocates nothing.
func TestStepIdleZeroAllocs(t *testing.T) {
	net, _ := twoNodeNet(t, KindOnChip, nil)
	// Exercise the engine once so every scratch slice reaches its
	// steady-state capacity, then let it drain fully.
	net.Offer(net.NewPacket(0, 1, 16, 0))
	if err := net.Run(200, nil); err != nil {
		t.Fatal(err)
	}
	if !net.Quiescent() || !net.idle() {
		t.Fatal("network did not drain")
	}
	if avg := testing.AllocsPerRun(1000, func() { net.Step() }); avg != 0 {
		t.Errorf("idle Step allocates %.2f times per cycle, want 0", avg)
	}
}
