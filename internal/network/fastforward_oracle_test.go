package network_test

import (
	"testing"

	"heteroif/internal/network"
	"heteroif/internal/network/netbench"
)

type arrival struct {
	id                 uint64
	created, inj, arr  int64
	energyPJ           float64
	hops               int32
	flitsIn, wallClock int64 // network-level counters sampled at the sink
}

// TestRunWithMatchesStepLoop is the fast-forward oracle: driving a mesh
// through RunWith (quiescence skipping enabled) must produce exactly the
// packet-by-packet history of stepping every cycle by hand — same arrival
// cycles, same energies, same credit state, same final clock.
func TestRunWithMatchesStepLoop(t *testing.T) {
	const side, cycles, chunk = 8, 4096, 1024

	record := func(net *network.Network) *[]arrival {
		log := &[]arrival{}
		net.Sink = func(p *network.Packet) {
			*log = append(*log, arrival{
				id: p.ID, created: p.CreatedAt, inj: p.InjectedAt, arr: p.ArrivedAt,
				energyPJ: p.EnergyPJ, hops: p.HopsOnChip,
				flitsIn: net.InFlightFlits(), wallClock: net.Now,
			})
		}
		return log
	}

	ref := netbench.BuildMesh(side)
	refSched := &netbench.Schedule{Net: ref, Interval: 200, Length: ref.Cfg.PacketLength}
	refLog := record(ref)
	for ref.Now < cycles {
		refSched.Drive(ref.Now)
		ref.Step()
	}

	ff := netbench.BuildMesh(side)
	ffSched := &netbench.Schedule{Net: ff, Interval: 200, Length: ff.Cfg.PacketLength}
	ffLog := record(ff)
	for i := 0; i < cycles/chunk; i++ {
		if err := ff.RunWith(chunk, ffSched.Drive, ffSched.NextInjection); err != nil {
			t.Fatal(err)
		}
	}

	if ff.Now != ref.Now {
		t.Fatalf("clocks diverged: RunWith ended at %d, Step loop at %d", ff.Now, ref.Now)
	}
	if len(*ffLog) == 0 {
		t.Fatal("no packets delivered — schedule broken")
	}
	if len(*ffLog) != len(*refLog) {
		t.Fatalf("delivered %d packets under RunWith, %d under Step loop", len(*ffLog), len(*refLog))
	}
	for i := range *refLog {
		if (*ffLog)[i] != (*refLog)[i] {
			t.Fatalf("arrival %d diverged:\n fast-forward: %+v\n step loop:    %+v", i, (*ffLog)[i], (*refLog)[i])
		}
	}
	if err := ff.CheckCredits(); err != nil {
		t.Error(err)
	}
	if err := ref.CheckCredits(); err != nil {
		t.Error(err)
	}
}
