// Package network implements the cycle-accurate multi-chiplet NoC
// simulation substrate used by every experiment in the heteroif library:
// flits and packets, virtual-channel input buffers with credit-based flow
// control, bandwidth×delay link pipelines, the canonical four-stage
// virtual-channel router (with the higher-radix interface-port extension of
// the paper's heterogeneous router), and the synchronous two-phase cycle
// engine.
//
// The model follows Sec. 7.1 of the paper: routing, VC allocation and switch
// allocation complete in a single cycle at zero load; on-chip transmission
// takes one cycle; cross-chiplet interfaces are modeled as behavioral
// pipelines in the on-chip clock domain (one pipeline stage per cycle of
// interface latency, bandwidth-many flits per stage).
//
// The cycle engine is activity-tracked: wake lists (busy links) and wake
// bitmaps (routers with buffered flits, sources with queued packets) limit
// each cycle to components that can make progress, and RunWith
// fast-forwards the clock across stretches where the network is provably
// idle. Both optimizations preserve bit-identical results for every seed
// and worker count. The invariants that make this safe:
//
//   - A component off its wake list would have been a no-op to visit: an
//     idle link advances nothing, an empty router tick and an empty source
//     scan change no state.
//   - Wake structures are scanned in ascending index order, so iteration
//     order among the components actually visited — and therefore
//     floating-point accumulation order in the packet sink — matches the
//     dense loops exactly.
//   - Fast-forward requires full quiescence: flitsIn == flitsOut AND every
//     wake list empty (an in-flight credit blocks idleness), and never a
//     deadlocked state (flitsIn > flitsOut), so the watchdog still trips
//     at the unoptimized cycle. Drivers that must observe every cycle pass
//     a nil next-injection callback, which disables skipping.
//   - In parallel mode, shard bounds prefer chiplet-row cuts; the few
//     wake-bitmap words a cut crosses are accessed atomically
//     (sharedWords), every other word keeps exactly one owning worker,
//     and cross-shard wake-ups travel through per-worker scratch applied
//     by the deterministic single-threaded merge.
package network

import "fmt"

// NodeID identifies a router/node in the network.
type NodeID int32

// VCID identifies a virtual channel within a physical channel.
type VCID int8

// Class is a traffic class carried by a packet. It determines ordering
// requirements and scheduling treatment at heterogeneous interfaces
// (Sec. 5.3.2, application-aware scheduling).
type Class uint8

const (
	// ClassBestEffort packets have no ordering requirement across packets;
	// their flits may bypass the reorder buffer at the parallel PHY.
	ClassBestEffort Class = iota
	// ClassInOrder packets require strict link-level ordering (e.g. cache
	// coherence traffic); their flits always pass through the reorder
	// buffer in sequence-number order.
	ClassInOrder
	// ClassLatencySensitive packets are high-priority control messages; an
	// application-aware adapter prefers the low-latency parallel PHY and
	// allows bypass (Sec. 5.3.2 "active" scheduling).
	ClassLatencySensitive
	// ClassThroughput packets are bulk data; an application-aware adapter
	// prefers the high-bandwidth serial PHY.
	ClassThroughput
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassBestEffort:
		return "best-effort"
	case ClassInOrder:
		return "in-order"
	case ClassLatencySensitive:
		return "latency-sensitive"
	case ClassThroughput:
		return "throughput"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Subnet identifies which interface subnetwork a hetero-channel packet
// prefers, as selected by Eq. 5 of the paper.
type Subnet uint8

const (
	// SubnetAny leaves the choice to the adaptive router.
	SubnetAny Subnet = iota
	// SubnetParallel prefers the parallel-IF-based mesh subnetwork.
	SubnetParallel
	// SubnetSerial prefers the serial-IF-based cube subnetwork.
	SubnetSerial
)

// Packet is a multi-flit message traversing the network. Flits reference
// their packet; per-packet routing state lives here.
type Packet struct {
	ID     uint64
	Src    NodeID
	Dst    NodeID
	Length int // flits

	Class    Class
	Priority uint8

	// CreatedAt is the cycle the packet was offered to the source queue
	// (the trace/injection time). InjectedAt is the cycle its head flit
	// entered the injection port. ArrivedAt is the cycle its tail flit was
	// ejected at the destination.
	CreatedAt  int64
	InjectedAt int64
	ArrivedAt  int64

	// Restricted is set by the livelock channel-switch restriction of
	// Sec. 6.2: once a packet falls back to the escape subnetwork because
	// the adaptive channels on its minimal paths were congested, it may
	// only use adaptive channels that lie on paths given by the baseline
	// routing function.
	Restricted bool

	// Pref is the subnetwork preference computed by the Eq. 5 selection
	// function at injection (hetero-channel systems only).
	Pref Subnet

	// Target is routing scratch: the intra-chiplet waypoint (the interface
	// node owning the next off-chip link the packet is steering toward),
	// or -1 when unset. Hypercube-based routing functions maintain it.
	Target NodeID

	// Per-channel-class hop counters, used by the energy model and the
	// weighted-path-length accounting.
	HopsOnChip   int32
	HopsParallel int32
	HopsSerial   int32
	HopsHetero   int32 // hops over bonded hetero-PHY interfaces

	// EnergyPJ accumulates the energy spent moving this packet, in
	// picojoules (links + router traversals), per Sec. 8.3.
	// EnergyOnChipPJ is the on-chip share (NoC wires + router traversals);
	// EnergyIfacePJ the die-to-die interface share.
	EnergyPJ       float64
	EnergyOnChipPJ float64
	EnergyIfacePJ  float64
}

// Hops returns the total number of hops taken so far.
func (p *Packet) Hops() int {
	return int(p.HopsOnChip + p.HopsParallel + p.HopsSerial + p.HopsHetero)
}

// Flit is one flow-control unit of a packet. Flits are passed by value; the
// packet pointer carries shared state.
type Flit struct {
	Pkt *Packet
	Seq int32 // flit index within the packet: 0 = head, Length-1 = tail
	VC  VCID  // VC assigned on the channel currently being traversed
	// SN is the link-level global sequence number a hetero-PHY adapter
	// stamps on in-order-class flits at issue time (Sec. 4.2).
	SN uint32
	// VSN is the per-VC issue sequence number a hetero-PHY adapter stamps
	// on every flit; the RX side restores per-VC FIFO order with it, which
	// wormhole/VCT switching requires (packets on one VC stay contiguous).
	VSN uint32

	// Per-flit energy accumulators (pJ). Energy is carried on the flit —
	// which has exactly one owner at any instant — and folded into the
	// packet at ejection, so parallel stepping never races on the shared
	// Packet while its flits span several routers.
	EnergyPJ       float64
	EnergyOnChipPJ float64
	EnergyIfacePJ  float64
}

// IsHead reports whether f is the head flit of its packet.
func (f Flit) IsHead() bool { return f.Seq == 0 }

// IsTail reports whether f is the tail flit of its packet.
func (f Flit) IsTail() bool { return int(f.Seq) == f.Pkt.Length-1 }
