package network

import "testing"

// starNet builds a 3-node chain 0→1→2 where 1→2 is a serial interface
// link: node 1's serial output is an interface port, so the heterogeneous
// router must let multiple input VCs feed it concurrently (Sec. 4.1).
type chainRouting struct{}

func (chainRouting) Name() string { return "chain" }
func (chainRouting) Route(net *Network, r *Router, _ int, pkt *Packet, buf []Candidate) []Candidate {
	// forward along increasing node id
	for i := 1; i < len(r.Out); i++ {
		o := r.Out[i]
		if o.Link != nil && o.Link.Dst > r.ID {
			return append(buf, Candidate{Port: i, VCMask: allVCs(net.Cfg.VCs), Escape: true})
		}
	}
	panic("chainRouting: no forward port")
}

func TestInterfaceOutputAcceptsMultipleVCsPerCycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.AddNodes(3)
	net.Connect(KindOnChip, 0, 1)
	l12 := net.Connect(KindSerial, 1, 2)
	net.Routing = chainRouting{}
	net.Finalize()

	// Two packets from node 0 on different VCs + direct injection at
	// node 1: the serial output (bandwidth 4) should see concurrent
	// feeding once both input VCs at node 1 are active.
	for i := 0; i < 6; i++ {
		net.Offer(net.NewPacket(0, 2, 8, 0))
		net.Offer(net.NewPacket(1, 2, 8, 0))
	}
	if err := net.Run(400, nil); err != nil {
		t.Fatal(err)
	}
	if net.PacketsDelivered() != 12 {
		t.Fatalf("delivered %d of 12", net.PacketsDelivered())
	}
	// Serial link utilization proves concurrency: 12×8 = 96 flits moved;
	// with only one VC per cycle the link could still do it, so check the
	// stronger signal — the grant counter saw ≥3 flits in some cycle is
	// hard to observe post-hoc; instead assert the link carried all flits.
	if l12.SentTotal != 96 {
		t.Fatalf("serial link carried %d flits, want 96", l12.SentTotal)
	}
}

func TestWormholeAdmissionToggle(t *testing.T) {
	// With a one-packet-deep buffer, VCT serializes two packets; wormhole
	// admission lets the second begin before the first fully drains, so
	// the arrival gap shrinks.
	gap := func(wormhole bool) int64 {
		cfg := DefaultConfig()
		cfg.OnChipBufPerVC = 16
		cfg.VCs = 1
		cfg.WormholeAdmission = wormhole
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.AddNodes(3)
		net.Connect(KindOnChip, 0, 1)
		net.Connect(KindOnChip, 1, 2)
		net.Routing = chainRouting{}
		net.Finalize()
		var arrivals []int64
		net.Sink = func(p *Packet) { arrivals = append(arrivals, p.ArrivedAt) }
		net.Offer(net.NewPacket(0, 2, 16, 0))
		net.Offer(net.NewPacket(0, 2, 16, 0))
		if err := net.Run(600, nil); err != nil {
			t.Fatal(err)
		}
		if len(arrivals) != 2 {
			t.Fatalf("delivered %d of 2", len(arrivals))
		}
		return arrivals[1] - arrivals[0]
	}
	vct, worm := gap(false), gap(true)
	if worm > vct {
		t.Fatalf("wormhole gap %d should not exceed VCT gap %d", worm, vct)
	}
}

func TestClassVCAffinityAtInjection(t *testing.T) {
	// A latency-sensitive and a throughput packet offered back-to-back
	// must land on different injection VCs (high vs low).
	cfg := DefaultConfig()
	col := &CollectorTracer{}
	net2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net2.AddNodes(2)
	net2.Connect(KindOnChip, 0, 1)
	net2.Routing = chainRouting{}
	net2.Finalize()
	net2.Tracer = col
	b2 := net2.NewPacket(0, 1, 4, 0)
	b2.Class = ClassThroughput
	u2 := net2.NewPacket(0, 1, 4, 0)
	u2.Class = ClassLatencySensitive
	net2.Offer(b2)
	net2.Offer(u2)
	if err := net2.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	vcOf := map[uint64]VCID{}
	for _, e := range col.Events {
		if e.Kind == EvHop && e.Kind2 == KindOnChip {
			vcOf[e.Pkt] = e.VC
		}
	}
	if len(vcOf) == 2 && vcOf[b2.ID] == vcOf[u2.ID] {
		t.Fatalf("bulk and urgent packets shared VC %d despite class affinity", vcOf[b2.ID])
	}
}
