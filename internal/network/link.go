package network

import "math/bits"

// Adapter is the behavioral interface of a heterogeneous-PHY die-to-die
// adapter (Sec. 4.2). A Link with a non-nil Adapter delegates flit transport
// to it instead of the plain bandwidth×delay pipeline; the adapter owns the
// TX multi-width FIFO, the per-PHY pipelines, the RX reorder buffer and the
// dispatch policy. Implemented by internal/core.
type Adapter interface {
	// FreeSlots returns how many flits the adapter can accept this cycle,
	// bounded by the TX queue space and the adapter fetch width.
	FreeSlots() int
	// Accept enqueues a flit into the TX queue. The caller must have
	// checked FreeSlots.
	Accept(now int64, f Flit)
	// Tick advances the adapter by one cycle: dispatches queued flits to
	// the PHYs per the scheduling policy, advances the PHY pipelines, and
	// invokes deliver for every flit released in order by the RX side.
	Tick(now int64, deliver func(Flit))
	// InFlight returns the number of flits resident anywhere inside the
	// adapter (TX queue, PHY pipelines, RX reorder buffer).
	InFlight() int
	// Busy reports whether the adapter still needs per-cycle ticks. For an
	// adapter without retry this is InFlight() > 0; with per-PHY retry
	// enabled it also covers protocol state (unacked replay entries, acks
	// in flight) that must keep ticking after the last flit is delivered.
	Busy() bool
}

// Link is a unidirectional physical channel between two routers, modeled as
// a pipeline with Bandwidth flits per stage and Delay stages (Sec. 7.1
// "Interface Model": virtual pipeline registers in the on-chip clock
// domain). It also carries the reverse credit pipeline with the same delay.
type Link struct {
	ID   int
	Kind LinkKind

	Src     NodeID
	SrcPort int // output-port index at the source router
	Dst     NodeID
	DstPort int // input-port index at the destination router

	Bandwidth int
	Delay     int

	// PJPerBit is the per-bit traversal energy (0 for hetero-PHY links,
	// whose adapter accounts energy per PHY).
	PJPerBit float64

	// Adapter is non-nil for hetero-PHY links.
	Adapter Adapter

	bits int // flit width in bits, for energy accounting

	pipe     [][]Flit
	pipeHead int
	inFlight int

	creditPipe      [][]creditRun
	creditHead      int
	creditsInFlight int

	accepted int // flits accepted this cycle (plain pipeline rate limit)

	// direct, when set, bypasses the forward pipe entirely: Accept and
	// AcceptRun write fixed-up flits straight into the destination input
	// buffers at the producer cursor (FlitQueue staging) and the next
	// cycle's link phase publishes them in bulk (Network.commitDirect) —
	// same one-cycle latency as a Delay-1 pipe, with no intermediate flit
	// copy and O(runs) arrival work. Finalize arms it for plain Delay-1
	// links; EnableRetry disarms it. staged records the per-VC run lengths
	// awaiting publication, in acceptance order; dstIn is the input port
	// the flits land on.
	direct bool

	// fwdQueued/crQueued record membership in the engine's forward and
	// credit wake lists (see the package comment): set when a flit/credit
	// enters the respective pipeline, cleared by the wake-list scan once the
	// pipeline drains. They exist so Accept/ReturnCredit enqueue a link at
	// most once per transition from empty to busy.
	fwdQueued bool
	crQueued  bool

	// credPend/credMask hold the Delay-1 credit return batch in place (the
	// credit pipe degenerates to a single stage there): per-VC counts plus
	// the credited-VC mask, filled by ReturnCredits during the source tick
	// and applied+cleared by creditArrivals next phase 1 — same timing as
	// the one-stage pipe, without the heap slice. Deeper pipes keep
	// creditPipe. Sized for the config ceiling of 8 VCs.
	credPend [8]int32
	credMask uint16

	// SentTotal counts flits ever accepted (utilization diagnostics).
	SentTotal uint64

	// retry, when non-nil, replaces the plain forward pipeline with the
	// link-layer retry protocol (see RetryPipe). nil keeps every hot path
	// byte-identical to the retry-free engine. Kept at the tail so the
	// plain pipeline's hot fields retain their cache layout.
	retry *RetryPipe

	dstIn  *InPort     // destination input port, for direct staging
	staged []creditRun // per-VC staged run lengths, acceptance order

	// srcOut/srcRouter are the source router's output port for this link
	// and the router itself, bound by Finalize so credit completion applies
	// a cycle's whole batch straight to the counters (creditArrivals)
	// instead of calling a per-run closure.
	srcOut    *OutPort
	srcRouter *Router
}

// NewLink constructs a link of the given kind with bandwidth/delay/energy
// taken from cfg. Hetero-PHY links get their adapter attached separately.
func NewLink(cfg *Config, id int, kind LinkKind, src NodeID, srcPort int, dst NodeID, dstPort int) *Link {
	l := &Link{
		ID:        id,
		Kind:      kind,
		Src:       src,
		SrcPort:   srcPort,
		Dst:       dst,
		DstPort:   dstPort,
		Bandwidth: cfg.Bandwidth(kind),
		Delay:     cfg.Delay(kind),
		PJPerBit:  cfg.LinkPJPerBit(kind),
		bits:      cfg.FlitBits,
	}
	l.pipe = make([][]Flit, l.Delay)
	l.creditPipe = make([][]creditRun, l.Delay)
	return l
}

// creditRun is a run-length-encoded credit pipeline entry: n credits for
// the same downstream VC, entered consecutively. Credits enter in
// switch-grant order, so a bulk run transfer is one entry and the arrival
// side restores whole runs without re-scanning.
type creditRun struct {
	vc VCID
	n  int32
}

// FreeSlots returns how many more flits the link can accept this cycle.
// The adapter/retry indirection is outlined so the plain-pipeline path
// stays inlinable in the router hot loop.
func (l *Link) FreeSlots() int {
	if l.Adapter != nil || l.retry != nil {
		return l.freeSlotsSlow()
	}
	return l.Bandwidth - l.accepted
}

func (l *Link) freeSlotsSlow() int {
	if l.Adapter != nil {
		return l.Adapter.FreeSlots()
	}
	return l.retry.FreeSlots()
}

// Accept pushes a flit into the link this cycle. The flit will be delivered
// Delay cycles later (or per the adapter's PHY selection for hetero links).
func (l *Link) Accept(now int64, f Flit) {
	if l.Adapter != nil {
		l.Adapter.Accept(now, f)
		return
	}
	if l.retry != nil {
		// The retry pipe charges traversal energy per transmission (so
		// retransmissions burn energy again) instead of per acceptance.
		l.retry.Accept(now, f)
		l.SentTotal++
		return
	}
	if l.direct {
		l.acceptDirect(f)
		return
	}
	if l.PJPerBit != 0 {
		e := l.PJPerBit * float64(l.bits)
		f.EnergyPJ += e
		if l.Kind == KindOnChip {
			f.EnergyOnChipPJ += e
		} else {
			f.EnergyIfacePJ += e
		}
	}
	slot := l.pipeHead + l.Delay - 1
	if slot >= l.Delay {
		slot -= l.Delay
	}
	l.pipe[slot] = append(l.pipe[slot], f)
	l.inFlight++
	l.accepted++
	l.SentTotal++
}

// AcceptRun pushes a contiguous run of same-packet flits (as the up-to-two
// ring views a, b) into a plain pipeline, rewriting each flit's VC to
// outVC and charging the per-flit router traversal energy routerPJ plus
// the link's own traversal energy — the bulk equivalent of per-flit
// Router.forward + Accept, with the exact same per-field addition order so
// energy statistics stay bit-identical. Callers must have checked
// FreeSlots and must not use it on adapter or retry links.
func (l *Link) AcceptRun(a, b []Flit, outVC VCID, routerPJ float64) {
	if l.direct {
		l.acceptRunDirect(a, b, outVC, routerPJ)
		return
	}
	slot := l.pipeHead + l.Delay - 1
	if slot >= l.Delay {
		slot -= l.Delay
	}
	// Bulk-copy the run into the stage, then fix up VC and energy in place:
	// one memmove plus field writes instead of a per-flit struct copy. The
	// per-flit field updates run in the same order as the per-flit path, so
	// energy sums stay bit-identical.
	stage := append(l.pipe[slot], a...)
	stage = append(stage, b...)
	base := len(stage) - len(a) - len(b)
	e := l.PJPerBit * float64(l.bits)
	onChip := l.Kind == KindOnChip
	for i := base; i < len(stage); i++ {
		f := &stage[i]
		f.VC = outVC
		f.EnergyPJ += routerPJ
		f.EnergyOnChipPJ += routerPJ
		if e != 0 {
			f.EnergyPJ += e
			if onChip {
				f.EnergyOnChipPJ += e
			} else {
				f.EnergyIfacePJ += e
			}
		}
	}
	n := len(a) + len(b)
	l.pipe[slot] = stage
	l.inFlight += n
	l.accepted += n
	l.SentTotal += uint64(n)
}

// acceptDirect is Accept's direct-staging path: the flit (already carrying
// its router traversal energy) gets the link energy charged in the same
// order as the pipe path, then lands in the destination ring unpublished.
func (l *Link) acceptDirect(f Flit) {
	if l.PJPerBit != 0 {
		e := l.PJPerBit * float64(l.bits)
		f.EnergyPJ += e
		if l.Kind == KindOnChip {
			f.EnergyOnChipPJ += e
		} else {
			f.EnergyIfacePJ += e
		}
	}
	l.dstIn.VCs[f.VC].Buf.stagePut(f)
	l.stageRun(f.VC, 1)
	l.inFlight++
	l.accepted++
	l.SentTotal++
}

// acceptRunDirect is AcceptRun's direct-staging path: bulk-copy the run
// into reserved ring slots, then fix up VC and energy in place — the one
// and only copy each flit makes between the two routers' buffers. The
// per-flit field updates run in the same order as the pipe path, so
// energy statistics stay bit-identical.
func (l *Link) acceptRunDirect(a, b []Flit, outVC VCID, routerPJ float64) {
	n := len(a) + len(b)
	sa, sb := l.dstIn.VCs[outVC].Buf.stageSpan(n)
	m := copy(sa, a)
	if m < len(a) {
		copy(sb, a[m:])
		copy(sb[len(a)-m:], b)
	} else if m2 := copy(sa[m:], b); m2 < len(b) {
		copy(sb, b[m2:])
	}
	e := l.PJPerBit * float64(l.bits)
	onChip := l.Kind == KindOnChip
	for _, span := range [2][]Flit{sa, sb} {
		for i := range span {
			f := &span[i]
			f.VC = outVC
			f.EnergyPJ += routerPJ
			f.EnergyOnChipPJ += routerPJ
			if e != 0 {
				f.EnergyPJ += e
				if onChip {
					f.EnergyOnChipPJ += e
				} else {
					f.EnergyIfacePJ += e
				}
			}
		}
	}
	l.stageRun(outVC, n)
	l.inFlight += n
	l.accepted += n
	l.SentTotal += uint64(n)
}

// stageRun records n staged flits for vc, merging with the previous run
// when the VC matches — the same grouping deliverRun would have found.
func (l *Link) stageRun(vc VCID, n int) {
	if k := len(l.staged) - 1; k >= 0 && l.staged[k].vc == vc {
		l.staged[k].n += int32(n)
		return
	}
	l.staged = append(l.staged, creditRun{vc, int32(n)})
}

// ReturnCredits sends n credits for the given downstream VC in one call
// (the bulk counterpart of ReturnCredit).
func (l *Link) ReturnCredits(vc VCID, n int) {
	if l.Delay == 1 {
		l.credPend[vc] += int32(n)
		l.credMask |= 1 << uint(vc)
		l.creditsInFlight += n
		return
	}
	slot := l.creditHead + l.Delay - 1
	if slot >= l.Delay {
		slot -= l.Delay
	}
	stage := l.creditPipe[slot]
	if k := len(stage) - 1; k >= 0 && stage[k].vc == vc {
		stage[k].n += int32(n)
	} else {
		stage = append(stage, creditRun{vc, int32(n)})
	}
	l.creditPipe[slot] = stage
	l.creditsInFlight += n
}

// Arrivals advances the forward pipeline one cycle and returns the flits
// arriving at the sink. The returned slice is valid until the next call.
func (l *Link) Arrivals(now int64, deliver func(Flit)) {
	if l.Adapter != nil {
		l.Adapter.Tick(now, deliver)
		return
	}
	if l.retry != nil {
		l.retry.Tick(now, deliver)
		return
	}
	arr := l.pipe[l.pipeHead]
	l.pipe[l.pipeHead] = arr[:0]
	l.pipeHead++
	if l.pipeHead == l.Delay {
		l.pipeHead = 0
	}
	for _, f := range arr {
		l.inFlight--
		deliver(f)
	}
	l.accepted = 0
}

// takeArrivals advances a plain forward pipeline one cycle and returns the
// arriving flits as one slice, for bulk delivery into the destination input
// buffer. The slice aliases the recycled stage and is valid until the link
// next accepts flits; callers must not use it on adapter or retry links
// (their per-flit protocol work needs Arrivals).
func (l *Link) takeArrivals() []Flit {
	arr := l.pipe[l.pipeHead]
	l.pipe[l.pipeHead] = arr[:0]
	l.pipeHead++
	if l.pipeHead == l.Delay {
		l.pipeHead = 0
	}
	l.inFlight -= len(arr)
	l.accepted = 0
	return arr
}

// ReturnCredit sends one credit for the given downstream VC back to the
// source router; it arrives after the link delay.
func (l *Link) ReturnCredit(vc VCID) {
	l.ReturnCredits(vc, 1)
}

// CreditArrivals advances the credit pipeline one cycle and invokes restore
// for every credit completing its return trip.
func (l *Link) CreditArrivals(restore func(VCID)) {
	if l.Delay == 1 {
		m := l.credMask
		l.credMask = 0
		for ; m != 0; m &= m - 1 {
			v := VCID(bits.TrailingZeros16(m))
			n := l.credPend[v]
			l.credPend[v] = 0
			l.creditsInFlight -= int(n)
			for i := int32(0); i < n; i++ {
				restore(v)
			}
		}
		return
	}
	arr := l.creditPipe[l.creditHead]
	l.creditPipe[l.creditHead] = arr[:0]
	l.creditHead++
	if l.creditHead == l.Delay {
		l.creditHead = 0
	}
	for _, cr := range arr {
		l.creditsInFlight -= int(cr.n)
		for i := int32(0); i < cr.n; i++ {
			restore(cr.vc)
		}
	}
}

// creditArrivals advances the credit pipeline one cycle and applies the
// completing batch directly to the source router's counters (srcOut bound
// by Finalize): all credit sums first, then one unpark pass and one
// ready-list wake per credited VC. Identical outcome to the per-run
// closure path — credit application touches neither the parked sets nor
// waitSlot, unparkPort is idempotent within a cycle (the first call moves
// every watcher), and a VC's wake fires on its first credited run — but
// with one pass per link per cycle instead of per run. Runs on the
// source router's shard in parallel mode, like the closures it replaces.
func (l *Link) creditArrivals() {
	var credited uint16
	out := l.srcOut
	if l.Delay == 1 {
		credited = l.credMask
		if credited == 0 {
			return
		}
		l.credMask = 0
		total := int32(0)
		for m := credited; m != 0; m &= m - 1 {
			v := bits.TrailingZeros16(m)
			out.Credits[v] += int(l.credPend[v])
			total += l.credPend[v]
			l.credPend[v] = 0
		}
		l.creditsInFlight -= int(total)
	} else {
		arr := l.creditPipe[l.creditHead]
		l.creditPipe[l.creditHead] = arr[:0]
		l.creditHead++
		if l.creditHead == l.Delay {
			l.creditHead = 0
		}
		if len(arr) == 0 {
			return
		}
		total := 0
		for _, cr := range arr {
			out.Credits[cr.vc] += int(cr.n)
			credited |= 1 << uint(cr.vc)
			total += int(cr.n)
		}
		l.creditsInFlight -= total
	}
	// A credit arrival can turn a failing VC allocation at the source
	// router into a succeeding one, so it returns allocations parked on
	// this output to the pending set, and puts a switch-stage slot starved
	// of credits on a credited VC back on the ready list.
	src := l.srcRouter
	src.unparkPort(out)
	for m := credited; m != 0; m &= m - 1 {
		v := bits.TrailingZeros16(m)
		if ws := out.waitSlot[v]; ws >= 0 {
			out.waitSlot[v] = -1
			src.saReady[ws>>6] |= 1 << (uint(ws) & 63)
		}
	}
}

// InFlight returns the number of flits inside the link (including adapter
// internals for hetero links).
func (l *Link) InFlight() int {
	if l.Adapter != nil || l.retry != nil {
		return l.inFlightSlow()
	}
	return l.inFlight
}

func (l *Link) inFlightSlow() int {
	if l.Adapter != nil {
		return l.Adapter.InFlight()
	}
	return l.retry.InFlight()
}

// Busy reports whether the link holds any flits or credits in flight, or —
// on retry-enabled paths — any retry-protocol state (unacked replay
// entries, pending acks) that still needs per-cycle ticks.
func (l *Link) Busy() bool {
	return l.fwdBusy() || l.creditsInFlight > 0
}

// fwdBusy reports whether the forward direction still needs per-cycle
// Arrivals ticks. For adapter links the adapter answers (flits resident,
// plus retry-protocol state when its PHYs run retry): an empty adapter's
// Tick is observationally a no-op (empty pipelines advance in place, the
// reorder buffer releases nothing, and the per-cycle issue budgets were
// already left full by the tick that drained it), so skipping it cannot
// change results. A retry link counts as busy while its replay buffer, wire
// or ack channel is non-empty — a pending retransmission or timeout must
// never be skipped by quiescence fast-forward.
func (l *Link) fwdBusy() bool {
	if l.Adapter != nil || l.retry != nil {
		return l.fwdBusySlow()
	}
	return l.inFlight > 0 || l.accepted > 0
}

func (l *Link) fwdBusySlow() bool {
	if l.Adapter != nil {
		return l.Adapter.Busy()
	}
	return l.retry.Busy()
}
