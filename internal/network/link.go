package network

// Adapter is the behavioral interface of a heterogeneous-PHY die-to-die
// adapter (Sec. 4.2). A Link with a non-nil Adapter delegates flit transport
// to it instead of the plain bandwidth×delay pipeline; the adapter owns the
// TX multi-width FIFO, the per-PHY pipelines, the RX reorder buffer and the
// dispatch policy. Implemented by internal/core.
type Adapter interface {
	// FreeSlots returns how many flits the adapter can accept this cycle,
	// bounded by the TX queue space and the adapter fetch width.
	FreeSlots() int
	// Accept enqueues a flit into the TX queue. The caller must have
	// checked FreeSlots.
	Accept(now int64, f Flit)
	// Tick advances the adapter by one cycle: dispatches queued flits to
	// the PHYs per the scheduling policy, advances the PHY pipelines, and
	// invokes deliver for every flit released in order by the RX side.
	Tick(now int64, deliver func(Flit))
	// InFlight returns the number of flits resident anywhere inside the
	// adapter (TX queue, PHY pipelines, RX reorder buffer).
	InFlight() int
	// Busy reports whether the adapter still needs per-cycle ticks. For an
	// adapter without retry this is InFlight() > 0; with per-PHY retry
	// enabled it also covers protocol state (unacked replay entries, acks
	// in flight) that must keep ticking after the last flit is delivered.
	Busy() bool
}

// Link is a unidirectional physical channel between two routers, modeled as
// a pipeline with Bandwidth flits per stage and Delay stages (Sec. 7.1
// "Interface Model": virtual pipeline registers in the on-chip clock
// domain). It also carries the reverse credit pipeline with the same delay.
type Link struct {
	ID   int
	Kind LinkKind

	Src     NodeID
	SrcPort int // output-port index at the source router
	Dst     NodeID
	DstPort int // input-port index at the destination router

	Bandwidth int
	Delay     int

	// PJPerBit is the per-bit traversal energy (0 for hetero-PHY links,
	// whose adapter accounts energy per PHY).
	PJPerBit float64

	// Adapter is non-nil for hetero-PHY links.
	Adapter Adapter

	bits int // flit width in bits, for energy accounting

	pipe     [][]Flit
	pipeHead int
	inFlight int

	creditPipe      [][]VCID
	creditHead      int
	creditsInFlight int

	accepted int // flits accepted this cycle (plain pipeline rate limit)

	// fwdQueued/crQueued record membership in the engine's forward and
	// credit wake lists (see the package comment): set when a flit/credit
	// enters the respective pipeline, cleared by the wake-list scan once the
	// pipeline drains. They exist so Accept/ReturnCredit enqueue a link at
	// most once per transition from empty to busy.
	fwdQueued bool
	crQueued  bool

	// SentTotal counts flits ever accepted (utilization diagnostics).
	SentTotal uint64

	// retry, when non-nil, replaces the plain forward pipeline with the
	// link-layer retry protocol (see RetryPipe). nil keeps every hot path
	// byte-identical to the retry-free engine. Kept at the tail so the
	// plain pipeline's hot fields retain their cache layout.
	retry *RetryPipe
}

// NewLink constructs a link of the given kind with bandwidth/delay/energy
// taken from cfg. Hetero-PHY links get their adapter attached separately.
func NewLink(cfg *Config, id int, kind LinkKind, src NodeID, srcPort int, dst NodeID, dstPort int) *Link {
	l := &Link{
		ID:        id,
		Kind:      kind,
		Src:       src,
		SrcPort:   srcPort,
		Dst:       dst,
		DstPort:   dstPort,
		Bandwidth: cfg.Bandwidth(kind),
		Delay:     cfg.Delay(kind),
		PJPerBit:  cfg.LinkPJPerBit(kind),
		bits:      cfg.FlitBits,
	}
	l.pipe = make([][]Flit, l.Delay)
	l.creditPipe = make([][]VCID, l.Delay)
	return l
}

// FreeSlots returns how many more flits the link can accept this cycle.
// The adapter/retry indirection is outlined so the plain-pipeline path
// stays inlinable in the router hot loop.
func (l *Link) FreeSlots() int {
	if l.Adapter != nil || l.retry != nil {
		return l.freeSlotsSlow()
	}
	return l.Bandwidth - l.accepted
}

func (l *Link) freeSlotsSlow() int {
	if l.Adapter != nil {
		return l.Adapter.FreeSlots()
	}
	return l.retry.FreeSlots()
}

// Accept pushes a flit into the link this cycle. The flit will be delivered
// Delay cycles later (or per the adapter's PHY selection for hetero links).
func (l *Link) Accept(now int64, f Flit) {
	if l.Adapter != nil {
		l.Adapter.Accept(now, f)
		return
	}
	if l.retry != nil {
		// The retry pipe charges traversal energy per transmission (so
		// retransmissions burn energy again) instead of per acceptance.
		l.retry.Accept(now, f)
		l.SentTotal++
		return
	}
	if l.PJPerBit != 0 {
		e := l.PJPerBit * float64(l.bits)
		f.EnergyPJ += e
		if l.Kind == KindOnChip {
			f.EnergyOnChipPJ += e
		} else {
			f.EnergyIfacePJ += e
		}
	}
	slot := (l.pipeHead + l.Delay - 1) % l.Delay
	l.pipe[slot] = append(l.pipe[slot], f)
	l.inFlight++
	l.accepted++
	l.SentTotal++
}

// Arrivals advances the forward pipeline one cycle and returns the flits
// arriving at the sink. The returned slice is valid until the next call.
func (l *Link) Arrivals(now int64, deliver func(Flit)) {
	if l.Adapter != nil {
		l.Adapter.Tick(now, deliver)
		return
	}
	if l.retry != nil {
		l.retry.Tick(now, deliver)
		return
	}
	arr := l.pipe[l.pipeHead]
	l.pipe[l.pipeHead] = arr[:0]
	l.pipeHead = (l.pipeHead + 1) % l.Delay
	for _, f := range arr {
		l.inFlight--
		deliver(f)
	}
	l.accepted = 0
}

// ReturnCredit sends one credit for the given downstream VC back to the
// source router; it arrives after the link delay.
func (l *Link) ReturnCredit(vc VCID) {
	slot := (l.creditHead + l.Delay - 1) % l.Delay
	l.creditPipe[slot] = append(l.creditPipe[slot], vc)
	l.creditsInFlight++
}

// CreditArrivals advances the credit pipeline one cycle and invokes restore
// for every credit completing its return trip.
func (l *Link) CreditArrivals(restore func(VCID)) {
	arr := l.creditPipe[l.creditHead]
	l.creditPipe[l.creditHead] = arr[:0]
	l.creditHead = (l.creditHead + 1) % l.Delay
	for _, vc := range arr {
		l.creditsInFlight--
		restore(vc)
	}
}

// InFlight returns the number of flits inside the link (including adapter
// internals for hetero links).
func (l *Link) InFlight() int {
	if l.Adapter != nil || l.retry != nil {
		return l.inFlightSlow()
	}
	return l.inFlight
}

func (l *Link) inFlightSlow() int {
	if l.Adapter != nil {
		return l.Adapter.InFlight()
	}
	return l.retry.InFlight()
}

// Busy reports whether the link holds any flits or credits in flight, or —
// on retry-enabled paths — any retry-protocol state (unacked replay
// entries, pending acks) that still needs per-cycle ticks.
func (l *Link) Busy() bool {
	return l.fwdBusy() || l.creditsInFlight > 0
}

// fwdBusy reports whether the forward direction still needs per-cycle
// Arrivals ticks. For adapter links the adapter answers (flits resident,
// plus retry-protocol state when its PHYs run retry): an empty adapter's
// Tick is observationally a no-op (empty pipelines advance in place, the
// reorder buffer releases nothing, and the per-cycle issue budgets were
// already left full by the tick that drained it), so skipping it cannot
// change results. A retry link counts as busy while its replay buffer, wire
// or ack channel is non-empty — a pending retransmission or timeout must
// never be skipped by quiescence fast-forward.
func (l *Link) fwdBusy() bool {
	if l.Adapter != nil || l.retry != nil {
		return l.fwdBusySlow()
	}
	return l.inFlight > 0 || l.accepted > 0
}

func (l *Link) fwdBusySlow() bool {
	if l.Adapter != nil {
		return l.Adapter.Busy()
	}
	return l.retry.Busy()
}
