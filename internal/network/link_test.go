package network

import "testing"

func testLink(kind LinkKind) (*Link, *Config) {
	cfg := DefaultConfig()
	l := NewLink(&cfg, 0, kind, 0, 1, 1, 1)
	return l, &cfg
}

func collect(l *Link, now int64) []Flit {
	var out []Flit
	l.Arrivals(now, func(f Flit) { out = append(out, f) })
	return out
}

func TestLinkDeliversAfterDelay(t *testing.T) {
	l, cfg := testLink(KindParallel)
	pkt := &Packet{ID: 1, Length: 1}
	l.Accept(0, Flit{Pkt: pkt})
	for cyc := 1; cyc < cfg.ParallelDelay; cyc++ {
		if got := collect(l, int64(cyc)); len(got) != 0 {
			t.Fatalf("flit emerged after %d cycles, want %d", cyc, cfg.ParallelDelay)
		}
	}
	if got := collect(l, int64(cfg.ParallelDelay)); len(got) != 1 {
		t.Fatalf("flit did not emerge after delay %d", cfg.ParallelDelay)
	}
	if l.InFlight() != 0 {
		t.Fatalf("in-flight count %d after delivery", l.InFlight())
	}
}

func TestLinkBandwidthLimit(t *testing.T) {
	l, cfg := testLink(KindSerial)
	if l.FreeSlots() != cfg.SerialBandwidth {
		t.Fatalf("free slots %d, want %d", l.FreeSlots(), cfg.SerialBandwidth)
	}
	pkt := &Packet{ID: 1, Length: 8}
	for i := 0; i < cfg.SerialBandwidth; i++ {
		l.Accept(0, Flit{Pkt: pkt, Seq: int32(i)})
	}
	if l.FreeSlots() != 0 {
		t.Fatalf("free slots %d after filling cycle budget", l.FreeSlots())
	}
	// The budget resets once the pipeline advances.
	collect(l, 1)
	if l.FreeSlots() != cfg.SerialBandwidth {
		t.Fatalf("budget did not reset: %d", l.FreeSlots())
	}
}

func TestLinkPreservesOrderWithinAndAcrossCycles(t *testing.T) {
	l, _ := testLink(KindParallel)
	pkt := &Packet{ID: 1, Length: 6}
	var got []int32
	now := int64(0)
	seq := int32(0)
	for cyc := 0; cyc < 12; cyc++ {
		for _, f := range collect(l, now) {
			got = append(got, f.Seq)
		}
		for i := 0; i < 2 && seq < 6; i++ {
			l.Accept(now, Flit{Pkt: pkt, Seq: seq})
			seq++
		}
		now++
	}
	if len(got) != 6 {
		t.Fatalf("delivered %d flits, want 6", len(got))
	}
	for i, s := range got {
		if s != int32(i) {
			t.Fatalf("order broken: position %d has seq %d", i, s)
		}
	}
}

func TestLinkCreditReturnDelay(t *testing.T) {
	l, cfg := testLink(KindParallel)
	l.ReturnCredit(1)
	returned := 0
	for cyc := 1; cyc <= cfg.ParallelDelay; cyc++ {
		l.CreditArrivals(func(vc VCID) {
			if vc != 1 {
				t.Errorf("credit for vc %d, want 1", vc)
			}
			returned++
		})
		if cyc < cfg.ParallelDelay && returned != 0 {
			t.Fatalf("credit returned after %d cycles, want %d", cyc, cfg.ParallelDelay)
		}
	}
	if returned != 1 {
		t.Fatalf("credit not returned after delay")
	}
}

func TestLinkEnergyAccounting(t *testing.T) {
	l, cfg := testLink(KindSerial)
	pkt := &Packet{ID: 1, Length: 1}
	l.Accept(0, Flit{Pkt: pkt})
	var got Flit
	for c := 1; c <= cfg.SerialDelay; c++ {
		for _, f := range collect(l, int64(c)) {
			got = f
		}
	}
	want := cfg.SerialPJPerBit * float64(cfg.FlitBits)
	if got.EnergyPJ != want || got.EnergyIfacePJ != want || got.EnergyOnChipPJ != 0 {
		t.Fatalf("serial flit energy %.1f/%.1f/%.1f pJ, want %.1f on the interface bucket",
			got.EnergyPJ, got.EnergyOnChipPJ, got.EnergyIfacePJ, want)
	}

	l2, _ := testLink(KindOnChip)
	pkt2 := &Packet{ID: 2, Length: 1}
	l2.Accept(0, Flit{Pkt: pkt2})
	var got2 Flit
	for _, f := range collect(l2, 1) {
		got2 = f
	}
	want2 := cfg.OnChipPJPerBit * float64(cfg.FlitBits)
	if got2.EnergyOnChipPJ != want2 || got2.EnergyIfacePJ != 0 {
		t.Fatalf("on-chip energy breakdown wrong: %.2f/%.2f", got2.EnergyOnChipPJ, got2.EnergyIfacePJ)
	}
}

func TestLinkBusy(t *testing.T) {
	l, cfg := testLink(KindParallel)
	if l.Busy() {
		t.Fatal("fresh link busy")
	}
	pkt := &Packet{ID: 1, Length: 1}
	l.Accept(0, Flit{Pkt: pkt})
	if !l.Busy() {
		t.Fatal("link with in-flight flit not busy")
	}
	for c := 1; c <= cfg.ParallelDelay; c++ {
		collect(l, int64(c))
	}
	if l.Busy() {
		t.Fatal("drained link still busy")
	}
}
