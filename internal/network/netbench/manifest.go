package netbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ManifestSchema identifies kernel benchmark manifests; checkmanifest
// sniffs it to tell them apart from experiment result manifests.
const ManifestSchema = "heteroif-bench-kernel/v1"

// CaseResult is one benchmark case in the kernel manifest. CyclesPerSec is
// the headline number (simulated cycles per wall-clock second, from the
// benchmark's cycles/sec metric); AllocsPerOp and BytesPerOp pin the
// steady-state allocation behaviour (engine cases must report 0).
type CaseResult struct {
	Name         string  `json:"name"`
	Nodes        int     `json:"nodes"`
	Workers      int     `json:"workers,omitempty"`
	CyclesPerOp  int64   `json:"cycles_per_op"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// Manifest is the perf-trajectory record cmd/benchkernel writes
// (BENCH_kernel.json at the repo root is the committed baseline).
type Manifest struct {
	Schema     string       `json:"schema"`
	Git        string       `json:"git,omitempty"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Cases      []CaseResult `json:"cases"`
}

// ReadManifest loads and validates a kernel manifest. Unknown fields are
// rejected so schema drift fails loudly.
func ReadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("parse kernel manifest: %w", err)
	}
	if err := m.Check(); err != nil {
		return nil, err
	}
	return &m, nil
}

// WriteManifest writes the manifest as indented JSON.
func (m *Manifest) WriteManifest(path string) error {
	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// Check validates internal consistency: schema, non-empty unique cases,
// positive throughput numbers.
func (m *Manifest) Check() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("kernel manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if len(m.Cases) == 0 {
		return fmt.Errorf("kernel manifest has no cases")
	}
	seen := make(map[string]bool, len(m.Cases))
	for i := range m.Cases {
		c := &m.Cases[i]
		switch {
		case c.Name == "":
			return fmt.Errorf("case %d has no name", i)
		case seen[c.Name]:
			return fmt.Errorf("duplicate case %q", c.Name)
		case c.Iterations <= 0 || c.NsPerOp <= 0 || c.CyclesPerSec <= 0:
			return fmt.Errorf("case %q has non-positive measurements (iters=%d ns/op=%g cycles/sec=%g)",
				c.Name, c.Iterations, c.NsPerOp, c.CyclesPerSec)
		}
		seen[c.Name] = true
	}
	return nil
}

// Dirty reports whether the manifest was produced from a git tree with
// uncommitted changes (benchkernel stamps such trees "<hash>-dirty"), so
// gates can warn that its numbers have untracked provenance.
func (m *Manifest) Dirty() bool { return strings.HasSuffix(m.Git, "-dirty") }

// ComparePairs enforces a throughput ratio between two case families
// within m: every case whose name starts with newPrefix must reach at
// least minRatio × the cycles/sec of the case with basePrefix and the
// same node count (preferring the base family's sequential entry when
// several share a node count). This is the parallel ≥ sequential gate:
// e.g. ComparePairs("satpar", "saturated", 1.0, ...).
//
// A new-family case whose worker count exceeds the manifest's GOMAXPROCS
// cannot have run real parallelism (the host lacked the CPUs) and is
// skipped with a warning through warnf rather than failed — the gate
// binds on multi-core hosts and degrades loudly, not falsely, elsewhere.
// It is an error if no case matches newPrefix at all. The returned stats
// say how many pairings the gate actually enforced versus skipped, so
// callers can summarize how much of the gate was live on this host.
func (m *Manifest) ComparePairs(newPrefix, basePrefix string, minRatio float64, warnf func(format string, args ...any)) (CompareStats, error) {
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	bases := make(map[int]*CaseResult)
	for i := range m.Cases {
		c := &m.Cases[i]
		if !strings.HasPrefix(c.Name, basePrefix) {
			continue
		}
		if prev, ok := bases[c.Nodes]; !ok || (prev.Workers > 0 && c.Workers == 0) {
			bases[c.Nodes] = c
		}
	}
	var violations []string
	var st CompareStats
	found := 0
	for i := range m.Cases {
		c := &m.Cases[i]
		if !strings.HasPrefix(c.Name, newPrefix) {
			continue
		}
		found++
		b, ok := bases[c.Nodes]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: no %q case at %d nodes to compare against", c.Name, basePrefix, c.Nodes))
			continue
		}
		if c.Workers > m.GOMAXPROCS {
			st.Skipped++
			warnf("%s: skipped, needs %d workers but the run had GOMAXPROCS=%d",
				c.Name, c.Workers, m.GOMAXPROCS)
			continue
		}
		st.Enforced++
		if c.CyclesPerSec < minRatio*b.CyclesPerSec {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f cycles/sec < %.2f× %s (%.0f cycles/sec, ratio %.2f)",
				c.Name, c.CyclesPerSec, minRatio, b.Name, b.CyclesPerSec,
				c.CyclesPerSec/b.CyclesPerSec))
		}
	}
	if found == 0 {
		return st, fmt.Errorf("compare %s=%s: no case matches prefix %q", newPrefix, basePrefix, newPrefix)
	}
	if st.Enforced == 0 && len(violations) == 0 {
		warnf("compare %s=%s: every matching case was skipped (single-CPU run?)", newPrefix, basePrefix)
	}
	if len(violations) > 0 {
		return st, fmt.Errorf("throughput ratio violations: %s", strings.Join(violations, "; "))
	}
	return st, nil
}

// CompareStats counts how a ComparePairs gate resolved: Enforced pairings
// actually checked the ratio, Skipped ones were waived by the GOMAXPROCS
// guard (the host could not have run the case's worker count in parallel).
type CompareStats struct {
	Enforced, Skipped int
}

// CompareBaseline checks m (a fresh run) against a baseline manifest:
// every case present in both must reach at least (1-tolerance) of the
// baseline's cycles/sec, and must not allocate where the baseline did not.
// Cases only one side knows are ignored, so the gate survives suite
// extensions. It returns a single error listing every violation.
func (m *Manifest) CompareBaseline(base *Manifest, tolerance float64) error {
	baseline := make(map[string]*CaseResult, len(base.Cases))
	for i := range base.Cases {
		baseline[base.Cases[i].Name] = &base.Cases[i]
	}
	var violations []string
	matched := 0
	for i := range m.Cases {
		c := &m.Cases[i]
		b, ok := baseline[c.Name]
		if !ok {
			continue
		}
		matched++
		if floor := b.CyclesPerSec * (1 - tolerance); c.CyclesPerSec < floor {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f cycles/sec, below %.0f (baseline %.0f, tolerance %.0f%%)",
				c.Name, c.CyclesPerSec, floor, b.CyclesPerSec, tolerance*100))
		}
		if b.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op, baseline has none", c.Name, c.AllocsPerOp))
		}
	}
	if matched == 0 {
		return fmt.Errorf("no case names in common with baseline")
	}
	if len(violations) > 0 {
		msg := violations[0]
		for _, v := range violations[1:] {
			msg += "; " + v
		}
		return fmt.Errorf("perf regression vs baseline: %s", msg)
	}
	return nil
}
