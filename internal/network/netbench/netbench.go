// Package netbench builds small self-contained systems for benchmarking
// the cycle engine in isolation: an on-chip 2D mesh with dimension-order
// routing and deterministic, schedule-driven load at three operating
// points (idle, low load, saturated). It exists so that both the
// BenchmarkStep suite in internal/network and cmd/benchkernel (which
// records the BENCH_kernel.json perf-trajectory manifest) exercise exactly
// the same kernels. The mesh kernels deliberately avoid internal/topology
// and internal/traffic; the many-chiplet kernels (1024 and 4096 nodes)
// build the paper's hetero-PHY torus through internal/topology and
// internal/routing, but the load stays deterministic and schedule-driven —
// the benchmark measures Network.Step, not Bernoulli sampling.
package netbench

import (
	"fmt"
	"runtime"
	"testing"

	"heteroif/internal/collective"
	"heteroif/internal/network"
	"heteroif/internal/routing"
	"heteroif/internal/topology"
)

// Direction indices into xyRouting.ports.
const (
	dirPX = iota
	dirNX
	dirPY
	dirNY
)

// xyRouting is deterministic dimension-order (X then Y) routing on a
// side×side mesh — deadlock-free with a single escape candidate per hop.
type xyRouting struct {
	side   int
	vcMask uint16
	ports  [][4]int
}

func (x *xyRouting) Name() string { return "bench-xy" }

// Stability implements network.Stable: the precomputed port table makes
// Route a pure function of (router, destination), so the engine may build
// a route LUT — the benchmark then measures the memoized hot path, which
// is what every deterministic-routing experiment runs.
func (x *xyRouting) Stability() network.RouteStability { return network.RoutePure }

func (x *xyRouting) Route(_ *network.Network, r *network.Router, _ int, pkt *network.Packet, buf []network.Candidate) []network.Candidate {
	id := int(r.ID)
	cx, cy := id%x.side, id/x.side
	d := int(pkt.Dst)
	dx, dy := d%x.side, d/x.side
	var dir int
	switch {
	case dx > cx:
		dir = dirPX
	case dx < cx:
		dir = dirNX
	case dy > cy:
		dir = dirPY
	default:
		dir = dirNY
	}
	return append(buf, network.Candidate{Port: x.ports[id][dir], VCMask: x.vcMask, Escape: true})
}

// BuildMesh constructs a side×side on-chip mesh with XY routing, finalized
// and ready to step. The configuration is the paper's Table 2 defaults
// with invariant checks off (benchmark mode).
func BuildMesh(side int) *network.Network {
	cfg := network.DefaultConfig()
	net, err := network.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("netbench: %v", err))
	}
	n := side * side
	net.AddNodes(n)
	rt := &xyRouting{side: side, vcMask: uint16(1<<cfg.VCs) - 1, ports: make([][4]int, n)}
	connect := func(a, b, dir int) {
		l := net.Connect(network.KindOnChip, network.NodeID(a), network.NodeID(b))
		rt.ports[a][dir] = l.SrcPort
	}
	for y := 0; y < side; y++ {
		for xx := 0; xx < side; xx++ {
			id := y*side + xx
			if xx+1 < side {
				connect(id, id+1, dirPX)
				connect(id+1, id, dirNX)
			}
			if y+1 < side {
				connect(id, id+side, dirPY)
				connect(id+side, id, dirNY)
			}
		}
	}
	net.Routing = rt
	net.Finalize()
	// Declare mesh-row starts as preferred shard cuts for parallel cases
	// (the single-chiplet analogue of topology.Topo.ShardCuts).
	cuts := make([]int, 0, side-1)
	for b := side; b < n; b += side {
		cuts = append(cuts, b)
	}
	net.SetShardCuts(cuts)
	net.PoolPackets = true
	return net
}

// BuildHeteroTorus constructs a chipletsX×chipletsY hetero-PHY 2D-torus
// of nodesX×nodesY-node chiplets (the paper's Fig. 6a system) with its
// production routing algorithm and chiplet-row shard cuts declared,
// finalized and ready to step. This is the many-chiplet regime where
// parallel stepping must win — the 1024- and 4096-node kernel cases.
func BuildHeteroTorus(chipletsX, chipletsY, nodesX, nodesY int) *network.Network {
	cfg := network.DefaultConfig()
	net, topo, err := topology.Build(cfg, topology.Spec{
		System:    topology.HeteroPHYTorus,
		ChipletsX: chipletsX, ChipletsY: chipletsY,
		NodesX: nodesX, NodesY: nodesY,
	})
	if err != nil {
		panic(fmt.Sprintf("netbench: %v", err))
	}
	alg, err := routing.ForSystem(topo, &net.Cfg)
	if err != nil {
		panic(fmt.Sprintf("netbench: %v", err))
	}
	net.Routing = alg
	net.Finalize()
	net.SetShardCuts(topo.ShardCuts())
	net.PoolPackets = true
	return net
}

// Schedule is a deterministic low-load driver: every Interval cycles one
// node sends one packet across the mesh. Between events the network drains
// completely, so an activity-tracked engine can fast-forward the gaps.
// NextInjection exposes the schedule to Network.RunWith.
type Schedule struct {
	Net      *network.Network
	Interval int64
	Length   int
	k        int64
}

// Drive implements the per-cycle injection callback for Network.RunWith.
func (s *Schedule) Drive(now int64) {
	if now%s.Interval != 0 {
		return
	}
	n := len(s.Net.Nodes)
	src := int((s.k * 7) % int64(n))
	dst := (src + n/2 + int(s.k%3)) % n
	if dst == src {
		dst = (dst + 1) % n
	}
	s.Net.Offer(s.Net.NewPacket(network.NodeID(src), network.NodeID(dst), s.Length, now))
	s.k++
}

// NextInjection reports the next cycle ≥ now at which Drive may offer a
// packet: the next multiple of Interval.
func (s *Schedule) NextInjection(now int64) int64 {
	return (now + s.Interval - 1) / s.Interval * s.Interval
}

// Saturator keeps every source queue non-empty so the mesh runs at its
// saturation throughput: whenever the backlog of undelivered-and-uninjected
// packets drops below one per node it tops every queue up by one packet.
type Saturator struct {
	Net     *network.Network
	Length  int
	offered int64
}

// Drive implements the per-cycle injection callback.
func (d *Saturator) Drive(now int64) {
	n := int64(len(d.Net.Nodes))
	if d.offered-d.Net.PacketsInjected() >= n {
		return
	}
	for src := int64(0); src < n; src++ {
		dst := (src + n/2 + now%7) % n
		if dst == src {
			dst = (dst + 1) % n
		}
		d.Net.Offer(d.Net.NewPacket(network.NodeID(src), network.NodeID(dst), d.Length, now))
	}
	d.offered += n
}

// Case is one kernel benchmark: a named operating point plus how many
// simulated cycles one benchmark op advances (for cycles/sec accounting).
// Workers > 0 marks a parallel-stepping case (the bench raises GOMAXPROCS
// itself).
type Case struct {
	Name        string
	Nodes       int
	Workers     int
	CyclesPerOp int64
	Bench       func(b *testing.B)
}

// lowLoadChunk is how many cycles one low-load benchmark op simulates; it
// spans several Schedule events so fast-forward gaps dominate, as they do
// in the low-load half of a latency sweep.
const lowLoadChunk = 1024

// Saturate drives net to steady-state saturation and returns the driver.
// The warmup deepens with network size: a many-chiplet torus overshoots
// its steady in-flight population during the first few thousand cycles
// (credit backpressure has not propagated yet) and needs several sweeps
// for the packet pool and buffer occupancy to settle.
func Saturate(net *network.Network) *Saturator {
	sat := &Saturator{Net: net, Length: net.Cfg.PacketLength}
	warm := int64(2000)
	if n := int64(len(net.Nodes)); n > 256 {
		warm = 2000 + 6*n
	}
	for net.Now < warm {
		sat.Drive(net.Now)
		net.Step()
	}
	return sat
}

// Cases returns the kernel benchmark suite: idle, low-load and saturated
// meshes at 16, 64 and 256 nodes, the saturated cases additionally with
// the retained naive reference tick (so the manifest records what the
// work-list/memoization hot path buys) and, at 64/256 nodes, with
// parallel stepping across 2 workers.
func Cases() []Case {
	var cs []Case
	for _, side := range []int{4, 8, 16} {
		side := side
		n := side * side
		cs = append(cs,
			Case{
				Name: fmt.Sprintf("idle/%dnodes", n), Nodes: n, CyclesPerOp: 1,
				Bench: func(b *testing.B) {
					net := BuildMesh(side)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						net.Step()
					}
					reportCyclesPerSec(b, 1)
				},
			},
			Case{
				Name: fmt.Sprintf("lowload/%dnodes", n), Nodes: n, CyclesPerOp: lowLoadChunk,
				Bench: func(b *testing.B) {
					net := BuildMesh(side)
					sched := &Schedule{Net: net, Interval: 200, Length: net.Cfg.PacketLength}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := net.RunWith(lowLoadChunk, sched.Drive, sched.NextInjection); err != nil {
							b.Fatal(err)
						}
					}
					reportCyclesPerSec(b, lowLoadChunk)
				},
			},
			Case{
				Name: fmt.Sprintf("saturated/%dnodes", n), Nodes: n, CyclesPerOp: 1,
				Bench: func(b *testing.B) {
					net := BuildMesh(side)
					sat := Saturate(net)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						sat.Drive(net.Now)
						net.Step()
					}
					reportCyclesPerSec(b, 1)
				},
			},
			Case{
				Name: fmt.Sprintf("satref/%dnodes", n), Nodes: n, CyclesPerOp: 1,
				Bench: func(b *testing.B) {
					// The retained naive reference tick: full port×VC
					// scans, Route re-evaluated every VA retry, no LUT.
					net := BuildMesh(side)
					net.SetReferenceTick(true)
					sat := Saturate(net)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						sat.Drive(net.Now)
						net.Step()
					}
					reportCyclesPerSec(b, 1)
				},
			},
		)
		if n >= 64 {
			const workers = 2
			cs = append(cs, satparCase(n, workers, func() *network.Network { return BuildMesh(side) }))
		}
	}
	// Many-chiplet hetero-PHY tori: the regime the paper's systems target
	// and where parallel stepping must beat sequential (gated by
	// checkmanifest -compare against the saturated/<n>nodes twins).
	for _, tc := range []struct {
		cx, cy, nx, ny int
		workers        []int
	}{
		{4, 4, 8, 8, []int{2, 4}}, // 1024 nodes
		{8, 8, 8, 8, []int{4}},    // 4096 nodes
	} {
		tc := tc
		n := tc.cx * tc.nx * tc.cy * tc.ny
		build := func() *network.Network { return BuildHeteroTorus(tc.cx, tc.cy, tc.nx, tc.ny) }
		cs = append(cs, Case{
			Name: fmt.Sprintf("saturated/%dnodes", n), Nodes: n, CyclesPerOp: 1,
			Bench: func(b *testing.B) {
				net := build()
				sat := Saturate(net)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sat.Drive(net.Now)
					net.Step()
				}
				reportCyclesPerSec(b, 1)
			},
		})
		for _, workers := range tc.workers {
			cs = append(cs, satparCase(n, workers, build))
		}
	}
	cs = append(cs, collectiveCase())
	return cs
}

// collectiveCase is the closed-loop workload kernel: one full ring
// all-reduce (16 participants on the 256-node mesh diagonal, 256-flit
// payload, 64-cycle per-chunk reduction) driven to completion per op
// through the RunWith fast-forward hooks. Unlike the open-loop kernels it
// measures the whole dependency-driven pipeline — engine bookkeeping,
// bursty per-step injection, and quiescence skips across the compute
// stretches — so regressions in any of the three show up here first.
func collectiveCase() Case {
	const side = 16
	return Case{
		Name: "collective/256nodes", Nodes: side * side, CyclesPerOp: 1,
		Bench: func(b *testing.B) {
			net := BuildMesh(side)
			ps := make([]network.NodeID, side)
			for i := range ps {
				ps[i] = network.NodeID(i*side + i) // mesh diagonal
			}
			prog := collective.RingAllReduce(ps, 256, 64)
			runOnce := func() {
				eng, err := collective.NewEngine(net, prog)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(1 << 22); err != nil {
					b.Fatal(err)
				}
			}
			runOnce() // warm caches; the network is empty again after
			b.ReportAllocs()
			b.ResetTimer()
			start := net.Now
			for i := 0; i < b.N; i++ {
				runOnce()
			}
			// Per-op simulated cycles are deterministic but not known
			// statically; report from the measured advance.
			if sec := b.Elapsed().Seconds(); sec > 0 && b.N > 0 {
				b.ReportMetric(float64(net.Now-start)/sec, "cycles/sec")
			}
		},
	}
}

// satparCase is one parallel-stepping saturated case: it raises GOMAXPROCS
// to the worker count before SetWorkers (which samples the usable CPUs) so
// the case measures real dispatch wherever the host has the cores.
func satparCase(n, workers int, build func() *network.Network) Case {
	return Case{
		Name: fmt.Sprintf("satpar/%dnodes/%dworkers", n, workers), Nodes: n, Workers: workers, CyclesPerOp: 1,
		Bench: func(b *testing.B) {
			prev := runtime.GOMAXPROCS(0)
			if prev < workers {
				runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
			}
			net := build()
			net.SetWorkers(workers)
			sat := Saturate(net)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sat.Drive(net.Now)
				net.Step()
			}
			reportCyclesPerSec(b, 1)
		},
	}
}

func reportCyclesPerSec(b *testing.B, cyclesPerOp int64) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*float64(cyclesPerOp)/sec, "cycles/sec")
	}
}
