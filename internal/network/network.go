package network

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync/atomic"
)

// Network is a complete multi-chiplet interconnection system: routers,
// links, a routing algorithm, per-node injection sources and the
// synchronous cycle engine.
//
// Each cycle proceeds in three phases (see DESIGN.md):
//  1. every busy link advances one stage, delivering flits into downstream
//     input buffers and completing credit round trips;
//  2. every busy router performs RC/VA/SA and pushes granted flits into
//     link stage 0 (invisible downstream until the link delay elapses, so
//     router iteration order is immaterial);
//  3. injection sources feed the local ports.
type Network struct {
	Cfg     Config
	Nodes   []*Router
	Links   []*Link
	Routing Routing
	Rand    *rand.Rand

	// Now is the current cycle.
	Now int64

	// Sink is invoked when a packet's tail flit is ejected. Statistics
	// collectors hook in here.
	Sink func(*Packet)

	// OnDeliver, when non-nil, is invoked after Sink for every delivered
	// packet, in the same deterministic ejection order (ascending
	// destination node within a cycle; coordinator merge order under
	// parallel stepping). Closed-loop workload drivers
	// (internal/collective) observe deliveries here without displacing the
	// statistics sink. Like Sink, the *Packet must not be retained past
	// the call when PoolPackets is enabled.
	OnDeliver func(*Packet)

	// Tracer, when non-nil, receives per-flit simulation events
	// (injection, hops, ejection, allocation failures) for debugging.
	Tracer Tracer

	// PoolPackets recycles delivered Packet structs through a free list
	// (NewPacket reuses them after Sink returns). Enable only when no Sink
	// or Tracer retains *Packet pointers past the Sink call; the built-in
	// experiment runners copy into value structs and qualify.
	PoolPackets bool

	sources []source

	// Wake state (see the package comment in flit.go): per-cycle work is
	// found here instead of by scanning every component. nodeWake/srcWake
	// are bitmaps over node indices — bitmap scans yield ascending order,
	// which Sink-order determinism requires. fwdWake/crWake list links with
	// non-empty forward/credit pipelines (membership mirrored by
	// Link.fwdQueued/crQueued); parallel mode keeps these per shard inside
	// parallelState instead.
	nodeWake []uint64
	srcWake  []uint64
	fwdWake  []int32
	crWake   []int32

	pktFree []*Packet

	nextPktID  uint64
	flitsIn    int64 // flits injected into the network
	flitsOut   int64 // flits ejected
	pktsIn     int64
	pktsOut    int64
	moved      uint64 // flit movements this cycle (watchdog)
	idleStreak int64

	// DeadlockAt records the cycle at which the watchdog fired, or -1.
	DeadlockAt int64

	deliverFns []func(Flit)

	par        *parallelState
	seqScratch workerScratch
	// shardCuts are the preferred shard boundaries (chiplet rows) declared
	// via SetShardCuts, consulted by the parallel partitioner.
	shardCuts []int

	// Route-acceleration state, derived on the first Step (after topology
	// construction and any fault injection) from the routing algorithm's
	// declared RouteStability: stability gates the per-VC candidate
	// memoization in Router.allocate, lut (non-nil only for RoutePure
	// algorithms on networks within Cfg.RouteLUTNodes) replaces Route
	// calls entirely. refTick selects the retained naive reference tick
	// for the bit-identity oracle.
	stability RouteStability
	lut       *routeLUT
	prepared  bool
	refTick   bool

	// LivelockHopBound restricts a packet to the escape subnetwork once it
	// has taken this many hops (0 = disabled). Minimal-path adaptive
	// routing never comes close; the bound matters only when faults or
	// stale distance heuristics would otherwise let a packet wander (the
	// "time-out packets" rule of Sec. 5.3.2 applied to routing).
	LivelockHopBound int

	// GrantsByKind counts switch-allocation grants (flits) by output
	// channel kind, a cheap utilization probe for diagnostics.
	GrantsByKind [8]uint64
	// VAFailures counts cycles an input VC held a routable head flit but
	// could not obtain any output VC.
	VAFailures uint64
}

// source is a per-node injection queue: packets wait here (unbounded — the
// source-queueing delay is part of measured latency) until the injection
// port accepts their flits.
type source struct {
	q      []*Packet
	head   int
	cur    *Packet
	curSeq int32
	curVC  VCID
}

// New creates an empty network with the given configuration. Topology
// builders add nodes and links, then attach a routing algorithm.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		Cfg:        cfg,
		Rand:       rand.New(rand.NewSource(cfg.Seed)),
		DeadlockAt: -1,
	}, nil
}

// AddNodes creates n routers with local ports and their injection sources.
func (net *Network) AddNodes(n int) {
	for i := 0; i < n; i++ {
		net.Nodes = append(net.Nodes, newRouter(&net.Cfg, NodeID(len(net.Nodes))))
	}
	net.sources = make([]source, len(net.Nodes))
}

// Connect wires a unidirectional link of the given kind from node a to node
// b and returns it. Hetero-PHY adapters are attached by the caller
// afterwards via SetAdapter.
func (net *Network) Connect(kind LinkKind, a, b NodeID) *Link {
	l := NewLink(&net.Cfg, len(net.Links), kind, a, 0, b, 0)
	l.SrcPort = net.Nodes[a].AddOutPort(&net.Cfg, l)
	l.DstPort = net.Nodes[b].AddInPort(&net.Cfg, l)
	net.Links = append(net.Links, l)
	return l
}

// SetAdapter attaches a hetero-PHY adapter to a link and reinitializes the
// source router's credit view for the link's (unchanged) buffer depth.
func (net *Network) SetAdapter(l *Link, a Adapter) {
	l.Adapter = a
	if l.srcOut != nil {
		l.srcOut.slow = !l.direct && (l.Adapter != nil || l.retry != nil)
	}
}

// Finalize must be called after topology construction and before the first
// Step: it packs the per-router port/VC/ring state into per-network slabs,
// pre-binds the per-link delivery closures and builds the wake state.
func (net *Network) Finalize() {
	net.packSlabs()
	net.deliverFns = make([]func(Flit), len(net.Links))
	for i, l := range net.Links {
		dst := net.Nodes[l.Dst]
		port := l.DstPort
		wi, bit := uint(l.Dst)>>6, uint64(1)<<(uint(l.Dst)&63)
		net.deliverFns[i] = func(f Flit) {
			dst.deliver(port, f)
			net.nodeWake[wi] |= bit
			net.moved++
		}
		// Bind the credit-completion targets directly: creditArrivals
		// applies a link's whole per-cycle credit batch to the source
		// router's counters without a per-run closure call.
		l.srcRouter = net.Nodes[l.Src]
		l.srcOut = l.srcRouter.Out[l.SrcPort]
	}
	// Arm direct staging on plain Delay-1 links: their flits can be
	// written into the destination rings at acceptance and published a
	// cycle later, skipping the pipe-stage copy (see Link.direct).
	// EnableRetry disarms a link again; adapter and multi-cycle links keep
	// the pipeline.
	for _, l := range net.Links {
		if len(l.staged) != 0 {
			// Re-finalize with flits staged: keep the armed state, but
			// re-point dstIn at the port's new slab home (packSlabs moved it;
			// the ring contents, cursors included, were copied verbatim).
			l.dstIn = net.Nodes[l.Dst].In[l.DstPort]
			continue
		}
		l.direct = l.Adapter == nil && l.retry == nil && l.Delay == 1 && l.inFlight == 0
		if l.direct {
			l.dstIn = net.Nodes[l.Dst].In[l.DstPort]
			for v := range l.dstIn.VCs {
				l.dstIn.VCs[v].Buf.syncStage()
			}
		}
		l.srcOut.slow = !l.direct && (l.Adapter != nil || l.retry != nil)
	}
	net.rebuildWake()
}

// packSlabs re-homes every router's input/output ports, VC states, flit
// rings and credit arrays into contiguous per-network slabs, in (router,
// port, VC) order — the structure-of-arrays layout behind the saturated
// hot path. Topology builders still create ports as individual heap
// objects; Finalize migrates them here, copying all live state verbatim
// (ring contents and staging cursors included, so a re-Finalize mid-run is
// safe). Every pointer into the old homes is rebound afterwards: Finalize
// re-binds the link closures and dstIn/srcOut, rebuildWork the flat slot
// tables. The slabs are reachable only through the routers' port slices,
// so repacking leaks nothing.
//
// Ownership under parallel stepping is unchanged by the merged backing
// arrays: a shard's routers own disjoint index ranges of every slab
// (shards are contiguous node ranges), and the single-producer staging
// regions of direct links stay confined to their ring's slice window.
func (net *Network) packSlabs() {
	nIn, nOut, nVC, nFlit, nCred := 0, 0, 0, 0, 0
	for _, r := range net.Nodes {
		nIn += len(r.In)
		nOut += len(r.Out)
		for _, in := range r.In {
			nVC += len(in.VCs)
			for v := range in.VCs {
				nFlit += in.VCs[v].Buf.Cap()
			}
		}
		for _, out := range r.Out {
			nCred += len(out.Credits)
		}
	}
	inSlab := make([]InPort, nIn)
	outSlab := make([]OutPort, nOut)
	vcSlab := make([]VCState, nVC)
	flitSlab := make([]Flit, nFlit)
	credSlab := make([]int, nCred)
	heldSlab := make([]bool, nCred)
	waitSlab := make([]int32, nCred)
	iIn, iOut, iVC, iFlit, iCred := 0, 0, 0, 0, 0
	for _, r := range net.Nodes {
		for pi, in := range r.In {
			p := &inSlab[iIn]
			iIn++
			*p = *in
			p.VCs = vcSlab[iVC : iVC+len(in.VCs)]
			iVC += len(in.VCs)
			for v := range in.VCs {
				vc := &p.VCs[v]
				*vc = in.VCs[v]
				ring := flitSlab[iFlit : iFlit+vc.Buf.Cap()]
				iFlit += vc.Buf.Cap()
				copy(ring, vc.Buf.buf)
				vc.Buf.buf = ring
			}
			r.In[pi] = p
		}
		for pi, out := range r.Out {
			p := &outSlab[iOut]
			iOut++
			*p = *out
			ncr := len(out.Credits)
			p.Credits = credSlab[iCred : iCred+ncr]
			copy(p.Credits, out.Credits)
			p.Held = heldSlab[iCred : iCred+ncr]
			copy(p.Held, out.Held)
			// waitSlot and parked are rebuilt by rebuildWork (forgetting
			// parked state is always safe; see its comment).
			p.waitSlot = waitSlab[iCred : iCred+ncr]
			iCred += ncr
			r.Out[pi] = p
		}
	}
}

// wakeNode marks a router as having buffered flits to process.
func (net *Network) wakeNode(id NodeID) {
	net.nodeWake[uint(id)>>6] |= 1 << (uint(id) & 63)
}

// rebuildWake recomputes every wake structure from current component state.
// Finalize and SetWorkers call it after topology or sharding changes; it is
// O(network), never per-cycle.
func (net *Network) rebuildWake() {
	words := (len(net.Nodes) + 63) / 64
	if len(net.nodeWake) != words {
		net.nodeWake = make([]uint64, words)
		net.srcWake = make([]uint64, words)
	}
	for i := range net.nodeWake {
		net.nodeWake[i] = 0
		net.srcWake[i] = 0
	}
	for i, r := range net.Nodes {
		r.rebuildWork()
		if r.buffered > 0 {
			net.wakeNode(NodeID(i))
		}
	}
	for i := range net.sources {
		s := &net.sources[i]
		if s.cur != nil || s.head < len(s.q) {
			net.srcWake[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	net.fwdWake = net.fwdWake[:0]
	net.crWake = net.crWake[:0]
	if p := net.par; p != nil {
		for w := range p.fwdWake {
			p.fwdWake[w] = p.fwdWake[w][:0]
			p.crWake[w] = p.crWake[w][:0]
		}
	}
	for i, l := range net.Links {
		l.fwdQueued = l.fwdBusy()
		l.crQueued = l.creditsInFlight > 0
		if p := net.par; p != nil {
			if l.fwdQueued {
				d := p.linkDstShard[i]
				p.fwdWake[d] = append(p.fwdWake[d], int32(i))
			}
			if l.crQueued {
				s := p.linkSrcShard[i]
				p.crWake[s] = append(p.crWake[s], int32(i))
			}
			continue
		}
		if l.fwdQueued {
			net.fwdWake = append(net.fwdWake, int32(i))
		}
		if l.crQueued {
			net.crWake = append(net.crWake, int32(i))
		}
	}
}

// NewPacket allocates a packet with a fresh ID, reusing a delivered packet
// from the free list when PoolPackets is enabled. The caller fills class
// and priority, then Offers it.
func (net *Network) NewPacket(src, dst NodeID, length int, createdAt int64) *Packet {
	net.nextPktID++
	p := (*Packet)(nil)
	if n := len(net.pktFree); n > 0 {
		p = net.pktFree[n-1]
		net.pktFree = net.pktFree[:n-1]
	} else {
		p = new(Packet)
	}
	*p = Packet{
		ID:        net.nextPktID,
		Src:       src,
		Dst:       dst,
		Length:    length,
		CreatedAt: createdAt,
		ArrivedAt: -1,
		Target:    -1,
	}
	return p
}

// Offer appends a packet to its source node's injection queue. Packets must
// be offered with nondecreasing CreatedAt per node.
func (net *Network) Offer(p *Packet) {
	if p.Src == p.Dst {
		panic(fmt.Sprintf("network: packet %d offered with src == dst == %d", p.ID, p.Src))
	}
	s := &net.sources[p.Src]
	s.q = append(s.q, p)
	if net.srcWake != nil {
		net.srcWake[p.Src>>6] |= 1 << (uint(p.Src) & 63)
	}
}

// Step advances the network by one cycle. Work is found through the wake
// state, so per-cycle cost scales with in-flight traffic, not topology
// size; a skipped component is always one whose tick would have been a
// no-op, keeping results bit-identical to exhaustive scanning.
func (net *Network) Step() {
	if !net.prepared {
		net.prepare()
	}
	if net.par != nil {
		net.stepParallel()
		return
	}
	net.moved = 0

	// Phase 1: link arrivals, then credit returns. Only links on the wake
	// lists can hold work. Processing order within a list is immaterial:
	// each link writes disjoint router state (arrivals the Dst input
	// buffers, credits the Src output counters) and the shared movement
	// counter is a commutative sum.
	if len(net.fwdWake) > 0 {
		keep := net.fwdWake[:0]
		for _, li := range net.fwdWake {
			l := net.Links[li]
			net.linkArrivals(l, net.deliverFns[li], &net.moved, false)
			if l.fwdBusy() {
				keep = append(keep, li)
			} else {
				l.fwdQueued = false
			}
		}
		net.fwdWake = keep
	}
	if len(net.crWake) > 0 {
		keep := net.crWake[:0]
		for _, li := range net.crWake {
			l := net.Links[li]
			l.creditArrivals()
			if l.creditsInFlight > 0 {
				keep = append(keep, li)
			} else {
				l.crQueued = false
			}
		}
		net.crWake = keep
	}

	// Phase 2: router pipelines, ascending node order (Sink determinism
	// depends on it — see the package comment).
	sc := &net.seqScratch
	ctx := tickContext{net: net, scratch: sc, tracer: net.Tracer, reference: net.refTick}
	net.tickNodes(&ctx, 0, len(net.nodeWake))

	// Phase 3: injection, ascending node order.
	net.injectNodes(sc, 0, len(net.srcWake))

	net.mergeScratch(sc, net.Tracer != nil)
	net.watchdog()
	net.Now++
}

// linkArrivals advances one link's forward pipeline. Plain pipelines hand
// their whole per-cycle batch to Router.deliverRun in one call (the flits
// of a link all target the same input port, so the per-flit closure only
// re-derived the same router and wake bit once per flit); adapter and
// retry links keep the per-flit path — their Tick interleaves protocol
// work with delivery. deliverFn and moved are the caller's per-flit
// closure and movement accumulator (net.deliverFns/net.moved
// sequentially, the shard-bound twins in parallel mode). atomicWake marks
// the destination's wake word as shared between shards, requiring an
// atomic set (always false sequentially).
func (net *Network) linkArrivals(l *Link, deliverFn func(Flit), moved *uint64, atomicWake bool) {
	if l.Adapter != nil || l.retry != nil {
		l.Arrivals(net.Now, deliverFn)
		return
	}
	if l.direct {
		net.commitDirect(l, moved, atomicWake)
		return
	}
	arr := l.takeArrivals()
	if len(arr) == 0 {
		return
	}
	net.Nodes[l.Dst].deliverRun(l.DstPort, arr)
	net.wakeNodeMode(l.Dst, atomicWake)
	*moved += uint64(len(arr))
}

// wakeNodeMode is wakeNode with an optional atomic set for wake words
// shared between parallel shards.
func (net *Network) wakeNodeMode(id NodeID, atomicOr bool) {
	wi, bit := uint(id)>>6, uint64(1)<<(uint(id)&63)
	if atomicOr {
		atomic.OrUint64(&net.nodeWake[wi], bit)
	} else {
		net.nodeWake[wi] |= bit
	}
}

// commitDirect publishes a direct link's staged flits: they already sit in
// the destination rings (written at acceptance, see Link.direct), so
// arrival is O(runs) — bump each ring's published length, mark newly
// pending slots and account the batch, with no flit copies. Runs on the
// destination router's shard in the link phase, after the barrier that
// quiesced the staging producer.
func (net *Network) commitDirect(l *Link, moved *uint64, atomicWake bool) {
	l.accepted = 0
	if len(l.staged) == 0 {
		return
	}
	r := net.Nodes[l.Dst]
	in := l.dstIn
	total := 0
	for _, run := range l.staged {
		vc := &in.VCs[run.vc]
		wasEmpty := vc.Buf.Empty()
		vc.Buf.publish(int(run.n))
		slot := l.DstPort*r.slotVCs + int(run.vc)
		if !vc.Active {
			if wasEmpty {
				vc.cacheHead(vc.Buf.frontRef())
			}
			r.markPend(slot)
		} else {
			r.saReady[slot>>6] |= 1 << (uint(slot) & 63)
		}
		total += int(run.n)
	}
	l.staged = l.staged[:0]
	l.inFlight -= total
	r.buffered += total
	net.wakeNodeMode(l.Dst, atomicWake)
	*moved += uint64(total)
}

// tickNodes runs Phase 2 for the routers woken in nodeWake words
// [wlo, whi), in ascending node order, clearing the bit of any router that
// drained completely.
func (net *Network) tickNodes(ctx *tickContext, wlo, whi int) {
	for wi := wlo; wi < whi; wi++ {
		w := net.nodeWake[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			r := net.Nodes[wi<<6+b]
			r.tickCtx(ctx)
			if r.buffered == 0 {
				net.nodeWake[wi] &^= 1 << uint(b)
			}
		}
	}
}

// injectNodes runs Phase 3 for the sources woken in srcWake words
// [wlo, whi), in ascending node order, clearing the bit of any source whose
// queue emptied.
func (net *Network) injectNodes(sc *workerScratch, wlo, whi int) {
	for wi := wlo; wi < whi; wi++ {
		w := net.srcWake[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			ni := wi<<6 + b
			net.injectNode(ni, sc, false)
			s := &net.sources[ni]
			if s.cur == nil && s.head == len(s.q) {
				net.srcWake[wi] &^= 1 << uint(b)
			}
		}
	}
}

// mergeScratch folds per-phase accumulators into the network counters and
// retires the packets whose tail flits were ejected this cycle.
func (net *Network) mergeScratch(sc *workerScratch, traceEjects bool) {
	net.moved += sc.moved
	net.flitsIn += sc.flitsIn
	net.flitsOut += sc.flitsOut
	net.pktsIn += sc.pktsIn
	net.pktsOut += sc.pktsOut
	net.VAFailures += sc.vaFailures
	for k := range sc.grantsByKind {
		net.GrantsByKind[k] += sc.grantsByKind[k]
	}
	for _, pkt := range sc.finished {
		pkt.ArrivedAt = net.Now
		if traceEjects && net.Tracer != nil {
			net.Tracer.Trace(Event{Cycle: net.Now, Kind: EvEject, Pkt: pkt.ID, Node: pkt.Dst})
		}
		if net.Sink != nil {
			net.Sink(pkt)
		}
		if net.OnDeliver != nil {
			net.OnDeliver(pkt)
		}
		if net.PoolPackets {
			net.pktFree = append(net.pktFree, pkt)
		}
	}
	// Fold links woken by this shard's routers into the wake lists. A
	// shard's routers may source links of any shard, so distribution runs
	// here on the coordinator, not on the workers.
	if p := net.par; p != nil {
		for _, li := range sc.wokeFwd {
			d := p.linkDstShard[li]
			p.fwdWake[d] = append(p.fwdWake[d], li)
		}
		for _, li := range sc.wokeCr {
			s := p.linkSrcShard[li]
			p.crWake[s] = append(p.crWake[s], li)
		}
	} else {
		net.fwdWake = append(net.fwdWake, sc.wokeFwd...)
		net.crWake = append(net.crWake, sc.wokeCr...)
	}
	*sc = workerScratch{finished: sc.finished[:0], wokeFwd: sc.wokeFwd[:0], wokeCr: sc.wokeCr[:0]}
}

// watchdog advances the deadlock detector after a cycle's movement count
// is final.
func (net *Network) watchdog() {
	if net.Cfg.DeadlockThreshold <= 0 {
		return
	}
	if net.flitsIn > net.flitsOut && net.moved == 0 {
		net.idleStreak++
		if net.idleStreak >= net.Cfg.DeadlockThreshold && net.DeadlockAt < 0 {
			net.DeadlockAt = net.Now
		}
	} else {
		net.idleStreak = 0
	}
}

// injectNode moves flits from one node's source queue into its
// injection-port buffers, accumulating counters into sc. atomicWake marks
// the node's wake word as shared between parallel shards.
func (net *Network) injectNode(n int, sc *workerScratch, atomicWake bool) {
	{
		s := &net.sources[n]
		if s.cur == nil && s.head == len(s.q) {
			return
		}
		r := net.Nodes[n]
		in := r.In[r.InjectPort]
		budget := net.Cfg.InjectionBandwidth
		for budget > 0 {
			if s.cur == nil {
				if s.head == len(s.q) {
					break
				}
				p := s.q[s.head]
				if p.CreatedAt > net.Now {
					break
				}
				// Pick the injection VC with the most free space, with the
				// same class affinity as VC allocation (latency-sensitive
				// high, throughput low) so control packets do not queue
				// behind bulk transfers at the source. Throughput packets
				// stop at the first eligible VC — nothing later in the scan
				// can displace the lowest one.
				best, bestFree := -1, 0
				for v := range in.VCs {
					f := in.VCs[v].Buf.Free()
					if f == 0 {
						continue
					}
					if best < 0 {
						best, bestFree = v, f
						if p.Class == ClassThroughput {
							break
						}
						continue
					}
					switch {
					case p.Class == ClassLatencySensitive:
						best, bestFree = v, f // highest eligible VC
					case f > bestFree:
						best, bestFree = v, f
					}
				}
				if best < 0 {
					break
				}
				s.q[s.head] = nil
				s.head++
				if s.head == len(s.q) {
					s.q, s.head = s.q[:0], 0
				}
				s.cur, s.curSeq, s.curVC = p, 0, VCID(best)
				p.InjectedAt = net.Now
				sc.pktsIn++
				if net.par == nil && net.Tracer != nil {
					net.Tracer.Trace(Event{Cycle: net.Now, Kind: EvInject, Pkt: p.ID, Node: p.Src})
				}
			}
			vc := &in.VCs[s.curVC]
			if budget > 0 && s.curSeq < int32(s.cur.Length) && vc.Buf.Free() > 0 {
				net.wakeNodeMode(r.ID, atomicWake)
				slot := r.InjectPort*r.slotVCs + int(s.curVC)
				if !vc.Active {
					// The VC will hold a head flit awaiting RC+VA next
					// cycle (if it already does, re-marking is a no-op).
					// When this packet's own head is about to become the
					// front, denormalize it; an inactive non-empty buffer
					// already fronts an earlier head, cached on arrival.
					if s.curSeq == 0 && vc.Buf.Empty() {
						vc.cacheHeadPkt(s.cur)
					}
					r.markPend(slot)
				} else {
					r.saReady[slot>>6] |= 1 << (uint(slot) & 63)
				}
			}
			for budget > 0 && s.curSeq < int32(s.cur.Length) && vc.Buf.Free() > 0 {
				vc.Buf.Push(Flit{Pkt: s.cur, Seq: s.curSeq, VC: s.curVC})
				r.buffered++
				s.curSeq++
				budget--
				sc.flitsIn++
				sc.moved++
			}
			if s.curSeq == int32(s.cur.Length) {
				s.cur = nil
				continue
			}
			break // buffer full or budget exhausted
		}
	}
}

// Run drives the network for the given number of cycles, invoking drive
// (which may be nil) at the start of every cycle so traffic generators can
// Offer packets. It returns a deadlock error if the watchdog fires.
func (net *Network) Run(cycles int64, drive func(now int64)) error {
	return net.RunWith(cycles, drive, nil)
}

// RunWith is Run with a fast-forward contract: next, when non-nil, reports
// the earliest cycle ≥ its argument at which drive may Offer a packet (or a
// negative value for "never again"). When the network is quiescent the
// engine skips Now directly to the next cycle at which anything can happen
// instead of stepping idle cycles. A nil next with a non-nil drive disables
// fast-forwarding entirely (the driver is assumed to need every cycle, as
// Bernoulli generators do); a nil drive lets the engine skip to the next
// source-queue injection time on its own. Results are bit-identical to
// stepping every cycle: a skipped cycle is one in which Step would only
// have advanced Now (no wake-list work, no eligible source, no driver
// event, and the watchdog's idle streak already pinned to zero by
// flitsIn == flitsOut).
func (net *Network) RunWith(cycles int64, drive func(now int64), next func(now int64) int64) error {
	end := net.Now + cycles
	for net.Now < end {
		if drive != nil {
			drive(net.Now)
		}
		net.Step()
		if net.DeadlockAt >= 0 {
			return fmt.Errorf("network: deadlock detected at cycle %d (%d flits stuck)", net.DeadlockAt, net.flitsIn-net.flitsOut)
		}
		if (drive != nil && next == nil) || !net.idle() {
			continue
		}
		// A quiescence boundary: the cheapest point to re-shard, and the
		// only one where repartitioning cost is off any critical path.
		if p := net.par; p != nil {
			p.maybeRebalance(net)
		}
		target := end
		if t := net.nextSourceEvent(); t >= 0 && t < target {
			target = t
		}
		if next != nil {
			if t := next(net.Now); t >= 0 && t < target {
				target = t
			}
		}
		if target > net.Now {
			net.Now = target
		}
	}
	return nil
}

// Drain runs without new traffic until every in-flight and queued packet is
// delivered, up to cfg.DrainCycles additional cycles. It reports whether
// the network fully drained. An idle network with only future-timestamped
// packets queued skips straight to the earliest of them.
func (net *Network) Drain() (bool, error) {
	deadline := net.Now + net.Cfg.DrainCycles
	for net.Now < deadline {
		if net.Quiescent() {
			return true, nil
		}
		if net.idle() {
			if p := net.par; p != nil {
				p.maybeRebalance(net)
			}
			if t := net.nextSourceEvent(); t > net.Now {
				net.Now = min(t, deadline)
				continue
			}
		}
		net.Step()
		if net.DeadlockAt >= 0 {
			return false, fmt.Errorf("network: deadlock detected at cycle %d while draining", net.DeadlockAt)
		}
	}
	return net.Quiescent(), nil
}

// idle reports whether stepping the network would be a strict no-op: every
// flit delivered and no link pipeline (forward or credit) still draining.
// Credits in flight block idleness — skipping would deliver them late and
// change downstream allocation timing.
func (net *Network) idle() bool {
	if net.flitsIn != net.flitsOut {
		return false
	}
	if p := net.par; p != nil {
		for w := 0; w < p.workers; w++ {
			if len(p.fwdWake[w]) > 0 || len(p.crWake[w]) > 0 {
				return false
			}
		}
		return true
	}
	return len(net.fwdWake) == 0 && len(net.crWake) == 0
}

// nextSourceEvent returns the earliest cycle at which a source queue can
// inject: Now itself if any queue holds an eligible packet, the minimum
// future CreatedAt otherwise, or -1 if every queue is empty.
func (net *Network) nextSourceEvent() int64 {
	next := int64(-1)
	for wi, w := range net.srcWake {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			s := &net.sources[wi<<6+b]
			if s.cur != nil {
				return net.Now
			}
			if s.head < len(s.q) {
				t := s.q[s.head].CreatedAt
				if t <= net.Now {
					return net.Now
				}
				if next < 0 || t < next {
					next = t
				}
			}
		}
	}
	return next
}

// Quiescent reports whether no packets are queued or in flight.
func (net *Network) Quiescent() bool {
	if net.flitsIn > net.flitsOut {
		return false
	}
	for i := range net.sources {
		s := &net.sources[i]
		if s.cur != nil || s.head < len(s.q) {
			return false
		}
	}
	return true
}

// InFlightFlits returns the number of flits inside the network.
func (net *Network) InFlightFlits() int64 { return net.flitsIn - net.flitsOut }

// PacketsInjected returns the number of packets whose injection started.
func (net *Network) PacketsInjected() int64 { return net.pktsIn }

// PacketsDelivered returns the number of packets fully ejected.
func (net *Network) PacketsDelivered() int64 { return net.pktsOut }

// QueuedPackets returns the number of packets waiting in source queues.
func (net *Network) QueuedPackets() int {
	total := 0
	for i := range net.sources {
		s := &net.sources[i]
		total += len(s.q) - s.head
		if s.cur != nil {
			total++
		}
	}
	return total
}

// CheckCredits verifies, for every plain (non-adapter) link, that
// credits + credits-in-return + flits-in-pipe + flits-buffered equals the
// downstream buffer depth for every VC. Tests call it; it is O(network).
func (net *Network) CheckCredits() error {
	for _, l := range net.Links {
		if l.Adapter != nil {
			continue
		}
		src := net.Nodes[l.Src].Out[l.SrcPort]
		dstIn := net.Nodes[l.Dst].In[l.DstPort]
		for v := range src.Credits {
			inPipe := 0
			if l.retry != nil {
				// A retry link's credit-holding flits are exactly the
				// accepted-but-undelivered ones; a delivered-but-unacked
				// replay copy must not be counted twice (its flit already
				// sits in the downstream buffer).
				l.retry.UndeliveredVCs(func(vc VCID) {
					if int(vc) == v {
						inPipe++
					}
				})
			} else {
				// Direct links hold in-flight flits staged in the
				// destination ring (excluded from Buf.Len) and recorded
				// in the staged run list; pipe links hold them in stages.
				for _, run := range l.staged {
					if int(run.vc) == v {
						inPipe += int(run.n)
					}
				}
				for _, stage := range l.pipe {
					for _, f := range stage {
						if int(f.VC) == v {
							inPipe++
						}
					}
				}
			}
			returning := int(l.credPend[v])
			for _, stage := range l.creditPipe {
				for _, c := range stage {
					if int(c.vc) == v {
						returning += int(c.n)
					}
				}
			}
			got := src.Credits[v] + returning + inPipe + dstIn.VCs[v].Buf.Len()
			want := dstIn.VCs[v].Buf.Cap()
			if got != want {
				return fmt.Errorf("network: credit imbalance on link %d (%v %d->%d) vc %d: credits=%d returning=%d inPipe=%d buffered=%d, sum %d != depth %d",
					l.ID, l.Kind, l.Src, l.Dst, v, src.Credits[v], returning, inPipe, dstIn.VCs[v].Buf.Len(), got, want)
			}
		}
	}
	return nil
}
