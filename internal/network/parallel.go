package network

import "sync"

// Parallel stepping. The synchronous two-phase cycle model makes the
// engine embarrassingly parallel *within* each phase once writes are
// grouped by owner:
//
//   - link delivery writes only the destination router (links sharded by Dst);
//   - credit completion writes only the source router (links sharded by Src);
//   - a router tick writes its own state, the links it sources (Accept),
//     the links it sinks (ReturnCredit) and the packets at its VC heads —
//     all owned by exactly one router;
//   - injection writes only the node's own source queue and buffers.
//
// Wake tracking is sharded the same way. Shard boundaries are aligned to
// multiples of 64 nodes so every nodeWake/srcWake bitmap *word* has exactly
// one owning worker: phase-1 deliveries set wake bits for destination
// routers (their shard's words), phase 2 reads and clears its own words —
// no word is ever written from two shards. Links woken by a router tick
// (Accept/ReturnCredit on a possibly foreign-shard link) are recorded in
// the worker's private scratch and folded into the owning shard's wake
// list by the coordinator at the merge barrier.
//
// Shared aggregates (movement counters, grant/VA statistics, finished
// packets) are accumulated per worker and merged at the barrier, and the
// Sink/Tracer callbacks run on the coordinating goroutine, so results are
// bit-identical to sequential stepping regardless of worker count — see
// TestParallelMatchesSequential.
type parallelState struct {
	workers int
	wg      sync.WaitGroup

	// bounds[w]..bounds[w+1] is shard w's node range; interior boundaries
	// are multiples of 64 (see above).
	bounds []int

	linkDstShard []int32 // owning shard of each link's forward wake entry
	linkSrcShard []int32 // owning shard of each link's credit wake entry

	fwdWake [][]int32 // per dst-shard links with non-empty forward pipelines
	crWake  [][]int32 // per src-shard links with credits in flight

	// deliverFns are the per-link delivery closures bound to the owning
	// worker's scratch, the parallel twin of Network.deliverFns.
	deliverFns []func(Flit)

	scratch []workerScratch
}

type workerScratch struct {
	moved        uint64
	flitsIn      int64
	flitsOut     int64
	pktsIn       int64
	pktsOut      int64
	grantsByKind [8]uint64
	vaFailures   uint64
	finished     []*Packet
	wokeFwd      []int32 // links whose forward pipeline went busy this tick
	wokeCr       []int32 // links whose credit pipeline went busy this tick

	_pad [64]byte // avoid false sharing between workers
}

// SetWorkers enables parallel stepping across n goroutines (1 or 0
// restores sequential mode). Call after Finalize. Results are identical to
// sequential stepping; speedups appear on systems with thousands of nodes.
func (net *Network) SetWorkers(n int) {
	if n <= 1 {
		net.par = nil
		net.rebuildWake()
		return
	}
	if net.Tracer != nil {
		panic("network: parallel stepping does not support a Tracer (events would race); detach it first")
	}
	p := &parallelState{workers: n}
	p.scratch = make([]workerScratch, n)
	p.fwdWake = make([][]int32, n)
	p.crWake = make([][]int32, n)
	// Contiguous shard ranges: neighboring nodes share cache lines and most
	// links stay within one worker's shard, which matters far more than
	// perfect balance. Boundaries round to multiples of 64 so each wake
	// bitmap word belongs to exactly one shard; on tiny networks early
	// shards may come up empty, which only costs idle workers.
	total := len(net.Nodes)
	p.bounds = make([]int, n+1)
	p.bounds[n] = total
	alignedMax := total &^ 63 // interior bounds stay aligned: never clamp to an unaligned total
	for w := 1; w < n; w++ {
		b := (w*total/n + 32) &^ 63
		if b > alignedMax {
			b = alignedMax
		}
		if b < p.bounds[w-1] {
			b = p.bounds[w-1]
		}
		p.bounds[w] = b
	}
	nodeShard := make([]int32, total)
	for i, w := 0, 0; i < total; i++ {
		for w+1 < n && i >= p.bounds[w+1] {
			w++
		}
		nodeShard[i] = int32(w)
	}
	p.linkDstShard = make([]int32, len(net.Links))
	p.linkSrcShard = make([]int32, len(net.Links))
	p.deliverFns = make([]func(Flit), len(net.Links))
	for i, l := range net.Links {
		d := nodeShard[l.Dst]
		p.linkDstShard[i] = d
		p.linkSrcShard[i] = nodeShard[l.Src]
		dst := net.Nodes[l.Dst]
		port := l.DstPort
		sc := &p.scratch[d]
		wi, bit := uint(l.Dst)>>6, uint64(1)<<(uint(l.Dst)&63)
		p.deliverFns[i] = func(f Flit) {
			dst.deliver(port, f)
			net.nodeWake[wi] |= bit
			sc.moved++
		}
	}
	net.par = p
	net.rebuildWake()
}

// stepParallel is Step's parallel twin.
func (net *Network) stepParallel() {
	p := net.par
	net.moved = 0

	// Phase 1: link deliveries (sharded by destination router — they write
	// that router's buffers and wake bits) fused with credit completions
	// (sharded by source router — they write that router's credit
	// counters). The two halves touch disjoint Link fields (forward pipe
	// and fwdQueued vs credit pipe and crQueued), so one barrier covers
	// both.
	p.run(func(w int) {
		if lw := p.fwdWake[w]; len(lw) > 0 {
			sc := &p.scratch[w]
			keep := lw[:0]
			for _, li := range lw {
				l := net.Links[li]
				net.linkArrivals(l, p.deliverFns[li], &sc.moved)
				if l.fwdBusy() {
					keep = append(keep, li)
				} else {
					l.fwdQueued = false
				}
			}
			p.fwdWake[w] = keep
		}
		if lw := p.crWake[w]; len(lw) > 0 {
			keep := lw[:0]
			for _, li := range lw {
				l := net.Links[li]
				l.creditArrivalsRun(net.creditFns[li])
				if l.creditsInFlight > 0 {
					keep = append(keep, li)
				} else {
					l.crQueued = false
				}
			}
			p.crWake[w] = keep
		}
	})

	// Phase 2: router pipelines fused with injection — both only touch the
	// shard's own routers and wake words, and injected flits are not
	// observable elsewhere until the next cycle's link phase. The router
	// work bitmaps (allocPend/saActive/saReady) and the parking state
	// (vaParked, OutPort.parked/waitSlot) follow the same ownership
	// discipline: deliveries mark pending slots on the destination shard in
	// phase 1, credit completions unpark at the source router in phase 1,
	// and ticks/injection touch only the shard's own routers here — no word
	// is written from two shards within a phase.
	p.run(func(w int) {
		sc := &p.scratch[w]
		ctx := tickContext{net: net, scratch: sc, reference: net.refTick}
		wlo, whi := p.bounds[w]>>6, (p.bounds[w+1]+63)>>6
		net.tickNodes(&ctx, wlo, whi)
		net.injectNodes(sc, wlo, whi)
	})

	// Merge scratch, run sinks and distribute woken links in deterministic
	// (shard) order.
	for w := range p.scratch {
		net.mergeScratch(&p.scratch[w], false)
	}

	net.watchdog()
	net.Now++
}

// run executes fn(worker) on every worker and waits.
func (p *parallelState) run(fn func(worker int)) {
	p.wg.Add(p.workers - 1)
	for w := 1; w < p.workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	p.wg.Wait()
}
