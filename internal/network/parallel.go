package network

import "sync"

// Parallel stepping. The synchronous two-phase cycle model makes the
// engine embarrassingly parallel *within* each phase once writes are
// grouped by owner:
//
//   - link delivery writes only the destination router (group links by Dst);
//   - credit completion writes only the source router (group links by Src);
//   - a router tick writes its own state, the links it sources (Accept),
//     the links it sinks (ReturnCredit) and the packets at its VC heads —
//     all owned by exactly one router;
//   - injection writes only the node's own source queue and buffers.
//
// Shared aggregates (movement counters, grant/VA statistics, finished
// packets) are accumulated per worker and merged at the barrier, and the
// Sink/Tracer callbacks run on the coordinating goroutine, so results are
// bit-identical to sequential stepping regardless of worker count — see
// TestParallelMatchesSequential.
type parallelState struct {
	workers int
	wg      sync.WaitGroup

	linksByDst [][]int // link indices grouped by destination-router shard
	linksBySrc [][]int // link indices grouped by source-router shard
	nodeShards [][]int // node indices per shard

	scratch []workerScratch
}

type workerScratch struct {
	moved        uint64
	flitsIn      int64
	flitsOut     int64
	pktsIn       int64
	pktsOut      int64
	grantsByKind [8]uint64
	vaFailures   uint64
	finished     []*Packet

	_pad [64]byte // avoid false sharing between workers
}

// SetWorkers enables parallel stepping across n goroutines (1 or 0
// restores sequential mode). Call after Finalize. Results are identical to
// sequential stepping; speedups appear on systems with thousands of nodes.
func (net *Network) SetWorkers(n int) {
	if n <= 1 {
		net.par = nil
		return
	}
	if net.Tracer != nil {
		panic("network: parallel stepping does not support a Tracer (events would race); detach it first")
	}
	p := &parallelState{workers: n}
	p.linksByDst = make([][]int, n)
	p.linksBySrc = make([][]int, n)
	p.nodeShards = make([][]int, n)
	p.scratch = make([]workerScratch, n)
	// Contiguous shard ranges: neighboring nodes share cache lines and most
	// links stay within one worker's shard, which matters far more than
	// perfect balance.
	total := len(net.Nodes)
	shardOf := func(node NodeID) int { return int(node) * n / total }
	for i, l := range net.Links {
		d := shardOf(l.Dst)
		s := shardOf(l.Src)
		p.linksByDst[d] = append(p.linksByDst[d], i)
		p.linksBySrc[s] = append(p.linksBySrc[s], i)
	}
	for i := range net.Nodes {
		sh := shardOf(NodeID(i))
		p.nodeShards[sh] = append(p.nodeShards[sh], i)
	}
	net.par = p
}

// stepParallel is Step's parallel twin.
func (net *Network) stepParallel() {
	p := net.par
	net.moved = 0

	// Phase 1: link deliveries (sharded by destination router — they write
	// that router's buffers) fused with credit completions (sharded by
	// source router — they write that router's credit counters). The two
	// halves touch disjoint Link fields (forward pipe vs credit pipe), so
	// one barrier covers both.
	p.run(func(w int) {
		sc := &p.scratch[w]
		for _, li := range p.linksByDst[w] {
			l := net.Links[li]
			if l.Adapter == nil && l.inFlight == 0 {
				if l.accepted > 0 {
					l.accepted = 0
				}
				continue
			}
			dst := net.Nodes[l.Dst]
			port := l.DstPort
			l.Arrivals(net.Now, func(f Flit) {
				dst.deliver(port, f)
				sc.moved++
			})
		}
		for _, li := range p.linksBySrc[w] {
			l := net.Links[li]
			if l.creditsInFlight == 0 {
				continue
			}
			out := net.Nodes[l.Src].Out[l.SrcPort]
			l.CreditArrivals(func(vc VCID) { out.Credits[vc]++ })
		}
	})

	// Phase 2: router pipelines fused with injection — both only write the
	// shard's own routers, and injected flits are not observable elsewhere
	// until the next cycle's link phase.
	p.run(func(w int) {
		sc := &p.scratch[w]
		ctx := tickContext{net: net, scratch: sc}
		for _, ni := range p.nodeShards[w] {
			net.Nodes[ni].tickCtx(&ctx)
		}
		for _, ni := range p.nodeShards[w] {
			net.injectNode(ni, sc)
		}
	})

	// Merge scratch and run sinks in deterministic (shard) order.
	for w := range p.scratch {
		net.mergeScratch(&p.scratch[w], false)
	}

	net.watchdog()
	net.Now++
}

// run executes fn(worker) on every worker and waits.
func (p *parallelState) run(fn func(worker int)) {
	p.wg.Add(p.workers - 1)
	for w := 1; w < p.workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	p.wg.Wait()
}
