package network

import (
	"math/bits"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
)

// Parallel stepping. The synchronous two-phase cycle model makes the
// engine embarrassingly parallel *within* each phase once writes are
// grouped by owner:
//
//   - link delivery writes only the destination router (links sharded by Dst);
//   - credit completion writes only the source router (links sharded by Src);
//   - a router tick writes its own state, the links it sources (Accept),
//     the links it sinks (ReturnCredit) and the packets at its VC heads —
//     all owned by exactly one router;
//   - injection writes only the node's own source queue and buffers.
//
// Shards are contiguous node ranges chosen by a weight-balancing
// partitioner that prefers to cut along chiplet boundaries
// (Network.SetShardCuts, fed by topology.Topo.ShardCuts): cross-shard
// traffic then rides the modeled D2D interface links instead of
// intra-chiplet mesh hops, and the wake words interior to a chiplet row
// keep a single owner. Boundaries are no longer forced to multiples of 64:
// a nodeWake/srcWake bitmap word crossed by a shard boundary is marked in
// sharedWords and accessed with atomic Or/And/Load; all other words keep
// the plain single-owner fast path. Shard sizes follow live load — at
// every quiescence boundary (RunWith/Drain fast-forward points) the
// partitioner re-weights nodes by the source-queue wake population, so an
// idle chiplet doesn't pin a worker while another drowns.
//
// Work is executed by persistent worker goroutines parked on per-worker
// command channels; the two phase closures are bound once in SetWorkers,
// so dispatching a step performs no allocation. When the process has only
// one usable CPU (GOMAXPROCS or NumCPU of 1) the shards run inline on the
// coordinating goroutine instead — same shard structure and results,
// none of the cross-goroutine overhead.
//
// Links woken by a router tick (Accept/ReturnCredit on a possibly
// foreign-shard link) are recorded in the worker's private scratch and
// folded into the owning shard's wake list by the coordinator at the merge
// barrier. Shared aggregates (movement counters, grant/VA statistics,
// finished packets) are accumulated per worker and merged at the barrier,
// and the Sink/Tracer callbacks run on the coordinating goroutine, so
// results are bit-identical to sequential stepping regardless of worker
// count or shard placement — see TestParallelMatchesSequential and
// experiments.TestParallelOracle.
type parallelState struct {
	workers int
	// single runs every shard inline on the coordinator when the process
	// has one usable CPU: identical shard semantics, zero dispatch cost.
	single bool

	// bounds[w]..bounds[w+1] is shard w's node range (arbitrary positions;
	// see sharedWords).
	bounds    []int
	newBounds []int   // partition scratch
	prefix    []int64 // partition scratch: prefix[i] = weight of nodes [0,i)
	weights   []int32 // rebalance scratch

	nodeShard    []int32 // owning shard of each node
	linkDstShard []int32 // owning shard of each link's forward wake entry
	linkSrcShard []int32 // owning shard of each link's credit wake entry

	// sharedWords is a bitmap over nodeWake/srcWake *word* indices: a set
	// bit marks a word crossed by a shard boundary, which must be accessed
	// atomically. Empty in single mode.
	sharedWords []uint64

	fwdWake [][]int32 // per dst-shard links with non-empty forward pipelines
	crWake  [][]int32 // per src-shard links with credits in flight
	tmp     []int32   // refit scratch for re-homing wake entries

	// deliverFns are the per-link delivery closures, the parallel twin of
	// Network.deliverFns. They resolve the owning shard's scratch through
	// linkDstShard at call time, so rebalancing never rebuilds closures.
	deliverFns []func(Flit)

	scratch []workerScratch

	// phase1Fn/phase2Fn are bound once; dispatch sends these prebuilt
	// values so a step allocates nothing.
	phase1Fn func(int)
	phase2Fn func(int)
	cmd      []chan func(int)
	ack      []chan struct{}
	stopped  bool
}

type workerScratch struct {
	moved        uint64
	flitsIn      int64
	flitsOut     int64
	pktsIn       int64
	pktsOut      int64
	grantsByKind [8]uint64
	vaFailures   uint64
	finished     []*Packet
	wokeFwd      []int32 // links whose forward pipeline went busy this tick
	wokeCr       []int32 // links whose credit pipeline went busy this tick

	_pad [64]byte // avoid false sharing between workers
}

// srcWakeWeight is the extra partition weight of a node whose source queue
// holds work: loaded regions get proportionally smaller shards.
const srcWakeWeight = 8

// SetShardCuts declares preferred shard boundary positions, normally the
// chiplet-row starts from topology.Topo.ShardCuts. The partitioner snaps a
// balanced cut to the nearest preferred position within its imbalance
// slack, keeping cross-shard traffic on the modeled D2D interface links.
// Out-of-range positions are dropped. May be called before or after
// SetWorkers; an active sharding is re-cut immediately.
func (net *Network) SetShardCuts(cuts []int) {
	net.shardCuts = net.shardCuts[:0]
	total := len(net.Nodes)
	for _, c := range cuts {
		if c > 0 && c < total {
			net.shardCuts = append(net.shardCuts, c)
		}
	}
	sort.Ints(net.shardCuts)
	if p := net.par; p != nil {
		if p.partition(net, nil) {
			p.refit(net)
		}
	}
}

// SetWorkers enables parallel stepping across n goroutines (1 or 0
// restores sequential mode). Call after Finalize. Results are identical to
// sequential stepping; speedups appear on saturated systems from a few
// hundred nodes up, provided the process has the CPUs (on a single-CPU
// process the shards run inline and parallel mode merely matches
// sequential throughput).
func (net *Network) SetWorkers(n int) {
	if net.par != nil {
		net.par.stopWorkers()
		net.par = nil
	}
	if n <= 1 {
		net.rebuildWake()
		return
	}
	if net.Tracer != nil {
		panic("network: parallel stepping does not support a Tracer (events would race); detach it first")
	}
	total := len(net.Nodes)
	words := (total + 63) / 64
	p := &parallelState{workers: n, single: effectiveParallelism() < 2 && !forceWorkerDispatch}
	p.bounds = make([]int, n+1)
	p.newBounds = make([]int, n+1)
	p.nodeShard = make([]int32, total)
	p.linkDstShard = make([]int32, len(net.Links))
	p.linkSrcShard = make([]int32, len(net.Links))
	p.sharedWords = make([]uint64, (words+63)/64)
	p.scratch = make([]workerScratch, n)
	p.fwdWake = make([][]int32, n)
	p.crWake = make([][]int32, n)
	p.partition(net, nil)
	p.refit(net)
	p.bindDeliverFns(net)
	p.phase1Fn = func(w int) { net.parPhase1(w) }
	p.phase2Fn = func(w int) { net.parPhase2(w) }
	if !p.single {
		p.startWorkers()
		// Workers capture only their channels, so an abandoned Network
		// stays collectable and the finalizer releases its goroutines.
		runtime.SetFinalizer(p, (*parallelState).stopWorkers)
	}
	net.par = p
	net.rebuildWake()
}

// forceWorkerDispatch makes SetWorkers use real worker goroutines even on
// a single-CPU process. Tests set it (and CI's race job exports
// HETEROIF_FORCE_PARALLEL=1) so the dispatch and shared-word paths run
// under the race detector regardless of the host's CPU count.
var forceWorkerDispatch = os.Getenv("HETEROIF_FORCE_PARALLEL") != ""

// effectiveParallelism is the number of shards that can actually execute
// concurrently.
func effectiveParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	return n
}

// partition recomputes shard bounds balancing per-node weights (nil means
// uniform), snapping each cut to a preferred chiplet boundary — or
// failing that a 64-aligned position — when one lies within the balance
// slack. Reports whether the bounds changed; the caller must refit then.
func (p *parallelState) partition(net *Network, weights []int32) bool {
	total := len(net.Nodes)
	n := p.workers
	if p.prefix == nil {
		p.prefix = make([]int64, total+1)
	}
	var sum int64
	for i := 0; i < total; i++ {
		p.prefix[i] = sum
		if weights != nil {
			sum += int64(weights[i])
		} else {
			sum++
		}
	}
	p.prefix[total] = sum
	nb := p.newBounds
	nb[0], nb[n] = 0, total
	// A cut may drift from its balanced position by a quarter of an ideal
	// shard before we stop snapping to preferred boundaries.
	slack := sum/(4*int64(n)) + 1
	for w := 1; w < n; w++ {
		b := p.cutNear(net, sum*int64(w)/int64(n), slack)
		if b < nb[w-1] {
			b = nb[w-1]
		}
		if b > total {
			b = total
		}
		nb[w] = b
	}
	changed := false
	for i := 0; i <= n; i++ {
		if nb[i] != p.bounds[i] {
			changed = true
			break
		}
	}
	if changed {
		copy(p.bounds, nb)
	}
	return changed
}

// cutNear picks the cut position for target prefix weight t: the nearest
// preferred cut within slack, else the nearest 64-aligned position within
// slack (keeping the wake word single-owner), else the exact balanced
// position.
func (p *parallelState) cutNear(net *Network, t, slack int64) int {
	total := len(net.Nodes)
	pos := sort.Search(total+1, func(i int) bool { return p.prefix[i] >= t })
	best, bestD := -1, slack+1
	try := func(c int) {
		if c < 0 || c > total {
			return
		}
		if d := abs64(p.prefix[c] - t); d < bestD {
			best, bestD = c, d
		}
	}
	if cuts := net.shardCuts; len(cuts) > 0 {
		ci := sort.SearchInts(cuts, pos)
		if ci < len(cuts) {
			try(cuts[ci])
		}
		if ci > 0 {
			try(cuts[ci-1])
		}
		if best >= 0 {
			return best
		}
	}
	try(pos &^ 63)
	try((pos + 63) &^ 63)
	if best >= 0 {
		return best
	}
	return pos
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// refit rebuilds everything derived from bounds: node→shard and
// link→shard maps, the shared-word bitmap, and the homes of any queued
// wake-list entries. Wake membership itself is unchanged — repartitioning
// never touches simulation state, only ownership.
func (p *parallelState) refit(net *Network) {
	total := len(net.Nodes)
	n := p.workers
	for i, w := 0, 0; i < total; i++ {
		for w+1 < n && i >= p.bounds[w+1] {
			w++
		}
		p.nodeShard[i] = int32(w)
	}
	for i := range p.sharedWords {
		p.sharedWords[i] = 0
	}
	if !p.single {
		// A boundary interior to a 64-node word makes that word visible to
		// two shards; inline (single) execution needs no atomics.
		for w := 1; w < n; w++ {
			if b := p.bounds[w]; b&63 != 0 && b < total {
				wi := uint(b) >> 6
				p.sharedWords[wi>>6] |= 1 << (wi & 63)
			}
		}
	}
	for i, l := range net.Links {
		p.linkDstShard[i] = p.nodeShard[l.Dst]
		p.linkSrcShard[i] = p.nodeShard[l.Src]
	}
	// Re-home queued wake entries (only non-empty when cuts move while
	// link pipelines hold work, e.g. SetShardCuts mid-run).
	p.tmp = p.tmp[:0]
	for w := range p.fwdWake {
		p.tmp = append(p.tmp, p.fwdWake[w]...)
		p.fwdWake[w] = p.fwdWake[w][:0]
	}
	for _, li := range p.tmp {
		d := p.linkDstShard[li]
		p.fwdWake[d] = append(p.fwdWake[d], li)
	}
	p.tmp = p.tmp[:0]
	for w := range p.crWake {
		p.tmp = append(p.tmp, p.crWake[w]...)
		p.crWake[w] = p.crWake[w][:0]
	}
	for _, li := range p.tmp {
		s := p.linkSrcShard[li]
		p.crWake[s] = append(p.crWake[s], li)
	}
}

// bindDeliverFns builds the per-link delivery closures once. The closures
// look the owning scratch up through linkDstShard at call time, so
// rebalancing needs no rebinding.
func (p *parallelState) bindDeliverFns(net *Network) {
	p.deliverFns = make([]func(Flit), len(net.Links))
	for i, l := range net.Links {
		dst := net.Nodes[l.Dst]
		port := l.DstPort
		wi, bit := uint(l.Dst)>>6, uint64(1)<<(uint(l.Dst)&63)
		li := int32(i)
		p.deliverFns[i] = func(f Flit) {
			dst.deliver(port, f)
			if p.isShared(wi) {
				atomic.OrUint64(&net.nodeWake[wi], bit)
			} else {
				net.nodeWake[wi] |= bit
			}
			p.scratch[p.linkDstShard[li]].moved++
		}
	}
}

// isShared reports whether wake word wi is crossed by a shard boundary
// and therefore needs atomic access.
func (p *parallelState) isShared(wi uint) bool {
	return p.sharedWords[wi>>6]>>(wi&63)&1 != 0
}

// maybeRebalance re-weights the partition from the live wake population.
// Called only at quiescence boundaries (net.idle()): no flits are
// buffered or in flight, so nodeWake is empty and the source-queue wake
// bitmap is the only live load signal.
func (p *parallelState) maybeRebalance(net *Network) {
	total := len(net.Nodes)
	if p.weights == nil {
		p.weights = make([]int32, total)
	}
	any := false
	for i := 0; i < total; i++ {
		w := int32(1)
		if net.srcWake[uint(i)>>6]>>(uint(i)&63)&1 != 0 {
			w += srcWakeWeight
			any = true
		}
		p.weights[i] = w
	}
	ws := p.weights
	if !any {
		ws = nil
	}
	if p.partition(net, ws) {
		p.refit(net)
	}
}

// startWorkers launches the persistent worker goroutines, parked on their
// command channels between steps.
func (p *parallelState) startWorkers() {
	p.cmd = make([]chan func(int), p.workers)
	p.ack = make([]chan struct{}, p.workers)
	for w := 1; w < p.workers; w++ {
		cmd := make(chan func(int), 1)
		ack := make(chan struct{}, 1)
		p.cmd[w], p.ack[w] = cmd, ack
		go parallelWorker(w, cmd, ack)
	}
}

// parallelWorker is deliberately a top-level function capturing nothing
// but its channels, so an abandoned Network (and its parallelState) stays
// collectable; the state's finalizer closes cmd and releases the
// goroutine.
func parallelWorker(w int, cmd <-chan func(int), ack chan<- struct{}) {
	for fn := range cmd {
		fn(w)
		ack <- struct{}{}
	}
}

// dispatch runs fn(worker) on every worker and waits. The channel
// send/receive pairs provide the happens-before edges that publish one
// phase's writes to every shard before the next phase reads them.
func (p *parallelState) dispatch(fn func(int)) {
	for w := 1; w < p.workers; w++ {
		p.cmd[w] <- fn
	}
	fn(0)
	for w := 1; w < p.workers; w++ {
		<-p.ack[w]
	}
}

// stopWorkers releases the worker goroutines. SetWorkers calls it when
// re-sharding or restoring sequential mode; a finalizer covers abandoned
// networks.
func (p *parallelState) stopWorkers() {
	if p.stopped {
		return
	}
	p.stopped = true
	for w := 1; w < len(p.cmd); w++ {
		close(p.cmd[w])
	}
}

// stepParallel is Step's parallel twin.
func (net *Network) stepParallel() {
	p := net.par
	net.moved = 0
	if p.single {
		for w := 0; w < p.workers; w++ {
			net.parPhase1(w)
		}
		for w := 0; w < p.workers; w++ {
			net.parPhase2(w)
		}
	} else {
		p.dispatch(p.phase1Fn)
		p.dispatch(p.phase2Fn)
	}

	// Merge scratch, run sinks and distribute woken links in deterministic
	// (shard) order.
	for w := range p.scratch {
		net.mergeScratch(&p.scratch[w], false)
	}

	net.watchdog()
	net.Now++
}

// parPhase1 runs one shard's link deliveries (sharded by destination
// router — they write that router's buffers and wake bits) fused with
// credit completions (sharded by source router — they write that router's
// credit counters). The two halves touch disjoint Link fields (forward
// pipe and fwdQueued vs credit pipe and crQueued), so one barrier covers
// both.
func (net *Network) parPhase1(w int) {
	p := net.par
	if lw := p.fwdWake[w]; len(lw) > 0 {
		sc := &p.scratch[w]
		// Inline (single-CPU) mode runs every shard on the coordinator, so
		// the cheaper sequential per-flit closures are safe — the parallel
		// twins pay a per-flit shard lookup only real workers need.
		fns := p.deliverFns
		if p.single {
			fns = net.deliverFns
		}
		keep := lw[:0]
		for _, li := range lw {
			l := net.Links[li]
			net.linkArrivals(l, fns[li], &sc.moved, p.isShared(uint(l.Dst)>>6))
			if l.fwdBusy() {
				keep = append(keep, li)
			} else {
				l.fwdQueued = false
			}
		}
		p.fwdWake[w] = keep
	}
	if lw := p.crWake[w]; len(lw) > 0 {
		keep := lw[:0]
		for _, li := range lw {
			l := net.Links[li]
			l.creditArrivals()
			if l.creditsInFlight > 0 {
				keep = append(keep, li)
			} else {
				l.crQueued = false
			}
		}
		p.crWake[w] = keep
	}
}

// parPhase2 runs one shard's router pipelines fused with injection — both
// only touch the shard's own routers and wake bits, and injected flits
// are not observable elsewhere until the next cycle's link phase. The
// router work bitmaps (allocPend/saActive/saReady) and the parking state
// (vaParked, OutPort.parked/waitSlot) follow the same ownership
// discipline: deliveries mark pending slots on the destination shard in
// phase 1, credit completions unpark at the source router in phase 1, and
// ticks/injection touch only the shard's own routers here. Wake words
// crossed by a shard boundary are the one exception, handled with atomic
// Or/And — other shards only ever touch *their* bits of such a word.
func (net *Network) parPhase2(w int) {
	p := net.par
	lo, hi := p.bounds[w], p.bounds[w+1]
	if lo >= hi {
		return
	}
	sc := &p.scratch[w]
	ctx := tickContext{net: net, scratch: sc, reference: net.refTick}
	net.tickNodeRange(&ctx, lo, hi)
	net.injectNodeRange(sc, lo, hi)
}

// tickNodeRange runs Phase 2 for the routers woken in nodes [lo, hi), in
// ascending node order, clearing the bit of any router that drained
// completely. The parallel twin of tickNodes: ranges are node positions,
// not word positions, with boundary words masked and accessed atomically
// when shared.
func (net *Network) tickNodeRange(ctx *tickContext, lo, hi int) {
	p := net.par
	for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
		shared := p.isShared(uint(wi))
		var w uint64
		if shared {
			w = atomic.LoadUint64(&net.nodeWake[wi])
		} else {
			w = net.nodeWake[wi]
		}
		w &= shardWordMask(wi, lo, hi)
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			r := net.Nodes[wi<<6+b]
			r.tickCtx(ctx)
			if r.buffered == 0 {
				if shared {
					atomic.AndUint64(&net.nodeWake[wi], ^(uint64(1) << uint(b)))
				} else {
					net.nodeWake[wi] &^= 1 << uint(b)
				}
			}
		}
	}
}

// injectNodeRange runs Phase 3 for the sources woken in nodes [lo, hi),
// the parallel twin of injectNodes.
func (net *Network) injectNodeRange(sc *workerScratch, lo, hi int) {
	p := net.par
	for wi := lo >> 6; wi < (hi+63)>>6; wi++ {
		shared := p.isShared(uint(wi))
		var w uint64
		if shared {
			w = atomic.LoadUint64(&net.srcWake[wi])
		} else {
			w = net.srcWake[wi]
		}
		w &= shardWordMask(wi, lo, hi)
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			ni := wi<<6 + b
			net.injectNode(ni, sc, shared)
			s := &net.sources[ni]
			if s.cur == nil && s.head == len(s.q) {
				if shared {
					atomic.AndUint64(&net.srcWake[wi], ^(uint64(1) << uint(b)))
				} else {
					net.srcWake[wi] &^= 1 << uint(b)
				}
			}
		}
	}
}

// shardWordMask masks word wi down to the bits whose node indices lie in
// [lo, hi).
func shardWordMask(wi, lo, hi int) uint64 {
	m := ^uint64(0)
	base := wi << 6
	if d := lo - base; d > 0 {
		m &= ^uint64(0) << uint(d)
	}
	if d := hi - base; d < 64 {
		m &= uint64(1)<<uint(d) - 1
	}
	return m
}
