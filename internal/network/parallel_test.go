package network

import "testing"

// TestParallelMatchesSequential: the parallel stepper must be bit-identical
// to sequential stepping — same deliveries, same latencies, same counters.
func TestParallelMatchesSequential(t *testing.T) {
	build := func(workers int) (*Network, map[uint64]int64) {
		cfg := DefaultConfig()
		cfg.CheckInvariants = true
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A ring of 12 nodes with mixed link kinds.
		const n = 12
		net.AddNodes(n)
		for i := 0; i < n; i++ {
			kind := KindOnChip
			if i%3 == 1 {
				kind = KindParallel
			} else if i%3 == 2 {
				kind = KindSerial
			}
			net.Connect(kind, NodeID(i), NodeID((i+1)%n))
		}
		net.Routing = ringRouting{}
		net.Finalize()
		if workers > 1 {
			net.SetWorkers(workers)
		}
		arrivals := map[uint64]int64{}
		net.Sink = func(p *Packet) { arrivals[p.ID] = p.ArrivedAt }
		// Deterministic traffic: every node sends to (i+5)%n periodically.
		drive := func(now int64) {
			if now%7 != 0 || now > 600 {
				return
			}
			for i := 0; i < n; i++ {
				pkt := net.NewPacket(NodeID(i), NodeID((i+5)%n), 8, now)
				net.Offer(pkt)
			}
		}
		if err := net.Run(1500, drive); err != nil {
			t.Fatal(err)
		}
		return net, arrivals
	}

	seqNet, seqArr := build(1)
	parNet, parArr := build(4)

	if len(seqArr) == 0 {
		t.Fatal("no traffic delivered")
	}
	if len(seqArr) != len(parArr) {
		t.Fatalf("deliveries differ: %d sequential vs %d parallel", len(seqArr), len(parArr))
	}
	for id, at := range seqArr {
		if parArr[id] != at {
			t.Fatalf("packet %d arrived at %d sequentially but %d in parallel", id, at, parArr[id])
		}
	}
	if seqNet.PacketsDelivered() != parNet.PacketsDelivered() ||
		seqNet.InFlightFlits() != parNet.InFlightFlits() {
		t.Fatal("network counters diverge between modes")
	}
	if err := parNet.CheckCredits(); err != nil {
		t.Fatal(err)
	}
}

// ringRouting forwards clockwise around the ring.
type ringRouting struct{}

func (ringRouting) Name() string { return "ring" }
func (ringRouting) Route(net *Network, r *Router, _ int, pkt *Packet, buf []Candidate) []Candidate {
	for i := 1; i < len(r.Out); i++ {
		if r.Out[i].Link != nil {
			return append(buf, Candidate{Port: i, VCMask: allVCs(net.Cfg.VCs), Escape: true})
		}
	}
	panic("ring: no out port")
}

// rowCuts lists the mesh-row starts of a side×side mesh, standing in for
// the chiplet-row cut points topology.Topo.ShardCuts produces.
func rowCuts(side int) []int {
	var cuts []int
	for b := side; b < side*side; b += side {
		cuts = append(cuts, b)
	}
	return cuts
}

// runSaturatedMesh drives a saturated side×side mesh for the given cycles
// and returns the network plus per-packet arrival times.
func runSaturatedMesh(t *testing.T, side, workers int, cuts []int, cycles int64) (*Network, map[uint64]int64) {
	t.Helper()
	net := buildXYMesh(t, side, true)
	if cuts != nil {
		net.SetShardCuts(cuts)
	}
	if workers > 1 {
		net.SetWorkers(workers)
	}
	arr := map[uint64]int64{}
	net.Sink = func(p *Packet) { arr[p.ID] = p.ArrivedAt }
	for net.Now < cycles {
		saturateXYMesh(net, net.Now)
		net.Step()
	}
	if err := net.CheckCredits(); err != nil {
		t.Fatalf("side=%d workers=%d: %v", side, workers, err)
	}
	return net, arr
}

// TestParallelSubWordShards: with chiplet-row cuts a 64-node mesh splits
// mid-word (no more empty second shard), the boundary wake word goes
// through the atomic shared-word path, and results stay bit-identical to
// sequential stepping. forceWorkerDispatch makes the real goroutine
// dispatch run even on a single-CPU host, so `go test -race` checks the
// cross-shard happens-before edges here.
func TestParallelSubWordShards(t *testing.T) {
	defer func(old bool) { forceWorkerDispatch = old }(forceWorkerDispatch)
	forceWorkerDispatch = true

	const side, cycles = 8, 800
	seqNet, want := runSaturatedMesh(t, side, 1, nil, cycles)
	if len(want) == 0 {
		t.Fatal("no traffic delivered")
	}
	for _, workers := range []int{2, 3, 5} {
		net, got := runSaturatedMesh(t, side, workers, rowCuts(side), cycles)
		p := net.par
		if p.single {
			t.Fatalf("workers=%d: forced dispatch did not take effect", workers)
		}
		if workers == 2 && p.bounds[1] != 32 {
			t.Errorf("workers=2: bounds=%v, want the 64-node mesh cut at row 4 (node 32)", p.bounds)
		}
		shared := false
		for _, w := range p.sharedWords {
			shared = shared || w != 0
		}
		if !shared {
			t.Errorf("workers=%d: sub-word bounds %v left no shared wake word", workers, p.bounds)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d deliveries vs %d sequential", workers, len(got), len(want))
		}
		for id, at := range want {
			if got[id] != at {
				t.Fatalf("workers=%d: packet %d arrived at %d, sequential %d", workers, id, got[id], at)
			}
		}
		if net.VAFailures != seqNet.VAFailures || net.GrantsByKind != seqNet.GrantsByKind {
			t.Errorf("workers=%d: allocation counters diverge from sequential", workers)
		}
	}
}

// TestShardCutsSnap: the partitioner prefers a declared cut within its
// balance slack over the 64-aligned fallback, and rejects one outside it.
func TestShardCutsSnap(t *testing.T) {
	net := buildXYMesh(t, 16, false) // 256 nodes
	net.SetShardCuts([]int{120})
	net.SetWorkers(2)
	if got := net.par.bounds[1]; got != 120 {
		t.Errorf("cut at 120 within slack not taken: bounds[1]=%d", got)
	}
	net.SetShardCuts([]int{8}) // hopelessly unbalanced: fall back to 64-aligned
	if got := net.par.bounds[1]; got != 128 {
		t.Errorf("want 64-aligned fallback cut 128, got %d", got)
	}
	net.SetWorkers(0)
}

// TestParallelRebalanceAtQuiescence: when only the top mesh rows hold
// queued work, the quiescence rebalance shifts the cut so the loaded
// region gets a smaller shard, then reverts once the load drains — and a
// skewed-load run stays bit-identical to sequential stepping throughout.
func TestParallelRebalanceAtQuiescence(t *testing.T) {
	skewed := func(net *Network) {
		// Nodes 48..63 exchange bursts starting at cycle 50; the rest idle.
		for src := 48; src < 64; src++ {
			for k := 0; k < 8; k++ {
				dst := 48 + (src-48+k+1)%16
				net.Offer(net.NewPacket(NodeID(src), NodeID(dst), 4, int64(50+29*k)))
			}
		}
	}

	net := buildXYMesh(t, 8, false)
	net.SetShardCuts(rowCuts(8))
	net.SetWorkers(2)
	p := net.par
	if p.bounds[1] != 32 {
		t.Fatalf("initial bounds %v, want cut at 32", p.bounds)
	}
	skewed(net)
	p.maybeRebalance(net)
	if p.bounds[1] <= 32 {
		t.Errorf("rebalance kept bounds %v despite all load on nodes 48..63", p.bounds)
	}
	for i := range net.Nodes {
		want := int32(0)
		if i >= p.bounds[1] {
			want = 1
		}
		if p.nodeShard[i] != want {
			t.Fatalf("nodeShard[%d]=%d inconsistent with bounds %v", i, p.nodeShard[i], p.bounds)
		}
	}

	run := func(workers int) (map[uint64]int64, []int) {
		net := buildXYMesh(t, 8, true)
		net.SetShardCuts(rowCuts(8))
		if workers > 1 {
			net.SetWorkers(workers)
		}
		arr := map[uint64]int64{}
		net.Sink = func(p *Packet) { arr[p.ID] = p.ArrivedAt }
		skewed(net)
		if err := net.RunWith(800, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := net.CheckCredits(); err != nil {
			t.Fatal(err)
		}
		if workers > 1 {
			return arr, net.par.bounds
		}
		return arr, nil
	}
	want, _ := run(1)
	got, bounds := run(2)
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("deliveries differ: %d vs %d", len(got), len(want))
	}
	for id, at := range want {
		if got[id] != at {
			t.Fatalf("packet %d arrived at %d parallel, %d sequential", id, got[id], at)
		}
	}
	// After the drain the final quiescence rebalance sees uniform load and
	// restores the balanced chiplet cut.
	if bounds[1] != 32 {
		t.Errorf("post-drain bounds %v, want reverted cut at 32", bounds)
	}
}

// TestParallelStepSaturatedZeroAlloc: a saturated parallel step allocates
// nothing in steady state — the scratch merge, wake lists and worker
// dispatch all reuse preallocated storage.
func TestParallelStepSaturatedZeroAlloc(t *testing.T) {
	defer func(old bool) { forceWorkerDispatch = old }(forceWorkerDispatch)
	forceWorkerDispatch = true

	net := buildXYMesh(t, 8, false)
	net.PoolPackets = true
	net.SetShardCuts(rowCuts(8))
	net.SetWorkers(2)
	for net.Now < 3000 {
		saturateXYMesh(net, net.Now)
		net.Step()
	}
	avg := testing.AllocsPerRun(200, func() {
		saturateXYMesh(net, net.Now)
		net.Step()
	})
	if avg != 0 {
		t.Errorf("saturated parallel step allocates %.2f objects per cycle, want 0", avg)
	}
}

func TestSetWorkersRejectsTracer(t *testing.T) {
	net, _ := twoNodeNet(t, KindOnChip, nil)
	net.Tracer = &CollectorTracer{}
	defer func() {
		if recover() == nil {
			t.Error("SetWorkers accepted a tracer")
		}
	}()
	net.SetWorkers(4)
}
