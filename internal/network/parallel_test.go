package network

import "testing"

// TestParallelMatchesSequential: the parallel stepper must be bit-identical
// to sequential stepping — same deliveries, same latencies, same counters.
func TestParallelMatchesSequential(t *testing.T) {
	build := func(workers int) (*Network, map[uint64]int64) {
		cfg := DefaultConfig()
		cfg.CheckInvariants = true
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A ring of 12 nodes with mixed link kinds.
		const n = 12
		net.AddNodes(n)
		for i := 0; i < n; i++ {
			kind := KindOnChip
			if i%3 == 1 {
				kind = KindParallel
			} else if i%3 == 2 {
				kind = KindSerial
			}
			net.Connect(kind, NodeID(i), NodeID((i+1)%n))
		}
		net.Routing = ringRouting{}
		net.Finalize()
		if workers > 1 {
			net.SetWorkers(workers)
		}
		arrivals := map[uint64]int64{}
		net.Sink = func(p *Packet) { arrivals[p.ID] = p.ArrivedAt }
		// Deterministic traffic: every node sends to (i+5)%n periodically.
		drive := func(now int64) {
			if now%7 != 0 || now > 600 {
				return
			}
			for i := 0; i < n; i++ {
				pkt := net.NewPacket(NodeID(i), NodeID((i+5)%n), 8, now)
				net.Offer(pkt)
			}
		}
		if err := net.Run(1500, drive); err != nil {
			t.Fatal(err)
		}
		return net, arrivals
	}

	seqNet, seqArr := build(1)
	parNet, parArr := build(4)

	if len(seqArr) == 0 {
		t.Fatal("no traffic delivered")
	}
	if len(seqArr) != len(parArr) {
		t.Fatalf("deliveries differ: %d sequential vs %d parallel", len(seqArr), len(parArr))
	}
	for id, at := range seqArr {
		if parArr[id] != at {
			t.Fatalf("packet %d arrived at %d sequentially but %d in parallel", id, at, parArr[id])
		}
	}
	if seqNet.PacketsDelivered() != parNet.PacketsDelivered() ||
		seqNet.InFlightFlits() != parNet.InFlightFlits() {
		t.Fatal("network counters diverge between modes")
	}
	if err := parNet.CheckCredits(); err != nil {
		t.Fatal(err)
	}
}

// ringRouting forwards clockwise around the ring.
type ringRouting struct{}

func (ringRouting) Name() string { return "ring" }
func (ringRouting) Route(net *Network, r *Router, _ int, pkt *Packet, buf []Candidate) []Candidate {
	for i := 1; i < len(r.Out); i++ {
		if r.Out[i].Link != nil {
			return append(buf, Candidate{Port: i, VCMask: allVCs(net.Cfg.VCs), Escape: true})
		}
	}
	panic("ring: no out port")
}

func TestSetWorkersRejectsTracer(t *testing.T) {
	net, _ := twoNodeNet(t, KindOnChip, nil)
	net.Tracer = &CollectorTracer{}
	defer func() {
		if recover() == nil {
			t.Error("SetWorkers accepted a tracer")
		}
	}()
	net.SetWorkers(4)
}
