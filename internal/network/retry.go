package network

// This file implements the link-layer retry protocol (UCIe-style CRC +
// replay, Sec. 2.1's reliability gap between interface classes): a go-back-N
// reliable pipe that wraps a link's bandwidth×delay pipeline with a TX
// replay buffer, link sequence numbers, a cumulative ack/nack side channel
// and a retransmission timeout. internal/fault builds the error models that
// plug in via TxFault; a link without retry (retry == nil) runs the exact
// pre-existing pipeline code paths.
//
// Protocol invariants:
//
//   - Every accepted flit is delivered exactly once, in acceptance order:
//     the RX delivers only the flit whose link sequence number (lsn) equals
//     its expected counter and drops everything else, so in-order delivery
//     holds even across retransmissions, duplicates and wraparound of the
//     32-bit lsn space (equality is wrap-safe).
//   - Error-free timing is identical to the plain pipeline: a flit accepted
//     with wire budget left is transmitted the same cycle and arrives Delay
//     cycles later.
//   - A corrupted or lost flit is recovered by nack (RX saw the CRC fail or
//     an out-of-sequence arrival) or by the TX timeout (nothing arrived at
//     all, e.g. a dead wire); both rewind the send cursor to the oldest
//     unacknowledged entry — go-back-N.
//   - Retransmissions consume the same per-cycle wire bandwidth as first
//     transmissions and burn per-traversal energy each time.
//   - The replay window bounds acceptance: FreeSlots reaches zero when the
//     buffer is full, so upstream credit backpressure takes over and no
//     flit is ever dropped for lack of replay space.
type RetryPipe struct {
	bandwidth int
	delay     int
	window    int
	timeout   int64
	hook      TxFault
	pjPerFlit float64
	onChip    bool // energy bucket: on-chip vs interface

	// TX: replay buffer in lsn order. replay[i] holds lsn base+i; next is
	// the lsn the next accepted flit gets (== base+len(replay)); sendIdx is
	// the cursor of the next entry to (re)transmit.
	replay  []retryEntry
	base    uint32
	next    uint32
	sendIdx int

	sent     int // wire transmissions this cycle
	accepted int // new flits accepted this cycle

	// Forward wire: delay stages, bandwidth flits per stage.
	slots    [][]wireFlit
	head     int
	inFlight int

	// RX: next lsn to deliver downstream.
	expected uint32

	// Reverse ack channel, same delay as the wire. Like credit return it is
	// modeled without bandwidth limits (at most one coalesced message per
	// cycle is generated) and is unaffected by forward-path faults.
	ackSlots     [][]ackMsg
	ackHead      int
	acksInFlight int

	Stats RetryStats
}

type retryEntry struct {
	f      Flit
	enq    int64 // acceptance cycle (age telemetry)
	sentAt int64 // last transmission cycle, -1 before the first
}

type wireFlit struct {
	f   Flit
	lsn uint32
	bad bool // CRC check will fail at the RX
}

type ackMsg struct {
	ack  uint32 // cumulative: RX has delivered every lsn below this
	nack bool   // rewind and retransmit from ack
}

// TxFault injects transmission faults into a retry pipe. Implementations
// (internal/fault) must be pure functions of (their own private RNG stream,
// now): faults are evaluated per transmission event, never per cycle, so
// quiescence fast-forward cannot change outcomes.
type TxFault interface {
	// Corrupt reports whether this transmission arrives with a failing CRC.
	Corrupt(now int64) bool
	// Down reports whether the wire is dead this cycle; a transmission
	// attempted while down is lost entirely (no arrival, no CRC event).
	Down(now int64) bool
}

// RetryStats counts protocol events on one reliable pipe.
type RetryStats struct {
	Transmits   uint64 // wire transmissions, including retransmissions
	Retransmits uint64 // transmissions of an entry already sent before
	Delivered   uint64 // flits handed downstream by the RX
	Corrupted   uint64 // transmissions marked bad by the fault hook
	Dropped     uint64 // arrivals discarded at the RX (bad CRC or out of sequence)
	Nacks       uint64 // nack-triggered rewinds
	Timeouts    uint64 // timeout-triggered rewinds
	Evicted     uint64 // undelivered flits rescued off the pipe by failover
}

// RetryRate returns the fraction of wire transmissions that were
// retransmissions (0 when nothing was sent).
func (s RetryStats) RetryRate() float64 {
	if s.Transmits == 0 {
		return 0
	}
	return float64(s.Retransmits) / float64(s.Transmits)
}

// Add accumulates counters from another pipe.
func (s *RetryStats) Add(o RetryStats) {
	s.Transmits += o.Transmits
	s.Retransmits += o.Retransmits
	s.Delivered += o.Delivered
	s.Corrupted += o.Corrupted
	s.Dropped += o.Dropped
	s.Nacks += o.Nacks
	s.Timeouts += o.Timeouts
	s.Evicted += o.Evicted
}

// NewRetryPipe builds a reliable pipe over a bandwidth×delay wire.
// window <= 0 derives a replay capacity that sustains full bandwidth across
// the ack round trip; timeout <= 0 derives a default comfortably above the
// round trip (it is always clamped to at least one round trip plus slack,
// or healthy traffic would time out spuriously).
func NewRetryPipe(bandwidth, delay, window, timeout int, hook TxFault, pjPerFlit float64, onChip bool) *RetryPipe {
	if delay < 1 {
		delay = 1
	}
	if window <= 0 {
		window = bandwidth * (2*delay + 4)
	}
	if window < bandwidth {
		window = bandwidth
	}
	if timeout <= 0 {
		timeout = 4*delay + 16
	}
	if timeout < 2*delay+2 {
		timeout = 2*delay + 2
	}
	return &RetryPipe{
		bandwidth: bandwidth,
		delay:     delay,
		window:    window,
		timeout:   int64(timeout),
		hook:      hook,
		pjPerFlit: pjPerFlit,
		onChip:    onChip,
		slots:     make([][]wireFlit, delay),
		ackSlots:  make([][]ackMsg, delay),
	}
}

// FreeSlots returns how many more flits the pipe can accept this cycle:
// ingress is metered by the wire bandwidth and bounded by replay space.
func (rp *RetryPipe) FreeSlots() int {
	return min(rp.bandwidth-rp.accepted, rp.window-len(rp.replay))
}

// Accept appends a flit to the replay buffer and, when the send cursor is
// already caught up and wire budget remains, transmits it this same cycle —
// so the error-free path adds zero latency over the plain pipeline.
func (rp *RetryPipe) Accept(now int64, f Flit) {
	rp.replay = append(rp.replay, retryEntry{f: f, enq: now, sentAt: -1})
	rp.next++
	rp.accepted++
	if rp.sendIdx == len(rp.replay)-1 && rp.sent < rp.bandwidth {
		rp.transmit(now)
	}
}

// transmit puts replay[sendIdx] on the wire, charging energy and consulting
// the fault hook. The caller guarantees wire budget.
func (rp *RetryPipe) transmit(now int64) {
	e := &rp.replay[rp.sendIdx]
	lsn := rp.base + uint32(rp.sendIdx)
	rp.Stats.Transmits++
	if e.sentAt >= 0 {
		rp.Stats.Retransmits++
	}
	e.sentAt = now
	rp.sendIdx++
	rp.sent++
	// Energy accrues on the stored copy per traversal: a flit delivered on
	// its k-th transmission carries k wire traversals' worth.
	if rp.pjPerFlit != 0 {
		e.f.EnergyPJ += rp.pjPerFlit
		if rp.onChip {
			e.f.EnergyOnChipPJ += rp.pjPerFlit
		} else {
			e.f.EnergyIfacePJ += rp.pjPerFlit
		}
	}
	if rp.hook != nil && rp.hook.Down(now) {
		// Dead wire: the flit never reaches the far side; the replay copy
		// stays and the timeout rewinds to it.
		return
	}
	bad := rp.hook != nil && rp.hook.Corrupt(now)
	if bad {
		rp.Stats.Corrupted++
	}
	slot := (rp.head + rp.delay - 1) % rp.delay
	rp.slots[slot] = append(rp.slots[slot], wireFlit{f: e.f, lsn: lsn, bad: bad})
	rp.inFlight++
}

// Tick advances the pipe one cycle: process returning acks at the TX,
// deliver/drop arrivals at the RX (emitting one coalesced ack/nack),
// check the retransmission timeout, then pump the send cursor with a fresh
// wire budget.
func (rp *RetryPipe) Tick(now int64, deliver func(Flit)) {
	// Reverse channel: acks sent delay cycles ago reach the TX.
	acks := rp.ackSlots[rp.ackHead]
	rp.ackSlots[rp.ackHead] = acks[:0]
	rp.ackHead = (rp.ackHead + 1) % rp.delay
	for _, m := range acks {
		rp.acksInFlight--
		rp.processAck(m)
	}

	// Forward wire: the RX checks each arrival's CRC and sequence number.
	arr := rp.slots[rp.head]
	rp.slots[rp.head] = arr[:0]
	rp.head = (rp.head + 1) % rp.delay
	progress, drop := false, false
	for _, wf := range arr {
		rp.inFlight--
		if !wf.bad && wf.lsn == rp.expected {
			rp.expected++
			rp.Stats.Delivered++
			progress = true
			deliver(wf.f)
		} else {
			// Bad CRC, or the out-of-sequence tail behind one: go-back-N
			// discards it; the nack below rewinds the sender.
			rp.Stats.Dropped++
			drop = true
		}
	}
	if progress || drop {
		slot := (rp.ackHead + rp.delay - 1) % rp.delay
		rp.ackSlots[slot] = append(rp.ackSlots[slot], ackMsg{ack: rp.expected, nack: drop})
		rp.acksInFlight++
	}

	// Timeout: the oldest unacked transmission has waited a full round trip
	// plus slack — lost flit, lost ack or dead wire. Rewind and resend.
	if rp.sendIdx > 0 && now-rp.replay[0].sentAt >= rp.timeout {
		rp.sendIdx = 0
		rp.Stats.Timeouts++
	}

	// New cycle: fresh budgets, then pump retransmissions and backlog.
	rp.sent = 0
	rp.accepted = 0
	for rp.sendIdx < len(rp.replay) && rp.sent < rp.bandwidth {
		rp.transmit(now)
	}
}

// processAck applies one coalesced ack/nack at the TX: pop every entry the
// cumulative ack covers, then rewind the send cursor on nack. Stale
// messages (covering already-popped entries) are ignored; the uint32
// distance check is wraparound-safe.
func (rp *RetryPipe) processAck(m ackMsg) {
	n := int(m.ack - rp.base)
	if n > 0 && n <= len(rp.replay) {
		copy(rp.replay, rp.replay[n:])
		for i := len(rp.replay) - n; i < len(rp.replay); i++ {
			rp.replay[i] = retryEntry{}
		}
		rp.replay = rp.replay[:len(rp.replay)-n]
		rp.base = m.ack
		rp.sendIdx -= n
		if rp.sendIdx < 0 {
			rp.sendIdx = 0
		}
	}
	if m.nack && rp.sendIdx > 0 {
		// Go-back-N: after the pop above, replay[0] is exactly the flit the
		// RX is waiting for.
		rp.sendIdx = 0
		rp.Stats.Nacks++
	}
}

// Busy reports whether the pipe still needs per-cycle ticks: any replay
// entry (delivered-but-unacked included), wire or ack traffic, or activity
// this cycle. This is what keeps a retry link on the engine's forward wake
// list so quiescence fast-forward never skips a pending retransmission or
// timeout.
func (rp *RetryPipe) Busy() bool {
	return len(rp.replay) > 0 || rp.inFlight > 0 || rp.acksInFlight > 0 ||
		rp.sent > 0 || rp.accepted > 0
}

// InFlight returns the number of flits accepted but not yet delivered
// downstream (the link-resident count; delivered-but-unacked replay copies
// are excluded, their flit lives downstream now).
func (rp *RetryPipe) InFlight() int {
	return int(rp.next - rp.expected)
}

// OldestAge returns how many cycles the oldest undelivered flit has been
// resident, or 0 when none is.
func (rp *RetryPipe) OldestAge(now int64) int64 {
	idx := int(rp.expected - rp.base)
	if idx >= len(rp.replay) {
		return 0
	}
	return now - rp.replay[idx].enq
}

// UndeliveredVCs calls fn with the VC of every accepted-but-undelivered
// flit (credit-conservation checks: these flits hold a downstream credit;
// delivered-but-unacked replay copies do not, their flit was handed over).
func (rp *RetryPipe) UndeliveredVCs(fn func(VCID)) {
	for i := int(rp.expected - rp.base); i < len(rp.replay); i++ {
		fn(rp.replay[i].f.VC)
	}
}

// FailoverDrain evicts every accepted-but-undelivered flit, invoking
// reissue for each in acceptance order, and resets the pipe to a clean
// synchronized state (wire and ack channels cleared, TX and RX sequence
// counters realigned). The failover policy uses it to rescue flits stuck
// behind a dead serial PHY and re-issue them on the parallel PHY; clearing
// the wire guarantees no straggler can ever deliver a second copy.
// It returns the number of evicted flits.
func (rp *RetryPipe) FailoverDrain(reissue func(Flit)) int {
	start := int(rp.expected - rp.base)
	n := 0
	for i := start; i < len(rp.replay); i++ {
		reissue(rp.replay[i].f)
		n++
	}
	rp.Stats.Evicted += uint64(n)
	for i := range rp.replay {
		rp.replay[i] = retryEntry{}
	}
	rp.replay = rp.replay[:0]
	rp.base, rp.expected = rp.next, rp.next
	rp.sendIdx = 0
	for i := range rp.slots {
		rp.slots[i] = rp.slots[i][:0]
	}
	rp.inFlight = 0
	for i := range rp.ackSlots {
		rp.ackSlots[i] = rp.ackSlots[i][:0]
	}
	rp.acksInFlight = 0
	return n
}

// EnableRetry arms the link-layer retry protocol on a plain link. window
// and timeout <= 0 pick defaults from the link's bandwidth and delay; hook
// may be nil (reliable wire, retry machinery only). Adapter links enable
// retry per PHY via the adapter instead.
func (l *Link) EnableRetry(hook TxFault, window, timeout int) {
	if l.Adapter != nil {
		panic("network: EnableRetry on an adapter link; enable retry on the adapter's PHYs")
	}
	if l.direct {
		// Direct staging and the retry protocol are mutually exclusive;
		// switching with flits staged would orphan them in the
		// destination ring.
		if len(l.staged) != 0 {
			panic("network: EnableRetry on a link with staged flits; enable retry before stepping traffic")
		}
		l.direct = false
	}
	pj := l.PJPerBit * float64(l.bits)
	l.retry = NewRetryPipe(l.Bandwidth, l.Delay, window, timeout, hook, pj, l.Kind == KindOnChip)
	if l.srcOut != nil {
		l.srcOut.slow = true
	}
}

// Retry returns the link's retry pipe, or nil when retry is disabled.
func (l *Link) Retry() *RetryPipe { return l.retry }
