package network

import "testing"

// scriptHook is a deterministic TxFault for tests: it corrupts the first
// corruptFirst transmissions it sees and reports the wire down during
// [downFrom, downTo).
type scriptHook struct {
	corruptFirst int
	downFrom     int64
	downTo       int64
	txs          int
}

func (h *scriptHook) Corrupt(int64) bool {
	h.txs++
	return h.txs <= h.corruptFirst
}

func (h *scriptHook) Down(now int64) bool {
	return now >= h.downFrom && now < h.downTo
}

// drainPipe ticks the pipe from cycle start until it quiesces (or limit
// cycles pass), recording every delivered flit's Seq and delivery cycle.
func drainPipe(t *testing.T, rp *RetryPipe, start, limit int64) (seqs []int32, cycles []int64) {
	t.Helper()
	for now := start; now < start+limit; now++ {
		rp.Tick(now, func(f Flit) {
			seqs = append(seqs, f.Seq)
			cycles = append(cycles, now)
		})
		if !rp.Busy() {
			return seqs, cycles
		}
	}
	t.Fatalf("retry pipe still busy after %d cycles", limit)
	return nil, nil
}

// TestRetryErrorFreeMatchesPlainPipeline drives the same flit schedule
// through a plain link and a retry-enabled link with no fault hook: the
// retry machinery must add zero latency and identical energy on the
// error-free path.
func TestRetryErrorFreeMatchesPlainPipeline(t *testing.T) {
	plain, _ := testLink(KindSerial)
	reliable, _ := testLink(KindSerial)
	reliable.EnableRetry(nil, 0, 0)

	pkt := &Packet{ID: 1, Length: 40}
	type arrival struct {
		cycle  int64
		seq    int32
		energy float64
	}
	drive := func(l *Link) []arrival {
		var got []arrival
		seq := int32(0)
		for now := int64(0); now < 200; now++ {
			if now > 0 {
				l.Arrivals(now, func(f Flit) {
					got = append(got, arrival{now, f.Seq, f.EnergyPJ})
				})
			}
			for seq < int32(pkt.Length) && l.FreeSlots() > 0 {
				l.Accept(now, Flit{Pkt: pkt, Seq: seq})
				seq++
			}
		}
		return got
	}
	pa, ra := drive(plain), drive(reliable)
	if len(pa) != pkt.Length || len(ra) != pkt.Length {
		t.Fatalf("delivered %d plain / %d retry flits, want %d", len(pa), len(ra), pkt.Length)
	}
	for i := range pa {
		if pa[i] != ra[i] {
			t.Fatalf("arrival %d diverged: plain %+v, retry %+v", i, pa[i], ra[i])
		}
	}
	if st := reliable.Retry().Stats; st.Retransmits != 0 || st.Dropped != 0 {
		t.Fatalf("error-free run recorded retransmits/drops: %+v", st)
	}
	if reliable.Busy() {
		t.Fatal("retry link still busy after full delivery and ack round trip")
	}
}

// TestRetryDeliversThroughCorruption corrupts the first transmissions and
// checks go-back-N recovery: every flit delivered exactly once, in order.
func TestRetryDeliversThroughCorruption(t *testing.T) {
	hook := &scriptHook{corruptFirst: 3}
	rp := NewRetryPipe(2, 3, 0, 0, hook, 1.0, false)
	const n = 10
	pkt := &Packet{ID: 7, Length: n}
	var seqs []int32
	next := int32(0)
	for now := int64(0); now < 400; now++ {
		if now > 0 {
			rp.Tick(now, func(f Flit) { seqs = append(seqs, f.Seq) })
		}
		for next < n && rp.FreeSlots() > 0 {
			rp.Accept(now, Flit{Pkt: pkt, Seq: next})
			next++
		}
		if next == n && !rp.Busy() {
			break
		}
	}
	if len(seqs) != n {
		t.Fatalf("delivered %d flits, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != int32(i) {
			t.Fatalf("out-of-order delivery: position %d got seq %d", i, s)
		}
	}
	st := rp.Stats
	if st.Corrupted != 3 || st.Retransmits == 0 || st.Nacks == 0 {
		t.Fatalf("unexpected stats after corruption recovery: %+v", st)
	}
	if st.Delivered != n || rp.InFlight() != 0 {
		t.Fatalf("delivered=%d inflight=%d, want %d/0", st.Delivered, rp.InFlight(), n)
	}
}

// TestRetryTimeoutRecoversDownWire kills the wire outright: no arrival, no
// nack — only the TX timeout can recover, and must keep rewinding until the
// outage ends.
func TestRetryTimeoutRecoversDownWire(t *testing.T) {
	hook := &scriptHook{downFrom: 0, downTo: 40}
	rp := NewRetryPipe(1, 2, 0, 0, hook, 0, false)
	rp.Accept(0, Flit{Pkt: &Packet{ID: 1, Length: 1}, Seq: 0})
	seqs, cycles := drainPipe(t, rp, 1, 400)
	if len(seqs) != 1 {
		t.Fatalf("delivered %d flits, want 1", len(seqs))
	}
	if cycles[0] < hook.downTo {
		t.Fatalf("delivered at cycle %d while the wire was still down (up at %d)", cycles[0], hook.downTo)
	}
	if rp.Stats.Timeouts == 0 {
		t.Fatalf("down-wire recovery without a timeout rewind: %+v", rp.Stats)
	}
	if rp.Stats.Delivered != 1 || rp.Stats.Dropped != 0 {
		t.Fatalf("unexpected stats: %+v", rp.Stats)
	}
}

// TestRetryWindowBackpressure fills the replay window against a dead wire:
// FreeSlots must reach zero (credit backpressure) and nothing may be lost.
func TestRetryWindowBackpressure(t *testing.T) {
	hook := &scriptHook{downFrom: 0, downTo: 1 << 40}
	const window = 4
	rp := NewRetryPipe(4, 2, window, 0, hook, 0, false)
	pkt := &Packet{ID: 2, Length: window}
	accepted := 0
	for now := int64(0); now < 100; now++ {
		if now > 0 {
			rp.Tick(now, func(Flit) { t.Fatal("delivery across a dead wire") })
		}
		for rp.FreeSlots() > 0 {
			rp.Accept(now, Flit{Pkt: pkt, Seq: int32(accepted)})
			accepted++
		}
	}
	if accepted != window {
		t.Fatalf("accepted %d flits into a %d-flit window", accepted, window)
	}
	if rp.FreeSlots() != 0 {
		t.Fatalf("FreeSlots %d with a full replay buffer", rp.FreeSlots())
	}
	if rp.InFlight() != window {
		t.Fatalf("InFlight %d, want %d undelivered", rp.InFlight(), window)
	}
}

// TestRetryEnergyPerRetransmission: a flit delivered on its k-th
// transmission must carry k wire traversals' worth of energy.
func TestRetryEnergyPerRetransmission(t *testing.T) {
	const pj = 2.0
	hook := &scriptHook{corruptFirst: 2}
	rp := NewRetryPipe(1, 2, 0, 0, hook, pj, false)
	rp.Accept(0, Flit{Pkt: &Packet{ID: 3, Length: 1}, Seq: 0})
	var got Flit
	n := 0
	for now := int64(1); now < 400 && rp.Busy(); now++ {
		rp.Tick(now, func(f Flit) { got = f; n++ })
	}
	if n != 1 {
		t.Fatalf("delivered %d flits, want 1", n)
	}
	if want := 3 * pj; got.EnergyPJ != want || got.EnergyIfacePJ != want {
		t.Fatalf("energy %v/%v after 3 transmissions, want %v", got.EnergyPJ, got.EnergyIfacePJ, want)
	}
	if rp.Stats.Transmits != 3 || rp.Stats.Retransmits != 2 {
		t.Fatalf("unexpected transmit counts: %+v", rp.Stats)
	}
}

// TestRetrySequenceWraparound starts the lsn space three short of the
// 32-bit wrap and injects corruption so retransmissions straddle the wrap:
// in-order exactly-once delivery must survive it.
func TestRetrySequenceWraparound(t *testing.T) {
	hook := &scriptHook{corruptFirst: 2}
	rp := NewRetryPipe(2, 2, 0, 0, hook, 0, false)
	start := ^uint32(0) - 2
	rp.base, rp.next, rp.expected = start, start, start

	const n = 8
	pkt := &Packet{ID: 4, Length: n}
	var seqs []int32
	next := int32(0)
	for now := int64(0); now < 400; now++ {
		if now > 0 {
			rp.Tick(now, func(f Flit) { seqs = append(seqs, f.Seq) })
		}
		for next < n && rp.FreeSlots() > 0 {
			rp.Accept(now, Flit{Pkt: pkt, Seq: next})
			next++
		}
		if next == n && !rp.Busy() {
			break
		}
	}
	if len(seqs) != n {
		t.Fatalf("delivered %d flits across the lsn wrap, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != int32(i) {
			t.Fatalf("wraparound broke ordering: position %d got seq %d", i, s)
		}
	}
	if rp.expected != start+n {
		t.Fatalf("RX expected counter %d, want %d", rp.expected, start+n)
	}
}

// TestRetryFailoverDrainExactlyOnce evicts flits stuck behind a dead wire
// and checks the pipe resynchronizes: evicted flits come out in acceptance
// order, no straggler ever delivers a second copy, and the pipe works again
// once the wire heals.
func TestRetryFailoverDrainExactlyOnce(t *testing.T) {
	hook := &scriptHook{downFrom: 0, downTo: 1 << 40}
	rp := NewRetryPipe(2, 2, 0, 0, hook, 0, false)
	pkt := &Packet{ID: 5, Length: 5}
	next := int32(0)
	for now := int64(0); now < 6; now++ {
		if now > 0 {
			rp.Tick(now, func(Flit) { t.Fatal("delivery across a dead wire") })
		}
		for next < 5 && rp.FreeSlots() > 0 {
			rp.Accept(now, Flit{Pkt: pkt, Seq: next})
			next++
		}
	}
	var rescued []int32
	if got := rp.FailoverDrain(func(f Flit) { rescued = append(rescued, f.Seq) }); got != 5 {
		t.Fatalf("FailoverDrain evicted %d flits, want 5", got)
	}
	for i, s := range rescued {
		if s != int32(i) {
			t.Fatalf("rescue order broken: position %d got seq %d", i, s)
		}
	}
	if rp.Busy() || rp.InFlight() != 0 {
		t.Fatalf("pipe not clean after drain: busy=%v inflight=%d", rp.Busy(), rp.InFlight())
	}
	if rp.Stats.Evicted != 5 {
		t.Fatalf("Evicted %d, want 5", rp.Stats.Evicted)
	}

	// Wire heals; the resynchronized pipe must deliver new traffic normally.
	hook.downTo = 0
	rp.Accept(10, Flit{Pkt: pkt, Seq: 99})
	seqs, _ := drainPipe(t, rp, 11, 100)
	if len(seqs) != 1 || seqs[0] != 99 {
		t.Fatalf("post-drain delivery %v, want [99]", seqs)
	}
}

// TestRetryLinkStaysAwake is the wake-list regression for quiescence
// fast-forward: a retry link holding a pending retransmission must stay on
// the engine's wake list, so RunWith (fast-forward enabled) delivers the
// packet at exactly the cycle a cycle-by-cycle run does, with credits
// conserved — instead of stranding the flit and tripping the watchdog.
func TestRetryLinkStaysAwake(t *testing.T) {
	run := func(fastForward bool) (*Network, int64) {
		net, l := twoNodeNet(t, KindSerial, nil)
		l.EnableRetry(&scriptHook{corruptFirst: 3}, 0, 0)
		arrived := int64(-1)
		net.Sink = func(p *Packet) { arrived = p.ArrivedAt }
		net.Offer(net.NewPacket(0, 1, 16, 0))
		var err error
		if fastForward {
			err = net.RunWith(600, nil, nil)
		} else {
			err = net.Run(600, func(int64) {}) // non-nil drive, nil next: no skipping
		}
		if err != nil {
			t.Fatalf("fastForward=%v: %v", fastForward, err)
		}
		if arrived < 0 {
			t.Fatalf("fastForward=%v: packet never delivered", fastForward)
		}
		if err := net.CheckCredits(); err != nil {
			t.Fatalf("fastForward=%v: %v", fastForward, err)
		}
		return net, arrived
	}
	refNet, refArr := run(false)
	ffNet, ffArr := run(true)
	if refArr != ffArr {
		t.Fatalf("fast-forward changed delivery cycle: %d vs %d", ffArr, refArr)
	}
	if refNet.Now != ffNet.Now {
		t.Fatalf("clocks diverged: %d vs %d", ffNet.Now, refNet.Now)
	}
	if st := ffNet.Links[0].Retry().Stats; st.Retransmits < 3 {
		t.Fatalf("corruption did not force retransmissions: %+v", st)
	}
}
