package network

// routeLUT is the precomputed candidate table for RoutePure routing
// algorithms: one entry per (router, destination, restricted) triple,
// stored as a flat candidate pool with prefix offsets. Purity makes the
// entry independent of the input port and of all dynamic state, so a
// lookup replaces the Routing.Route interface call entirely on the VC-
// allocation hot path.
type routeLUT struct {
	n     int
	offs  []uint32
	cands []Candidate
	// adapt[e] is the adaptive-port mask of entry e: the union of
	// 1<<Port over its non-escape candidates with Port < 64 — the
	// prologue the livelock channel-switch restriction in allocate
	// needs, hoisted out of the per-lookup loop.
	adapt []uint64
}

// lutEntry computes the offs index of (r, dst, restricted).
func (l *routeLUT) lutEntry(r, dst NodeID, restricted bool) int {
	e := (int(r)*l.n + int(dst)) * 2
	if restricted {
		e++
	}
	return e
}

// lookup returns the candidate set for a packet to dst observed at router
// r. Entries with r == dst are empty (ejection short-circuits before RC).
func (l *routeLUT) lookup(r, dst NodeID, restricted bool) []Candidate {
	e := l.lutEntry(r, dst, restricted)
	return l.cands[l.offs[e]:l.offs[e+1]]
}

// lookupFrom is lookup with the router's row offset (Router.lutBase,
// precomputed in prepare) already folded in, saving the row multiply on
// the VC-allocation hot path. It also returns the entry's precomputed
// adaptive-port mask.
func (l *routeLUT) lookupFrom(base int, dst NodeID, restricted bool) ([]Candidate, uint64) {
	e := base + int(dst)*2
	if restricted {
		e++
	}
	return l.cands[l.offs[e]:l.offs[e+1]], l.adapt[e]
}

// buildRouteLUT evaluates the routing function once for every (router,
// destination, restricted) triple. Route is invoked with a scratch packet
// carrying only the fields a RoutePure algorithm may read (Dst,
// Restricted) and the injection port as inPort; purity guarantees the
// result matches what any in-flight packet would see.
func buildRouteLUT(net *Network) *routeLUT {
	n := len(net.Nodes)
	lut := &routeLUT{n: n}
	lut.offs = make([]uint32, 1, 2*n*n+1)
	lut.adapt = make([]uint64, 0, 2*n*n)
	var scratch []Candidate
	var pkt Packet
	for _, r := range net.Nodes {
		for dst := 0; dst < n; dst++ {
			for restricted := 0; restricted < 2; restricted++ {
				if NodeID(dst) != r.ID {
					pkt = Packet{Dst: NodeID(dst), Restricted: restricted == 1, Target: -1}
					scratch = net.Routing.Route(net, r, r.InjectPort, &pkt, scratch[:0])
					lut.cands = append(lut.cands, scratch...)
					lut.adapt = append(lut.adapt, adaptiveMask(scratch))
				} else {
					lut.adapt = append(lut.adapt, 0)
				}
				lut.offs = append(lut.offs, uint32(len(lut.cands)))
			}
		}
	}
	return lut
}

// adaptiveMask folds a candidate set's non-escape ports below 64 into the
// bitmask the livelock channel-switch restriction checks.
func adaptiveMask(cands []Candidate) uint64 {
	m := uint64(0)
	for i := range cands {
		if c := &cands[i]; !c.Escape && c.Port < 64 {
			m |= 1 << uint(c.Port)
		}
	}
	return m
}

// prepare derives the route-acceleration state on the first Step, once the
// topology (including injected faults) and the routing algorithm are
// final. The reference tick ignores it: the oracle measures the naive
// engine, not a differently-accelerated one.
func (net *Network) prepare() {
	net.prepared = true
	if net.refTick {
		return
	}
	if s, ok := net.Routing.(Stable); ok {
		net.stability = s.Stability()
	}
	if net.stability == RoutePure {
		limit := net.Cfg.RouteLUTNodes
		if limit == 0 {
			limit = 512
		}
		if limit > 0 && len(net.Nodes) <= limit {
			net.lut = buildRouteLUT(net)
			for i, r := range net.Nodes {
				r.lutBase = i * len(net.Nodes) * 2
			}
		}
	}
}

// SetReferenceTick switches the engine onto the retained naive router tick
// (full port×VC scans, Route re-evaluated every retry, no LUT). It is the
// oracle side of the saturated-state bit-identity tests and must be called
// before the first Step.
func (net *Network) SetReferenceTick(on bool) {
	if net.prepared {
		panic("network: SetReferenceTick must be called before the first Step")
	}
	net.refTick = on
}

// HasRouteLUT reports whether prepare built a route LUT (tests).
func (net *Network) HasRouteLUT() bool { return net.lut != nil }

// LUTCandidates exposes a route-LUT entry for the stable-routing property
// tests; it returns nil when no LUT was built. The first Step (or a manual
// Prepare via a zero-cycle Run) must have happened.
func (net *Network) LUTCandidates(r, dst NodeID, restricted bool) []Candidate {
	if net.lut == nil {
		return nil
	}
	return net.lut.lookup(r, dst, restricted)
}
