package network

// routeLUT is the precomputed candidate table for RoutePure routing
// algorithms: one entry per (router, destination, restricted) triple,
// stored as a flat candidate pool with prefix offsets. Purity makes the
// entry independent of the input port and of all dynamic state, so a
// lookup replaces the Routing.Route interface call entirely on the VC-
// allocation hot path.
type routeLUT struct {
	n     int
	offs  []uint32
	cands []Candidate
}

// lutEntry computes the offs index of (r, dst, restricted).
func (l *routeLUT) lutEntry(r, dst NodeID, restricted bool) int {
	e := (int(r)*l.n + int(dst)) * 2
	if restricted {
		e++
	}
	return e
}

// lookup returns the candidate set for a packet to dst observed at router
// r. Entries with r == dst are empty (ejection short-circuits before RC).
func (l *routeLUT) lookup(r, dst NodeID, restricted bool) []Candidate {
	e := l.lutEntry(r, dst, restricted)
	return l.cands[l.offs[e]:l.offs[e+1]]
}

// buildRouteLUT evaluates the routing function once for every (router,
// destination, restricted) triple. Route is invoked with a scratch packet
// carrying only the fields a RoutePure algorithm may read (Dst,
// Restricted) and the injection port as inPort; purity guarantees the
// result matches what any in-flight packet would see.
func buildRouteLUT(net *Network) *routeLUT {
	n := len(net.Nodes)
	lut := &routeLUT{n: n}
	lut.offs = make([]uint32, 1, 2*n*n+1)
	var scratch []Candidate
	var pkt Packet
	for _, r := range net.Nodes {
		for dst := 0; dst < n; dst++ {
			for restricted := 0; restricted < 2; restricted++ {
				if NodeID(dst) != r.ID {
					pkt = Packet{Dst: NodeID(dst), Restricted: restricted == 1, Target: -1}
					scratch = net.Routing.Route(net, r, r.InjectPort, &pkt, scratch[:0])
					lut.cands = append(lut.cands, scratch...)
				}
				lut.offs = append(lut.offs, uint32(len(lut.cands)))
			}
		}
	}
	return lut
}

// prepare derives the route-acceleration state on the first Step, once the
// topology (including injected faults) and the routing algorithm are
// final. The reference tick ignores it: the oracle measures the naive
// engine, not a differently-accelerated one.
func (net *Network) prepare() {
	net.prepared = true
	if net.refTick {
		return
	}
	if s, ok := net.Routing.(Stable); ok {
		net.stability = s.Stability()
	}
	if net.stability == RoutePure {
		limit := net.Cfg.RouteLUTNodes
		if limit == 0 {
			limit = 512
		}
		if limit > 0 && len(net.Nodes) <= limit {
			net.lut = buildRouteLUT(net)
		}
	}
}

// SetReferenceTick switches the engine onto the retained naive router tick
// (full port×VC scans, Route re-evaluated every retry, no LUT). It is the
// oracle side of the saturated-state bit-identity tests and must be called
// before the first Step.
func (net *Network) SetReferenceTick(on bool) {
	if net.prepared {
		panic("network: SetReferenceTick must be called before the first Step")
	}
	net.refTick = on
}

// HasRouteLUT reports whether prepare built a route LUT (tests).
func (net *Network) HasRouteLUT() bool { return net.lut != nil }

// LUTCandidates exposes a route-LUT entry for the stable-routing property
// tests; it returns nil when no LUT was built. The first Step (or a manual
// Prepare via a zero-cycle Run) must have happened.
func (net *Network) LUTCandidates(r, dst NodeID, restricted bool) []Candidate {
	if net.lut == nil {
		return nil
	}
	return net.lut.lookup(r, dst, restricted)
}
