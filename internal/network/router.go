package network

import (
	"fmt"
	"math/bits"
)

// Candidate is one output channel option produced by a routing function:
// an output port plus the set of virtual channels the packet may request on
// it. Escape marks channels belonging to the baseline deadlock-free
// subnetwork C0 (Algorithm 1, line 5): they are always safe to take, while
// non-escape (adaptive) channels are preferred shortcuts.
type Candidate struct {
	Port   int
	VCMask uint16
	Escape bool
}

// Routing computes candidate output channels for a packet whose head flit
// sits at router r, having arrived through input port inPort (the injection
// port for freshly injected packets). Implementations append to buf and
// return it, to avoid per-call allocation. Candidates must be ordered by
// preference; the router picks the first allocatable one. Routing functions
// must guarantee that at least one escape candidate is connected toward the
// destination (Lemma 1).
type Routing interface {
	Route(net *Network, r *Router, inPort int, pkt *Packet, buf []Candidate) []Candidate
	Name() string
}

// RouteStability classifies how much of a routing function's output the
// engine may reuse without re-invoking Route. It is the contract behind the
// RC-memoization fast paths; every level must keep results bit-identical to
// calling Route every cycle.
type RouteStability uint8

const (
	// RouteDynamic gives no reuse guarantee: Route may consult mutable
	// network state (congestion, occupancy), so the engine re-evaluates it
	// every cycle a head flit waits for VC allocation.
	RouteDynamic RouteStability = iota

	// RouteRetryStable guarantees that repeated Route calls for the same
	// packet waiting at the same router return identical candidates as long
	// as the packet's Restricted flag is unchanged, and that any packet
	// mutations Route performs are either confined to fields in that key
	// (Restricted) or idempotent across calls (e.g. the Target waypoint,
	// fixed once per chiplet). The engine may then cache the candidate set
	// on the input VC across VA-retry cycles and skip the retry entirely
	// when nothing the allocator reads (output credits, Held bits) has
	// changed since the last failure.
	RouteRetryStable

	// RoutePure additionally guarantees that Route is a pure function of
	// (router, pkt.Dst, pkt.Restricted) and static topology — independent
	// of inPort, the cycle, and all other packet or network state — and
	// mutates nothing. The engine may then precompute a per-(router, dst,
	// restricted) route LUT before the first Step. Algorithms whose purity
	// is conditional (e.g. a torus that mutates packets only when dead
	// wraparound channels exist) report the level that currently holds;
	// topology faults must be injected before the first Step.
	RoutePure
)

// Stable is the optional capability interface of Routing implementations
// that declare a reuse contract. Stability is consulted once, on the first
// Step after construction (after any topology fault injection). Algorithms
// that do not implement it are treated as RouteDynamic.
type Stable interface {
	Routing
	Stability() RouteStability
}

// VCState is one virtual-channel input buffer and its allocation state.
// The queue is embedded by value and every router's VCStates live in one
// per-network slab (Network.packSlabs), so the switch stage reads occupancy
// and head state from the slot itself instead of chasing a *FlitQueue.
type VCState struct {
	Buf FlitQueue

	// Active is true while the packet at the front of Buf holds an output
	// VC; OutPort/OutVC identify it. The allocation is released when the
	// packet's tail flit traverses the switch.
	Active  bool
	OutPort int
	OutVC   VCID

	// headSeq/headLen cache the front flit's sequence number and its
	// packet's length while the VC holds an output allocation, so switch
	// allocation computes the transferable run without touching the ring
	// data or the Packet. Set by cacheHead when a head flit becomes the
	// front of an inactive VC, advanced by every drain; flits arrive in
	// order, so the cache always matches the front flit of an active VC.
	headSeq int32
	headLen int32

	// headDst/headPktID/headClass/headRestricted denormalize the front
	// head flit's routing-relevant packet fields into the slot (cacheHead,
	// same sites as headSeq/headLen), so RC+VA run without dereferencing
	// the ring or the Packet. Dst, ID, Class and Length are immutable for
	// a packet's lifetime; Restricted is mutable, and every engine write
	// while the head waits goes through allocate, which updates both
	// copies (the canonical Packet stays the source of truth for routing
	// functions and diagnostics).
	headDst        NodeID
	headPktID      uint64
	headClass      Class
	headRestricted bool

	// RC-memoization state (RouteRetryStable and better; see allocate).
	// cands caches the candidate set computed for the packet candsPkt with
	// Restricted == candsRestricted, so VA retries reuse it instead of
	// re-invoking Route.
	cands           []Candidate
	candsPkt        uint64
	candsRestricted bool
}

// InPort is a router input: the upstream link (nil for the injection port)
// and one buffer per VC.
type InPort struct {
	Link *Link
	Kind LinkKind
	// DrainBudget bounds how many flits this input may push through the
	// crossbar per cycle (the upstream channel bandwidth).
	DrainBudget int
	// Interface marks die-to-die inputs: the heterogeneous router's
	// multi-port input buffer may drain several VCs of such a port in one
	// cycle (Sec. 4.1); regular inputs drain one VC per cycle.
	Interface bool
	VCs       []VCState
}

// OutPort is a router output: the downstream link (nil for the ejection
// port), per-VC credit counters and output-VC allocation state.
type OutPort struct {
	Link *Link
	Kind LinkKind
	// Depth is the per-VC downstream buffer depth.
	Depth int
	// Credits tracks free buffer slots per downstream VC.
	Credits []int
	// Held marks output VCs currently allocated to an in-flight packet.
	// heldMask mirrors it as a bitmask so VC allocation can reject every
	// held VC of a candidate in one AND-NOT instead of a per-VC scan; the
	// two are updated together. vcLimit masks candidate VCMasks down to
	// the VCs that exist (a candidate may name VCs beyond len(Credits);
	// the reference scan ignores them by loop bound).
	Held     []bool
	heldMask uint16
	vcLimit  uint16
	// Interface marks die-to-die outputs: the higher-radix crossbar lets
	// several input VCs feed such an output concurrently (Sec. 4.1);
	// regular outputs accept one input VC per cycle.
	Interface bool

	// parked is the set of the router's flattened input-VC slots whose VC
	// allocation is parked watching this output: their last attempt failed
	// and only a credit arrival or output-VC release *here* can change the
	// outcome (see Router.vaParked). waitSlot[v], when ≥ 0, is the slot
	// holding output VC v whose switch traversal is parked on an empty
	// credit counter; the credit completion that refills it puts the slot
	// back on the ready list. Both are maintained through shared helpers so
	// the optimized and reference ticks stay interchangeable.
	parked   []uint64
	waitSlot []int32

	// slow marks outputs whose link needs the per-flit switch path
	// (adapter or retry protocol work in Accept). Derived in Finalize and
	// kept current by EnableRetry/SetAdapter, so saSlotFast reads one
	// hot-line flag instead of chasing the Link struct tail.
	slow bool
}

// setHeld and clearHeld keep Held and heldMask in lockstep.
func (o *OutPort) setHeld(vc int) {
	o.Held[vc] = true
	o.heldMask |= 1 << uint(vc)
}

func (o *OutPort) clearHeld(vc VCID) {
	o.Held[vc] = false
	o.heldMask &^= 1 << uint(vc)
}

// Router is a canonical virtual-channel router (Sec. 7.1), extended at
// interface ports with the paper's heterogeneous-router microarchitecture.
//
// The per-cycle work of a saturated router is found through two bitmaps
// over flattened (input port, VC) slots instead of a full port×VC rescan:
// allocPend marks input VCs whose front flit is a head awaiting RC+VA
// (pushed by deliver, injection, and tail release), saActive marks input
// VCs holding an output allocation (maintained by allocate and the switch
// stage). A bit off either map is always a slot whose visit would have
// been a no-op, and bitmap scans yield the same ascending slot order as
// the dense loops, so results stay bit-identical — tickReference retains
// the scanning implementation as the oracle for exactly that claim.
type Router struct {
	ID  NodeID
	In  []*InPort
	Out []*OutPort

	// InjectPort and EjectPort index the local ports in In and Out.
	InjectPort int
	EjectPort  int

	buffered  int // total flits across all input VC buffers (activity)
	activeVCs int // input VCs holding an output allocation
	rr        int // round-robin arbitration pointer

	// flat maps a flattened arbitration slot to its (input port, VC); the
	// pointers avoid re-deriving them per slot in the hot loops. Built by
	// rebuildWork once the port set is final.
	flat []flatSlot

	// slotVCs is the per-port VC count, for slot index arithmetic.
	slotVCs int

	// allocPend and saActive are the work bitmaps over flat slots
	// described above.
	allocPend []uint64
	saActive  []uint64

	// vaParked holds slots removed from allocPend because their VC
	// allocation provably fails until one of the output ports their
	// candidates name (recorded in OutPort.parked) sees a credit arrival
	// or an output-VC release — the only two events that can change a VA
	// outcome. unparkPort moves a port's watchers back to allocPend when
	// either occurs. vaParkedCount mirrors the bitmap's population so the
	// optimized tick can charge each parked slot its per-cycle VA-failure
	// statistic with one addition (the reference tick instead revisits the
	// slot and fails again — same count, so both ticks stay bit-identical).
	//
	// saReady is the subset of saActive whose switch traversal can make
	// progress: a slot starved of credits on its allocated output VC drops
	// out (saSlotFast records it in OutPort.waitSlot) until the refilling
	// credit completes. Parked-slot visits would be no-ops, and blocking
	// conditions are monotone within a cycle, so scanning saReady grants
	// exactly what scanning saActive would.
	vaParked      []uint64
	vaParkedCount int
	saReady       []uint64

	// scratch buffers reused across cycles
	cands    []Candidate
	outSlots []int
	outVCs   []int // input VCs granted per output this cycle
	inUsed   []int // flits drained per input this cycle
	inVCs    []int // VCs granted per input this cycle

	// Switch-allocation early exit (optimized tick only): outAvail/inAvail
	// count output and input ports that could still take part in a grant
	// this cycle. Port ineligibility is monotone within a cycle (budgets
	// only shrink, grant counts only grow), so each transition decrements
	// its counter at most once, and when either counter reaches zero every
	// remaining slot visit is provably a no-op — the scan stops without
	// changing which grants happen. inBudgeted is the static number of
	// inputs with a non-zero drain budget (rebuildWork).
	outAvail   int
	inAvail    int
	inBudgeted int

	// Static switch-budget prologue (rebuildWork): outBase[i] is out port
	// i's per-cycle budget at switch-allocation time — EjectionBandwidth
	// for the ejection port, link Bandwidth for plain links (their accepted
	// counter is always zero when their source router's tick runs; only
	// that tick raises it, and the phase-1 link advance clears it). Ports
	// on adapter/retry links have a truly dynamic budget and are listed in
	// outDyn for a per-cycle FreeSlots call. outAvailBase counts static
	// ports with a non-zero budget. ejBW is Config.EjectionBandwidth,
	// captured at construction so rebuildWork needs no Config.
	outBase      []int
	outDyn       []int32
	outAvailBase int
	ejBW         int

	// lutBase is this router's row offset into the route LUT's offs table
	// (prepare sets it when a LUT is built), so the hot lookup skips the
	// row multiply.
	lutBase int

	// slotOut[slot] is the output port the slot's VC allocation granted
	// (valid while the slot is in saActive; grantVC writes it). The whole
	// array spans a cache line or two at typical radix, so the switch-
	// stage scan rejects slots whose output is spent this cycle without
	// touching their VCState lines.
	slotOut []int16
}

// flatSlot is one flattened arbitration slot.
type flatSlot struct {
	in *InPort
	vc *VCState
	ip int32
	v  int32
}

// newRouter constructs a router with only local ports; topology builders add
// link ports via AddInPort/AddOutPort.
func newRouter(cfg *Config, id NodeID) *Router {
	r := &Router{ID: id, InjectPort: 0, EjectPort: 0, ejBW: cfg.EjectionBandwidth}
	// Injection input port.
	inj := &InPort{Kind: KindLocal, DrainBudget: cfg.InjectionBandwidth}
	inj.VCs = make([]VCState, cfg.VCs)
	for i := range inj.VCs {
		inj.VCs[i].Buf = FlitQueue{buf: make([]Flit, cfg.BufPerVC(KindLocal))}
	}
	r.In = append(r.In, inj)
	// Ejection output port: no link, no credits needed beyond rate limit.
	ej := &OutPort{Kind: KindLocal, Interface: true}
	r.Out = append(r.Out, ej)
	return r
}

// AddInPort attaches the sink side of a link and returns the new input-port
// index.
func (r *Router) AddInPort(cfg *Config, l *Link) int {
	p := &InPort{
		Link:        l,
		Kind:        l.Kind,
		DrainBudget: l.Bandwidth,
		Interface:   l.Kind != KindOnChip,
	}
	p.VCs = make([]VCState, cfg.VCs)
	depth := cfg.BufPerVC(l.Kind)
	for i := range p.VCs {
		p.VCs[i].Buf = FlitQueue{buf: make([]Flit, depth)}
	}
	r.In = append(r.In, p)
	return len(r.In) - 1
}

// AddOutPort attaches the source side of a link and returns the new
// output-port index.
func (r *Router) AddOutPort(cfg *Config, l *Link) int {
	p := &OutPort{
		Link:      l,
		Kind:      l.Kind,
		Interface: l.Kind != KindOnChip,
	}
	depth := cfg.BufPerVC(l.Kind)
	p.Depth = depth
	p.Credits = make([]int, cfg.VCs)
	p.Held = make([]bool, cfg.VCs)
	p.vcLimit = 1<<uint(cfg.VCs) - 1
	for i := range p.Credits {
		p.Credits[i] = depth
	}
	r.Out = append(r.Out, p)
	return len(r.Out) - 1
}

// rebuildWork (re)derives the flattened slot table, the work bitmaps and
// the held masks from current port state. Finalize and SetWorkers call it;
// it is O(router), never per-cycle.
func (r *Router) rebuildWork() {
	r.slotVCs = len(r.In[0].VCs)
	r.flat = r.flat[:0]
	for ip, in := range r.In {
		for v := range in.VCs {
			r.flat = append(r.flat, flatSlot{in: in, vc: &in.VCs[v], ip: int32(ip), v: int32(v)})
		}
	}
	words := (len(r.flat) + 63) >> 6
	if len(r.allocPend) != words {
		// One backing array: the four work bitmaps of a typical-radix
		// router (one word each) share a cache line, so a slot's full
		// VA/SA decision state loads together.
		bm := make([]uint64, 4*words)
		r.allocPend = bm[:words:words]
		r.saActive = bm[words : 2*words : 2*words]
		r.vaParked = bm[2*words : 3*words : 3*words]
		r.saReady = bm[3*words : 4*words : 4*words]
	}
	for i := range r.allocPend {
		r.allocPend[i] = 0
		r.saActive[i] = 0
		r.vaParked[i] = 0
	}
	r.vaParkedCount = 0
	if cap(r.slotOut) < len(r.flat) {
		r.slotOut = make([]int16, len(r.flat))
	}
	r.slotOut = r.slotOut[:len(r.flat)]
	for slot := range r.flat {
		vc := r.flat[slot].vc
		r.slotOut[slot] = 0
		switch {
		case vc.Active:
			r.slotOut[slot] = int16(vc.OutPort)
			r.saActive[slot>>6] |= 1 << (uint(slot) & 63)
		case !vc.Buf.Empty():
			vc.cacheHead(vc.Buf.frontRef())
			r.allocPend[slot>>6] |= 1 << (uint(slot) & 63)
		}
	}
	// Forgetting parked state is always safe: an unparked slot is revisited,
	// fails (or succeeds) exactly as the dense scan would, and re-parks.
	copy(r.saReady, r.saActive)
	for _, out := range r.Out {
		out.heldMask = 0
		for v, h := range out.Held {
			if h {
				out.heldMask |= 1 << uint(v)
			}
		}
		if len(out.parked) != words {
			out.parked = make([]uint64, words)
		}
		for i := range out.parked {
			out.parked[i] = 0
		}
		if len(out.waitSlot) != len(out.Credits) {
			out.waitSlot = make([]int32, len(out.Credits))
		}
		for i := range out.waitSlot {
			out.waitSlot[i] = -1
		}
	}
	r.inBudgeted = 0
	for _, in := range r.In {
		if in.DrainBudget > 0 {
			r.inBudgeted++
		}
	}
	if cap(r.outBase) < len(r.Out) {
		r.outBase = make([]int, len(r.Out))
	}
	r.outBase = r.outBase[:len(r.Out)]
	r.outDyn = r.outDyn[:0]
	r.outAvailBase = 0
	for i, out := range r.Out {
		switch {
		case out.Link == nil:
			r.outBase[i] = r.ejBW
		case out.Link.Adapter != nil || out.Link.retry != nil:
			r.outBase[i] = 0
			r.outDyn = append(r.outDyn, int32(i))
			continue
		default:
			r.outBase[i] = out.Link.Bandwidth
		}
		if r.outBase[i] > 0 {
			r.outAvailBase++
		}
	}
}

// markPend flags a flattened slot as needing RC+VA.
func (r *Router) markPend(slot int) {
	r.allocPend[slot>>6] |= 1 << (uint(slot) & 63)
}

// cacheHead denormalizes the packet fields of f — the head flit that just
// became the front of an inactive VC — into the slot state (see the
// VCState field docs). Every site where a head reaches the front calls it:
// delivery into an empty inactive buffer (deliver/deliverRun), direct-link
// publication (commitDirect), injection (via cacheHeadPkt), tail release
// with a successor queued (saSlot/saSlotFast) and rebuildWork. The
// non-head panic retained from the dense scans fires here, where the flit
// is already in hand.
func (vc *VCState) cacheHead(f *Flit) {
	if f.Seq != 0 {
		panic(fmt.Sprintf("network: non-head flit (pkt %d seq %d) at front of idle VC", f.Pkt.ID, f.Seq))
	}
	vc.cacheHeadPkt(f.Pkt)
}

// cacheHeadPkt is cacheHead for sites that construct the head flit
// themselves (injection: sequence 0 by construction).
func (vc *VCState) cacheHeadPkt(pkt *Packet) {
	vc.headSeq = 0
	vc.headLen = int32(pkt.Length)
	vc.headDst = pkt.Dst
	vc.headPktID = pkt.ID
	vc.headClass = pkt.Class
	vc.headRestricted = pkt.Restricted
}

// parkVA moves a slot whose VC allocation just failed from allocPend to
// vaParked, watching every output port in cands (the failure can only be
// undone by a credit arrival or VC release on one of them). Idempotent: a
// slot re-marked by a mid-wait flit delivery re-parks without recounting.
func (r *Router) parkVA(slot int, cands []Candidate) {
	wi, bit := slot>>6, uint64(1)<<(uint(slot)&63)
	r.allocPend[wi] &^= bit
	if r.vaParked[wi]&bit == 0 {
		r.vaParked[wi] |= bit
		r.vaParkedCount++
	}
	for i := range cands {
		r.Out[cands[i].Port].parked[wi] |= bit
	}
}

// unparkPort returns every slot parked on out to allocPend, called on the
// two events that can flip a VA failure there: a credit arrival and an
// output-VC release. Slots watching several ports are unparked by the
// first event and may leave stale bits in the other ports' masks; the
// vaParked intersection filters those (and bits of since-granted slots)
// out, and the mask reset drops them for good.
func (r *Router) unparkPort(out *OutPort) {
	for i, w := range out.parked {
		if w == 0 {
			continue
		}
		out.parked[i] = 0
		if m := w & r.vaParked[i]; m != 0 {
			r.allocPend[i] |= m
			r.vaParked[i] &^= m
			r.vaParkedCount -= bits.OnesCount64(m)
		}
	}
}

// deliver buffers a flit arriving from the input link at port/VC.
func (r *Router) deliver(inPort int, f Flit) {
	vc := &r.In[inPort].VCs[f.VC]
	wasEmpty := vc.Buf.Empty()
	if !vc.Buf.Push(f) {
		panic(fmt.Sprintf("network: input buffer overflow at node %d port %d vc %d (credit protocol violated)", r.ID, inPort, f.VC))
	}
	r.buffered++
	slot := inPort*r.slotVCs + int(f.VC)
	if !vc.Active {
		if wasEmpty {
			vc.cacheHead(&f)
		}
		r.markPend(slot)
	} else {
		// Refill of an active VC: return it to the switch-stage ready
		// list (saSlotFast drops drained slots; see its empty check).
		r.saReady[slot>>6] |= 1 << (uint(slot) & 63)
	}
}

// deliverRun buffers a link's whole per-cycle arrival batch at inPort,
// grouping consecutive same-VC flits into bulk ring-buffer appends. Flits
// land in the same per-VC order as per-flit delivery (runs are taken left
// to right and different VCs go to different buffers), with one bounds
// check, one pend-mark and one counter update per run instead of per flit.
func (r *Router) deliverRun(inPort int, arr []Flit) {
	in := r.In[inPort]
	for i := 0; i < len(arr); {
		v := arr[i].VC
		j := i + 1
		for j < len(arr) && arr[j].VC == v {
			j++
		}
		vc := &in.VCs[v]
		wasEmpty := vc.Buf.Empty()
		if !vc.Buf.PushRun(arr[i:j]) {
			panic(fmt.Sprintf("network: input buffer overflow at node %d port %d vc %d (credit protocol violated)", r.ID, inPort, v))
		}
		slot := inPort*r.slotVCs + int(v)
		if !vc.Active {
			if wasEmpty {
				vc.cacheHead(&arr[i])
			}
			r.markPend(slot)
		} else {
			r.saReady[slot>>6] |= 1 << (uint(slot) & 63)
		}
		i = j
	}
	r.buffered += len(arr)
}

// tickContext carries the per-worker accumulation state of one router
// tick, so sequential and parallel stepping share one code path. reference
// selects the retained naive tick (full scans, per-cycle Route) used by
// the bit-identity oracle.
type tickContext struct {
	net       *Network
	scratch   *workerScratch
	tracer    Tracer
	reference bool
}

// tickCtx performs RC, VA and SA for one cycle (Sec. 7.1: all three
// complete in a single cycle at zero load).
func (r *Router) tickCtx(ctx *tickContext) {
	if r.buffered == 0 {
		return
	}
	if ctx.reference {
		r.tickReference(ctx)
		return
	}

	// Slots parked across this cycle fail VA by construction; charge each
	// its per-cycle failure statistic in one addition (the reference tick
	// revisits them and counts one each — same totals every cycle). Phase-1
	// unparks already ran; a phase-2 release unparks after this point and
	// the slot still counts this cycle, exactly like the reference scan
	// that runs before switch allocation.
	if r.vaParkedCount > 0 {
		ctx.scratch.vaFailures += uint64(r.vaParkedCount)
	}

	// --- Stage 1+2: routing computation and VC allocation.
	r.vaStage(ctx)

	// --- Stage 3: switch allocation with per-port budgets.
	r.switchAlloc(ctx)
}

// vaStage runs routing computation and VC allocation for every input VC
// whose front flit is a head without an output allocation. The allocPend
// bitmap yields exactly the slots the dense scan would have acted on, in
// the same ascending order. Split out of tickCtx so BenchmarkAllocate can
// measure the stage in isolation.
func (r *Router) vaStage(ctx *tickContext) {
	for wi, w := range r.allocPend {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			slot := wi<<6 + b
			s := &r.flat[slot]
			// The non-head panic of the dense scan moved to cacheHead: the
			// slot state read here was denormalized from a checked head.
			r.allocate(ctx, slot, int(s.ip), s.vc)
		}
	}
}

// tickReference is the retained naive router tick: a full port×VC rescan
// with Route re-evaluated on every VA retry, exactly the pre-work-list
// engine. It maintains the same incremental state (bitmaps, held masks,
// parking) through the shared helpers so the optimized and reference ticks
// are interchangeable per network, which is what the saturated-state
// bit-identity oracle exercises. Select it with SetReferenceTick before
// the first Step.
func (r *Router) tickReference(ctx *tickContext) {
	for ip, in := range r.In {
		for v := range in.VCs {
			vc := &in.VCs[v]
			if vc.Active || vc.Buf.Empty() {
				continue
			}
			head := vc.Buf.Front()
			if !head.IsHead() {
				panic(fmt.Sprintf("network: node %d port %d vc %d: non-head flit (pkt %d seq %d) at front of idle VC", r.ID, ip, v, head.Pkt.ID, head.Seq))
			}
			r.allocateReference(ctx, ip*r.slotVCs+v, ip, vc, head.Pkt)
		}
	}
	r.switchAlloc(ctx)
}

// grantVC commits a successful VC allocation for the slot. The head cache
// (headSeq 0, headLen) was populated by cacheHead when the head reached
// the front, so the switch stage starts from it unchanged.
func (r *Router) grantVC(slot int, vc *VCState, port int, outVC VCID) {
	vc.Active, vc.OutPort, vc.OutVC = true, port, outVC
	r.slotOut[slot] = int16(port)
	r.activeVCs++
	r.allocPend[slot>>6] &^= 1 << (uint(slot) & 63)
	r.saActive[slot>>6] |= 1 << (uint(slot) & 63)
	r.saReady[slot>>6] |= 1 << (uint(slot) & 63)
}

// vaFail records a VC-allocation failure (the retry happens next cycle).
// When the routing level guarantees the retry would recompute the same
// candidates, the slot parks on the candidate ports instead of rescanning
// every cycle — except under a tracer, whose per-cycle EvVAFail events
// need the revisits.
func (r *Router) vaFail(ctx *tickContext, slot int, vc *VCState, pktID uint64, restricted bool, cands []Candidate) {
	vc.candsPkt, vc.candsRestricted = pktID, restricted
	ctx.scratch.vaFailures++
	if ctx.tracer != nil {
		ctx.tracer.Trace(Event{Cycle: ctx.net.Now, Kind: EvVAFail, Pkt: pktID, Node: r.ID})
		return
	}
	if ctx.net.stability >= RouteRetryStable {
		r.parkVA(slot, cands)
	}
}

// allocate runs RC+VA for the packet at the front of vc.
//
// Hot-path structure (all bit-identical to allocateReference):
//   - a failing slot parks on the output ports its candidates name until a
//     credit arrival or output-VC release there can change the outcome
//     (vaFail/parkVA/unparkPort), so retries are not even visited;
//   - RoutePure algorithms read candidates from the route LUT;
//   - RouteRetryStable algorithms reuse the candidate set cached on the
//     VC while the same packet waits with an unchanged Restricted flag;
//   - RouteDynamic algorithms re-invoke Route every cycle.
func (r *Router) allocate(ctx *tickContext, slot, inPort int, vc *VCState) {
	net := ctx.net
	if net.LivelockHopBound > 0 && !vc.headRestricted {
		if pkt := vc.Buf.FrontPkt(); pkt.Hops() > net.LivelockHopBound {
			pkt.Restricted = true
			vc.headRestricted = true
		}
	}
	if vc.headDst == r.ID {
		// Ejection: always allocatable; rate-limited in SA.
		r.grantVC(slot, vc, r.EjectPort, 0)
		return
	}
	if wi, bit := slot>>6, uint64(1)<<(uint(slot)&63); r.vaParked[wi]&bit != 0 {
		// The slot is parked (so no watched output changed since its last
		// failure) but a mid-wait flit delivery re-marked it pending: the
		// retry would fail identically, and the bulk accounting in tickCtx
		// already charged it this cycle. Drop the spurious mark. The key
		// check guards the (contract-violating, e.g. a LivelockHopBound
		// change mid-run) case where the packet state moved under a parked
		// slot: unpark and rescan.
		if vc.candsPkt == vc.headPktID && vc.candsRestricted == vc.headRestricted {
			r.allocPend[wi] &^= bit
			return
		}
		r.vaParked[wi] &^= bit
		r.vaParkedCount--
	}
	var cands []Candidate
	var adaptivePorts uint64
	switch {
	case net.lut != nil:
		cands, adaptivePorts = net.lut.lookupFrom(r.lutBase, vc.headDst, vc.headRestricted)
	case net.stability >= RouteRetryStable && vc.candsPkt == vc.headPktID && vc.candsRestricted == vc.headRestricted:
		cands = vc.cands
		adaptivePorts = adaptiveMask(cands)
	default:
		pkt := vc.Buf.FrontPkt()
		cands = net.Routing.Route(net, r, inPort, pkt, r.cands[:0])
		r.cands = cands[:0] // keep capacity
		// A RouteRetryStable function may set Restricted (part of its
		// reuse key); re-sync the denormalized copy.
		vc.headRestricted = pkt.Restricted
		if net.stability >= RouteRetryStable {
			vc.cands = append(vc.cands[:0], cands...)
			vc.candsPkt, vc.candsRestricted = pkt.ID, pkt.Restricted
			cands = vc.cands
		}
		adaptivePorts = adaptiveMask(cands)
	}
	if len(cands) == 0 {
		panic(fmt.Sprintf("network: routing %q returned no candidates at node %d for packet %d -> %d", net.Routing.Name(), r.ID, vc.headPktID, vc.headDst))
	}

	sawAdaptive := false
	for i := range cands {
		c := &cands[i]
		out := r.Out[c.Port]
		if out.Link == nil {
			r.grantVC(slot, vc, c.Port, 0)
			return
		}
		if !c.Escape {
			sawAdaptive = true
		}
		// Pick the allowed free output VC with the most credits, under
		// virtual cut-through admission (see allocateReference for the
		// rationale). elig masks out held VCs in one operation; the bit
		// scans below preserve the exact class-affinity tie-breaks of the
		// reference scan: latency-sensitive packets take the highest
		// eligible VC, bulk throughput the lowest, other classes the
		// lowest among those with the most credits.
		need := min(int(vc.headLen), out.Depth)
		if net.Cfg.WormholeAdmission {
			need = 1
		}
		elig := c.VCMask & out.vcLimit &^ out.heldMask
		best, bestCred := -1, need-1
		switch vc.headClass {
		case ClassThroughput:
			for m := elig; m != 0; m &= m - 1 {
				ov := bits.TrailingZeros16(m)
				if out.Credits[ov] >= need {
					best = ov
					break
				}
			}
		case ClassLatencySensitive:
			for m := elig; m != 0; {
				ov := bits.Len16(m) - 1
				m &^= 1 << uint(ov)
				if out.Credits[ov] >= need {
					best = ov
					break
				}
			}
		default:
			for m := elig; m != 0; m &= m - 1 {
				ov := bits.TrailingZeros16(m)
				if cr := out.Credits[ov]; cr > bestCred {
					best, bestCred = ov, cr
				}
			}
		}
		if best < 0 {
			continue
		}
		if c.Escape && sawAdaptive && (c.Port >= 64 || adaptivePorts&(1<<uint(c.Port)) == 0) {
			// Livelock channel-switch restriction (Sec. 6.2): see
			// allocateReference. Written through to the canonical Packet.
			vc.Buf.FrontPkt().Restricted = true
			vc.headRestricted = true
		}
		out.setHeld(best)
		r.grantVC(slot, vc, c.Port, VCID(best))
		return
	}
	// Nothing allocatable this cycle; retry next cycle.
	r.vaFail(ctx, slot, vc, vc.headPktID, vc.headRestricted, cands)
}

// allocateReference is the retained naive RC+VA: Route re-evaluated every
// cycle, per-VC credit scan over the Held array. It is the reference the
// optimized allocate is verified against and must not be "optimized".
func (r *Router) allocateReference(ctx *tickContext, slot, inPort int, vc *VCState, pkt *Packet) {
	net := ctx.net
	if net.LivelockHopBound > 0 && !pkt.Restricted && pkt.Hops() > net.LivelockHopBound {
		pkt.Restricted = true
	}
	var cands []Candidate
	if pkt.Dst == r.ID {
		cands = append(r.cands[:0], Candidate{Port: r.EjectPort, VCMask: 1, Escape: true})
	} else {
		cands = net.Routing.Route(net, r, inPort, pkt, r.cands[:0])
		if len(cands) == 0 {
			panic(fmt.Sprintf("network: routing %q returned no candidates at node %d for packet %d -> %d", net.Routing.Name(), r.ID, pkt.ID, pkt.Dst))
		}
	}
	r.cands = cands[:0] // keep capacity

	sawAdaptive := false
	adaptivePorts := uint64(0)
	for _, c := range cands {
		if !c.Escape && c.Port < 64 {
			adaptivePorts |= 1 << uint(c.Port)
		}
	}
	for _, c := range cands {
		out := r.Out[c.Port]
		if out.Link == nil {
			// Ejection: always allocatable; rate-limited in SA.
			r.grantVC(slot, vc, c.Port, 0)
			return
		}
		if !c.Escape {
			sawAdaptive = true
		}
		// Pick the allowed free output VC with the most credits. Admission
		// is virtual cut-through: the downstream buffer must have room for
		// the whole packet, which (with buffers ≥ packet length, as in all
		// Table 2 configurations) makes the escape-channel constructions
		// of the routing algorithms deadlock-free without indirect-
		// dependency caveats.
		need := min(pkt.Length, out.Depth)
		if net.Cfg.WormholeAdmission {
			need = 1
		}
		best, bestCred := -1, need-1
		for ov := 0; ov < len(out.Credits); ov++ {
			if c.VCMask&(1<<uint(ov)) == 0 || out.Held[ov] {
				continue
			}
			cr := out.Credits[ov]
			if cr < need {
				continue
			}
			if best < 0 {
				best, bestCred = ov, cr
				continue
			}
			// Class-based VC affinity: latency-sensitive packets prefer
			// the highest eligible VC, bulk throughput the lowest, so the
			// two classes avoid sharing a VC (per-VC delivery order would
			// otherwise couple control latency to bulk transfers at
			// heterogeneous interfaces). Other classes take the VC with
			// the most credits.
			switch pkt.Class {
			case ClassLatencySensitive:
				best, bestCred = ov, cr // keep scanning upward
			case ClassThroughput:
				// keep the first (lowest) eligible VC
			default:
				if cr > bestCred {
					best, bestCred = ov, cr
				}
			}
		}
		if best < 0 {
			continue
		}
		if c.Escape && sawAdaptive && (c.Port >= 64 || adaptivePorts&(1<<uint(c.Port)) == 0) {
			// Livelock channel-switch restriction (Sec. 6.2): the packet
			// fell back to the escape subnetwork because the adaptive
			// channels on its minimal paths were congested; from now on it
			// may only use adaptive channels consistent with the baseline
			// routing function. Taking the escape VC of a port that is
			// itself an adaptive candidate is not a fallback — the physical
			// direction stays adaptive-consistent — so it does not restrict
			// the packet.
			pkt.Restricted = true
		}
		out.setHeld(best)
		r.grantVC(slot, vc, c.Port, VCID(best))
		return
	}
	// Nothing allocatable this cycle; retry next cycle.
	r.vaFail(ctx, slot, vc, pkt.ID, pkt.Restricted, cands)
}

// switchAlloc grants crossbar passage to active input VCs, respecting link
// accept rates, credits, per-input drain budgets and the regular-vs-
// heterogeneous crossbar constraints. The optimized arbitration walks only
// the saActive bitmap, starting from the round-robin pointer and wrapping,
// which visits exactly the slots the flattened scan would have granted —
// in the same order; the reference tick keeps the dense scan.
func (r *Router) switchAlloc(ctx *tickContext) {
	if r.activeVCs == 0 {
		return
	}
	nOut, nIn := len(r.Out), len(r.In)
	if cap(r.outSlots) < nOut || cap(r.inUsed) < nIn {
		// One backing array: the four per-cycle budget counters of a
		// typical-radix router fit in two cache lines instead of four
		// scattered allocations.
		sa := make([]int, 2*nOut+2*nIn)
		r.outSlots = sa[:nOut:nOut]
		r.outVCs = sa[nOut : 2*nOut : 2*nOut]
		r.inUsed = sa[2*nOut : 2*nOut+nIn : 2*nOut+nIn]
		r.inVCs = sa[2*nOut+nIn:]
	}
	outSlots, outVCs := r.outSlots[:nOut], r.outVCs[:nOut]
	inUsed, inVCs := r.inUsed[:nIn], r.inVCs[:nIn]
	copy(outSlots, r.outBase)
	outAvail := r.outAvailBase
	for _, i := range r.outDyn {
		outSlots[i] = r.Out[i].Link.FreeSlots()
		if outSlots[i] > 0 {
			outAvail++
		}
	}
	for i := range outVCs {
		outVCs[i] = 0
	}
	for i := range inUsed {
		inUsed[i] = 0
		inVCs[i] = 0
	}

	// Flattened round-robin over (input port, VC). rr stays < total except
	// right after a topology rebuild shrank flat, so the wrap is a compare,
	// not a division.
	total := len(r.flat)
	start := r.rr
	if start >= total {
		start %= total
	}
	r.rr = start + 1
	if r.rr == total {
		r.rr = 0
	}

	if ctx.reference {
		// Reference: iterate every slot starting from the round-robin
		// pointer, moving flits one at a time.
		for off := 0; off < total; off++ {
			slot := (start + off) % total
			r.saSlot(ctx, slot, outSlots, outVCs, inUsed, inVCs)
		}
		return
	}

	// Optimized: iterate the set bits of saReady (active slots not parked
	// on an empty credit counter) from the round-robin pointer, wrapping
	// once. Bits at or after start first (high part of the start word
	// masked), then the bits before start. The scan stops as soon as no
	// output or no input can take another grant (see outAvail) — regular
	// crossbars hit that after a handful of grants, long before the
	// ready-slot list is exhausted.
	r.outAvail, r.inAvail = outAvail, r.inBudgeted
	startWord, startBit := start>>6, uint(start)&63
	w := r.saReady[startWord] &^ (1<<startBit - 1)
	for wi := startWord; ; {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			r.saSlotFast(ctx, wi<<6+b, outSlots, outVCs, inUsed, inVCs)
			if r.outAvail == 0 || r.inAvail == 0 {
				return
			}
		}
		wi++
		if wi == len(r.saReady) {
			break
		}
		w = r.saReady[wi]
	}
	for wi := 0; wi <= startWord; wi++ {
		w = r.saReady[wi]
		if wi == startWord {
			w &= 1<<startBit - 1
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			r.saSlotFast(ctx, wi<<6+b, outSlots, outVCs, inUsed, inVCs)
			if r.outAvail == 0 || r.inAvail == 0 {
				return
			}
		}
	}
}

// saSlotFast is saSlot with the per-flit movement loop replaced by one
// bulk run transfer. The key structural fact: an output VC is Held by
// exactly one packet until its tail passes, so the flits of a packet are
// contiguous in its input VC buffer and the grantable run length is
// computable up front — min(budget, buffered flits, flits to the tail).
// The whole run then moves with one credit-batch, one counter update and
// one bulk link append instead of per-flit calls. Per-flit energy
// additions keep the reference path's exact field-by-field order (float
// addition order is part of bit-identity).
func (r *Router) saSlotFast(ctx *tickContext, slot int, outSlots, outVCs, inUsed, inVCs []int) {
	// The granted output port is denormalized into the compact slotOut
	// slab, so a slot whose output is already spent this cycle is
	// rejected before its VCState cache line is ever touched. The
	// reorder is behavior-neutral: every rejecting check is side-effect
	// free, and the empty-slot saReady clearing below is an idempotent
	// optimization the refill sites never depend on.
	op := int(r.slotOut[slot])
	if outSlots[op] <= 0 {
		return
	}
	out := r.Out[op]
	if !out.Interface && outVCs[op] >= 1 {
		return
	}
	s := &r.flat[slot]
	vc := s.vc
	if !vc.Active || vc.Buf.Empty() {
		// An active slot drained empty mid-packet cannot progress until
		// its next flit arrives; the refill sites (deliver, deliverRun,
		// commitDirect, injection) put it back. Clearing here also
		// self-heals the saActive seed rebuildWork copies into saReady.
		r.saReady[slot>>6] &^= 1 << (uint(slot) & 63)
		return
	}
	in := s.in
	ip := int(s.ip)
	if inUsed[ip] >= in.DrainBudget {
		return
	}
	if !in.Interface && inVCs[ip] >= 1 {
		return
	}
	if out.slow {
		// Adapter and retry links do per-flit protocol work in Accept;
		// keep the per-flit path for them.
		r.saSlot(ctx, slot, outSlots, outVCs, inUsed, inVCs)
		return
	}
	budget := min(outSlots[op], in.DrainBudget-inUsed[ip])
	if out.Link != nil {
		cr := out.Credits[vc.OutVC]
		if cr == 0 {
			// Credit-starved: the held output VC cannot accept a flit until
			// its refilling credit completes, and only this slot drains that
			// counter — drop off the ready list until then (see saReady).
			r.saReady[slot>>6] &^= 1 << (uint(slot) & 63)
			out.waitSlot[vc.OutVC] = int32(slot)
			return
		}
		budget = min(budget, cr)
	}
	net := ctx.net
	headSeq := vc.headSeq
	remain := int(vc.headLen - headSeq) // flits up to and including the tail
	n := min(budget, vc.Buf.Len(), remain)
	tailSent := n == remain
	a, b := vc.Buf.PeekRun(n)
	routerPJ := net.Cfg.RouterPJPerFlit
	if in.Link != nil {
		in.Link.ReturnCredits(VCID(s.v), n)
		if !in.Link.crQueued {
			in.Link.crQueued = true
			ctx.scratch.wokeCr = append(ctx.scratch.wokeCr, int32(in.Link.ID))
		}
	}
	if out.Link == nil {
		// Ejection: fold each flit's accumulated energy into the packet in
		// arrival order.
		pkt := vc.Buf.FrontPkt()
		for _, chunk := range [2][]Flit{a, b} {
			for i := range chunk {
				f := &chunk[i]
				pkt.EnergyPJ += f.EnergyPJ + routerPJ
				pkt.EnergyOnChipPJ += f.EnergyOnChipPJ + routerPJ
				pkt.EnergyIfacePJ += f.EnergyIfacePJ
			}
		}
		ctx.scratch.grantsByKind[KindLocal] += uint64(n)
		if tailSent {
			ctx.scratch.flitsOut += int64(pkt.Length)
			ctx.scratch.pktsOut++
			ctx.scratch.finished = append(ctx.scratch.finished, pkt)
		}
	} else {
		if headSeq == 0 {
			pkt := vc.Buf.FrontPkt()
			if ctx.tracer != nil {
				ctx.tracer.Trace(Event{Cycle: net.Now, Kind: EvHop, Pkt: pkt.ID, Node: r.ID, Port: vc.OutPort, VC: vc.OutVC, Kind2: out.Kind})
			}
			switch out.Kind {
			case KindOnChip:
				pkt.HopsOnChip++
			case KindParallel:
				pkt.HopsParallel++
			case KindSerial:
				pkt.HopsSerial++
			case KindHeteroPHY:
				pkt.HopsHetero++
			}
		}
		ctx.scratch.grantsByKind[out.Kind] += uint64(n)
		out.Credits[vc.OutVC] -= n
		if net.Cfg.CheckInvariants && out.Credits[vc.OutVC] < 0 {
			panic("network: negative credits (switch allocation over-granted)")
		}
		if !out.Link.fwdQueued {
			out.Link.fwdQueued = true
			ctx.scratch.wokeFwd = append(ctx.scratch.wokeFwd, int32(out.Link.ID))
		}
		out.Link.AcceptRun(a, b, vc.OutVC, routerPJ)
	}
	vc.Buf.Drop(n)
	vc.headSeq = headSeq + int32(n)
	r.buffered -= n
	if tailSent {
		if out.Link != nil {
			// Freeing an output VC can unblock allocations parked on this
			// port; return them to the pending set (effective next cycle,
			// the same cycle a rescan would first succeed).
			out.clearHeld(vc.OutVC)
			r.unparkPort(out)
		}
		vc.Active = false
		r.activeVCs--
		r.saActive[slot>>6] &^= 1 << (uint(slot) & 63)
		r.saReady[slot>>6] &^= 1 << (uint(slot) & 63)
		if !vc.Buf.Empty() {
			vc.cacheHead(vc.Buf.frontRef())
			r.markPend(slot)
		}
	}
	outSlots[op] -= n
	outVCs[op]++
	if outSlots[op] <= 0 || !out.Interface {
		r.outAvail--
	}
	inUsed[ip] += n
	inVCs[ip]++
	if inUsed[ip] >= in.DrainBudget || !in.Interface {
		r.inAvail--
	}
	ctx.scratch.moved += uint64(n)
}

// saSlot arbitrates one flattened (input port, VC) slot within the current
// switch-allocation pass. Shared by the optimized and reference paths.
func (r *Router) saSlot(ctx *tickContext, slot int, outSlots, outVCs, inUsed, inVCs []int) {
	s := &r.flat[slot]
	vc := s.vc
	if !vc.Active || vc.Buf.Empty() {
		return
	}
	in := s.in
	ip := int(s.ip)
	if inUsed[ip] >= in.DrainBudget {
		return
	}
	if !in.Interface && inVCs[ip] >= 1 {
		return // regular crossbar: one VC per input port per cycle
	}
	op := vc.OutPort
	out := r.Out[op]
	if outSlots[op] <= 0 {
		return
	}
	if !out.Interface && outVCs[op] >= 1 {
		return // regular crossbar: one input VC per output per cycle
	}
	budget := min(outSlots[op], in.DrainBudget-inUsed[ip])
	if out.Link != nil {
		budget = min(budget, out.Credits[vc.OutVC])
	}
	if budget <= 0 {
		return
	}
	pkt := vc.Buf.FrontPkt()
	sent := 0
	for sent < budget && !vc.Buf.Empty() && vc.Buf.FrontPkt() == pkt {
		f := vc.Buf.Pop()
		vc.headSeq++ // keep the head cache in step with per-flit drains
		r.buffered--
		sent++
		r.forward(ctx, in, vc, out, VCID(s.v), f)
		if f.IsTail() {
			// Release the output VC and the input VC allocation. Freeing an
			// output VC can unblock allocations parked on this port.
			if out.Link != nil {
				out.clearHeld(vc.OutVC)
				r.unparkPort(out)
			}
			vc.Active = false
			r.activeVCs--
			r.saActive[slot>>6] &^= 1 << (uint(slot) & 63)
			r.saReady[slot>>6] &^= 1 << (uint(slot) & 63)
			if !vc.Buf.Empty() {
				// The next packet's head is already waiting behind the
				// tail: queue it for RC+VA next cycle.
				vc.cacheHead(vc.Buf.frontRef())
				r.markPend(slot)
			}
			break
		}
	}
	if sent > 0 {
		outSlots[op] -= sent
		outVCs[op]++
		inUsed[ip] += sent
		inVCs[ip]++
		ctx.scratch.moved += uint64(sent)
	}
}

// forward moves one granted flit from an input VC to its output.
func (r *Router) forward(ctx *tickContext, in *InPort, vc *VCState, out *OutPort, inVC VCID, f Flit) {
	net := ctx.net
	pkt := f.Pkt
	f.EnergyPJ += net.Cfg.RouterPJPerFlit
	f.EnergyOnChipPJ += net.Cfg.RouterPJPerFlit
	// Return a credit to the upstream router and put the link's credit
	// pipeline on the wake list; the scratch list is folded into the
	// engine's per-shard lists at the merge barrier.
	if in.Link != nil {
		in.Link.ReturnCredit(inVC)
		if !in.Link.crQueued {
			in.Link.crQueued = true
			ctx.scratch.wokeCr = append(ctx.scratch.wokeCr, int32(in.Link.ID))
		}
	}
	if out.Link == nil {
		// Ejection: fold the flit's accumulated energy into the packet
		// (the destination router is the packet's single writer here).
		pkt.EnergyPJ += f.EnergyPJ
		pkt.EnergyOnChipPJ += f.EnergyOnChipPJ
		pkt.EnergyIfacePJ += f.EnergyIfacePJ
		ctx.scratch.grantsByKind[KindLocal]++
		if f.IsTail() {
			ctx.scratch.flitsOut += int64(pkt.Length)
			ctx.scratch.pktsOut++
			ctx.scratch.finished = append(ctx.scratch.finished, pkt)
		}
		return
	}
	if f.IsHead() {
		if ctx.tracer != nil {
			ctx.tracer.Trace(Event{Cycle: net.Now, Kind: EvHop, Pkt: pkt.ID, Node: r.ID, Port: vc.OutPort, VC: vc.OutVC, Kind2: out.Kind})
		}
		switch out.Kind {
		case KindOnChip:
			pkt.HopsOnChip++
		case KindParallel:
			pkt.HopsParallel++
		case KindSerial:
			pkt.HopsSerial++
		case KindHeteroPHY:
			pkt.HopsHetero++
		}
	}
	ctx.scratch.grantsByKind[out.Kind]++
	out.Credits[vc.OutVC]--
	if net.Cfg.CheckInvariants && out.Credits[vc.OutVC] < 0 {
		panic("network: negative credits (switch allocation over-granted)")
	}
	f.VC = vc.OutVC
	if !out.Link.fwdQueued {
		out.Link.fwdQueued = true
		ctx.scratch.wokeFwd = append(ctx.scratch.wokeFwd, int32(out.Link.ID))
	}
	out.Link.Accept(net.Now, f)
}
