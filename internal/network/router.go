package network

import "fmt"

// Candidate is one output channel option produced by a routing function:
// an output port plus the set of virtual channels the packet may request on
// it. Escape marks channels belonging to the baseline deadlock-free
// subnetwork C0 (Algorithm 1, line 5): they are always safe to take, while
// non-escape (adaptive) channels are preferred shortcuts.
type Candidate struct {
	Port   int
	VCMask uint16
	Escape bool
}

// Routing computes candidate output channels for a packet whose head flit
// sits at router r, having arrived through input port inPort (the injection
// port for freshly injected packets). Implementations append to buf and
// return it, to avoid per-call allocation. Candidates must be ordered by
// preference; the router picks the first allocatable one. Routing functions
// must guarantee that at least one escape candidate is connected toward the
// destination (Lemma 1).
type Routing interface {
	Route(net *Network, r *Router, inPort int, pkt *Packet, buf []Candidate) []Candidate
	Name() string
}

// VCState is one virtual-channel input buffer and its allocation state.
type VCState struct {
	Buf *FlitQueue

	// Active is true while the packet at the front of Buf holds an output
	// VC; OutPort/OutVC identify it. The allocation is released when the
	// packet's tail flit traverses the switch.
	Active  bool
	OutPort int
	OutVC   VCID
}

// InPort is a router input: the upstream link (nil for the injection port)
// and one buffer per VC.
type InPort struct {
	Link *Link
	Kind LinkKind
	// DrainBudget bounds how many flits this input may push through the
	// crossbar per cycle (the upstream channel bandwidth).
	DrainBudget int
	// Interface marks die-to-die inputs: the heterogeneous router's
	// multi-port input buffer may drain several VCs of such a port in one
	// cycle (Sec. 4.1); regular inputs drain one VC per cycle.
	Interface bool
	VCs       []VCState
}

// OutPort is a router output: the downstream link (nil for the ejection
// port), per-VC credit counters and output-VC allocation state.
type OutPort struct {
	Link *Link
	Kind LinkKind
	// Depth is the per-VC downstream buffer depth.
	Depth int
	// Credits tracks free buffer slots per downstream VC.
	Credits []int
	// Held marks output VCs currently allocated to an in-flight packet.
	Held []bool
	// Interface marks die-to-die outputs: the higher-radix crossbar lets
	// several input VCs feed such an output concurrently (Sec. 4.1);
	// regular outputs accept one input VC per cycle.
	Interface bool
}

// Router is a canonical virtual-channel router (Sec. 7.1), extended at
// interface ports with the paper's heterogeneous-router microarchitecture.
type Router struct {
	ID  NodeID
	In  []*InPort
	Out []*OutPort

	// InjectPort and EjectPort index the local ports in In and Out.
	InjectPort int
	EjectPort  int

	buffered  int // total flits across all input VC buffers (activity)
	activeVCs int // input VCs holding an output allocation
	rr        int // round-robin arbitration pointer

	// flat maps a flattened arbitration slot to its (input port, VC).
	flat []portVC

	// scratch buffers reused across cycles
	cands    []Candidate
	outSlots []int
	outVCs   []int // input VCs granted per output this cycle
	inUsed   []int // flits drained per input this cycle
	inVCs    []int // VCs granted per input this cycle
}

// portVC is one flattened arbitration slot.
type portVC struct{ port, vc int32 }

// newRouter constructs a router with only local ports; topology builders add
// link ports via AddInPort/AddOutPort.
func newRouter(cfg *Config, id NodeID) *Router {
	r := &Router{ID: id, InjectPort: 0, EjectPort: 0}
	// Injection input port.
	inj := &InPort{Kind: KindLocal, DrainBudget: cfg.InjectionBandwidth}
	inj.VCs = make([]VCState, cfg.VCs)
	for i := range inj.VCs {
		inj.VCs[i].Buf = NewFlitQueue(cfg.BufPerVC(KindLocal))
	}
	r.In = append(r.In, inj)
	// Ejection output port: no link, no credits needed beyond rate limit.
	ej := &OutPort{Kind: KindLocal, Interface: true}
	r.Out = append(r.Out, ej)
	return r
}

// AddInPort attaches the sink side of a link and returns the new input-port
// index.
func (r *Router) AddInPort(cfg *Config, l *Link) int {
	p := &InPort{
		Link:        l,
		Kind:        l.Kind,
		DrainBudget: l.Bandwidth,
		Interface:   l.Kind != KindOnChip,
	}
	p.VCs = make([]VCState, cfg.VCs)
	depth := cfg.BufPerVC(l.Kind)
	for i := range p.VCs {
		p.VCs[i].Buf = NewFlitQueue(depth)
	}
	r.In = append(r.In, p)
	return len(r.In) - 1
}

// AddOutPort attaches the source side of a link and returns the new
// output-port index.
func (r *Router) AddOutPort(cfg *Config, l *Link) int {
	p := &OutPort{
		Link:      l,
		Kind:      l.Kind,
		Interface: l.Kind != KindOnChip,
	}
	depth := cfg.BufPerVC(l.Kind)
	p.Depth = depth
	p.Credits = make([]int, cfg.VCs)
	p.Held = make([]bool, cfg.VCs)
	for i := range p.Credits {
		p.Credits[i] = depth
	}
	r.Out = append(r.Out, p)
	return len(r.Out) - 1
}

// deliver buffers a flit arriving from the input link at port/VC.
func (r *Router) deliver(inPort int, f Flit) {
	vc := &r.In[inPort].VCs[f.VC]
	if !vc.Buf.Push(f) {
		panic(fmt.Sprintf("network: input buffer overflow at node %d port %d vc %d (credit protocol violated)", r.ID, inPort, f.VC))
	}
	r.buffered++
}

// tickContext carries the per-worker accumulation state of one router
// tick, so sequential and parallel stepping share one code path.
type tickContext struct {
	net     *Network
	scratch *workerScratch
	tracer  Tracer
}

// tickCtx performs RC, VA and SA for one cycle (Sec. 7.1: all three
// complete in a single cycle at zero load).
func (r *Router) tickCtx(ctx *tickContext) {
	if r.buffered == 0 {
		return
	}

	// --- Stage 1+2: routing computation and VC allocation for every input
	// VC whose front flit is a head without an output allocation.
	for ip, in := range r.In {
		for v := range in.VCs {
			vc := &in.VCs[v]
			if vc.Active || vc.Buf.Empty() {
				continue
			}
			head := vc.Buf.Front()
			if !head.IsHead() {
				panic(fmt.Sprintf("network: node %d port %d vc %d: non-head flit (pkt %d seq %d) at front of idle VC", r.ID, ip, v, head.Pkt.ID, head.Seq))
			}
			r.allocate(ctx, ip, v, vc, head.Pkt)
		}
	}

	// --- Stage 3: switch allocation with per-port budgets.
	r.switchAlloc(ctx)
}

// allocate runs RC+VA for the packet at the front of vc.
func (r *Router) allocate(ctx *tickContext, inPort, inVC int, vc *VCState, pkt *Packet) {
	net := ctx.net
	if net.LivelockHopBound > 0 && !pkt.Restricted && pkt.Hops() > net.LivelockHopBound {
		pkt.Restricted = true
	}
	var cands []Candidate
	if pkt.Dst == r.ID {
		cands = append(r.cands[:0], Candidate{Port: r.EjectPort, VCMask: 1, Escape: true})
	} else {
		cands = net.Routing.Route(net, r, inPort, pkt, r.cands[:0])
		if len(cands) == 0 {
			panic(fmt.Sprintf("network: routing %q returned no candidates at node %d for packet %d -> %d", net.Routing.Name(), r.ID, pkt.ID, pkt.Dst))
		}
	}
	r.cands = cands[:0] // keep capacity

	sawAdaptive := false
	adaptivePorts := uint64(0)
	for _, c := range cands {
		if !c.Escape && c.Port < 64 {
			adaptivePorts |= 1 << c.Port
		}
	}
	for _, c := range cands {
		out := r.Out[c.Port]
		if out.Link == nil {
			// Ejection: always allocatable; rate-limited in SA.
			vc.Active, vc.OutPort, vc.OutVC = true, c.Port, 0
			r.activeVCs++
			return
		}
		if !c.Escape {
			sawAdaptive = true
		}
		// Pick the allowed free output VC with the most credits. Admission
		// is virtual cut-through: the downstream buffer must have room for
		// the whole packet, which (with buffers ≥ packet length, as in all
		// Table 2 configurations) makes the escape-channel constructions
		// of the routing algorithms deadlock-free without indirect-
		// dependency caveats.
		need := min(pkt.Length, out.Depth)
		if net.Cfg.WormholeAdmission {
			need = 1
		}
		best, bestCred := -1, need-1
		for ov := 0; ov < len(out.Credits); ov++ {
			if c.VCMask&(1<<ov) == 0 || out.Held[ov] {
				continue
			}
			cr := out.Credits[ov]
			if cr < need {
				continue
			}
			if best < 0 {
				best, bestCred = ov, cr
				continue
			}
			// Class-based VC affinity: latency-sensitive packets prefer
			// the highest eligible VC, bulk throughput the lowest, so the
			// two classes avoid sharing a VC (per-VC delivery order would
			// otherwise couple control latency to bulk transfers at
			// heterogeneous interfaces). Other classes take the VC with
			// the most credits.
			switch pkt.Class {
			case ClassLatencySensitive:
				best, bestCred = ov, cr // keep scanning upward
			case ClassThroughput:
				// keep the first (lowest) eligible VC
			default:
				if cr > bestCred {
					best, bestCred = ov, cr
				}
			}
		}
		if best < 0 {
			continue
		}
		if c.Escape && sawAdaptive && (c.Port >= 64 || adaptivePorts&(1<<c.Port) == 0) {
			// Livelock channel-switch restriction (Sec. 6.2): the packet
			// fell back to the escape subnetwork because the adaptive
			// channels on its minimal paths were congested; from now on it
			// may only use adaptive channels consistent with the baseline
			// routing function. Taking the escape VC of a port that is
			// itself an adaptive candidate is not a fallback — the physical
			// direction stays adaptive-consistent — so it does not restrict
			// the packet.
			pkt.Restricted = true
		}
		out.Held[best] = true
		vc.Active, vc.OutPort, vc.OutVC = true, c.Port, VCID(best)
		r.activeVCs++
		return
	}
	// Nothing allocatable this cycle; retry next cycle.
	ctx.scratch.vaFailures++
	if ctx.tracer != nil {
		ctx.tracer.Trace(Event{Cycle: net.Now, Kind: EvVAFail, Pkt: pkt.ID, Node: r.ID})
	}
}

// switchAlloc grants crossbar passage to active input VCs, respecting link
// accept rates, credits, per-input drain budgets and the regular-vs-
// heterogeneous crossbar constraints.
func (r *Router) switchAlloc(ctx *tickContext) {
	if r.activeVCs == 0 {
		return
	}
	net := ctx.net
	nOut, nIn := len(r.Out), len(r.In)
	if cap(r.outSlots) < nOut {
		r.outSlots = make([]int, nOut)
		r.outVCs = make([]int, nOut)
	}
	if cap(r.inUsed) < nIn {
		r.inUsed = make([]int, nIn)
		r.inVCs = make([]int, nIn)
	}
	outSlots, outVCs := r.outSlots[:nOut], r.outVCs[:nOut]
	inUsed, inVCs := r.inUsed[:nIn], r.inVCs[:nIn]
	for i, out := range r.Out {
		if out.Link != nil {
			outSlots[i] = out.Link.FreeSlots()
		} else {
			outSlots[i] = net.Cfg.EjectionBandwidth
		}
		outVCs[i] = 0
	}
	for i := range inUsed {
		inUsed[i] = 0
		inVCs[i] = 0
	}

	// Flattened round-robin over (input port, VC).
	if r.flat == nil {
		for ip, in := range r.In {
			for v := range in.VCs {
				r.flat = append(r.flat, portVC{int32(ip), int32(v)})
			}
		}
	}
	total := len(r.flat)
	start := r.rr % total
	r.rr = (r.rr + 1) % total

	// Iterate starting from the round-robin pointer.
	for off := 0; off < total; off++ {
		slot := (start + off) % total
		ip, v := int(r.flat[slot].port), int(r.flat[slot].vc)
		in := r.In[ip]
		vc := &in.VCs[v]
		if !vc.Active || vc.Buf.Empty() {
			continue
		}
		if inUsed[ip] >= in.DrainBudget {
			continue
		}
		if !in.Interface && inVCs[ip] >= 1 {
			continue // regular crossbar: one VC per input port per cycle
		}
		op := vc.OutPort
		out := r.Out[op]
		if outSlots[op] <= 0 {
			continue
		}
		if !out.Interface && outVCs[op] >= 1 {
			continue // regular crossbar: one input VC per output per cycle
		}
		budget := min(outSlots[op], in.DrainBudget-inUsed[ip])
		if out.Link != nil {
			budget = min(budget, out.Credits[vc.OutVC])
		}
		if budget <= 0 {
			continue
		}
		pkt := vc.Buf.Front().Pkt
		sent := 0
		for sent < budget && !vc.Buf.Empty() && vc.Buf.Front().Pkt == pkt {
			f := vc.Buf.Pop()
			r.buffered--
			sent++
			r.forward(ctx, in, vc, out, VCID(v), f)
			if f.IsTail() {
				// Release the output VC and the input VC allocation.
				if out.Link != nil {
					out.Held[vc.OutVC] = false
				}
				vc.Active = false
				r.activeVCs--
				break
			}
		}
		if sent > 0 {
			outSlots[op] -= sent
			outVCs[op]++
			inUsed[ip] += sent
			inVCs[ip]++
			ctx.scratch.moved += uint64(sent)
		}
	}
}

// forward moves one granted flit from an input VC to its output.
func (r *Router) forward(ctx *tickContext, in *InPort, vc *VCState, out *OutPort, inVC VCID, f Flit) {
	net := ctx.net
	pkt := f.Pkt
	f.EnergyPJ += net.Cfg.RouterPJPerFlit
	f.EnergyOnChipPJ += net.Cfg.RouterPJPerFlit
	// Return a credit to the upstream router and put the link's credit
	// pipeline on the wake list; the scratch list is folded into the
	// engine's per-shard lists at the merge barrier.
	if in.Link != nil {
		in.Link.ReturnCredit(inVC)
		if !in.Link.crQueued {
			in.Link.crQueued = true
			ctx.scratch.wokeCr = append(ctx.scratch.wokeCr, int32(in.Link.ID))
		}
	}
	if out.Link == nil {
		// Ejection: fold the flit's accumulated energy into the packet
		// (the destination router is the packet's single writer here).
		pkt.EnergyPJ += f.EnergyPJ
		pkt.EnergyOnChipPJ += f.EnergyOnChipPJ
		pkt.EnergyIfacePJ += f.EnergyIfacePJ
		ctx.scratch.grantsByKind[KindLocal]++
		if f.IsTail() {
			ctx.scratch.flitsOut += int64(pkt.Length)
			ctx.scratch.pktsOut++
			ctx.scratch.finished = append(ctx.scratch.finished, pkt)
		}
		return
	}
	if f.IsHead() {
		if ctx.tracer != nil {
			ctx.tracer.Trace(Event{Cycle: net.Now, Kind: EvHop, Pkt: pkt.ID, Node: r.ID, Port: vc.OutPort, VC: vc.OutVC, Kind2: out.Kind})
		}
		switch out.Kind {
		case KindOnChip:
			pkt.HopsOnChip++
		case KindParallel:
			pkt.HopsParallel++
		case KindSerial:
			pkt.HopsSerial++
		case KindHeteroPHY:
			pkt.HopsHetero++
		}
	}
	ctx.scratch.grantsByKind[out.Kind]++
	out.Credits[vc.OutVC]--
	if net.Cfg.CheckInvariants && out.Credits[vc.OutVC] < 0 {
		panic("network: negative credits (switch allocation over-granted)")
	}
	f.VC = vc.OutVC
	if !out.Link.fwdQueued {
		out.Link.fwdQueued = true
		ctx.scratch.wokeFwd = append(ctx.scratch.wokeFwd, int32(out.Link.ID))
	}
	out.Link.Accept(net.Now, f)
}
