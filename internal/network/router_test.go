package network

import "testing"

// twoNodeNet wires node 0 → node 1 with a link of the given kind and a
// trivial routing function that always forwards toward node 1.
func twoNodeNet(t *testing.T, kind LinkKind, mutate func(*Config)) (*Network, *Link) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	cfg.DeadlockThreshold = 5000
	if mutate != nil {
		mutate(&cfg)
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.AddNodes(2)
	l := net.Connect(kind, 0, 1)
	net.Connect(kind, 1, 0) // reverse channel, keeps things symmetric
	net.Routing = forwardRouting{}
	net.Finalize()
	return net, l
}

// forwardRouting sends every packet out the first non-local port.
type forwardRouting struct{}

func (forwardRouting) Name() string { return "forward" }
func (forwardRouting) Route(net *Network, r *Router, _ int, pkt *Packet, buf []Candidate) []Candidate {
	for i := 1; i < len(r.Out); i++ {
		if r.Out[i].Link != nil && r.Out[i].Link.Dst == pkt.Dst {
			return append(buf, Candidate{Port: i, VCMask: allVCs(net.Cfg.VCs), Escape: true})
		}
	}
	panic("forwardRouting: no port toward destination")
}

func allVCs(n int) uint16 { return uint16(1)<<n - 1 }

func runCycles(net *Network, n int64) error {
	return net.Run(n, nil)
}

func TestSinglePacketZeroLoadLatency(t *testing.T) {
	// Zero-load latency over one hop: injection (cycle 0) + router
	// pipeline (1 cycle per router) + link delay + serialization at the
	// narrowest stage + ejection. Verify the parallel link case exactly.
	for _, tc := range []struct {
		kind LinkKind
		// permitted latency window for a 16-flit packet over one hop
		lo, hi int64
	}{
		{KindParallel, 10, 20},
		{KindSerial, 20, 32},
		{KindOnChip, 5, 15},
	} {
		net, _ := twoNodeNet(t, tc.kind, nil)
		var arrived *Packet
		net.Sink = func(p *Packet) { arrived = p }
		p := net.NewPacket(0, 1, 16, 0)
		net.Offer(p)
		if err := runCycles(net, 200); err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		if arrived == nil {
			t.Fatalf("%v: packet not delivered", tc.kind)
		}
		lat := arrived.ArrivedAt - arrived.CreatedAt
		if lat < tc.lo || lat > tc.hi {
			t.Errorf("%v: zero-load latency %d outside [%d,%d]", tc.kind, lat, tc.lo, tc.hi)
		}
		if err := net.CheckCredits(); err != nil {
			t.Errorf("%v: %v", tc.kind, err)
		}
	}
}

func TestLinkThroughputMatchesBandwidth(t *testing.T) {
	// Saturate a serial link: sustained accepted throughput must approach
	// its 4 flits/cycle bandwidth.
	net, _ := twoNodeNet(t, KindSerial, func(c *Config) {
		c.InjectionBandwidth = 8
		c.EjectionBandwidth = 8
	})
	delivered := int64(0)
	net.Sink = func(p *Packet) { delivered += int64(p.Length) }
	drive := func(now int64) {
		if net.QueuedPackets() < 4 {
			net.Offer(net.NewPacket(0, 1, 16, now))
		}
	}
	if err := net.Run(2000, drive); err != nil {
		t.Fatal(err)
	}
	thr := float64(delivered) / 2000
	if thr < 3.5 {
		t.Fatalf("serial link sustained %.2f flits/cycle, want ≈4", thr)
	}
}

func TestPacketsArriveInOrderPerFlow(t *testing.T) {
	// Packets between one src-dst pair on one VC-ordered path arrive in
	// offer order (single path: no reordering possible).
	net, _ := twoNodeNet(t, KindParallel, nil)
	var order []uint64
	net.Sink = func(p *Packet) { order = append(order, p.ID) }
	for i := 0; i < 20; i++ {
		net.Offer(net.NewPacket(0, 1, 4, int64(i)))
	}
	if err := runCycles(net, 1000); err != nil {
		t.Fatal(err)
	}
	if len(order) != 20 {
		t.Fatalf("delivered %d of 20", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("arrival order broken: %v", order)
		}
	}
}

func TestBidirectionalTrafficIndependent(t *testing.T) {
	net, _ := twoNodeNet(t, KindParallel, nil)
	got := map[NodeID]int{}
	net.Sink = func(p *Packet) { got[p.Dst]++ }
	for i := 0; i < 10; i++ {
		net.Offer(net.NewPacket(0, 1, 8, int64(i)))
		net.Offer(net.NewPacket(1, 0, 8, int64(i)))
	}
	if err := runCycles(net, 500); err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 10 {
		t.Fatalf("deliveries: %v", got)
	}
}

func TestVCTAdmissionHoldsWholePacket(t *testing.T) {
	// With a buffer exactly one packet deep, two packets must serialize:
	// the second is admitted only after the first frees the buffer.
	net, _ := twoNodeNet(t, KindOnChip, func(c *Config) {
		c.OnChipBufPerVC = 16
		c.VCs = 1
		c.PacketLength = 16
	})
	var arrivals []int64
	net.Sink = func(p *Packet) { arrivals = append(arrivals, p.ArrivedAt) }
	net.Offer(net.NewPacket(0, 1, 16, 0))
	net.Offer(net.NewPacket(0, 1, 16, 0))
	if err := runCycles(net, 500); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d of 2", len(arrivals))
	}
	if gap := arrivals[1] - arrivals[0]; gap < 8 {
		t.Errorf("second packet arrived %d cycles after first; VCT admission should serialize them", gap)
	}
}

func TestEnergyAccumulatesPerHop(t *testing.T) {
	net, _ := twoNodeNet(t, KindParallel, nil)
	var pkt *Packet
	net.Sink = func(p *Packet) { pkt = p }
	net.Offer(net.NewPacket(0, 1, 4, 0))
	if err := runCycles(net, 200); err != nil {
		t.Fatal(err)
	}
	cfg := net.Cfg
	// 4 flits × (parallel link + router at src + router at dst).
	wantLink := 4 * cfg.ParallelPJPerBit * float64(cfg.FlitBits)
	wantRouter := 4 * 2 * cfg.RouterPJPerFlit
	want := wantLink + wantRouter
	if diff := pkt.EnergyPJ - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("energy %.1f pJ, want %.1f", pkt.EnergyPJ, want)
	}
	if pkt.HopsParallel != 1 || pkt.HopsOnChip != 0 {
		t.Errorf("hops: %d parallel / %d on-chip", pkt.HopsParallel, pkt.HopsOnChip)
	}
}

func TestDeadlockWatchdogFires(t *testing.T) {
	// A routing function that points packets at a port with a full
	// buffer... simplest: route to a port that never gets credits because
	// the downstream node's buffers are saturated by an undrained loop.
	// Easier to provoke directly: stall routing by returning a candidate
	// whose VC mask never matches free VCs.
	cfg := DefaultConfig()
	cfg.DeadlockThreshold = 100
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.AddNodes(2)
	net.Connect(KindOnChip, 0, 1)
	net.Routing = stuckRouting{}
	net.Finalize()
	net.Offer(net.NewPacket(0, 1, 4, 0))
	err = net.Run(5000, nil)
	if err == nil {
		t.Fatal("watchdog did not fire on a permanently stuck packet")
	}
}

// stuckRouting requests a VC that does not exist, so VA never succeeds.
type stuckRouting struct{}

func (stuckRouting) Name() string { return "stuck" }
func (stuckRouting) Route(net *Network, r *Router, _ int, pkt *Packet, buf []Candidate) []Candidate {
	return append(buf, Candidate{Port: 1, VCMask: 1 << 15})
}

func TestQuiescentAndDrain(t *testing.T) {
	net, _ := twoNodeNet(t, KindParallel, nil)
	if !net.Quiescent() {
		t.Fatal("fresh network not quiescent")
	}
	net.Offer(net.NewPacket(0, 1, 8, 0))
	if net.Quiescent() {
		t.Fatal("network with queued packet reported quiescent")
	}
	ok, err := net.Drain()
	if err != nil || !ok {
		t.Fatalf("drain: ok=%v err=%v", ok, err)
	}
	if net.PacketsDelivered() != 1 {
		t.Fatal("drain did not deliver the packet")
	}
}

func TestOfferSelfLoopPanics(t *testing.T) {
	net, _ := twoNodeNet(t, KindOnChip, nil)
	defer func() {
		if recover() == nil {
			t.Error("self-addressed packet accepted")
		}
	}()
	net.Offer(net.NewPacket(1, 1, 4, 0))
}

func TestSnapshotAndDiagnostics(t *testing.T) {
	net, _ := twoNodeNet(t, KindSerial, nil)
	for i := 0; i < 8; i++ {
		net.Offer(net.NewPacket(0, 1, 16, 0))
	}
	for i := 0; i < 10; i++ {
		net.Step()
	}
	s := net.TakeSnapshot(4)
	if s.FlitsBuffered == 0 && s.FlitsInLinks == 0 {
		t.Error("snapshot sees no traffic mid-flight")
	}
	if s.String() == "" {
		t.Error("empty snapshot rendering")
	}
	if rep := net.DeadlockReport(4); rep == "" {
		t.Error("empty deadlock report")
	}
}
