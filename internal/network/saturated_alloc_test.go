package network_test

import (
	"testing"

	"heteroif/internal/network/netbench"
)

// TestSaturatedStepZeroAllocs asserts the steady-state guarantee the
// kernel manifest records for the saturated mesh cases: once the engine
// is warm (every scratch slice and work list at steady capacity), a
// sequential Step under full saturation load allocates nothing. Packet
// churn is covered too — PoolPackets recycles finished packets, so even
// the injection path stays off the heap.
func TestSaturatedStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the non-race CI job covers this")
	}
	net := netbench.BuildMesh(8)
	sat := netbench.Saturate(net)
	if avg := testing.AllocsPerRun(500, func() {
		sat.Drive(net.Now)
		net.Step()
	}); avg != 0 {
		t.Errorf("saturated sequential Step allocates %.2f times per cycle, want 0", avg)
	}
}

// TestSaturatedParallelStepZeroAllocs is the parallel twin: saturated
// stepping across 2 shards must also be allocation-free in steady state.
// On a single-CPU host the shards run inline through the same dispatch
// and merge code; with HETEROIF_FORCE_PARALLEL=1 (or real CPUs) the
// worker-goroutine path is measured instead.
func TestSaturatedParallelStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the non-race CI job covers this")
	}
	net := netbench.BuildMesh(8)
	net.SetWorkers(2)
	sat := netbench.Saturate(net)
	if avg := testing.AllocsPerRun(500, func() {
		sat.Drive(net.Now)
		net.Step()
	}); avg != 0 {
		t.Errorf("saturated parallel Step allocates %.2f times per cycle, want 0", avg)
	}
}
