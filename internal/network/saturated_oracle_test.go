package network

import "testing"

// This file holds the saturated-state bit-identity oracle: the optimized
// router tick (work-list bitmaps, RC memoization, route LUT, VA/SA
// parking, direct-staged links) against the retained naive reference tick
// (full port×VC scans, Route re-evaluated every retry, no LUT). The two
// engines must agree on every observable — per-packet arrival cycles and
// energies, hop counts, grant statistics, VA-failure totals and credit
// conservation — under sustained saturation, the regime where every fast
// path actually fires.

const (
	xyPX = iota
	xyNX
	xyPY
	xyNY
)

// xyTestRouting is dimension-ordered mesh routing (X then Y), the
// in-package twin of netbench's benchmark routing. It is pure: candidates
// depend only on the router and the packet's destination, so the engine
// may build a route LUT for it.
type xyTestRouting struct {
	side   int
	vcMask uint16
	ports  [][4]int
}

func (x *xyTestRouting) Name() string { return "test-xy" }

func (x *xyTestRouting) Stability() RouteStability { return RoutePure }

func (x *xyTestRouting) Route(_ *Network, r *Router, _ int, pkt *Packet, buf []Candidate) []Candidate {
	cur, dst := int(r.ID), int(pkt.Dst)
	cx, cy := cur%x.side, cur/x.side
	dx, dy := dst%x.side, dst/x.side
	var dir int
	switch {
	case dx > cx:
		dir = xyPX
	case dx < cx:
		dir = xyNX
	case dy > cy:
		dir = xyPY
	default:
		dir = xyNY
	}
	return append(buf, Candidate{Port: x.ports[cur][dir], VCMask: x.vcMask, Escape: true})
}

// buildXYMesh constructs a side×side on-chip mesh with XY routing, the
// same shape the kernel benchmarks use.
func buildXYMesh(tb testing.TB, side int, check bool) *Network {
	cfg := DefaultConfig()
	cfg.CheckInvariants = check
	net, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	n := side * side
	net.AddNodes(n)
	rt := &xyTestRouting{side: side, vcMask: uint16(1<<cfg.VCs) - 1, ports: make([][4]int, n)}
	connect := func(a, b, dir int) {
		l := net.Connect(KindOnChip, NodeID(a), NodeID(b))
		rt.ports[a][dir] = l.SrcPort
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			id := y*side + x
			if x+1 < side {
				connect(id, id+1, xyPX)
				connect(id+1, id, xyNX)
			}
			if y+1 < side {
				connect(id, id+side, xyPY)
				connect(id+side, id, xyNY)
			}
		}
	}
	net.Routing = rt
	net.Finalize()
	return net
}

// saturateXYMesh keeps every source backlogged with deterministic
// all-to-all traffic, the in-package twin of netbench.Saturator.
func saturateXYMesh(net *Network, now int64) {
	n := int64(len(net.Nodes))
	if int64(net.QueuedPackets()) >= n {
		return
	}
	for src := int64(0); src < n; src++ {
		dst := (src + n/2 + now%7) % n
		if dst == src {
			dst = (dst + 1) % n
		}
		net.Offer(net.NewPacket(NodeID(src), NodeID(dst), net.Cfg.PacketLength, now))
	}
}

// arrival is one delivered packet's observable footprint.
type arrival struct {
	id                       uint64
	at                       int64
	energy, onChip, iface    float64
	hopsOn, hopsPar, hopsSer int32
}

func TestSaturatedReferenceOracle(t *testing.T) {
	const side, cycles = 6, 1500
	run := func(ref bool) (*Network, []arrival) {
		net := buildXYMesh(t, side, true)
		net.SetReferenceTick(ref)
		var got []arrival
		net.Sink = func(p *Packet) {
			got = append(got, arrival{p.ID, p.ArrivedAt, p.EnergyPJ, p.EnergyOnChipPJ, p.EnergyIfacePJ,
				p.HopsOnChip, p.HopsParallel, p.HopsSerial})
		}
		for net.Now < cycles {
			saturateXYMesh(net, net.Now)
			net.Step()
			if net.Now%97 == 0 {
				if err := net.CheckCredits(); err != nil {
					t.Fatalf("refTick=%v cycle %d: %v", ref, net.Now, err)
				}
			}
		}
		if err := net.CheckCredits(); err != nil {
			t.Fatalf("refTick=%v final: %v", ref, err)
		}
		return net, got
	}

	fastNet, fast := run(false)
	refNet, refArr := run(true)

	if !fastNet.HasRouteLUT() {
		t.Error("optimized engine built no route LUT for a pure routing")
	}
	if refNet.HasRouteLUT() {
		t.Error("reference engine must not build a route LUT")
	}
	if len(fast) == 0 {
		t.Fatal("no packets delivered under saturation")
	}
	if len(fast) != len(refArr) {
		t.Fatalf("deliveries differ: %d optimized vs %d reference", len(fast), len(refArr))
	}
	for i := range fast {
		if fast[i] != refArr[i] {
			t.Fatalf("delivery %d diverges: optimized %+v vs reference %+v", i, fast[i], refArr[i])
		}
	}
	if fastNet.VAFailures != refNet.VAFailures {
		t.Errorf("VAFailures diverge: optimized %d vs reference %d", fastNet.VAFailures, refNet.VAFailures)
	}
	if fastNet.GrantsByKind != refNet.GrantsByKind {
		t.Errorf("GrantsByKind diverge: optimized %v vs reference %v", fastNet.GrantsByKind, refNet.GrantsByKind)
	}
	if fastNet.InFlightFlits() != refNet.InFlightFlits() {
		t.Errorf("in-flight flits diverge: optimized %d vs reference %d", fastNet.InFlightFlits(), refNet.InFlightFlits())
	}
	if fastNet.PacketsInjected() != refNet.PacketsInjected() {
		t.Errorf("injections diverge: optimized %d vs reference %d", fastNet.PacketsInjected(), refNet.PacketsInjected())
	}
}
