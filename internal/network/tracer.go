package network

import (
	"fmt"
	"io"
)

// EventKind labels a traced simulation event.
type EventKind uint8

const (
	// EvInject: a packet's first flit entered the injection port.
	EvInject EventKind = iota
	// EvHop: a head flit was granted switch passage toward a link.
	EvHop
	// EvEject: a packet's tail flit left the network.
	EvEject
	// EvVAFail: a head flit failed VC allocation this cycle.
	EvVAFail
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvHop:
		return "hop"
	case EvEject:
		return "eject"
	case EvVAFail:
		return "va-fail"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one traced occurrence.
type Event struct {
	Cycle int64
	Kind  EventKind
	Pkt   uint64
	Node  NodeID
	// Port/VC identify the output channel for EvHop.
	Port  int
	VC    VCID
	Kind2 LinkKind // link kind for EvHop
}

// Tracer receives simulation events. Attach one to Network.Tracer for
// debugging; nil (the default) costs nothing on the hot path beyond a
// pointer check.
type Tracer interface {
	Trace(e Event)
}

// WriterTracer formats events as one line each to an io.Writer,
// optionally filtered to a single packet ID (0 = all).
type WriterTracer struct {
	W io.Writer
	// OnlyPacket filters to one packet ID when non-zero.
	OnlyPacket uint64
	// Kinds filters to a subset of event kinds when non-empty.
	Kinds map[EventKind]bool

	n int
}

// Trace implements Tracer.
func (t *WriterTracer) Trace(e Event) {
	if t.OnlyPacket != 0 && e.Pkt != t.OnlyPacket {
		return
	}
	if len(t.Kinds) > 0 && !t.Kinds[e.Kind] {
		return
	}
	t.n++
	switch e.Kind {
	case EvHop:
		fmt.Fprintf(t.W, "%8d %-8s pkt=%-6d node=%-5d port=%d vc=%d (%s)\n",
			e.Cycle, e.Kind, e.Pkt, e.Node, e.Port, e.VC, e.Kind2)
	default:
		fmt.Fprintf(t.W, "%8d %-8s pkt=%-6d node=%-5d\n", e.Cycle, e.Kind, e.Pkt, e.Node)
	}
}

// Events returns how many events passed the filters.
func (t *WriterTracer) Events() int { return t.n }

// CollectorTracer retains events in memory for assertions in tests.
type CollectorTracer struct {
	Events []Event
	// Cap bounds memory; older events are dropped once exceeded (0 = no
	// bound).
	Cap int
}

// Trace implements Tracer.
func (c *CollectorTracer) Trace(e Event) {
	if c.Cap > 0 && len(c.Events) >= c.Cap {
		copy(c.Events, c.Events[1:])
		c.Events = c.Events[:len(c.Events)-1]
	}
	c.Events = append(c.Events, e)
}
