package network

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerSeesPacketLifecycle(t *testing.T) {
	net, _ := twoNodeNet(t, KindParallel, nil)
	col := &CollectorTracer{}
	net.Tracer = col
	p := net.NewPacket(0, 1, 4, 0)
	net.Offer(p)
	if err := runCycles(net, 200); err != nil {
		t.Fatal(err)
	}
	var inject, hop, eject int
	for _, e := range col.Events {
		if e.Pkt != p.ID {
			continue
		}
		switch e.Kind {
		case EvInject:
			inject++
			if e.Node != 0 {
				t.Errorf("inject at node %d, want 0", e.Node)
			}
		case EvHop:
			hop++
			if e.Kind2 != KindParallel && e.Kind2 != KindLocal {
				t.Errorf("hop over %v", e.Kind2)
			}
		case EvEject:
			eject++
			if e.Node != 1 {
				t.Errorf("eject at node %d, want 1", e.Node)
			}
		}
	}
	if inject != 1 || eject != 1 {
		t.Fatalf("lifecycle events: %d injects, %d ejects (want 1/1)", inject, eject)
	}
	if hop == 0 {
		t.Fatal("no hop events recorded")
	}
	// Events must be time-ordered.
	for i := 1; i < len(col.Events); i++ {
		if col.Events[i].Cycle < col.Events[i-1].Cycle {
			t.Fatal("events out of time order")
		}
	}
}

func TestWriterTracerFiltering(t *testing.T) {
	net, _ := twoNodeNet(t, KindOnChip, nil)
	var buf bytes.Buffer
	wt := &WriterTracer{W: &buf, Kinds: map[EventKind]bool{EvEject: true}}
	net.Tracer = wt
	net.Offer(net.NewPacket(0, 1, 2, 0))
	net.Offer(net.NewPacket(1, 0, 2, 0))
	if err := runCycles(net, 200); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "eject") != 2 {
		t.Fatalf("expected 2 eject lines, got:\n%s", out)
	}
	if strings.Contains(out, "inject") {
		t.Fatal("kind filter leaked inject events")
	}
	if wt.Events() != 2 {
		t.Fatalf("counted %d events, want 2", wt.Events())
	}

	// Packet filter.
	buf.Reset()
	net2, _ := twoNodeNet(t, KindOnChip, nil)
	p1 := net2.NewPacket(0, 1, 2, 0)
	p2 := net2.NewPacket(1, 0, 2, 0)
	net2.Tracer = &WriterTracer{W: &buf, OnlyPacket: p2.ID}
	net2.Offer(p1)
	net2.Offer(p2)
	if err := runCycles(net2, 200); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "pkt="+itoa(p1.ID)+" ") {
		t.Fatal("packet filter leaked other packets")
	}
}

func itoa(v uint64) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			return string(b[i:])
		}
	}
}

func TestCollectorTracerCap(t *testing.T) {
	c := &CollectorTracer{Cap: 3}
	for i := 0; i < 10; i++ {
		c.Trace(Event{Cycle: int64(i)})
	}
	if len(c.Events) != 3 {
		t.Fatalf("retained %d events, want 3", len(c.Events))
	}
	if c.Events[0].Cycle != 7 || c.Events[2].Cycle != 9 {
		t.Fatalf("wrong retained window: %v", c.Events)
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvInject, EvHop, EvEject, EvVAFail, EventKind(77)} {
		if k.String() == "" {
			t.Error("empty event kind name")
		}
	}
}
