// Package phymodel contains the paper's analytical interface models: the
// Table 1 specification constants, the reorder-buffer capacity estimate
// (Eq. 1), the bandwidth-latency V–t model (Eq. 2, Fig. 8) and the
// weighted path length cost model (Eq. 3/4, Sec. 5.2).
package phymodel

import "fmt"

// Spec describes one die-to-die interface technology (Table 1).
type Spec struct {
	Name string
	// DataRateGbps is the per-lane data rate.
	DataRateGbps float64
	// LatencyNS is the PHY latency in nanoseconds (excluding digital
	// latency and FEC where the paper lists them separately).
	LatencyNS float64
	// PJPerBit is the transmission energy.
	PJPerBit float64
	// ReachMM is the maximum trace length.
	ReachMM float64
}

// Table1 returns the four interface technologies of Table 1.
func Table1() []Spec {
	return []Spec{
		{Name: "SerDes", DataRateGbps: 112, LatencyNS: 5.5, PJPerBit: 2.0, ReachMM: 50},
		{Name: "AIB", DataRateGbps: 6.4, LatencyNS: 3.5, PJPerBit: 0.5, ReachMM: 10},
		{Name: "BoW", DataRateGbps: 32, LatencyNS: 3.0, PJPerBit: 0.7, ReachMM: 50},
		{Name: "UCIe", DataRateGbps: 32, LatencyNS: 2.0, PJPerBit: 0.3, ReachMM: 2},
	}
}

// ROBCapacity is Eq. 1: the reorder buffer needs at most
// S_rob = B_p × (D_s − D_p) flits, where B_p is the parallel-interface
// bandwidth (flits/cycle) and D_s/D_p the serial/parallel delays (cycles).
func ROBCapacity(parallelBW, serialDelay, parallelDelay int) int {
	if serialDelay <= parallelDelay {
		return 0
	}
	return parallelBW * (serialDelay - parallelDelay)
}

// Interface is an abstract interface for the V–t model: bandwidth in
// flits/cycle (or any consistent unit) and total delay in cycles.
type Interface struct {
	Name      string
	Bandwidth float64
	Delay     float64
}

// V is Eq. 2: the data volume received, restored and kept in the receiver
// adapter buffer by time t, V(t) = R(B·(t−D)) with R(x) = max(x, 0).
func (i Interface) V(t float64) float64 {
	v := i.Bandwidth * (t - i.Delay)
	if v < 0 {
		return 0
	}
	return v
}

// HeteroIF is a heterogeneous interface bonding two uniform interfaces;
// its V–t curve is the sum of the two (Sec. 5.1: "if we add the V–t curves
// of the two interfaces, the resulting folds have very good properties").
type HeteroIF struct {
	Parallel Interface
	Serial   Interface
}

// V returns the combined received volume at time t.
func (h HeteroIF) V(t float64) float64 { return h.Parallel.V(t) + h.Serial.V(t) }

// CrossoverTime returns the time at which interface b's received volume
// overtakes a's, or -1 if it never does (for t ≥ 0). Both curves are
// piecewise linear with a single knee, so the crossover (if any) is where
// b's line passes a's: Ba(t−Da) = Bb(t−Db).
func CrossoverTime(a, b Interface) float64 {
	if b.Bandwidth <= a.Bandwidth {
		return -1
	}
	t := (b.Bandwidth*b.Delay - a.Bandwidth*a.Delay) / (b.Bandwidth - a.Bandwidth)
	if t < a.Delay {
		t = b.Delay // b starts after a never transmitted anything
	}
	return t
}

// HopCost is Eq. 3: C_i = α·D_i + β/B_i + γ·E_i for one hop with latency
// D (cycles), bandwidth B (flits/cycle) and energy E (pJ/flit).
type HopCost struct {
	Alpha, Beta, Gamma float64
}

// Cost evaluates Eq. 3 for one hop.
func (h HopCost) Cost(delay, bandwidth, energy float64) float64 {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("phymodel: non-positive bandwidth %v in hop cost", bandwidth))
	}
	return h.Alpha*delay + h.Beta/bandwidth + h.Gamma*energy
}

// PathLength is Eq. 4: L_p = Σ C_i over the hops of a path. Each hop is a
// (delay, bandwidth, energy) triple.
func (h HopCost) PathLength(hops [][3]float64) float64 {
	total := 0.0
	for _, hop := range hops {
		total += h.Cost(hop[0], hop[1], hop[2])
	}
	return total
}

// PerformanceFirstWeights returns Eq. 3 coefficients for the
// performance-first policy (γ = 0, Sec. 5.3.1).
func PerformanceFirstWeights() HopCost { return HopCost{Alpha: 1, Beta: 1, Gamma: 0} }

// EnergyEfficientWeights returns Eq. 3 coefficients with a large energy
// weight (Sec. 5.3.1).
func EnergyEfficientWeights() HopCost { return HopCost{Alpha: 1, Beta: 1, Gamma: 10} }
