package phymodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1Values(t *testing.T) {
	specs := Table1()
	if len(specs) != 4 {
		t.Fatalf("Table 1 has %d interfaces, want 4", len(specs))
	}
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	serdes, aib := byName["SerDes"], byName["AIB"]
	if serdes.DataRateGbps != 112 || serdes.PJPerBit != 2.0 || serdes.ReachMM != 50 {
		t.Errorf("SerDes spec wrong: %+v", serdes)
	}
	if aib.DataRateGbps != 6.4 || aib.PJPerBit != 0.5 || aib.ReachMM != 10 {
		t.Errorf("AIB spec wrong: %+v", aib)
	}
	// The defining trade-off: serial is fastest and farthest but most
	// power-hungry; parallel is low-power, low-latency, short-reach.
	if !(serdes.DataRateGbps > aib.DataRateGbps && serdes.PJPerBit > aib.PJPerBit &&
		serdes.ReachMM > aib.ReachMM && serdes.LatencyNS > aib.LatencyNS) {
		t.Error("SerDes/AIB trade-off violated")
	}
}

func TestROBCapacityEq1(t *testing.T) {
	// Table 2 values: B_p = 2, D_s = 20, D_p = 5 → 30 flits.
	if got := ROBCapacity(2, 20, 5); got != 30 {
		t.Errorf("Eq.1 = %d, want 30", got)
	}
	// Halved: B_p = 1 → 15.
	if got := ROBCapacity(1, 20, 5); got != 15 {
		t.Errorf("Eq.1 halved = %d, want 15", got)
	}
	// Degenerate: serial faster than parallel → no reordering.
	if got := ROBCapacity(2, 5, 20); got != 0 {
		t.Errorf("Eq.1 degenerate = %d, want 0", got)
	}
}

func TestVTCurveEq2(t *testing.T) {
	serial := Interface{Bandwidth: 4, Delay: 20}
	if serial.V(10) != 0 {
		t.Error("V before the delay must be 0 (R clamps)")
	}
	if got := serial.V(25); got != 20 {
		t.Errorf("V(25) = %.1f, want 4×5 = 20", got)
	}
}

func TestHeteroVTDominates(t *testing.T) {
	p := Interface{Bandwidth: 2, Delay: 5}
	s := Interface{Bandwidth: 4, Delay: 20}
	h := HeteroIF{Parallel: p, Serial: s}
	f := func(tRaw uint8) bool {
		tt := float64(tRaw) // 0..255 cycles
		// Fig. 8(a): the hetero curve dominates both uniform curves.
		return h.V(tt) >= p.V(tt) && h.V(tt) >= s.V(tt) &&
			math.Abs(h.V(tt)-(p.V(tt)+s.V(tt))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Fatal(err)
	}
}

func TestVTMonotone(t *testing.T) {
	f := func(b, d uint8, t1, t2 uint8) bool {
		i := Interface{Bandwidth: float64(b%16) + 1, Delay: float64(d % 64)}
		lo, hi := float64(t1), float64(t2)
		if lo > hi {
			lo, hi = hi, lo
		}
		return i.V(lo) <= i.V(hi) && i.V(lo) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossoverTime(t *testing.T) {
	p := Interface{Bandwidth: 2, Delay: 5}
	s := Interface{Bandwidth: 4, Delay: 20}
	x := CrossoverTime(p, s)
	if x < 5 {
		t.Fatalf("crossover %.1f before parallel starts", x)
	}
	// At the crossover both carry the same volume.
	if math.Abs(p.V(x)-s.V(x)) > 1e-9 {
		t.Fatalf("curves differ at crossover: %.2f vs %.2f", p.V(x), s.V(x))
	}
	// A slower interface never overtakes.
	if CrossoverTime(s, p) != -1 {
		t.Error("parallel should never overtake serial in slope")
	}
}

func TestHopCostEq3(t *testing.T) {
	h := HopCost{Alpha: 1, Beta: 2, Gamma: 0.5}
	// C = 1·10 + 2/4 + 0.5·100 = 60.5
	if got := h.Cost(10, 4, 100); math.Abs(got-60.5) > 1e-9 {
		t.Errorf("Eq.3 = %v, want 60.5", got)
	}
	// Performance-first zeroes γ.
	pf := PerformanceFirstWeights()
	if pf.Gamma != 0 {
		t.Error("performance-first weights must have γ = 0 (Sec. 5.3.1)")
	}
	if EnergyEfficientWeights().Gamma <= pf.Gamma {
		t.Error("energy-efficient weights must emphasize energy")
	}
}

func TestPathLengthEq4(t *testing.T) {
	h := HopCost{Alpha: 1, Beta: 1, Gamma: 1}
	hops := [][3]float64{
		{1, 2, 0.1},  // on-chip hop
		{5, 2, 64},   // parallel hop
		{20, 4, 154}, // serial hop
	}
	want := (1 + 0.5 + 0.1) + (5 + 0.5 + 64) + (20 + 0.25 + 154)
	if got := h.PathLength(hops); math.Abs(got-want) > 1e-9 {
		t.Errorf("Eq.4 = %v, want %v", got, want)
	}
	if h.PathLength(nil) != 0 {
		t.Error("empty path must have zero length")
	}
}

func TestHopCostPanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth accepted")
		}
	}()
	HopCost{Beta: 1}.Cost(1, 0, 1)
}
