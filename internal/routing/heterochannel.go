package routing

import (
	"heteroif/internal/network"
	"heteroif/internal/topology"
)

// HeteroChannel implements Algorithm 1 of the paper for the hetero-channel
// system (parallel-IF global mesh + serial-IF chiplet hypercube):
//
//	C0 (escape)  = VC0 of every on-chip and parallel channel, routed
//	               negative-first over the global 2D mesh — connected and
//	               deadlock-free, so by Lemma 1 the whole function is
//	               deadlock-free (Theorem 1);
//	adaptive     = every serial channel (all VCs) plus VC≥1 of on-chip and
//	               parallel channels, usable on any optional minimal path.
//
// The Eq. 5 selection function picks the subnetwork with the fewer
// remaining cross-chiplet hops: while #H_P − #H_S > 0 the packet steers
// toward the serial cube (minus-first waypoints, like Hypercube); once the
// mesh is at least as short the packet finishes over the low-latency
// parallel mesh — this is what lets hetero-channel beat the serial-only
// hypercube near the destination (Sec. 8.1.2). Because mesh hops only
// shrink in mesh mode and every cube hop reduces the Hamming distance, the
// mode sequence terminates: serial hops are bounded by the cube dimension
// and the final mesh phase is monotone (livelock-free).
type HeteroChannel struct {
	T *topology.Topo

	// Bias weights the serial side of the Eq. 5 comparison: the cube is
	// chosen when #H_P > Bias·#H_S + Margin. The default (0 → 1.0)
	// minimizes total cross-chiplet hops, the paper's balanced rule.
	// Setting it to the serial/parallel energy ratio (≈2.4) yields the
	// energy-efficient scheduling of Sec. 8.3: serial hops are taken only
	// when they save enough parallel hops to pay for their higher per-bit
	// energy (the γ-weighted Eq. 3 cost).
	Bias float64
	// Margin is an additive chiplet-hop threshold on the same comparison.
	Margin int
}

// bias returns the effective Eq. 5 weighting.
func (h *HeteroChannel) bias() float64 {
	if h.Bias <= 0 {
		return 1
	}
	return h.Bias
}

// Name implements network.Routing.
func (h *HeteroChannel) Name() string { return "algorithm1-hetero-channel" }

// Stability implements network.Stable. The Eq. 5 mode choice and the cube
// waypoint depend on the packet's current position (via pkt.Target state),
// so Route is not pure; but for a packet waiting at one router every input
// is static and the mutations are idempotent — pkt.Pref is written once at
// hop 0 and then left alone, pkt.Target is rewritten to the same value
// (mesh mode: -1; serial mode: the deterministic nearest waypoint) on
// every retry. Candidates may therefore be cached across VA retries
// (RouteRetryStable); the Restricted flag, which switches the candidate
// shape entirely, is part of the engine's memoization key.
func (h *HeteroChannel) Stability() network.RouteStability { return network.RouteRetryStable }

// Route implements network.Routing.
func (h *HeteroChannel) Route(net *network.Network, r *network.Router, _ int, pkt *network.Packet, buf []network.Candidate) []network.Candidate {
	t := h.T

	// Record the Eq. 5 choice made at the source for statistics.
	if pkt.Pref == network.SubnetAny && pkt.Hops() == 0 {
		if float64(t.ChipletMeshHops(pkt.Src, pkt.Dst)) > h.bias()*float64(t.CubeHops(pkt.Src, pkt.Dst))+float64(h.Margin) {
			pkt.Pref = network.SubnetSerial
		} else {
			pkt.Pref = network.SubnetParallel
		}
	}

	if t.SameChiplet(r.ID, pkt.Dst) || pkt.Restricted {
		return meshCandidates(t, net.Cfg.VCs, r, pkt, buf)
	}

	serialMode := float64(t.ChipletMeshHops(r.ID, pkt.Dst)) > h.bias()*float64(t.CubeHops(r.ID, pkt.Dst))+float64(h.Margin)
	if !serialMode {
		pkt.Target = -1
		return meshCandidates(t, net.Cfg.VCs, r, pkt, buf)
	}

	// Serial mode: head for the waypoint owning the chosen cube dimension.
	target := ensureTarget(t, r, pkt)
	diff := neededDims(t, r.ID, pkt.Dst)
	all := allMask(net.Cfg.VCs)
	ports := t.OutPorts[r.ID]

	// Any needed cube dimension at this node is fully adaptive (every
	// serial VC is outside C0).
	for i := 1; i < len(ports); i++ {
		p := &ports[i]
		if !p.Dead && p.CubeDim >= 0 && diff&(1<<p.CubeDim) != 0 {
			buf = append(buf, network.Candidate{Port: i, VCMask: all})
		}
	}
	if r.ID != target {
		// Adaptive on-chip movement toward the waypoint; the escape set
		// is always negative-first toward the final destination over the
		// global mesh (C0 must stay a routing subfunction to pkt.Dst).
		buf = onChipToward(t, net.Cfg.VCs, r, target, false, false, buf)
	}
	return appendMeshEscape(t, r, pkt, buf)
}

// appendMeshEscape emits the C0 escape candidates: negative-first over the
// global mesh (on-chip + parallel VC0) toward the destination.
func appendMeshEscape(t *topology.Topo, r *network.Router, pkt *network.Packet, buf []network.Candidate) []network.Candidate {
	ax, ay := t.Coord(r.ID)
	bx, by := t.Coord(pkt.Dst)
	ports := t.OutPorts[r.ID]
	for i := 1; i < len(ports); i++ {
		p := &ports[i]
		if p.Dead || p.Wrap || p.CubeDim >= 0 {
			continue
		}
		px, py := t.Coord(p.Dest)
		if _, negOK := meshStep(ax, ay, px, py, bx, by); negOK {
			buf = append(buf, network.Candidate{Port: i, VCMask: 1, Escape: true})
		}
	}
	return buf
}
