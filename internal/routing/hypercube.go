package routing

import (
	"math/bits"

	"heteroif/internal/network"
	"heteroif/internal/topology"
)

// chooseCubeTarget picks the intra-chiplet waypoint for a packet that must
// leave chiplet cc toward chiplet dc: the interface node owning the cube
// link of the chosen dimension. Minus dimensions (bit 1→0) are corrected
// before plus dimensions (minus-first, the hypercube analogue of
// negative-first [30]); within the allowed phase the nearest interface node
// wins, lowest dimension breaking ties.
func chooseCubeTarget(t *topology.Topo, cur network.NodeID, cc, dc int) network.NodeID {
	set := phaseDims(cc, dc)
	best := network.NodeID(-1)
	bestDist := int(^uint(0) >> 1)
	for s := set; s != 0; s &= s - 1 {
		dim := bits.TrailingZeros64(uint64(s & -s))
		for _, n := range t.CubeLinkNodes(cc, dim) {
			if cubePortDead(t, n, dim) {
				continue
			}
			if d := t.MeshDistance(cur, n); d < bestDist {
				best, bestDist = n, d
			}
		}
	}
	return best
}

// phaseDims returns the cube dimensions correctable in the current phase:
// the minus dimensions (bits going 1→0) while any remain, then the plus
// dimensions.
func phaseDims(cc, dc int) int {
	diff := cc ^ dc
	if minus := diff & cc; minus != 0 {
		return minus
	}
	return diff
}

// ensureTarget refreshes pkt.Target when the packet has entered a new
// chiplet (or was just injected).
func ensureTarget(t *topology.Topo, r *network.Router, pkt *network.Packet) network.NodeID {
	cc := t.ChipletID(r.ID)
	if pkt.Target >= 0 && t.ChipletID(pkt.Target) == cc {
		return pkt.Target
	}
	dc := t.ChipletID(pkt.Dst)
	pkt.Target = chooseCubeTarget(t, r.ID, cc, dc)
	return pkt.Target
}

// neededDims returns the bitset of cube dimensions still differing between
// the chiplets of two nodes.
func neededDims(t *topology.Topo, a, b network.NodeID) int {
	return t.ChipletID(a) ^ t.ChipletID(b)
}

// onChipToward emits intra-chiplet candidates steering toward a waypoint:
// adaptive minimal moves on VC≥1 and negative-first escape moves on VC0.
// The escape VC0 emission can be disabled when the caller provides its own
// escape set.
func onChipToward(t *topology.Topo, vcs int, r *network.Router, target network.NodeID, restricted bool, emitEscape bool, buf []network.Candidate) []network.Candidate {
	ax, ay := t.Coord(r.ID)
	bx, by := t.Coord(target)
	adapt := adaptiveMask(vcs)
	ports := t.OutPorts[r.ID]
	if adapt != 0 {
		for i := 1; i < len(ports); i++ {
			p := &ports[i]
			if p.Dead || p.Wrap || p.CubeDim >= 0 || p.Kind != network.KindOnChip {
				continue
			}
			px, py := t.Coord(p.Dest)
			minimal, negOK := meshStep(ax, ay, px, py, bx, by)
			if !minimal || (restricted && !negOK) {
				continue
			}
			buf = append(buf, network.Candidate{Port: i, VCMask: adapt})
		}
	}
	if emitEscape {
		for i := 1; i < len(ports); i++ {
			p := &ports[i]
			if p.Dead || p.Wrap || p.CubeDim >= 0 || p.Kind != network.KindOnChip {
				continue
			}
			px, py := t.Coord(p.Dest)
			if _, negOK := meshStep(ax, ay, px, py, bx, by); negOK {
				buf = append(buf, network.Candidate{Port: i, VCMask: 1, Escape: true})
			}
		}
	}
	return buf
}

// Hypercube is minus-first routing for the uniform-serial hypercube
// system, reproducing the interconnection method of Feng et al. [30].
//
// Deadlock freedom uses phase-partitioned virtual-channel classes, because
// a single escape class is NOT safe here: on-chip buffers shared by
// packets in different cube phases would couple minus and plus cube
// channels into buffer-wait cycles (the modular-routing deadlock of
// chiplet systems). Instead:
//
//   - class 0 (VC0 of on-chip and serial channels) carries packets that
//     still have minus dimensions (chiplet-address bits going 1→0) to
//     correct. Every class-0 cube dependency strictly decreases the
//     chiplet address — regardless of which packet carries it — and the
//     on-chip class-0 usage is negative-first toward a per-chiplet-fixed
//     waypoint, so the class-0 dependency graph is acyclic.
//   - class 1 (VC1) carries plus-phase packets and the final intra-chiplet
//     spread. Plus cube hops strictly increase the chiplet address:
//     acyclic by the mirrored argument.
//   - packets move from class 0 to class 1 exactly once (minus before
//     plus; cube hops never create new minus dimensions), so cross-class
//     dependencies point one way only.
//
// Adaptivity survives inside each phase: any correctable dimension of the
// phase may be crossed at whichever interface node the packet encounters,
// the waypoint choice is load-informed (nearest), and on-chip movement is
// negative-first-adaptive. This matches the "minus-first adaptive routing"
// the paper reproduces from [30], with the VC discipline made explicit.
type Hypercube struct {
	T *topology.Topo
}

// Name implements network.Routing.
func (h *Hypercube) Name() string { return "minus-first-hypercube" }

// Stability implements network.Stable. Route is not pure — the waypoint it
// stores in pkt.Target depends on where the packet entered the current
// chiplet — but for a packet waiting at one router the result is stable:
// phase and waypoint derive from static topology and the packet's
// unchanged position, and the only mutation (ensureTarget) writes the same
// waypoint on every retry. That is exactly the RouteRetryStable contract,
// so the engine may cache candidates on the input VC across VA retries.
func (h *Hypercube) Stability() network.RouteStability { return network.RouteRetryStable }

// Route implements network.Routing.
func (h *Hypercube) Route(net *network.Network, r *network.Router, _ int, pkt *network.Packet, buf []network.Candidate) []network.Candidate {
	t := h.T
	vcs := net.Cfg.VCs
	if t.SameChiplet(r.ID, pkt.Dst) {
		// Final spread: class 1 (or every VC ≥ 1 — all plus-class).
		return onChipClass(t, r, pkt.Dst, upperMask(vcs), buf)
	}
	cc := t.ChipletID(r.ID)
	dc := t.ChipletID(pkt.Dst)
	set := phaseDims(cc, dc)
	minusPhase := set&cc != 0
	var mask uint16 = 1 // class 0: VC0 only
	if !minusPhase {
		mask = upperMask(vcs)
	}
	target := ensureTarget(t, r, pkt)
	if target < 0 {
		panic("routing: hypercube packet has no reachable waypoint (topology missing cube links)")
	}

	// Cross any correctable dimension of the current phase encountered at
	// this node.
	ports := t.OutPorts[r.ID]
	for i := 1; i < len(ports); i++ {
		p := &ports[i]
		if !p.Dead && p.CubeDim >= 0 && set&(1<<p.CubeDim) != 0 {
			buf = append(buf, network.Candidate{Port: i, VCMask: mask, Escape: true})
		}
	}
	if r.ID != target {
		buf = onChipClass(t, r, target, mask, buf)
	}
	return buf
}

// onChipClass emits negative-first on-chip moves toward a waypoint on the
// given VC class mask. Negative-first is adaptive within its phase, so
// multiple candidates are common. All candidates are escape-class: the
// whole function is the (phase-partitioned) baseline.
func onChipClass(t *topology.Topo, r *network.Router, target network.NodeID, mask uint16, buf []network.Candidate) []network.Candidate {
	ax, ay := t.Coord(r.ID)
	bx, by := t.Coord(target)
	ports := t.OutPorts[r.ID]
	for i := 1; i < len(ports); i++ {
		p := &ports[i]
		if p.Dead || p.Wrap || p.CubeDim >= 0 || p.Kind != network.KindOnChip {
			continue
		}
		px, py := t.Coord(p.Dest)
		if _, negOK := meshStep(ax, ay, px, py, bx, by); negOK {
			buf = append(buf, network.Candidate{Port: i, VCMask: mask, Escape: true})
		}
	}
	return buf
}

// upperMask returns the mask of every VC except VC0 (class 1). With the
// Table 2 configuration (2 VCs) this is just VC1.
func upperMask(vcs int) uint16 { return allMask(vcs) &^ 1 }

// cubePortDead reports whether node n's cube link for dim has failed.
func cubePortDead(t *topology.Topo, n network.NodeID, dim int) bool {
	for i := 1; i < len(t.OutPorts[n]); i++ {
		p := &t.OutPorts[n][i]
		if int(p.CubeDim) == dim {
			return p.Dead
		}
	}
	return true // no such port: treat as unusable
}
