// Package routing implements the deadlock-free routing algorithms of the
// paper and its baselines:
//
//   - negative-first adaptive routing for the uniform-parallel global 2D
//     mesh;
//   - mesh-escape adaptive routing for the 2D torus (uniform-serial and
//     hetero-PHY): wraparound serial links are purely adaptive extras over
//     a negative-first mesh escape subnetwork;
//   - minus-first adaptive routing for the serial hypercube (reproducing
//     the method of Feng et al. HPCA'23 [30]): chiplet-level e-cube/
//     minus-first escape with negative-first on-chip segments, adaptive
//     cube shortcuts on the remaining VCs;
//   - Algorithm 1 for hetero-channel systems: escape subnetwork
//     C0 = NoC-VC0 ∪ parallel-VC0 with negative-first routing over the
//     global mesh, every serial channel and every remaining VC fully
//     adaptive, with the Eq. 5 subnetwork-selection function and the
//     Sec. 6.2 livelock channel-switch restriction.
//
// Deadlock freedom follows Lemma 1 of the paper: each algorithm keeps a
// connected, deadlock-free routing subfunction on an escape channel subset
// that is reachable from every router; the virtual cut-through admission in
// the router (whole-packet buffering) removes wormhole indirect-dependency
// concerns. Livelock freedom: adaptive candidates are only emitted on
// (weighted-)minimal paths, and a packet that falls back to the escape
// subnetwork under congestion becomes Restricted and thereafter follows
// only baseline-consistent channels.
package routing

import (
	"fmt"

	"heteroif/internal/network"
	"heteroif/internal/topology"
)

// ForSystem returns the routing algorithm matching a built topology. The
// configuration supplies the per-kind link delays used as the Eq. 3/4
// weighted-path-length coefficients (α=1, latency-weighted).
func ForSystem(t *topology.Topo, cfg *network.Config) (network.Routing, error) {
	switch t.System {
	case topology.UniformParallelMesh:
		return &Mesh{T: t}, nil
	case topology.UniformSerialTorus:
		return NewTorus(t,
			1+cfg.OnChipDelay,
			1+cfg.SerialDelay,
			1+cfg.SerialDelay), nil
	case topology.HeteroPHYTorus:
		// Hetero-PHY neighbors: router + adapter cycle + parallel-path
		// delay at zero load; wraparounds are serial-only.
		return NewTorus(t,
			1+cfg.OnChipDelay,
			2+cfg.ParallelDelay,
			1+cfg.SerialDelay), nil
	case topology.UniformSerialHypercube:
		return &Hypercube{T: t}, nil
	case topology.HeteroChannel:
		return &HeteroChannel{T: t}, nil
	default:
		return nil, fmt.Errorf("routing: no algorithm for system %v", t.System)
	}
}

// Stable re-exports the engine's route-stability capability interface so
// algorithm implementations and their tests can name it without importing
// internal/network directly.
type Stable = network.Stable

// Route-stability levels, re-exported for the same reason.
const (
	RouteDynamic     = network.RouteDynamic
	RouteRetryStable = network.RouteRetryStable
	RoutePure        = network.RoutePure
)

// adaptiveMask returns the VC mask of the non-escape VCs (all but VC0).
func adaptiveMask(vcs int) uint16 { return (uint16(1)<<vcs - 1) &^ 1 }

// allMask returns the VC mask covering every VC.
func allMask(vcs int) uint16 { return uint16(1)<<vcs - 1 }

// meshStep classifies a mesh-family port's direction relative to a
// destination: whether it is a minimal (needed) direction and whether the
// negative-first escape function allows it.
func meshStep(ax, ay, px, py, bx, by int) (minimal, negFirst bool) {
	dx, dy := px-ax, py-ay
	switch {
	case dx == -1 && bx < ax, dx == 1 && bx > ax, dy == -1 && by < ay, dy == 1 && by > ay:
		minimal = true
	default:
		return false, false
	}
	negNeeded := bx < ax || by < ay
	if negNeeded {
		negFirst = dx == -1 || dy == -1
	} else {
		negFirst = true // all minimal moves are positive here
	}
	return minimal, negFirst
}

// Mesh is negative-first adaptive routing on the global 2D mesh
// (uniform-parallel systems). VC0 carries the negative-first escape
// function; the remaining VCs route minimally and fully adaptively.
// DimensionOrder switches to deterministic XY routing (the textbook
// baseline) for ablation: one path per pair, no adaptivity.
type Mesh struct {
	T *topology.Topo

	// DimensionOrder selects deterministic XY routing instead of
	// negative-first adaptive.
	DimensionOrder bool
}

// Name implements network.Routing.
func (m *Mesh) Name() string {
	if m.DimensionOrder {
		return "xy-mesh"
	}
	return "negative-first-mesh"
}

// Route implements network.Routing.
func (m *Mesh) Route(net *network.Network, r *network.Router, _ int, pkt *network.Packet, buf []network.Candidate) []network.Candidate {
	if m.DimensionOrder {
		return xyCandidate(m.T, net.Cfg.VCs, r, pkt, buf)
	}
	return meshCandidates(m.T, net.Cfg.VCs, r, pkt, buf)
}

// Stability implements network.Stable: both mesh variants read only
// (router, pkt.Dst, pkt.Restricted) and static topology, mutate nothing
// and ignore the input port, so the engine may precompute a route LUT.
func (m *Mesh) Stability() network.RouteStability { return network.RoutePure }

// xyCandidate emits the single XY-routing output: correct X fully, then Y.
// Deadlock-free by the classic turn argument (no Y→X turns); every VC is
// usable since the function is deterministic.
func xyCandidate(t *topology.Topo, vcs int, r *network.Router, pkt *network.Packet, buf []network.Candidate) []network.Candidate {
	ax, ay := t.Coord(r.ID)
	bx, by := t.Coord(pkt.Dst)
	ports := t.OutPorts[r.ID]
	for i := 1; i < len(ports); i++ {
		p := &ports[i]
		if p.Dead || p.Wrap || p.CubeDim >= 0 {
			continue
		}
		px, py := t.Coord(p.Dest)
		dx, dy := px-ax, py-ay
		var want bool
		switch {
		case bx < ax:
			want = dx == -1
		case bx > ax:
			want = dx == 1
		case by < ay:
			want = dy == -1
		default:
			want = dy == 1
		}
		if want {
			return append(buf, network.Candidate{Port: i, VCMask: allMask(vcs), Escape: true})
		}
	}
	panic("routing: XY found no output (disconnected mesh)")
}

// meshCandidates emits adaptive-then-escape candidates for pure global-mesh
// movement toward pkt.Dst. Shared by Mesh and the in-chiplet/mesh modes of
// the other algorithms.
func meshCandidates(t *topology.Topo, vcs int, r *network.Router, pkt *network.Packet, buf []network.Candidate) []network.Candidate {
	ax, ay := t.Coord(r.ID)
	bx, by := t.Coord(pkt.Dst)
	adapt := adaptiveMask(vcs)
	ports := t.OutPorts[r.ID]
	// Adaptive candidates (VC≥1) on every minimal mesh direction; ports are
	// ordered cheapest-kind-first by construction (on-chip before
	// interface links).
	if adapt != 0 {
		for i := 1; i < len(ports); i++ {
			p := &ports[i]
			if p.Dead || p.Wrap || p.CubeDim >= 0 {
				continue
			}
			px, py := t.Coord(p.Dest)
			minimal, negOK := meshStep(ax, ay, px, py, bx, by)
			if !minimal || (pkt.Restricted && !negOK) {
				continue
			}
			buf = append(buf, network.Candidate{Port: i, VCMask: adapt})
		}
	}
	// Escape candidates (VC0, negative-first).
	for i := 1; i < len(ports); i++ {
		p := &ports[i]
		if p.Dead || p.Wrap || p.CubeDim >= 0 {
			continue
		}
		px, py := t.Coord(p.Dest)
		if _, negOK := meshStep(ax, ay, px, py, bx, by); negOK {
			buf = append(buf, network.Candidate{Port: i, VCMask: 1, Escape: true})
		}
	}
	return buf
}

// Torus routes the global 2D torus built from a negative-first mesh escape
// subnetwork plus purely adaptive serial wraparound links (uniform-serial
// torus and hetero-PHY torus systems).
//
// Adaptive profitability uses the weighted path length of Sec. 5.2
// (Eq. 3/4 with latency weights): a candidate channel is on a minimal
// *weighted* path, so a 21-cycle serial wraparound hop is taken only when
// the mesh detour it saves really costs more — the hop count alone would
// claim a wrap "saves" hops it loses on latency.
type Torus struct {
	T *topology.Topo

	// Per-hop zero-load latency costs: on-chip, chiplet-boundary
	// (parallel/serial/hetero neighbor) and wraparound hops.
	cOn, cIf, cWrap int
}

// NewTorus builds the torus router with the given Eq. 3 hop costs.
func NewTorus(t *topology.Topo, cOn, cIf, cWrap int) *Torus {
	return &Torus{T: t, cOn: cOn, cIf: cIf, cWrap: cWrap}
}

// Name implements network.Routing.
func (t *Torus) Name() string { return "mesh-escape-torus" }

// wdist1 is the weighted distance along one dimension of the torus: the
// cheaper of the direct mesh path and the path around through the
// wraparound link, counting on-chip and boundary hops at their costs.
// n is the dimension's node count, chipletNodes the per-chiplet extent,
// wrap whether the dimension has wraparound links.
func (t *Torus) wdist1(a, b, n, chipletNodes int, wrap bool) int {
	if a == b {
		return 0
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	bndDirect := hi/chipletNodes - lo/chipletNodes
	hopsDirect := hi - lo
	direct := (hopsDirect-bndDirect)*t.cOn + bndDirect*t.cIf
	if !wrap {
		return direct
	}
	bndTotal := n/chipletNodes - 1
	hopsWrap := n - hopsDirect - 1 // mesh hops on the outer path
	bndWrap := bndTotal - bndDirect
	around := (hopsWrap-bndWrap)*t.cOn + bndWrap*t.cIf + t.cWrap
	return min(direct, around)
}

// WeightedDistance is the Eq. 4 path length between two nodes at zero load.
func (t *Torus) WeightedDistance(a, b network.NodeID) int {
	tp := t.T
	ax, ay := tp.Coord(a)
	bx, by := tp.Coord(b)
	wx := t.wdist1(ax, bx, tp.GX, tp.NodesX, tp.GX > 2 && tp.ChipletsX > 1)
	wy := t.wdist1(ay, by, tp.GY, tp.NodesY, tp.GY > 2 && tp.ChipletsY > 1)
	return wx + wy
}

// hopCost prices one hop by its port kind.
func (t *Torus) hopCost(p *topology.PortInfo) int {
	if p.Wrap {
		return t.cWrap
	}
	if p.Kind == network.KindOnChip {
		return t.cOn
	}
	return t.cIf
}

// Stability implements network.Stable. On a healthy torus Route is a pure
// function of (router, pkt.Dst, pkt.Restricted) and the static weighted
// distances. Once a wraparound channel has failed, Route additionally
// mutates pkt.Restricted when the packet's minimal weighted path assumed
// the dead wrap — a mutation confined to the memoization key, which is
// exactly what RouteRetryStable permits (the cached candidate set is
// invalidated by the Restricted flip and recomputed on the next attempt).
// Faults must be injected before the first Step, which the engine's
// prepare-on-first-Step ordering enforces by construction.
func (t *Torus) Stability() network.RouteStability {
	for _, ports := range t.T.OutPorts {
		for i := range ports {
			if ports[i].Dead {
				return network.RouteRetryStable
			}
		}
	}
	return network.RoutePure
}

// Route implements network.Routing.
func (t *Torus) Route(net *network.Network, r *network.Router, _ int, pkt *network.Packet, buf []network.Candidate) []network.Candidate {
	tp := t.T
	ax, ay := tp.Coord(r.ID)
	bx, by := tp.Coord(pkt.Dst)
	adapt := adaptiveMask(net.Cfg.VCs)
	all := allMask(net.Cfg.VCs)
	cur := t.WeightedDistance(r.ID, pkt.Dst)
	ports := tp.OutPorts[r.ID]

	if !pkt.Restricted {
		// Adaptive: every port (mesh direction or wraparound) on a minimal
		// weighted path. Wraparounds are not in the escape subnetwork, so
		// every VC of them is adaptive (they are serial channels: C_{S,j}
		// for all j).
		for i := 1; i < len(ports); i++ {
			p := &ports[i]
			if p.CubeDim >= 0 {
				continue
			}
			if t.hopCost(p)+t.WeightedDistance(p.Dest, pkt.Dst) > cur {
				continue
			}
			if p.Dead {
				// The weighted-distance heuristic assumed this wraparound
				// existed; with the channel failed the packet would chase
				// it forever. Fall back to the baseline permanently — the
				// Sec. 6.2 channel-switch restriction triggered by a fault
				// instead of congestion.
				if p.Wrap {
					pkt.Restricted = true
				}
				continue
			}
			mask := adapt
			if p.Wrap {
				mask = all
			}
			if mask == 0 {
				continue
			}
			buf = append(buf, network.Candidate{Port: i, VCMask: mask})
		}
	} else if adapt != 0 {
		// Restricted packets may only use adaptive channels on baseline
		// (negative-first mesh) paths.
		for i := 1; i < len(ports); i++ {
			p := &ports[i]
			if p.Dead || p.Wrap || p.CubeDim >= 0 {
				continue
			}
			px, py := tp.Coord(p.Dest)
			if _, negOK := meshStep(ax, ay, px, py, bx, by); negOK {
				buf = append(buf, network.Candidate{Port: i, VCMask: adapt})
			}
		}
	}
	// Escape: negative-first over the mesh sublinks.
	for i := 1; i < len(ports); i++ {
		p := &ports[i]
		if p.Dead || p.Wrap || p.CubeDim >= 0 {
			continue
		}
		px, py := tp.Coord(p.Dest)
		if _, negOK := meshStep(ax, ay, px, py, bx, by); negOK {
			buf = append(buf, network.Candidate{Port: i, VCMask: 1, Escape: true})
		}
	}
	return buf
}
