package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heteroif/internal/network"
	"heteroif/internal/topology"
)

func buildSystem(t *testing.T, sys topology.System, cx, cy, nx, ny int) (*network.Network, *topology.Topo, network.Routing) {
	t.Helper()
	cfg := network.DefaultConfig()
	net, topo, err := topology.Build(cfg, topology.Spec{System: sys, ChipletsX: cx, ChipletsY: cy, NodesX: nx, NodesY: ny})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	alg, err := ForSystem(topo, &cfg)
	if err != nil {
		t.Fatalf("ForSystem: %v", err)
	}
	net.Routing = alg
	return net, topo, alg
}

// route invokes the algorithm for a fresh packet at cur.
func route(net *network.Network, alg network.Routing, topo *topology.Topo, cur, dst network.NodeID) []network.Candidate {
	pkt := net.NewPacket(cur, dst, net.Cfg.PacketLength, 0)
	r := net.Nodes[cur]
	return alg.Route(net, r, r.InjectPort, pkt, nil)
}

// TestEveryPairHasEscape: for every (cur, dst) pair on every system, the
// routing function emits at least one escape candidate — the Lemma 1
// connectivity requirement.
func TestEveryPairHasEscape(t *testing.T) {
	systems := []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
		topology.UniformSerialHypercube,
		topology.HeteroChannel,
	}
	for _, sys := range systems {
		net, topo, alg := buildSystem(t, sys, 2, 2, 3, 3)
		for cur := network.NodeID(0); int(cur) < topo.N; cur++ {
			for dst := network.NodeID(0); int(dst) < topo.N; dst++ {
				if cur == dst {
					continue
				}
				cands := route(net, alg, topo, cur, dst)
				if len(cands) == 0 {
					t.Fatalf("%v: no candidates at %d for dst %d", sys, cur, dst)
				}
				hasEscape := false
				for _, c := range cands {
					if c.Escape {
						hasEscape = true
					}
					if c.VCMask == 0 {
						t.Fatalf("%v: empty VC mask at %d->%d", sys, cur, dst)
					}
					if c.Port <= 0 || c.Port >= len(net.Nodes[cur].Out) {
						t.Fatalf("%v: bad port %d at %d->%d", sys, c.Port, cur, dst)
					}
				}
				if !hasEscape {
					t.Fatalf("%v: no escape candidate at %d for dst %d", sys, cur, dst)
				}
			}
		}
	}
}

// TestEscapeDeliversEveryPair walks the escape subfunction hop by hop
// (always taking the first escape candidate) and checks every packet
// reaches its destination within a hop bound — connectivity and livelock
// freedom of the baseline.
func TestEscapeDeliversEveryPair(t *testing.T) {
	systems := []topology.System{
		topology.UniformParallelMesh,
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
		topology.UniformSerialHypercube,
		topology.HeteroChannel,
	}
	for _, sys := range systems {
		net, topo, alg := buildSystem(t, sys, 2, 2, 3, 3)
		bound := 4 * (topo.GX + topo.GY)
		for src := network.NodeID(0); int(src) < topo.N; src++ {
			for dst := network.NodeID(0); int(dst) < topo.N; dst++ {
				if src == dst {
					continue
				}
				pkt := net.NewPacket(src, dst, 16, 0)
				cur := src
				hops := 0
				for cur != dst {
					r := net.Nodes[cur]
					cands := alg.Route(net, r, r.InjectPort, pkt, nil)
					var next network.NodeID = -1
					for _, c := range cands {
						if c.Escape {
							next = topo.OutPorts[cur][c.Port].Dest
							break
						}
					}
					if next < 0 {
						t.Fatalf("%v: no escape hop at %d (src %d dst %d)", sys, cur, src, dst)
					}
					cur = next
					hops++
					if hops > bound {
						t.Fatalf("%v: escape walk %d->%d exceeded %d hops (livelock)", sys, src, dst, bound)
					}
				}
			}
		}
	}
}

// TestAdaptiveWalkDelivers: greedily following the FIRST candidate (usually
// adaptive) must also terminate — profitability/waypoint monotonicity.
func TestAdaptiveWalkDelivers(t *testing.T) {
	systems := []topology.System{
		topology.UniformSerialTorus,
		topology.HeteroPHYTorus,
		topology.UniformSerialHypercube,
		topology.HeteroChannel,
	}
	for _, sys := range systems {
		net, topo, alg := buildSystem(t, sys, 2, 2, 4, 4)
		bound := 6 * (topo.GX + topo.GY)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 4000; trial++ {
			src := network.NodeID(rng.Intn(topo.N))
			dst := network.NodeID(rng.Intn(topo.N))
			if src == dst {
				continue
			}
			pkt := net.NewPacket(src, dst, 16, 0)
			cur := src
			hops := 0
			for cur != dst {
				r := net.Nodes[cur]
				cands := alg.Route(net, r, r.InjectPort, pkt, nil)
				// Pick a random candidate to exercise the full adaptive
				// surface.
				c := cands[rng.Intn(len(cands))]
				cur = topo.OutPorts[cur][c.Port].Dest
				hops++
				if hops > bound {
					t.Fatalf("%v: adaptive walk %d->%d exceeded %d hops", sys, src, dst, bound)
				}
			}
		}
	}
}

// TestMeshNegativeFirstProperty: escape candidates never make a positive
// move while a negative move is still needed (the turn-model rule).
func TestMeshNegativeFirstProperty(t *testing.T) {
	net, topo, alg := buildSystem(t, topology.UniformParallelMesh, 2, 2, 4, 4)
	f := func(a, b uint16) bool {
		cur := network.NodeID(int(a) % topo.N)
		dst := network.NodeID(int(b) % topo.N)
		if cur == dst {
			return true
		}
		ax, ay := topo.Coord(cur)
		bx, by := topo.Coord(dst)
		negNeeded := bx < ax || by < ay
		for _, c := range route(net, alg, topo, cur, dst) {
			if !c.Escape {
				continue
			}
			px, py := topo.Coord(topo.OutPorts[cur][c.Port].Dest)
			if negNeeded && (px > ax || py > ay) {
				return false // positive move while negative needed
			}
			// Escape moves must be minimal.
			if absInt(px-bx)+absInt(py-by) >= absInt(ax-bx)+absInt(ay-by) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestTorusWeightedProfitability: every adaptive torus candidate lies on a
// minimal weighted path (Sec. 5.2).
func TestTorusWeightedProfitability(t *testing.T) {
	net, topo, alg := buildSystem(t, topology.HeteroPHYTorus, 2, 2, 4, 4)
	tor := alg.(*Torus)
	f := func(a, b uint16) bool {
		cur := network.NodeID(int(a) % topo.N)
		dst := network.NodeID(int(b) % topo.N)
		if cur == dst {
			return true
		}
		wd := tor.WeightedDistance(cur, dst)
		for _, c := range route(net, alg, topo, cur, dst) {
			if c.Escape {
				continue
			}
			p := &topo.OutPorts[cur][c.Port]
			if tor.hopCost(p)+tor.WeightedDistance(p.Dest, dst) > wd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestTorusWeightedDistanceSymmetricAndTriangle: sanity properties of the
// weighted metric.
func TestTorusWeightedDistanceProperties(t *testing.T) {
	_, topo, alg := buildSystem(t, topology.UniformSerialTorus, 2, 2, 4, 4)
	tor := alg.(*Torus)
	f := func(a, b uint16) bool {
		x := network.NodeID(int(a) % topo.N)
		y := network.NodeID(int(b) % topo.N)
		if tor.WeightedDistance(x, y) != tor.WeightedDistance(y, x) {
			return false
		}
		if x == y && tor.WeightedDistance(x, y) != 0 {
			return false
		}
		// Edge consistency: for every out port of x, WD(x,y) ≤ cost +
		// WD(dest, y).
		for i := 1; i < len(topo.OutPorts[x]); i++ {
			p := &topo.OutPorts[x][i]
			if p.CubeDim >= 0 {
				continue
			}
			if tor.WeightedDistance(x, y) > tor.hopCost(p)+tor.WeightedDistance(p.Dest, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestHypercubePhaseClasses: minus-phase packets get VC0-only candidates,
// plus-phase packets never get VC0 (the deadlock-freedom discipline).
func TestHypercubePhaseClasses(t *testing.T) {
	net, topo, alg := buildSystem(t, topology.UniformSerialHypercube, 2, 2, 3, 3)
	for src := network.NodeID(0); int(src) < topo.N; src++ {
		for dst := network.NodeID(0); int(dst) < topo.N; dst++ {
			if topo.SameChiplet(src, dst) {
				continue
			}
			cc, dc := topo.ChipletID(src), topo.ChipletID(dst)
			minus := (cc ^ dc) & cc
			cands := route(net, alg, topo, src, dst)
			for _, c := range cands {
				if minus != 0 && c.VCMask != 1 {
					t.Fatalf("minus-phase packet %d->%d offered VC mask %b", src, dst, c.VCMask)
				}
				if minus == 0 && c.VCMask&1 != 0 {
					t.Fatalf("plus-phase packet %d->%d offered VC0 (mask %b)", src, dst, c.VCMask)
				}
			}
		}
	}
}

// TestHeteroChannelEq5Selection: the subnetwork preference matches Eq. 5.
func TestHeteroChannelEq5Selection(t *testing.T) {
	net, topo, alg := buildSystem(t, topology.HeteroChannel, 4, 4, 3, 3)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		src := network.NodeID(rng.Intn(topo.N))
		dst := network.NodeID(rng.Intn(topo.N))
		if src == dst {
			continue
		}
		pkt := net.NewPacket(src, dst, 16, 0)
		r := net.Nodes[src]
		alg.Route(net, r, r.InjectPort, pkt, nil)
		want := network.SubnetParallel
		if topo.ChipletMeshHops(src, dst) > topo.CubeHops(src, dst) {
			want = network.SubnetSerial
		}
		if pkt.Pref != want {
			t.Fatalf("Eq.5 pref for %d->%d = %v, want %v (Hp=%d Hs=%d)",
				src, dst, pkt.Pref, want,
				topo.ChipletMeshHops(src, dst), topo.CubeHops(src, dst))
		}
	}
}

// TestRestrictedPacketsStayOnBaseline: restricted packets only receive
// candidates along negative-first directions.
func TestRestrictedPacketsStayOnBaseline(t *testing.T) {
	net, topo, alg := buildSystem(t, topology.HeteroPHYTorus, 2, 2, 4, 4)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		src := network.NodeID(rng.Intn(topo.N))
		dst := network.NodeID(rng.Intn(topo.N))
		if src == dst {
			continue
		}
		pkt := net.NewPacket(src, dst, 16, 0)
		pkt.Restricted = true
		r := net.Nodes[src]
		cands := alg.Route(net, r, r.InjectPort, pkt, nil)
		ax, ay := topo.Coord(src)
		bx, by := topo.Coord(dst)
		negNeeded := bx < ax || by < ay
		for _, c := range cands {
			p := &topo.OutPorts[src][c.Port]
			if p.Wrap {
				t.Fatalf("restricted packet offered wraparound at %d->%d", src, dst)
			}
			px, py := topo.Coord(p.Dest)
			if negNeeded && (px > ax || py > ay) {
				t.Fatalf("restricted packet offered non-baseline move at %d->%d", src, dst)
			}
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestXYRoutingDeliversDeterministically: the XY baseline yields exactly
// one candidate everywhere and walks X-then-Y.
func TestXYRoutingDeliversDeterministically(t *testing.T) {
	net, topo, _ := buildSystem(t, topology.UniformParallelMesh, 2, 2, 3, 3)
	xy := &Mesh{T: topo, DimensionOrder: true}
	if xy.Name() != "xy-mesh" {
		t.Fatalf("name %q", xy.Name())
	}
	for src := network.NodeID(0); int(src) < topo.N; src++ {
		for dst := network.NodeID(0); int(dst) < topo.N; dst++ {
			if src == dst {
				continue
			}
			pkt := net.NewPacket(src, dst, 16, 0)
			cur := src
			hops := 0
			correctedX := false
			for cur != dst {
				r := net.Nodes[cur]
				cands := xy.Route(net, r, r.InjectPort, pkt, nil)
				if len(cands) != 1 {
					t.Fatalf("XY gave %d candidates at %d->%d", len(cands), cur, dst)
				}
				next := topo.OutPorts[cur][cands[0].Port].Dest
				cx, _ := topo.Coord(cur)
				nx, _ := topo.Coord(next)
				dx0, _ := topo.Coord(dst)
				if cx == int(dx0) { // x already corrected (coordinate match)
					correctedX = true
				}
				if correctedX && nx != cx {
					// Once Y routing begins, X must never change again.
					dxx, _ := topo.Coord(dst)
					if cx == dxx {
						t.Fatalf("XY made an X move after Y phase at %d->%d", src, dst)
					}
				}
				cur = next
				hops++
				if hops > topo.GX+topo.GY {
					t.Fatalf("XY exceeded minimal hop count for %d->%d", src, dst)
				}
			}
		}
	}
}

// TestXYEndToEnd runs XY routing in the engine at load.
func TestXYEndToEnd(t *testing.T) {
	net, topo, _ := buildSystem(t, topology.UniformParallelMesh, 2, 2, 3, 3)
	net.Routing = &Mesh{T: topo, DimensionOrder: true}
	net.Finalize()
	for i := 0; i < 50; i++ {
		src := network.NodeID(i % topo.N)
		dst := network.NodeID((i*7 + 5) % topo.N)
		if src != dst {
			net.Offer(net.NewPacket(src, dst, 8, 0))
		}
	}
	if err := net.Run(2000, nil); err != nil {
		t.Fatal(err)
	}
	if net.PacketsDelivered() != net.PacketsInjected() || net.PacketsDelivered() == 0 {
		t.Fatalf("delivered %d of %d", net.PacketsDelivered(), net.PacketsInjected())
	}
}
