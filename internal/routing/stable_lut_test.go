package routing_test

import (
	"testing"

	"heteroif/internal/experiments"
	"heteroif/internal/network"
	"heteroif/internal/topology"
)

// TestStableLUTMatchesRoute is the property test behind the RC-memoization
// contract: for every Table 2 system, the routing algorithm's declared
// stability must hold over the full (router, destination, input port,
// restricted) space.
//
//   - RoutePure algorithms get a per-(router, dst, restricted) LUT built at
//     first Step; every dynamic Route evaluation — from any input port —
//     must reproduce the LUT entry exactly, or the engine's lookup would
//     diverge from the naive reference tick.
//   - Retry-stable (and weaker) algorithms get no LUT; for them the test
//     checks the memoization invariant the VC-allocation retry path relies
//     on: re-evaluating Route under unchanged network state yields an
//     identical candidate list (idempotent Target rewrites included).
func TestStableLUTMatchesRoute(t *testing.T) {
	specs := []topology.Spec{
		{System: topology.UniformParallelMesh, ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2},
		{System: topology.UniformSerialTorus, ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2},
		{System: topology.HeteroPHYTorus, ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2},
		{System: topology.UniformSerialHypercube, ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2},
		{System: topology.HeteroChannel, ChipletsX: 2, ChipletsY: 2, NodesX: 2, NodesY: 2},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.System.String(), func(t *testing.T) {
			in, err := experiments.Build(network.DefaultConfig(), spec)
			if err != nil {
				t.Fatal(err)
			}
			net := in.Net
			st, ok := net.Routing.(network.Stable)
			if !ok {
				t.Fatalf("routing %q declares no stability", net.Routing.Name())
			}
			net.Step() // first Step builds the route-acceleration state
			pure := st.Stability() == network.RoutePure
			if pure != net.HasRouteLUT() {
				t.Fatalf("stability %d but HasRouteLUT=%v", st.Stability(), net.HasRouteLUT())
			}

			var got, again []network.Candidate
			for _, r := range net.Nodes {
				for dst := 0; dst < len(net.Nodes); dst++ {
					if network.NodeID(dst) == r.ID {
						continue
					}
					for _, restricted := range []bool{false, true} {
						pkt := network.Packet{Dst: network.NodeID(dst), Restricted: restricted, Target: -1}
						for inPort := range r.In {
							got = net.Routing.Route(net, r, inPort, &pkt, got[:0])
							if pure {
								want := net.LUTCandidates(r.ID, network.NodeID(dst), restricted)
								if !equalCands(got, want) {
									t.Fatalf("router %d dst %d inPort %d restricted=%v: Route %v != LUT %v",
										r.ID, dst, inPort, restricted, got, want)
								}
								continue
							}
							again = net.Routing.Route(net, r, inPort, &pkt, again[:0])
							if !equalCands(got, again) {
								t.Fatalf("router %d dst %d inPort %d restricted=%v: Route unstable across retries: %v then %v",
									r.ID, dst, inPort, restricted, got, again)
							}
						}
					}
				}
			}
		})
	}
}

func equalCands(a, b []network.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
