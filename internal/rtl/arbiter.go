package rtl

// Behavioral models of the router control logic counted in the Table 4
// gate budgets: a round-robin arbiter, a matrix arbiter with
// least-recently-granted priority, and the separable switch allocator that
// combines per-output arbitration with per-input selection — the canonical
// VC-router allocator structure (Sec. 7.3 cites the standard microarchitecture).

// RoundRobinArbiter grants one of N requesters per cycle, rotating
// priority after every grant so bandwidth is shared fairly.
type RoundRobinArbiter struct {
	n    int
	next int
}

// NewRoundRobinArbiter returns an arbiter over n requesters.
func NewRoundRobinArbiter(n int) *RoundRobinArbiter {
	if n <= 0 {
		panic("rtl: arbiter needs at least one requester")
	}
	return &RoundRobinArbiter{n: n}
}

// Grant picks the highest-priority asserted request; -1 when none. The
// winner becomes the lowest-priority requester for the next cycle.
func (a *RoundRobinArbiter) Grant(requests []bool) int {
	if len(requests) != a.n {
		panic("rtl: request vector width mismatch")
	}
	for i := 0; i < a.n; i++ {
		idx := (a.next + i) % a.n
		if requests[idx] {
			a.next = (idx + 1) % a.n
			return idx
		}
	}
	return -1
}

// MatrixArbiter implements least-recently-granted priority with the
// classic upper-triangular state matrix: w[i][j] means i beats j.
type MatrixArbiter struct {
	n int
	w [][]bool
}

// NewMatrixArbiter returns a matrix arbiter over n requesters with
// priority initially in index order.
func NewMatrixArbiter(n int) *MatrixArbiter {
	if n <= 0 {
		panic("rtl: arbiter needs at least one requester")
	}
	m := &MatrixArbiter{n: n, w: make([][]bool, n)}
	for i := range m.w {
		m.w[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			m.w[i][j] = true // lower index initially beats higher
		}
	}
	return m
}

// Grant picks the requester that beats every other asserted requester,
// then demotes it below all others.
func (m *MatrixArbiter) Grant(requests []bool) int {
	if len(requests) != m.n {
		panic("rtl: request vector width mismatch")
	}
	winner := -1
	for i := 0; i < m.n; i++ {
		if !requests[i] {
			continue
		}
		wins := true
		for j := 0; j < m.n; j++ {
			if j != i && requests[j] && !m.w[i][j] {
				wins = false
				break
			}
		}
		if wins {
			winner = i
			break
		}
	}
	if winner >= 0 {
		for j := 0; j < m.n; j++ {
			if j != winner {
				m.w[winner][j] = false
				m.w[j][winner] = true
			}
		}
	}
	return winner
}

// SeparableAllocator is the two-stage input-first switch allocator of the
// canonical VC router: stage 1 arbitrates among an input's requesting VCs,
// stage 2 arbitrates among inputs requesting the same output. Grants are
// conflict-free by construction (one VC per input, one input per output).
type SeparableAllocator struct {
	inputs, outputs int
	inputArb        []*RoundRobinArbiter // one per input, over its VCs
	outputArb       []*RoundRobinArbiter // one per output, over inputs
	vcs             int
}

// NewSeparableAllocator builds an allocator for inputs×vcs requesters
// contending for outputs.
func NewSeparableAllocator(inputs, vcs, outputs int) *SeparableAllocator {
	s := &SeparableAllocator{inputs: inputs, outputs: outputs, vcs: vcs}
	for i := 0; i < inputs; i++ {
		s.inputArb = append(s.inputArb, NewRoundRobinArbiter(vcs))
	}
	for o := 0; o < outputs; o++ {
		s.outputArb = append(s.outputArb, NewRoundRobinArbiter(inputs))
	}
	return s
}

// Request maps (input, vc) → desired output, or -1 for idle.
type Request [][]int

// Allocate returns grants[input] = (vc, output), or (-1, -1).
func (s *SeparableAllocator) Allocate(req Request) [][2]int {
	if len(req) != s.inputs {
		panic("rtl: request matrix height mismatch")
	}
	grants := make([][2]int, s.inputs)
	for i := range grants {
		grants[i] = [2]int{-1, -1}
	}
	// Stage 1: each input picks one requesting VC.
	chosenVC := make([]int, s.inputs)
	for i := 0; i < s.inputs; i++ {
		reqs := make([]bool, s.vcs)
		for v := 0; v < s.vcs; v++ {
			if req[i][v] >= 0 {
				reqs[v] = true
			}
		}
		chosenVC[i] = s.inputArb[i].Grant(reqs)
	}
	// Stage 2: each output picks one requesting input.
	for o := 0; o < s.outputs; o++ {
		reqs := make([]bool, s.inputs)
		for i := 0; i < s.inputs; i++ {
			if chosenVC[i] >= 0 && req[i][chosenVC[i]] == o {
				reqs[i] = true
			}
		}
		if winner := s.outputArb[o].Grant(reqs); winner >= 0 {
			grants[winner] = [2]int{chosenVC[winner], o}
		}
	}
	return grants
}
