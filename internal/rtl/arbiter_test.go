package rtl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundRobinGrantsOnlyRequesters(t *testing.T) {
	a := NewRoundRobinArbiter(4)
	if g := a.Grant([]bool{false, false, false, false}); g != -1 {
		t.Fatalf("grant %d with no requests", g)
	}
	if g := a.Grant([]bool{false, false, true, false}); g != 2 {
		t.Fatalf("grant %d, want 2", g)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// With all requesters always asserted, grants must rotate with equal
	// shares.
	a := NewRoundRobinArbiter(4)
	counts := [4]int{}
	all := []bool{true, true, true, true}
	for i := 0; i < 400; i++ {
		counts[a.Grant(all)]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("requester %d got %d of 400 grants", i, c)
		}
	}
}

func TestRoundRobinNoStarvationProperty(t *testing.T) {
	// A requester that stays asserted is granted within n cycles no matter
	// what the others do.
	f := func(seed int64, victim uint8) bool {
		n := 6
		v := int(victim) % n
		rng := rand.New(rand.NewSource(seed))
		a := NewRoundRobinArbiter(n)
		waited := 0
		for cycle := 0; cycle < 200; cycle++ {
			reqs := make([]bool, n)
			for i := range reqs {
				reqs[i] = rng.Intn(2) == 0
			}
			reqs[v] = true
			if a.Grant(reqs) == v {
				waited = 0
			} else {
				waited++
				if waited >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixArbiterLRGPriority(t *testing.T) {
	m := NewMatrixArbiter(3)
	all := []bool{true, true, true}
	// Initial priority: 0 beats all.
	if g := m.Grant(all); g != 0 {
		t.Fatalf("first grant %d, want 0", g)
	}
	// 0 demoted: now 1 wins.
	if g := m.Grant(all); g != 1 {
		t.Fatalf("second grant %d, want 1", g)
	}
	if g := m.Grant(all); g != 2 {
		t.Fatalf("third grant %d, want 2", g)
	}
	// Wrapped: 0 is least-recently-granted again.
	if g := m.Grant(all); g != 0 {
		t.Fatalf("fourth grant %d, want 0", g)
	}
}

func TestMatrixArbiterAlwaysGrantsExactlyOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrixArbiter(5)
		for cycle := 0; cycle < 100; cycle++ {
			reqs := make([]bool, 5)
			any := false
			for i := range reqs {
				reqs[i] = rng.Intn(3) == 0
				any = any || reqs[i]
			}
			g := m.Grant(reqs)
			if any && (g < 0 || !reqs[g]) {
				return false
			}
			if !any && g != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparableAllocatorConflictFreeProperty(t *testing.T) {
	// Whatever the request matrix, grants never share an output and each
	// granted (input, vc) actually requested that output.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const inputs, vcs, outputs = 5, 2, 5
		s := NewSeparableAllocator(inputs, vcs, outputs)
		for cycle := 0; cycle < 50; cycle++ {
			req := make(Request, inputs)
			for i := range req {
				req[i] = make([]int, vcs)
				for v := range req[i] {
					req[i][v] = rng.Intn(outputs+2) - 2 // -2,-1 → idle-ish
					if req[i][v] < 0 {
						req[i][v] = -1
					}
				}
			}
			grants := s.Allocate(req)
			usedOut := map[int]bool{}
			for i, g := range grants {
				if g[0] == -1 {
					continue
				}
				if req[i][g[0]] != g[1] {
					return false // granted an output it never asked for
				}
				if usedOut[g[1]] {
					return false // output double-booked
				}
				usedOut[g[1]] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparableAllocatorThroughput(t *testing.T) {
	// A full permutation request pattern must achieve full throughput
	// (every output granted every cycle).
	s := NewSeparableAllocator(4, 2, 4)
	req := Request{
		{0, -1}, {1, -1}, {2, -1}, {3, -1},
	}
	for cycle := 0; cycle < 10; cycle++ {
		grants := s.Allocate(req)
		for i, g := range grants {
			if g[1] != i {
				t.Fatalf("cycle %d: input %d granted output %d, want %d", cycle, i, g[1], i)
			}
		}
	}
}

func TestArbiterPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRoundRobinArbiter(0) },
		func() { NewMatrixArbiter(-1) },
		func() { NewRoundRobinArbiter(2).Grant([]bool{true}) },
		func() { NewMatrixArbiter(2).Grant([]bool{true}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
