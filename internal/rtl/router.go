package rtl

import "fmt"

// RTLRouter is a structural, cycle-accurate model of the canonical VC
// router the paper synthesizes (Sec. 7.3, module 3): per-input-VC FIFOs, a
// routing function, a separable VC allocator, a separable switch allocator
// built from round-robin arbiters, and a crossbar — the same organization
// whose gate counts feed the Table 4 estimator. The heterogeneous variant
// adds extra concurrently-served interface ports (NewHeteroRTLRouter).
//
// It is intentionally independent of internal/network: the behavioral
// simulator models whole systems efficiently; this model mirrors the
// synthesized microarchitecture register-for-register, which is what the
// adapter/router property tests need (grant uniqueness, credit safety,
// wormhole integrity, fairness).
type RTLRouter struct {
	ports int
	vcs   int
	depth int

	// ConcurrentOutputs marks outputs that may accept several grants per
	// cycle (the heterogeneous router's interface ports, Sec. 4.1).
	concurrent []bool

	inputs   [][]*routerVC // [port][vc]
	route    RouteFunc
	vcArb    []*RoundRobinArbiter // per output: arbitrate requesting input VCs
	swInArb  []*RoundRobinArbiter // per input: pick one VC
	swOutArb []*RoundRobinArbiter // per output: pick one input

	// credits[port][vc] tracks downstream buffer space.
	credits [][]int

	// Delivered flits appear here each cycle, tagged with their output.
	out []RTLFlit

	// outHeld[port][vc] marks output VCs owned by an in-flight packet;
	// the owner is identified by (input port, input vc).
	outHeld [][]int

	cycle int64
}

// RTLFlit is the router model's flow unit.
type RTLFlit struct {
	PacketID uint32
	Seq      uint16
	Last     bool
	DestPort uint8
	// Out is filled at delivery: which output port and VC carried it.
	Out   uint8
	OutVC uint8
}

// routerVC is one input virtual channel: buffer + allocation state.
type routerVC struct {
	fifo    []RTLFlit
	depth   int
	active  bool
	outPort int
	outVC   int
}

// RouteFunc maps a head flit to its output port.
type RouteFunc func(f RTLFlit) int

// NewRTLRouter builds a router with the given radix, VC count and per-VC
// buffer depth. route defaults to using DestPort directly.
func NewRTLRouter(ports, vcs, depth int, route RouteFunc) *RTLRouter {
	if ports <= 0 || vcs <= 0 || depth <= 0 {
		panic("rtl: router dimensions must be positive")
	}
	if route == nil {
		route = func(f RTLFlit) int { return int(f.DestPort) }
	}
	r := &RTLRouter{ports: ports, vcs: vcs, depth: depth, route: route}
	r.concurrent = make([]bool, ports)
	r.inputs = make([][]*routerVC, ports)
	r.credits = make([][]int, ports)
	r.outHeld = make([][]int, ports)
	for p := 0; p < ports; p++ {
		r.inputs[p] = make([]*routerVC, vcs)
		r.credits[p] = make([]int, vcs)
		r.outHeld[p] = make([]int, vcs)
		for v := 0; v < vcs; v++ {
			r.inputs[p][v] = &routerVC{depth: depth, outPort: -1, outVC: -1}
			r.credits[p][v] = depth
			r.outHeld[p][v] = -1
		}
		r.vcArb = append(r.vcArb, NewRoundRobinArbiter(ports*vcs))
		r.swInArb = append(r.swInArb, NewRoundRobinArbiter(vcs))
		r.swOutArb = append(r.swOutArb, NewRoundRobinArbiter(ports))
	}
	return r
}

// NewHeteroRTLRouter builds the paper's heterogeneous router: `base` regular
// ports plus `extra` concurrently-served interface ports (Sec. 7.3 adds two
// serial ports to a 5-port router).
func NewHeteroRTLRouter(base, extra, vcs, depth int, route RouteFunc) *RTLRouter {
	r := NewRTLRouter(base+extra, vcs, depth, route)
	for p := base; p < base+extra; p++ {
		r.concurrent[p] = true
	}
	return r
}

// Push presents a flit at an input port's VC; it reports false when the
// buffer is full (upstream must respect credits).
func (r *RTLRouter) Push(port, vc int, f RTLFlit) bool {
	q := r.inputs[port][vc]
	if len(q.fifo) >= q.depth {
		return false
	}
	q.fifo = append(q.fifo, f)
	return true
}

// Credits returns the free downstream slots the router believes output
// (port, vc) has.
func (r *RTLRouter) Credits(port, vc int) int { return r.credits[port][vc] }

// ReturnCredit models the downstream router freeing one slot.
func (r *RTLRouter) ReturnCredit(port, vc int) {
	r.credits[port][vc]++
	if r.credits[port][vc] > r.depth {
		panic(fmt.Sprintf("rtl: credit overflow at output %d vc %d", port, vc))
	}
}

// Tick advances one cycle and returns the flits leaving through the
// crossbar this cycle (each tagged with Out/OutVC). Regular outputs carry
// at most one flit per cycle; concurrent (interface) outputs may carry one
// flit per output VC.
func (r *RTLRouter) Tick() []RTLFlit {
	r.cycle++
	r.out = r.out[:0]

	// --- VC allocation, separable: idle VCs with a buffered head request
	// an output VC of their routed port; each output arbitrates among ALL
	// requesting input VCs round-robin and hands out its free output VCs.
	reqByOut := make([][]bool, r.ports)
	for p := 0; p < r.ports; p++ {
		for v := 0; v < r.vcs; v++ {
			in := r.inputs[p][v]
			if in.active || len(in.fifo) == 0 {
				continue
			}
			head := in.fifo[0]
			if head.Seq != 0 {
				panic(fmt.Sprintf("rtl: non-head flit (pkt %d seq %d) at idle VC %d.%d", head.PacketID, head.Seq, p, v))
			}
			op := r.route(head)
			if op < 0 || op >= r.ports {
				panic("rtl: route function returned bad port")
			}
			if reqByOut[op] == nil {
				reqByOut[op] = make([]bool, r.ports*r.vcs)
			}
			reqByOut[op][p*r.vcs+v] = true
		}
	}
	for op := 0; op < r.ports; op++ {
		if reqByOut[op] == nil {
			continue
		}
		for ov := 0; ov < r.vcs; ov++ {
			if r.outHeld[op][ov] >= 0 || r.credits[op][ov] == 0 {
				continue
			}
			winner := r.vcArb[op].Grant(reqByOut[op])
			if winner < 0 {
				break
			}
			reqByOut[op][winner] = false
			p, v := winner/r.vcs, winner%r.vcs
			r.outHeld[op][ov] = winner
			in := r.inputs[p][v]
			in.active, in.outPort, in.outVC = true, op, ov
		}
	}

	// --- Switch allocation: stage 1, each input picks one requesting VC.
	chosen := make([]int, r.ports)
	for p := 0; p < r.ports; p++ {
		reqs := make([]bool, r.vcs)
		for v := 0; v < r.vcs; v++ {
			in := r.inputs[p][v]
			reqs[v] = in.active && len(in.fifo) > 0 && r.credits[in.outPort][in.outVC] > 0
		}
		chosen[p] = r.swInArb[p].Grant(reqs)
	}
	// Stage 2: each output picks inputs. Regular outputs take one; the
	// heterogeneous interface outputs take every requester (up to one per
	// output VC, which VC allocation already guarantees).
	for op := 0; op < r.ports; op++ {
		reqs := make([]bool, r.ports)
		for p := 0; p < r.ports; p++ {
			if chosen[p] >= 0 && r.inputs[p][chosen[p]].outPort == op {
				reqs[p] = true
			}
		}
		if r.concurrent[op] {
			for p, want := range reqs {
				if want {
					r.transfer(p, chosen[p])
				}
			}
			continue
		}
		if winner := r.swOutArb[op].Grant(reqs); winner >= 0 {
			r.transfer(winner, chosen[winner])
		}
	}
	return r.out
}

// transfer moves one flit through the crossbar.
func (r *RTLRouter) transfer(p, v int) {
	in := r.inputs[p][v]
	f := in.fifo[0]
	in.fifo = in.fifo[1:]
	f.Out = uint8(in.outPort)
	f.OutVC = uint8(in.outVC)
	r.credits[in.outPort][in.outVC]--
	if r.credits[in.outPort][in.outVC] < 0 {
		panic("rtl: switch allocation violated credits")
	}
	r.out = append(r.out, f)
	if f.Last {
		r.outHeld[in.outPort][in.outVC] = -1
		in.active, in.outPort, in.outVC = false, -1, -1
	}
}

// Occupancy returns buffered flits across all input VCs.
func (r *RTLRouter) Occupancy() int {
	n := 0
	for p := range r.inputs {
		for _, vcq := range r.inputs[p] {
			n += len(vcq.fifo)
		}
	}
	return n
}
