package rtl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// pushPacket feeds a whole packet into an input VC over multiple ticks,
// collecting crossbar output. Returns the collected flits.
func runRTL(t *testing.T, r *RTLRouter, cycles int, feed func(cycle int)) []RTLFlit {
	t.Helper()
	var out []RTLFlit
	for c := 0; c < cycles; c++ {
		if feed != nil {
			feed(c)
		}
		got := r.Tick()
		out = append(out, got...)
		// Downstream returns credits immediately (ideal sink).
		for _, f := range got {
			r.ReturnCredit(int(f.Out), int(f.OutVC))
		}
	}
	return out
}

func mkFlits(pkt uint32, n int, dest uint8) []RTLFlit {
	fs := make([]RTLFlit, n)
	for i := range fs {
		fs[i] = RTLFlit{PacketID: pkt, Seq: uint16(i), Last: i == n-1, DestPort: dest}
	}
	return fs
}

func TestRTLRouterSinglePacket(t *testing.T) {
	r := NewRTLRouter(5, 2, 8, nil)
	flits := mkFlits(1, 4, 3)
	fed := 0
	out := runRTL(t, r, 20, func(c int) {
		if fed < len(flits) {
			if r.Push(0, 0, flits[fed]) {
				fed++
			}
		}
	})
	if len(out) != 4 {
		t.Fatalf("delivered %d of 4 flits", len(out))
	}
	for i, f := range out {
		if int(f.Seq) != i || f.Out != 3 {
			t.Fatalf("flit %d wrong: %+v", i, f)
		}
	}
	if r.Occupancy() != 0 {
		t.Fatal("router not drained")
	}
}

func TestRTLRouterWormholeIntegrity(t *testing.T) {
	// Two packets from different inputs to the same output must not
	// interleave within an output VC.
	r := NewRTLRouter(5, 2, 8, nil)
	a, b := mkFlits(1, 6, 4), mkFlits(2, 6, 4)
	fa, fb := 0, 0
	out := runRTL(t, r, 60, func(c int) {
		if fa < len(a) && r.Push(0, 0, a[fa]) {
			fa++
		}
		if fb < len(b) && r.Push(1, 0, b[fb]) {
			fb++
		}
	})
	if len(out) != 12 {
		t.Fatalf("delivered %d of 12", len(out))
	}
	// Per output VC, packets must be contiguous.
	lastPkt := map[uint8]uint32{}
	done := map[uint8]map[uint32]bool{}
	for _, f := range out {
		if done[f.OutVC] == nil {
			done[f.OutVC] = map[uint32]bool{}
		}
		if prev, ok := lastPkt[f.OutVC]; ok && prev != f.PacketID {
			if !f.Last && f.Seq != 0 {
				t.Fatalf("packet %d interleaved mid-flight on out VC %d", f.PacketID, f.OutVC)
			}
			if done[f.OutVC][f.PacketID] {
				t.Fatalf("packet %d resumed after another packet on out VC %d", f.PacketID, f.OutVC)
			}
		}
		lastPkt[f.OutVC] = f.PacketID
		if f.Last {
			done[f.OutVC][f.PacketID] = true
		}
	}
}

func TestRTLRouterRegularOutputOneFlitPerCycle(t *testing.T) {
	// Saturate a regular output from two inputs: per-cycle output count
	// must never exceed 1.
	r := NewRTLRouter(5, 2, 8, nil)
	pkt := uint32(1)
	for c := 0; c < 100; c++ {
		for in := 0; in < 2; in++ {
			f := RTLFlit{PacketID: pkt, Seq: 0, Last: true, DestPort: 4}
			pkt++
			r.Push(in, c%2, f)
		}
		got := r.Tick()
		if len(got) > 1 {
			t.Fatalf("regular output carried %d flits in one cycle", len(got))
		}
		for _, f := range got {
			r.ReturnCredit(int(f.Out), int(f.OutVC))
		}
	}
}

func TestHeteroRTLRouterConcurrentOutput(t *testing.T) {
	// The heterogeneous router's interface output accepts one flit per
	// output VC per cycle — strictly more than the regular router.
	r := NewHeteroRTLRouter(5, 2, 2, 8, nil)
	sawConcurrent := false
	pkt := uint32(1)
	for c := 0; c < 100; c++ {
		for in := 0; in < 2; in++ {
			f := RTLFlit{PacketID: pkt, Seq: 0, Last: true, DestPort: 5} // interface port
			pkt++
			r.Push(in, 0, f)
		}
		got := r.Tick()
		if len(got) > 2 {
			t.Fatalf("interface output carried %d flits, max is one per VC (2)", len(got))
		}
		if len(got) == 2 {
			sawConcurrent = true
		}
		for _, f := range got {
			r.ReturnCredit(int(f.Out), int(f.OutVC))
		}
	}
	if !sawConcurrent {
		t.Fatal("interface output never served two inputs concurrently")
	}
}

func TestRTLRouterCreditBackpressure(t *testing.T) {
	// Without credit returns, at most depth×vcs flits can leave per output.
	r := NewRTLRouter(3, 2, 4, nil)
	var out []RTLFlit
	pkt := uint32(1)
	for c := 0; c < 60; c++ {
		f := RTLFlit{PacketID: pkt, Seq: 0, Last: true, DestPort: 2}
		pkt++
		r.Push(0, 0, f)
		out = append(out, r.Tick()...) // never return credits
	}
	if len(out) > 8 {
		t.Fatalf("%d flits left without credits (depth 4 × 2 VCs = 8 max)", len(out))
	}
	if len(out) == 0 {
		t.Fatal("no flits left at all")
	}
}

func TestRTLRouterFairnessAcrossInputs(t *testing.T) {
	// Four inputs saturating one output must share within 25%.
	r := NewRTLRouter(5, 2, 8, nil)
	counts := map[uint32]int{}
	pktOf := map[uint32]uint32{} // packet -> input
	next := uint32(1)
	out := runRTL(t, r, 2000, func(c int) {
		for in := uint32(0); in < 4; in++ {
			f := RTLFlit{PacketID: next, Seq: 0, Last: true, DestPort: 4}
			if r.Push(int(in), c%2, f) {
				pktOf[next] = in
				next++
			}
		}
	})
	for _, f := range out {
		counts[pktOf[f.PacketID]]++
	}
	total := len(out)
	for in := uint32(0); in < 4; in++ {
		share := float64(counts[in]) / float64(total)
		if share < 0.15 || share > 0.35 {
			t.Fatalf("input %d got %.0f%% of one output's bandwidth (want ≈25%%)", in, 100*share)
		}
	}
}

// TestRTLRouterPropertyAllDelivered: random traffic through random ports is
// fully delivered in order per packet.
func TestRTLRouterPropertyAllDelivered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRTLRouter(4, 2, 8, nil)
		type stream struct {
			flits []RTLFlit
			fed   int
			in    int
			vc    int
		}
		// One stream per (input, VC) slot: wormhole requires packets to be
		// contiguous within an input VC, so streams must not share one.
		var streams []*stream
		slots := rng.Perm(8)[:6]
		for i, slot := range slots {
			n := rng.Intn(6) + 1
			streams = append(streams, &stream{
				flits: mkFlits(uint32(i+1), n, uint8(rng.Intn(4))),
				in:    slot / 2,
				vc:    slot % 2,
			})
		}
		var out []RTLFlit
		for c := 0; c < 400; c++ {
			for _, s := range streams {
				if s.fed < len(s.flits) && r.Push(s.in, s.vc, s.flits[s.fed]) {
					s.fed++
				}
			}
			got := r.Tick()
			out = append(out, got...)
			for _, fl := range got {
				r.ReturnCredit(int(fl.Out), int(fl.OutVC))
			}
		}
		want := 0
		for _, s := range streams {
			want += len(s.flits)
		}
		if len(out) != want {
			return false
		}
		// Per-packet order.
		nextSeq := map[uint32]uint16{}
		for _, fl := range out {
			if fl.Seq != nextSeq[fl.PacketID] {
				return false
			}
			nextSeq[fl.PacketID]++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRTLRouterPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRTLRouter(0, 1, 1, nil) },
		func() {
			r := NewRTLRouter(2, 1, 4, func(RTLFlit) int { return 99 })
			r.Push(0, 0, RTLFlit{Last: true})
			r.Tick()
		},
		func() {
			r := NewRTLRouter(2, 1, 4, nil)
			r.ReturnCredit(0, 0) // overflow: nothing was consumed
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
