// Package rtl provides behavioral models of the circuits the paper
// synthesizes at TSMC-12nm (Sec. 7.3) and a structural area/power/timing
// estimator reproducing the post-synthesis analysis of Table 4.
//
// The paper's circuit verification covers three modules:
//
//  1. the hetero-PHY adapter RX — a 64-bit × 16-deep FIFO plus sequence-
//     number counting logic (the reorder buffer), implemented here as
//     RxReorder;
//  2. the hetero-PHY adapter TX — a same-size multi-width FIFO with three
//     concurrent read/write ports and the balance-scheduling control
//     (read 3 flits when half full: one to the parallel PHY, two to the
//     serial IF; otherwise read 1 to the parallel PHY), implemented as
//     MultiPortFIFO + BalanceScheduler;
//  3. the canonical VC router, regular (5 ports) and heterogeneous
//     (+2 concurrent serial ports with their routing logic).
//
// Substitution note (DESIGN.md §4): we cannot run Synopsys on TSMC-12nm;
// Estimate computes area, power and critical path from structural
// parameters (storage bits, port counts, crossbar size, control gates)
// with coefficients calibrated against the paper's own four synthesis
// results, so the Table 4 relations (tiny fast adapters; hetero router
// ≈ +45% area / +33% power at nearly unchanged frequency) are reproduced.
package rtl

import "fmt"

// Word is one 64-bit flit payload with its link sequence number, the datum
// the adapter FIFOs move around.
type Word struct {
	Data uint64
	SN   uint16
}

// FIFO is a synchronous single-read single-write FIFO of Words.
type FIFO struct {
	buf  []Word
	head int
	n    int
}

// NewFIFO returns a FIFO with the given depth.
func NewFIFO(depth int) *FIFO {
	if depth <= 0 {
		panic("rtl: FIFO depth must be positive")
	}
	return &FIFO{buf: make([]Word, depth)}
}

// Len returns the current occupancy.
func (f *FIFO) Len() int { return f.n }

// Cap returns the depth.
func (f *FIFO) Cap() int { return len(f.buf) }

// Full reports whether a push would fail.
func (f *FIFO) Full() bool { return f.n == len(f.buf) }

// Push enqueues one word; it reports false when full.
func (f *FIFO) Push(w Word) bool {
	if f.Full() {
		return false
	}
	f.buf[(f.head+f.n)%len(f.buf)] = w
	f.n++
	return true
}

// Pop dequeues the oldest word; ok is false when empty.
func (f *FIFO) Pop() (w Word, ok bool) {
	if f.n == 0 {
		return Word{}, false
	}
	w = f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return w, true
}

// Peek returns the oldest word without removing it.
func (f *FIFO) Peek() (w Word, ok bool) {
	if f.n == 0 {
		return Word{}, false
	}
	return f.buf[f.head], true
}

// MultiPortFIFO is the TX adapter queue: a FIFO that can accept and
// deliver several words in one cycle (the paper's design uses 3 concurrent
// read/write ports).
type MultiPortFIFO struct {
	FIFO
	Ports int
}

// NewMultiPortFIFO returns a multi-width FIFO with the given depth and
// port count.
func NewMultiPortFIFO(depth, ports int) *MultiPortFIFO {
	if ports <= 0 {
		panic("rtl: port count must be positive")
	}
	return &MultiPortFIFO{FIFO: *NewFIFO(depth), Ports: ports}
}

// WriteN enqueues up to min(len(ws), Ports, free) words this cycle and
// returns how many were accepted.
func (m *MultiPortFIFO) WriteN(ws []Word) int {
	n := min(len(ws), m.Ports, m.Cap()-m.Len())
	for i := 0; i < n; i++ {
		m.Push(ws[i])
	}
	return n
}

// ReadN dequeues up to min(n, Ports, Len) words this cycle.
func (m *MultiPortFIFO) ReadN(n int) []Word {
	n = min(n, m.Ports, m.Len())
	out := make([]Word, 0, n)
	for i := 0; i < n; i++ {
		w, _ := m.Pop()
		out = append(out, w)
	}
	return out
}

// BalanceScheduler is the synthesized TX control logic of Sec. 7.3: when
// the queue has reached half capacity it reads three flits per cycle (one
// to the parallel PHY, two to the serial IF); otherwise one flit to the
// parallel PHY.
type BalanceScheduler struct {
	Q *MultiPortFIFO
}

// Tick returns this cycle's issue decision: the words sent to the parallel
// PHY (0 or 1) and to the serial IF (0 to 2).
func (b *BalanceScheduler) Tick() (parallel, serial []Word) {
	if b.Q.Len() >= b.Q.Cap()/2 {
		ws := b.Q.ReadN(3)
		if len(ws) > 0 {
			parallel = ws[:1]
		}
		if len(ws) > 1 {
			serial = ws[1:]
		}
		return parallel, serial
	}
	return b.Q.ReadN(1), nil
}

// RxReorder is the RX adapter of Sec. 7.3: a FIFO buffering flits (data +
// sequence number) from the parallel PHY that waits for flits with earlier
// SNs to arrive from the serial PHY. Words from either PHY are released
// strictly in SN order.
type RxReorder struct {
	fifo    []Word // pending out-of-order words
	nextSN  uint16
	depth   int
	dropped int
}

// NewRxReorder returns a reorder unit with the given FIFO depth (the paper
// uses 16).
func NewRxReorder(depth int) *RxReorder {
	return &RxReorder{depth: depth}
}

// Full reports whether another out-of-order word would overflow the FIFO.
func (r *RxReorder) Full() bool { return len(r.fifo) >= r.depth }

// Insert accepts an arriving word; it reports false (backpressure) when
// the word is out of order and the FIFO is full.
func (r *RxReorder) Insert(w Word) bool {
	if w.SN != r.nextSN && r.Full() {
		return false
	}
	r.fifo = append(r.fifo, w)
	return true
}

// Drain releases every word that is now in order, in SN order.
func (r *RxReorder) Drain() []Word {
	var out []Word
	for {
		found := false
		for i, w := range r.fifo {
			if w.SN == r.nextSN {
				out = append(out, w)
				r.fifo = append(r.fifo[:i], r.fifo[i+1:]...)
				r.nextSN++
				found = true
				break
			}
		}
		if !found {
			return out
		}
	}
}

// Pending returns the number of buffered out-of-order words.
func (r *RxReorder) Pending() int { return len(r.fifo) }

// NextSN returns the next sequence number the unit will release.
func (r *RxReorder) NextSN() uint16 { return r.nextSN }

func (r *RxReorder) String() string {
	return fmt.Sprintf("RxReorder{next=%d pending=%d/%d}", r.nextSN, len(r.fifo), r.depth)
}
