package rtl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(4)
	for i := 0; i < 4; i++ {
		if !f.Push(Word{Data: uint64(i), SN: uint16(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if f.Push(Word{}) {
		t.Fatal("push into full FIFO succeeded")
	}
	if w, ok := f.Peek(); !ok || w.Data != 0 {
		t.Fatal("peek wrong")
	}
	for i := 0; i < 4; i++ {
		w, ok := f.Pop()
		if !ok || w.Data != uint64(i) {
			t.Fatalf("pop %d = %v,%v", i, w, ok)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty FIFO succeeded")
	}
}

func TestFIFOPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero depth accepted")
		}
	}()
	NewFIFO(0)
}

// TestFIFOPropertyAgainstSliceModel: random push/pop against a reference.
func TestFIFOPropertyAgainstSliceModel(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewFIFO(8)
		var ref []Word
		next := uint64(0)
		for _, push := range ops {
			if push {
				w := Word{Data: next, SN: uint16(next)}
				ok := q.Push(w)
				if ok != (len(ref) < 8) {
					return false
				}
				if ok {
					ref = append(ref, w)
					next++
				}
			} else {
				w, ok := q.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if w != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPortFIFOWidths(t *testing.T) {
	m := NewMultiPortFIFO(16, 3)
	ws := make([]Word, 5)
	for i := range ws {
		ws[i] = Word{Data: uint64(i)}
	}
	// Port count caps a single-cycle write at 3.
	if n := m.WriteN(ws); n != 3 {
		t.Fatalf("WriteN accepted %d, want 3 (port limit)", n)
	}
	// Reads are port-capped too.
	out := m.ReadN(5)
	if len(out) != 3 {
		t.Fatalf("ReadN returned %d, want 3", len(out))
	}
	for i, w := range out {
		if w.Data != uint64(i) {
			t.Fatalf("order broken at %d: %v", i, w)
		}
	}
}

func TestMultiPortFIFOCapacityCap(t *testing.T) {
	m := NewMultiPortFIFO(2, 3)
	ws := []Word{{Data: 1}, {Data: 2}, {Data: 3}}
	if n := m.WriteN(ws); n != 2 {
		t.Fatalf("WriteN accepted %d, want 2 (capacity limit)", n)
	}
}

// TestBalanceSchedulerMatchesRTLSpec: Sec. 7.3 — at ≥ half capacity read 3
// flits (1 parallel + 2 serial); otherwise read 1 to the parallel PHY.
func TestBalanceSchedulerMatchesRTLSpec(t *testing.T) {
	m := NewMultiPortFIFO(16, 3)
	s := &BalanceScheduler{Q: m}

	// Light: 3 entries < 8.
	for i := 0; i < 3; i++ {
		m.WriteN([]Word{{Data: uint64(i)}})
	}
	p, ser := s.Tick()
	if len(p) != 1 || len(ser) != 0 {
		t.Fatalf("light load: %d parallel / %d serial, want 1/0", len(p), len(ser))
	}

	// Heavy: fill to capacity.
	for m.Len() < m.Cap() {
		m.WriteN([]Word{{Data: 99}})
	}
	p, ser = s.Tick()
	if len(p) != 1 || len(ser) != 2 {
		t.Fatalf("heavy load: %d parallel / %d serial, want 1/2", len(p), len(ser))
	}

	// Empty: nothing to issue.
	for m.Len() > 0 {
		m.ReadN(3)
	}
	p, ser = s.Tick()
	if len(p) != 0 || len(ser) != 0 {
		t.Fatal("empty queue issued flits")
	}
}

func TestRxReorderReleasesInSNOrder(t *testing.T) {
	r := NewRxReorder(16)
	// Serial flits 0,1 delayed; parallel flits 2,3,4 arrive first.
	for _, sn := range []uint16{2, 3, 4} {
		if !r.Insert(Word{Data: uint64(sn), SN: sn}) {
			t.Fatalf("insert %d rejected", sn)
		}
	}
	if out := r.Drain(); len(out) != 0 {
		t.Fatalf("released %d words before SN 0 arrived", len(out))
	}
	r.Insert(Word{SN: 0})
	r.Insert(Word{SN: 1})
	out := r.Drain()
	if len(out) != 5 {
		t.Fatalf("released %d, want 5", len(out))
	}
	for i, w := range out {
		if w.SN != uint16(i) {
			t.Fatalf("SN order broken at %d: %d", i, w.SN)
		}
	}
}

func TestRxReorderBackpressureWhenFull(t *testing.T) {
	r := NewRxReorder(2)
	r.Insert(Word{SN: 5})
	r.Insert(Word{SN: 6})
	if r.Insert(Word{SN: 7}) {
		t.Fatal("overflow accepted")
	}
	// The in-order word is always accepted (it flows through).
	if !r.Insert(Word{SN: 0}) {
		t.Fatal("in-order word rejected under backpressure")
	}
}

// TestRxReorderPropertyRandomPermutation: any arrival permutation releases
// 0..n-1 exactly once, in order.
func TestRxReorderPropertyRandomPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		r := NewRxReorder(n)
		var got []Word
		for _, sn := range perm {
			if !r.Insert(Word{SN: uint16(sn)}) {
				return false
			}
			got = append(got, r.Drain()...)
		}
		if len(got) != n || r.Pending() != 0 {
			return false
		}
		for i, w := range got {
			if w.SN != uint16(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestTable4Shape checks the estimator reproduces the paper's relations.
func TestTable4Shape(t *testing.T) {
	reports := Table4()
	if len(reports) != 4 {
		t.Fatalf("Table 4 has %d rows, want 4", len(reports))
	}
	rx, tx, reg, het := reports[0], reports[1], reports[2], reports[3]

	// Adapters are small and fast.
	if rx.AreaUM2 >= reg.AreaUM2 || tx.AreaUM2 >= reg.AreaUM2 {
		t.Error("adapters must be smaller than the router")
	}
	if rx.FreqGHz < 1.7 || tx.FreqGHz < 1.7 {
		t.Errorf("adapters should run near 1.85 GHz, got %.2f / %.2f", rx.FreqGHz, tx.FreqGHz)
	}
	// The TX multi-port queue costs more area than the RX FIFO.
	if tx.AreaUM2 <= rx.AreaUM2 {
		t.Error("3-port TX queue should out-area the single-port RX FIFO")
	}

	// Hetero router: ≈ +45% area, +33% power, frequency barely affected.
	areaRatio := het.AreaUM2 / reg.AreaUM2
	powerRatio := het.PowerMW / reg.PowerMW
	freqRatio := het.FreqGHz / reg.FreqGHz
	if areaRatio < 1.3 || areaRatio > 1.6 {
		t.Errorf("hetero/regular area ratio %.2f, want ≈1.45 (Table 4)", areaRatio)
	}
	if powerRatio < 1.2 || powerRatio > 1.5 {
		t.Errorf("hetero/regular power ratio %.2f, want ≈1.33 (Table 4)", powerRatio)
	}
	if freqRatio < 0.9 || freqRatio > 1.05 {
		t.Errorf("hetero/regular frequency ratio %.2f, want ≈0.97 (Table 4)", freqRatio)
	}
	// Routers are slower than adapters (bigger critical path).
	if reg.FreqGHz >= rx.FreqGHz {
		t.Error("router should clock slower than the adapter FIFO")
	}
}

func TestEstimateScalesWithStructure(t *testing.T) {
	tech := TSMC12()
	small := Module{Name: "s", StorageBits: 512, RWPorts: 1, ControlGates: 100, ActiveBitsPerCycle: 64, MuxFanIn: 4}
	big := small
	big.StorageBits = 4096
	if big.Estimate(tech).AreaUM2 <= small.Estimate(tech).AreaUM2 {
		t.Error("area must grow with storage")
	}
	multi := small
	multi.RWPorts = 4
	if multi.Estimate(tech).AreaUM2 <= small.Estimate(tech).AreaUM2 {
		t.Error("area must grow with ports")
	}
	wide := small
	wide.MuxFanIn = 64
	if wide.Estimate(tech).FreqGHz >= small.Estimate(tech).FreqGHz {
		t.Error("frequency must drop with mux fan-in")
	}
}
