package rtl

import "fmt"

// Tech holds the 12nm-class technology coefficients of the estimator.
// They are calibrated so that the four modules of Table 4 land on the
// paper's post-synthesis numbers; the point of the model is that *one*
// coefficient set reproduces all four, so derived designs (wider queues,
// higher-radix routers) scale consistently.
type Tech struct {
	// FlopAreaUM2PerBit is flop storage incl. local clocking and wiring.
	FlopAreaUM2PerBit float64
	// PortAreaFrac is the extra storage-array area per additional
	// concurrent read/write port (multi-port muxing and wordline fanout).
	PortAreaFrac float64
	// GateAreaUM2 is the area of one NAND2-equivalent of control logic.
	GateAreaUM2 float64
	// XbarAreaUM2PerBit is crossbar area per (input×output×bit).
	XbarAreaUM2PerBit float64
	// LeakageMWPerUM2 is static power per area.
	LeakageMWPerUM2 float64
	// DynMWPerBitGHz is dynamic power per actively switched bit per GHz.
	DynMWPerBitGHz float64
	// BaseDelayNS is the flop clk→q plus setup floor of any stage.
	BaseDelayNS float64
	// ClockOverheadNS is skew+jitter+margin added when converting the
	// critical path to an achievable clock (the Table 4 rows imply
	// ≈0.18 ns: 0.36 ns paths clock at 1.85 GHz, 0.65 ns at 1.20 GHz).
	ClockOverheadNS float64
	// MuxDelayNSPerLog2 is added critical path per doubling of mux fan-in.
	MuxDelayNSPerLog2 float64
	// ArbDelayNSPerPort is added allocator delay per router port.
	ArbDelayNSPerPort float64
}

// TSMC12 returns the calibrated 12nm-class coefficient set.
func TSMC12() Tech {
	return Tech{
		FlopAreaUM2PerBit: 0.95,
		PortAreaFrac:      0.22,
		GateAreaUM2:       0.18,
		XbarAreaUM2PerBit: 0.055,
		LeakageMWPerUM2:   0.00004,
		DynMWPerBitGHz:    0.0057,
		BaseDelayNS:       0.26,
		ClockOverheadNS:   0.18,
		MuxDelayNSPerLog2: 0.025,
		ArbDelayNSPerPort: 0.066,
	}
}

// Module is a structural netlist summary: what the estimator needs to
// price a design.
type Module struct {
	Name string
	// StorageBits of flop-based buffering.
	StorageBits int
	// RWPorts on the storage array (1 = simple FIFO).
	RWPorts int
	// Crossbar dimensions (0 for none).
	XbarIn, XbarOut, XbarWidth int
	// ControlGates of NAND2-equivalent control logic.
	ControlGates int
	// ActiveBitsPerCycle is the mean number of bits switched per cycle at
	// the module's nominal load (for dynamic power).
	ActiveBitsPerCycle float64
	// MuxFanIn is the widest data mux on the critical path.
	MuxFanIn int
	// ArbPorts is the allocator size on the critical path (0 for none).
	ArbPorts int
}

// Report is one synthesis estimate (Table 4 row).
type Report struct {
	Name           string
	AreaUM2        float64
	PowerMW        float64
	FJPerBit       float64
	FreqGHz        float64
	CriticalPathNS float64
}

// Estimate prices a module in the given technology.
func (m Module) Estimate(t Tech) Report {
	storage := float64(m.StorageBits) * t.FlopAreaUM2PerBit
	if m.RWPorts > 1 {
		storage *= 1 + t.PortAreaFrac*float64(m.RWPorts-1)
	}
	xbar := float64(m.XbarIn*m.XbarOut*m.XbarWidth) * t.XbarAreaUM2PerBit
	logic := float64(m.ControlGates) * t.GateAreaUM2
	area := storage + xbar + logic

	cp := t.BaseDelayNS
	if m.MuxFanIn > 1 {
		cp += t.MuxDelayNSPerLog2 * log2ceil(m.MuxFanIn)
	}
	if m.ArbPorts > 0 {
		cp += t.ArbDelayNSPerPort * float64(m.ArbPorts)
	}
	freq := 1.0 / (cp + t.ClockOverheadNS)

	power := area*t.LeakageMWPerUM2 + m.ActiveBitsPerCycle*t.DynMWPerBitGHz*freq
	var fjPerBit float64
	if m.ActiveBitsPerCycle > 0 {
		// mW / (bits/cycle × GHz) = pJ/bit; report fJ/bit.
		fjPerBit = power / (m.ActiveBitsPerCycle * freq) * 1000
	}
	return Report{
		Name:           m.Name,
		AreaUM2:        area,
		PowerMW:        power,
		FJPerBit:       fjPerBit,
		FreqGHz:        freq,
		CriticalPathNS: cp,
	}
}

// String renders a Table 4 row.
func (r Report) String() string {
	return fmt.Sprintf("%-22s area=%7.0f um2  power=%5.2f mW (%4.1f fJ/bit)  freq=%4.2f GHz  cp=%.2f ns",
		r.Name, r.AreaUM2, r.PowerMW, r.FJPerBit, r.FreqGHz, r.CriticalPathNS)
}

// The four synthesized designs of Sec. 7.3 / Table 4.

// AdapterRXModule is the RX reorder unit: a 64-bit × 16-deep FIFO (plus
// 16-bit SNs) and the SN counting/compare logic.
func AdapterRXModule() Module {
	return Module{
		Name:        "adapter-rx",
		StorageBits: (64 + 16) * 16,
		RWPorts:     1,
		// SN comparators over 16 entries plus release control.
		ControlGates:       950,
		ActiveBitsPerCycle: 102,
		MuxFanIn:           16,
	}
}

// AdapterTXModule is the TX multi-width FIFO: same storage, 3 concurrent
// read/write ports, balance-scheduling control.
func AdapterTXModule() Module {
	return Module{
		Name:               "adapter-tx",
		StorageBits:        (64 + 16) * 16,
		RWPorts:            3,
		ControlGates:       550,
		ActiveBitsPerCycle: 66, // lower toggling: issues ≤3 flits/cycle
		MuxFanIn:           16,
	}
}

// RegularRouterModule is the canonical 5-port, 2-VC, 64-bit router with
// 10-flit RTL input buffers per VC.
func RegularRouterModule() Module {
	return Module{
		Name:        "regular-router",
		StorageBits: 5 * 2 * 10 * 64, // 10-flit RTL input buffers per VC
		RWPorts:     1,
		XbarIn:      5, XbarOut: 5, XbarWidth: 64,
		ControlGates:       4660, // RC + VC/SW allocators
		ActiveBitsPerCycle: 277,
		MuxFanIn:           5,
		ArbPorts:           5,
	}
}

// HeteroRouterModule adds two concurrent serial-IF ports with their own
// routing computation and buffers (Sec. 7.3: "we let the parallel-IF use
// the original port and added two extra ports").
func HeteroRouterModule() Module {
	return Module{
		Name: "heterogeneous-router",
		// 5 original ports at 10-flit VCs plus 2 serial ports with deeper
		// (12-flit) interface buffers and their routing logic.
		StorageBits: (5*2*10 + 2*2*12) * 64,
		RWPorts:     1,
		XbarIn:      7, XbarOut: 7, XbarWidth: 64,
		ControlGates:       5470,
		ActiveBitsPerCycle: 365,
		MuxFanIn:           7,
		ArbPorts:           5, // allocator stages pipelined per port group
	}
}

// Table4 returns the four Table 4 estimates.
func Table4() []Report {
	t := TSMC12()
	return []Report{
		AdapterRXModule().Estimate(t),
		AdapterTXModule().Estimate(t),
		RegularRouterModule().Estimate(t),
		HeteroRouterModule().Estimate(t),
	}
}

func log2ceil(n int) float64 {
	v, b := 1, 0.0
	for v < n {
		v <<= 1
		b++
	}
	return b
}
