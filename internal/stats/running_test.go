package stats

import (
	"math"
	"testing"
)

func TestRunningAgainstDirectComputation(t *testing.T) {
	xs := []float64{3.1, -2.7, 0, 41.5, 8.8, 8.8, 1e-3}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	sq := 0.0
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	variance := sq / float64(len(xs))

	if r.Count() != int64(len(xs)) {
		t.Fatalf("count %d, want %d", r.Count(), len(xs))
	}
	if math.Abs(r.Mean()-mean) > 1e-12 {
		t.Fatalf("mean %g, want %g", r.Mean(), mean)
	}
	if math.Abs(r.Variance()-variance) > 1e-9 {
		t.Fatalf("variance %g, want %g", r.Variance(), variance)
	}
	if math.Abs(r.StdDev()-math.Sqrt(variance)) > 1e-9 {
		t.Fatalf("stddev %g, want %g", r.StdDev(), math.Sqrt(variance))
	}
}

func TestRunningDegenerate(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 || r.Count() != 0 {
		t.Fatal("empty estimator must report zeros")
	}
	r.Add(5)
	if r.Mean() != 5 || r.Variance() != 0 {
		t.Fatalf("single sample: mean %g variance %g", r.Mean(), r.Variance())
	}
}
