// Package stats collects per-packet latency, throughput, hop and energy
// statistics from simulation runs. A Collector hooks into
// network.Network.Sink and measures only packets created after the warm-up
// window (Table 2: 10000 warm-up cycles).
package stats

import (
	"math"
	"sort"
)

// Collector accumulates measurement-window packet statistics.
type Collector struct {
	// Warmup: packets created before this cycle are ignored.
	Warmup int64

	latencies    []int64
	netLats      []int64
	sorted       bool
	n            int64
	sumLat       float64
	sumNet       float64
	sumSqLat     float64
	flits        int64
	sumEnergy    float64
	sumOnChipE   float64
	sumIfaceE    float64
	hopsOnChip   int64
	hopsParallel int64
	hopsSerial   int64
	hopsHetero   int64

	byClass [8]classAgg
}

// classAgg accumulates per-traffic-class latency statistics.
type classAgg struct {
	n         int64
	sumLat    float64
	latencies []int64
	sorted    bool
}

// Measured is the packet view Record needs; *network.Packet satisfies it
// structurally via the Record call in the runner (kept as a tiny struct to
// avoid an import cycle with experiment helpers).
type Measured struct {
	Class          uint8
	CreatedAt      int64
	InjectedAt     int64
	ArrivedAt      int64
	Length         int
	EnergyPJ       float64
	EnergyOnChipPJ float64
	EnergyIfacePJ  float64
	HopsOnChip     int32
	HopsParallel   int32
	HopsSerial     int32
	HopsHetero     int32
}

// Record adds one delivered packet. Packets created during warm-up are
// skipped.
func (c *Collector) Record(m Measured) {
	if m.CreatedAt < c.Warmup {
		return
	}
	lat := m.ArrivedAt - m.CreatedAt
	net := m.ArrivedAt - m.InjectedAt
	c.latencies = append(c.latencies, lat)
	c.netLats = append(c.netLats, net)
	c.sorted = false
	c.n++
	c.sumLat += float64(lat)
	c.sumNet += float64(net)
	c.sumSqLat += float64(lat) * float64(lat)
	c.flits += int64(m.Length)
	c.sumEnergy += m.EnergyPJ
	c.sumOnChipE += m.EnergyOnChipPJ
	c.sumIfaceE += m.EnergyIfacePJ
	if int(m.Class) < len(c.byClass) {
		a := &c.byClass[m.Class]
		a.n++
		a.sumLat += float64(lat)
		a.latencies = append(a.latencies, lat)
		a.sorted = false
	}
	c.hopsOnChip += int64(m.HopsOnChip)
	c.hopsParallel += int64(m.HopsParallel)
	c.hopsSerial += int64(m.HopsSerial)
	c.hopsHetero += int64(m.HopsHetero)
}

// Count returns the number of measured packets.
func (c *Collector) Count() int64 { return c.n }

// FlitsDelivered returns the number of measured flits delivered.
func (c *Collector) FlitsDelivered() int64 { return c.flits }

// MeanLatency returns the average creation→delivery latency in cycles.
func (c *Collector) MeanLatency() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	return c.sumLat / float64(c.n)
}

// MeanNetLatency returns the average injection→delivery latency in cycles.
func (c *Collector) MeanNetLatency() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	return c.sumNet / float64(c.n)
}

// LatencyVariance returns the variance of the total latency.
func (c *Collector) LatencyVariance() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	mean := c.sumLat / float64(c.n)
	return c.sumSqLat/float64(c.n) - mean*mean
}

// LatencyStdDev returns the standard deviation of the total latency.
func (c *Collector) LatencyStdDev() float64 {
	v := c.LatencyVariance()
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Percentile returns the q-th (0..1) total-latency percentile in cycles.
func (c *Collector) Percentile(q float64) int64 {
	if c.n == 0 {
		return 0
	}
	if !c.sorted {
		sort.Slice(c.latencies, func(i, j int) bool { return c.latencies[i] < c.latencies[j] })
		c.sorted = true
	}
	idx := int(q * float64(len(c.latencies)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.latencies) {
		idx = len(c.latencies) - 1
	}
	return c.latencies[idx]
}

// Throughput returns the accepted traffic in flits/cycle/node over a
// measurement window of the given length and node count.
func (c *Collector) Throughput(cycles int64, nodes int) float64 {
	if cycles <= 0 || nodes == 0 {
		return 0
	}
	return float64(c.flits) / float64(cycles) / float64(nodes)
}

// MeanEnergyPJ returns the average energy per measured packet in pJ.
func (c *Collector) MeanEnergyPJ() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	return c.sumEnergy / float64(c.n)
}

// MeanEnergyBreakdownPJ returns the average per-packet energy split into
// on-chip (NoC wires + routers) and die-to-die interface shares.
func (c *Collector) MeanEnergyBreakdownPJ() (onChip, iface float64) {
	if c.n == 0 {
		return math.NaN(), math.NaN()
	}
	return c.sumOnChipE / float64(c.n), c.sumIfaceE / float64(c.n)
}

// MeanHops returns average hops per packet split by channel class:
// on-chip, parallel, serial, hetero-PHY.
func (c *Collector) MeanHops() (onChip, parallel, serial, hetero float64) {
	if c.n == 0 {
		return
	}
	n := float64(c.n)
	return float64(c.hopsOnChip) / n, float64(c.hopsParallel) / n,
		float64(c.hopsSerial) / n, float64(c.hopsHetero) / n
}

// ClassCount returns the number of measured packets of a traffic class.
func (c *Collector) ClassCount(class uint8) int64 {
	if int(class) >= len(c.byClass) {
		return 0
	}
	return c.byClass[class].n
}

// ClassMeanLatency returns the average latency of one traffic class.
func (c *Collector) ClassMeanLatency(class uint8) float64 {
	if int(class) >= len(c.byClass) || c.byClass[class].n == 0 {
		return math.NaN()
	}
	a := &c.byClass[class]
	return a.sumLat / float64(a.n)
}

// ClassPercentile returns a latency percentile of one traffic class.
func (c *Collector) ClassPercentile(class uint8, q float64) int64 {
	if int(class) >= len(c.byClass) || c.byClass[class].n == 0 {
		return 0
	}
	a := &c.byClass[class]
	if !a.sorted {
		sort.Slice(a.latencies, func(i, j int) bool { return a.latencies[i] < a.latencies[j] })
		a.sorted = true
	}
	idx := int(q * float64(len(a.latencies)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(a.latencies) {
		idx = len(a.latencies) - 1
	}
	return a.latencies[idx]
}

// Reset clears all measurements, keeping the warm-up setting.
func (c *Collector) Reset() {
	*c = Collector{Warmup: c.Warmup}
}

// Running is an online mean/variance estimator (Welford's algorithm): O(1)
// memory, numerically stable, usable one sample at a time. The sweep
// orchestrator feeds it per-job wall-clock durations to estimate ETAs; it
// is equally suited to any streaming aggregate.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one sample into the estimate.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Count returns the number of samples seen.
func (r *Running) Count() int64 { return r.n }

// Mean returns the running mean (0 with no samples).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.mean
}

// Variance returns the running population variance (0 with < 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }
