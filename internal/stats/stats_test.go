package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func sample(created, injected, arrived int64, length int) Measured {
	return Measured{
		CreatedAt: created, InjectedAt: injected, ArrivedAt: arrived,
		Length: length,
	}
}

func TestWarmupFiltering(t *testing.T) {
	c := &Collector{Warmup: 100}
	c.Record(sample(99, 99, 150, 4))   // created during warm-up: ignored
	c.Record(sample(100, 101, 160, 4)) // measured
	if c.Count() != 1 {
		t.Fatalf("count = %d, want 1", c.Count())
	}
	if got := c.MeanLatency(); got != 60 {
		t.Fatalf("mean latency = %v, want 60", got)
	}
	if got := c.MeanNetLatency(); got != 59 {
		t.Fatalf("mean net latency = %v, want 59", got)
	}
}

func TestEmptyCollectorNaN(t *testing.T) {
	c := &Collector{}
	if !math.IsNaN(c.MeanLatency()) || !math.IsNaN(c.MeanEnergyPJ()) || !math.IsNaN(c.LatencyVariance()) {
		t.Error("empty collector should report NaN means")
	}
	if c.Percentile(0.99) != 0 || c.Throughput(100, 4) != 0 {
		t.Error("empty collector percentile/throughput should be 0")
	}
}

func TestThroughput(t *testing.T) {
	c := &Collector{}
	for i := 0; i < 10; i++ {
		c.Record(sample(int64(i), int64(i), int64(i+20), 16))
	}
	// 160 flits over 100 cycles and 4 nodes = 0.4 flits/cycle/node.
	if got := c.Throughput(100, 4); got != 0.4 {
		t.Fatalf("throughput = %v, want 0.4", got)
	}
}

func TestPercentilesAndVariance(t *testing.T) {
	c := &Collector{}
	for i := 1; i <= 100; i++ {
		c.Record(sample(0, 0, int64(i), 1))
	}
	if got := c.Percentile(0.5); got < 49 || got > 52 {
		t.Fatalf("p50 = %d", got)
	}
	if got := c.Percentile(0.99); got < 99 {
		t.Fatalf("p99 = %d", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Fatalf("p0 = %d, want 1", got)
	}
	mean := c.MeanLatency()
	if math.Abs(mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	// Var of 1..100 = (100²−1)/12 = 833.25.
	if got := c.LatencyVariance(); math.Abs(got-833.25) > 0.1 {
		t.Fatalf("variance = %v, want 833.25", got)
	}
	if got := c.LatencyStdDev(); math.Abs(got-math.Sqrt(833.25)) > 0.01 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestEnergyAndHops(t *testing.T) {
	c := &Collector{}
	c.Record(Measured{ArrivedAt: 10, Length: 2, EnergyPJ: 100, EnergyOnChipPJ: 30, EnergyIfacePJ: 70,
		HopsOnChip: 3, HopsParallel: 1, HopsSerial: 2, HopsHetero: 1})
	c.Record(Measured{ArrivedAt: 20, Length: 2, EnergyPJ: 200, EnergyOnChipPJ: 60, EnergyIfacePJ: 140,
		HopsOnChip: 5, HopsParallel: 1, HopsSerial: 0, HopsHetero: 3})
	if got := c.MeanEnergyPJ(); got != 150 {
		t.Fatalf("mean energy = %v", got)
	}
	on, iface := c.MeanEnergyBreakdownPJ()
	if on != 45 || iface != 105 {
		t.Fatalf("breakdown = %v/%v, want 45/105", on, iface)
	}
	oc, pa, se, he := c.MeanHops()
	if oc != 4 || pa != 1 || se != 1 || he != 2 {
		t.Fatalf("hops = %v %v %v %v", oc, pa, se, he)
	}
}

func TestReset(t *testing.T) {
	c := &Collector{Warmup: 7}
	c.Record(sample(10, 10, 20, 1))
	c.Reset()
	if c.Count() != 0 || c.Warmup != 7 {
		t.Fatalf("reset lost state: count=%d warmup=%d", c.Count(), c.Warmup)
	}
}

// TestPercentileMatchesSortProperty: percentile agrees with a direct sort.
func TestPercentileMatchesSortProperty(t *testing.T) {
	f := func(lats []uint16, qRaw uint8) bool {
		if len(lats) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		c := &Collector{}
		var ref []int64
		for _, l := range lats {
			c.Record(sample(0, 0, int64(l), 1))
			ref = append(ref, int64(l))
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		want := ref[int(q*float64(len(ref)-1))]
		return c.Percentile(q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClassStatistics(t *testing.T) {
	c := &Collector{}
	for i := 1; i <= 10; i++ {
		m := sample(0, 0, int64(i*10), 1)
		m.Class = 2 // latency-sensitive
		c.Record(m)
	}
	m := sample(0, 0, 1000, 1)
	m.Class = 3
	c.Record(m)

	if got := c.ClassCount(2); got != 10 {
		t.Fatalf("class 2 count = %d", got)
	}
	if got := c.ClassMeanLatency(2); got != 55 {
		t.Fatalf("class 2 mean = %v, want 55", got)
	}
	if got := c.ClassPercentile(2, 1.0); got != 100 {
		t.Fatalf("class 2 p100 = %d, want 100", got)
	}
	if got := c.ClassPercentile(2, 0); got != 10 {
		t.Fatalf("class 2 p0 = %d, want 10", got)
	}
	if got := c.ClassMeanLatency(3); got != 1000 {
		t.Fatalf("class 3 mean = %v", got)
	}
	// Unused and out-of-range classes degrade gracefully.
	if c.ClassCount(7) != 0 || c.ClassCount(200) != 0 {
		t.Error("empty class counts wrong")
	}
	if !math.IsNaN(c.ClassMeanLatency(7)) || !math.IsNaN(c.ClassMeanLatency(250)) {
		t.Error("empty class means should be NaN")
	}
	if c.ClassPercentile(7, 0.5) != 0 || c.ClassPercentile(250, 0.5) != 0 {
		t.Error("empty class percentiles should be 0")
	}
	// The overall mean covers every class.
	if got := c.MeanLatency(); math.Abs(got-(55*10+1000)/11.0) > 1e-9 {
		t.Fatalf("overall mean = %v", got)
	}
}
