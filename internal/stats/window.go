package stats

// Windowed turns a pair of monotonically increasing counters into a
// per-window event rate: feed it cumulative (num, den) observations and it
// closes a window every Window cycles, exposing the rate of the deltas over
// that window. The failover policy uses it to judge serial-PHY health from
// cumulative retransmission telemetry; it is cheap enough to call on every
// observation (one comparison when the window is still open).
type Windowed struct {
	// Window is the evaluation period in cycles.
	Window int64

	// Rate is num-delta / den-delta of the last closed window (0 when the
	// window saw no denominator events).
	Rate float64
	// Den is the denominator delta of the last closed window — callers use
	// it to skip judgments on windows with too small a sample.
	Den uint64
	// Closed counts closed windows.
	Closed uint64

	start            int64
	lastNum, lastDen uint64
}

// Observe records cumulative counters at cycle now. It returns true when
// this observation closed a window (Rate/Den were just updated).
func (w *Windowed) Observe(now int64, num, den uint64) bool {
	if now-w.start < w.Window {
		return false
	}
	dn := num - w.lastNum
	dd := den - w.lastDen
	w.Rate = 0
	if dd > 0 {
		w.Rate = float64(dn) / float64(dd)
	}
	w.Den = dd
	w.lastNum, w.lastDen = num, den
	w.start = now
	w.Closed++
	return true
}

// Reset clears all window state, keeping the period.
func (w *Windowed) Reset() {
	*w = Windowed{Window: w.Window}
}
