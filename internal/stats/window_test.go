package stats

import "testing"

func TestWindowedRates(t *testing.T) {
	w := Windowed{Window: 10}
	// First window: 4 retries out of 8 transmissions.
	if w.Observe(0, 0, 0) {
		t.Fatal("window closed immediately")
	}
	if w.Observe(5, 2, 4) {
		t.Fatal("window closed early")
	}
	if !w.Observe(10, 4, 8) {
		t.Fatal("window did not close at the boundary")
	}
	if w.Rate != 0.5 || w.Den != 8 || w.Closed != 1 {
		t.Fatalf("first window: rate %v den %d closed %d", w.Rate, w.Den, w.Closed)
	}
	// Second window: deltas only — 0 new retries out of 4 transmissions.
	if !w.Observe(20, 4, 12) {
		t.Fatal("second window did not close")
	}
	if w.Rate != 0 || w.Den != 4 || w.Closed != 2 {
		t.Fatalf("second window: rate %v den %d closed %d", w.Rate, w.Den, w.Closed)
	}
	// Empty window: Den 0, rate 0.
	if !w.Observe(30, 4, 12) {
		t.Fatal("empty window did not close")
	}
	if w.Rate != 0 || w.Den != 0 {
		t.Fatalf("empty window: rate %v den %d", w.Rate, w.Den)
	}
	w.Reset()
	if w.Observe(0, 0, 0) || w.Closed != 0 {
		t.Fatal("Reset did not clear the monitor")
	}
}
