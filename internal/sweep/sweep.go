// Package sweep runs independent experiment operating points concurrently
// on a bounded worker pool. The paper's evaluation (Sec. 8) is a large grid
// of independent {system} × {workload} × {offered rate} points; this
// package provides the point-level parallelism that complements the
// cycle-level parallelism of network.SetWorkers.
//
// Determinism: outcomes are returned in submission order regardless of the
// pool size or completion order, and a job must derive everything it needs
// (random sources included) from its own inputs — never from shared mutable
// state — so a sweep at Jobs=1 and Jobs=8 produces bit-identical results.
// DeriveSeed maps a base seed and a point key to a stable per-job seed for
// jobs that need independent randomness.
//
// Isolation: a job that panics or exceeds the per-job timeout is reported
// through its Outcome's Err/Panicked/TimedOut fields; sibling jobs and the
// sweep itself are unaffected.
package sweep

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"time"

	"heteroif/internal/stats"
)

// Job is one independent unit of work: typically "build an
// experiments.Instance, drive it, Measure a Result".
type Job[T any] struct {
	// Key identifies the point in progress reports, error messages and
	// result manifests (e.g. "fig11/uniform/hetero-phy-full").
	Key string
	// Run computes the point. It must be self-contained: safe to call
	// concurrently with every other job's Run.
	Run func() (T, error)
}

// Outcome is the result of one job. Exactly one of Value (on success) and
// Err (on failure) is meaningful; Failed distinguishes them.
type Outcome[T any] struct {
	Key string
	// Value is the job's return value; on failure it holds whatever Run
	// returned alongside the error (possibly partial results).
	Value T
	// Err is non-nil when the job returned an error, panicked, or timed
	// out.
	Err error
	// Panicked marks a recovered panic; Err carries the panic value and
	// stack.
	Panicked bool
	// TimedOut marks a job abandoned after Options.Timeout. Its goroutine
	// is left to finish in the background (the engine has no preemption
	// points), but its result is discarded and the pool slot is freed.
	TimedOut bool
	// Elapsed is the job's wall-clock time.
	Elapsed time.Duration
}

// Failed reports whether the job did not produce a usable result.
func (o *Outcome[T]) Failed() bool { return o.Err != nil }

// Progress is a snapshot passed to Options.OnProgress after each job
// completes.
type Progress struct {
	// Done and Total count jobs.
	Done, Total int
	// Failed counts completed jobs with a non-nil Err so far.
	Failed int
	// Elapsed is the wall-clock time since the sweep started.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time from the running mean
	// job duration and the worker count. Zero when Done == Total.
	ETA time.Duration
}

// Options configures a sweep.
type Options struct {
	// Jobs is the worker-pool size; values <= 1 run the jobs sequentially
	// in submission order on the calling goroutine.
	Jobs int
	// Timeout bounds each job's wall-clock time (0 = unbounded).
	Timeout time.Duration
	// OnProgress, when non-nil, is called after every job completion. It
	// is never called concurrently.
	OnProgress func(Progress)
}

// Run executes the jobs on a pool of Options.Jobs workers and returns one
// outcome per job, in submission order.
func Run[T any](jobs []Job[T], o Options) []Outcome[T] {
	outs := make([]Outcome[T], len(jobs))
	if len(jobs) == 0 {
		return outs
	}
	workers := o.Jobs
	if workers > len(jobs) {
		workers = len(jobs)
	}

	start := time.Now()
	var mu sync.Mutex // guards done/failed/durations and OnProgress
	done, failed := 0, 0
	var durations stats.Running
	finish := func(i int) {
		if o.OnProgress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		if outs[i].Err != nil {
			failed++
		}
		durations.Add(outs[i].Elapsed.Seconds())
		p := Progress{Done: done, Total: len(jobs), Failed: failed, Elapsed: time.Since(start)}
		if remaining := len(jobs) - done; remaining > 0 {
			w := workers
			if w < 1 {
				w = 1
			}
			p.ETA = time.Duration(durations.Mean() * float64(remaining) / float64(w) * float64(time.Second))
		}
		o.OnProgress(p)
	}

	if workers <= 1 {
		for i := range jobs {
			outs[i] = execute(jobs[i], o.Timeout)
			finish(i)
		}
		return outs
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outs[i] = execute(jobs[i], o.Timeout)
				finish(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return outs
}

// execute runs one job with panic recovery and an optional wall-clock
// timeout.
func execute[T any](j Job[T], timeout time.Duration) Outcome[T] {
	out := Outcome[T]{Key: j.Key}
	start := time.Now()
	type result struct {
		value    T
		err      error
		panicked bool
	}
	ch := make(chan result, 1)
	go func() {
		var r result
		defer func() {
			if p := recover(); p != nil {
				r.panicked = true
				r.err = fmt.Errorf("sweep: job %s panicked: %v\n%s", j.Key, p, debug.Stack())
			}
			ch <- r
		}()
		r.value, r.err = j.Run()
	}()

	if timeout > 0 {
		select {
		case r := <-ch:
			out.Value, out.Err, out.Panicked = r.value, r.err, r.panicked
		case <-time.After(timeout):
			out.TimedOut = true
			out.Err = fmt.Errorf("sweep: job %s exceeded %s wall-clock timeout", j.Key, timeout)
		}
	} else {
		r := <-ch
		out.Value, out.Err, out.Panicked = r.value, r.err, r.panicked
	}
	out.Elapsed = time.Since(start)
	return out
}

// DeriveSeed maps a base seed and a point key to a stable, well-mixed
// per-job seed (FNV-1a). Jobs that need their own random source derive it
// from the sweep's base seed and their key, which keeps results
// bit-identical regardless of pool size or completion order. The result is
// always positive (a zero seed usually means "use the default").
func DeriveSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // unambiguous part boundary
	}
	s := int64(h.Sum64() & (1<<63 - 1))
	if s == 0 {
		s = 1
	}
	return s
}
