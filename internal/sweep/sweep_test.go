package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// square returns jobs whose results depend only on their inputs, with
// deliberately uneven durations so completion order differs from
// submission order under a pool.
func squares(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("sq/%d", i),
			Run: func() (int, error) {
				time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestRunOrderingDeterministicAcrossPoolSizes(t *testing.T) {
	want := Run(squares(40), Options{Jobs: 1})
	for _, pool := range []int{2, 8, 64} {
		got := Run(squares(40), Options{Jobs: pool})
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Value != want[i].Value {
				t.Fatalf("pool %d: outcome %d = (%s, %d), want (%s, %d)",
					pool, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
			if got[i].Failed() {
				t.Fatalf("pool %d: job %s unexpectedly failed: %v", pool, got[i].Key, got[i].Err)
			}
		}
	}
}

// TestPanicIsolation: a panicking job is reported as failed while every
// sibling completes normally — at pool size 1 and under a pool.
func TestPanicIsolation(t *testing.T) {
	for _, pool := range []int{1, 4} {
		jobs := []Job[int]{
			{Key: "ok/0", Run: func() (int, error) { return 1, nil }},
			{Key: "boom", Run: func() (int, error) { panic("kaboom") }},
			{Key: "ok/2", Run: func() (int, error) { return 3, nil }},
		}
		outs := Run(jobs, Options{Jobs: pool})
		if !outs[1].Failed() || !outs[1].Panicked {
			t.Fatalf("pool %d: panicking job not reported: %+v", pool, outs[1])
		}
		if msg := outs[1].Err.Error(); !strings.Contains(msg, "kaboom") || !strings.Contains(msg, "boom") {
			t.Fatalf("pool %d: panic error lacks context: %v", pool, outs[1].Err)
		}
		for i, want := range map[int]int{0: 1, 2: 3} {
			if outs[i].Failed() || outs[i].Value != want {
				t.Fatalf("pool %d: sibling %s did not complete: %+v", pool, outs[i].Key, outs[i])
			}
		}
	}
}

func TestJobErrorKeepsPartialValue(t *testing.T) {
	jobs := []Job[[]int]{{
		Key: "partial",
		Run: func() ([]int, error) { return []int{1, 2}, errors.New("stopped early") },
	}}
	outs := Run(jobs, Options{})
	if !outs[0].Failed() {
		t.Fatal("error not reported")
	}
	if !reflect.DeepEqual(outs[0].Value, []int{1, 2}) {
		t.Fatalf("partial value lost: %v", outs[0].Value)
	}
}

func TestTimeoutIsolation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	jobs := []Job[int]{
		{Key: "fast", Run: func() (int, error) { return 7, nil }},
		{Key: "hung", Run: func() (int, error) { <-release; return 0, nil }},
		{Key: "also-fast", Run: func() (int, error) { return 9, nil }},
	}
	outs := Run(jobs, Options{Jobs: 2, Timeout: 20 * time.Millisecond})
	if !outs[1].TimedOut || !outs[1].Failed() {
		t.Fatalf("hung job not timed out: %+v", outs[1])
	}
	if outs[0].Value != 7 || outs[2].Value != 9 || outs[0].Failed() || outs[2].Failed() {
		t.Fatalf("siblings disturbed by timeout: %+v %+v", outs[0], outs[2])
	}
}

func TestProgressReporting(t *testing.T) {
	const n = 10
	var calls int32
	var lastDone int
	var lastETA time.Duration
	prev := -1
	outs := Run(squares(n), Options{Jobs: 3, OnProgress: func(p Progress) {
		atomic.AddInt32(&calls, 1)
		if p.Total != n {
			t.Errorf("progress total %d, want %d", p.Total, n)
		}
		if p.Done <= prev {
			t.Errorf("progress done %d not monotonically increasing after %d", p.Done, prev)
		}
		prev = p.Done
		lastDone, lastETA = p.Done, p.ETA
	}})
	if len(outs) != n {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if calls != n {
		t.Fatalf("progress called %d times, want %d", calls, n)
	}
	if lastDone != n || lastETA != 0 {
		t.Fatalf("final progress done=%d eta=%v, want done=%d eta=0", lastDone, lastETA, n)
	}
}

func TestEmptyAndOversizedPool(t *testing.T) {
	if outs := Run[int](nil, Options{Jobs: 8}); len(outs) != 0 {
		t.Fatalf("empty job list produced %d outcomes", len(outs))
	}
	outs := Run(squares(2), Options{Jobs: 100}) // pool larger than job count
	if len(outs) != 2 || outs[0].Value != 0 || outs[1].Value != 1 {
		t.Fatalf("oversized pool mangled outcomes: %+v", outs)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(1, "fig11", "uniform")
	if a != DeriveSeed(1, "fig11", "uniform") {
		t.Fatal("DeriveSeed not deterministic")
	}
	if a <= 0 {
		t.Fatalf("DeriveSeed returned non-positive %d", a)
	}
	seen := map[int64]string{a: "base"}
	for _, v := range []struct {
		base  int64
		parts []string
	}{
		{2, []string{"fig11", "uniform"}},
		{1, []string{"fig11", "hotspot"}},
		{1, []string{"fig12", "uniform"}},
		{1, []string{"fig11uniform"}},         // concatenation must not collide
		{1, []string{"fig11", "uniform", ""}}, // extra empty part must not collide
	} {
		s := DeriveSeed(v.base, v.parts...)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision between %v and %s", v, prev)
		}
		seen[s] = fmt.Sprint(v)
	}
}
