package topology

import (
	"fmt"

	"heteroif/internal/core"
	"heteroif/internal/network"
)

// Build constructs the network for a system specification. The returned
// network has no routing algorithm attached yet; callers pair it with the
// matching algorithm from internal/routing and then call Finalize.
func Build(cfg network.Config, spec Spec) (*network.Network, *Topo, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	net, err := network.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	t := &Topo{
		Spec: spec,
		GX:   spec.ChipletsX * spec.NodesX,
		GY:   spec.ChipletsY * spec.NodesY,
	}
	t.N = t.GX * t.GY
	net.AddNodes(t.N)
	t.OutPorts = make([][]PortInfo, t.N)
	for i := range t.OutPorts {
		// Entry 0 is the local ejection port.
		t.OutPorts[i] = append(t.OutPorts[i], PortInfo{Dest: -1, Kind: network.KindLocal, CubeDim: -1})
	}

	b := builder{net: net, t: t}

	// Intra-chiplet 2D meshes.
	for gy := 0; gy < t.GY; gy++ {
		for gx := 0; gx < t.GX; gx++ {
			if gx+1 < t.GX && (gx+1)%spec.NodesX != 0 {
				b.connectBoth(network.KindOnChip, t.NodeAt(gx, gy), t.NodeAt(gx+1, gy), -1, false, nil)
			}
			if gy+1 < t.GY && (gy+1)%spec.NodesY != 0 {
				b.connectBoth(network.KindOnChip, t.NodeAt(gx, gy), t.NodeAt(gx, gy+1), -1, false, nil)
			}
		}
	}

	switch spec.System {
	case UniformParallelMesh:
		b.neighborLinks(network.KindParallel, nil)
	case UniformSerialTorus:
		b.neighborLinks(network.KindSerial, nil)
		b.wraparounds(network.KindSerial)
	case HeteroPHYTorus:
		pol := spec.Policy
		if pol == nil {
			pol = core.Balanced{}
		}
		b.neighborLinks(network.KindHeteroPHY, pol)
		b.wraparounds(network.KindSerial)
	case UniformSerialHypercube:
		if err := b.hypercube(network.KindSerial); err != nil {
			return nil, nil, err
		}
	case HeteroChannel:
		b.neighborLinks(network.KindParallel, nil)
		if err := b.hypercube(network.KindSerial); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("topology: unknown system %v", spec.System)
	}

	return net, t, nil
}

type builder struct {
	net *network.Network
	t   *Topo
}

// connectBoth wires a bidirectional channel (two unidirectional links)
// between a and b and records port metadata. For hetero-PHY kinds each
// direction gets its own adapter with the given policy.
func (b *builder) connectBoth(kind network.LinkKind, a, c network.NodeID, cubeDim int8, wrap bool, pol core.Policy) {
	b.connectOne(kind, a, c, cubeDim, wrap, pol)
	b.connectOne(kind, c, a, cubeDim, wrap, pol)
}

func (b *builder) connectOne(kind network.LinkKind, from, to network.NodeID, cubeDim int8, wrap bool, pol core.Policy) {
	l := b.net.Connect(kind, from, to)
	if kind == network.KindHeteroPHY {
		// Stateful policies (FailoverPolicy health monitors) are cloned so
		// every adapter tracks its own interface.
		if c, ok := pol.(core.PolicyCloner); ok {
			pol = c.ClonePolicy()
		}
		ad := core.NewHeteroPHYAdapter(&b.net.Cfg, pol)
		b.net.SetAdapter(l, ad)
		b.t.Adapters = append(b.t.Adapters, ad)
	}
	ports := &b.t.OutPorts[from]
	for len(*ports) <= l.SrcPort {
		*ports = append(*ports, PortInfo{Dest: -1, CubeDim: -1})
	}
	(*ports)[l.SrcPort] = PortInfo{Dest: to, Kind: kind, CubeDim: cubeDim, Wrap: wrap}
}

// neighborLinks wires every boundary-adjacent node pair between adjacent
// chiplets, making the system one global 2D mesh.
func (b *builder) neighborLinks(kind network.LinkKind, pol core.Policy) {
	t := b.t
	for gy := 0; gy < t.GY; gy++ {
		for gx := 0; gx < t.GX; gx++ {
			if gx+1 < t.GX && (gx+1)%t.NodesX == 0 {
				b.connectBoth(kind, t.NodeAt(gx, gy), t.NodeAt(gx+1, gy), -1, false, pol)
			}
			if gy+1 < t.GY && (gy+1)%t.NodesY == 0 {
				b.connectBoth(kind, t.NodeAt(gx, gy), t.NodeAt(gx, gy+1), -1, false, pol)
			}
		}
	}
}

// wraparounds closes every global row and column into a ring (serial
// long-reach links between the outermost chiplet columns/rows). Rings of
// length ≤ 2 would duplicate an existing neighbor link and are skipped.
func (b *builder) wraparounds(kind network.LinkKind) {
	t := b.t
	if t.GX > 2 && t.ChipletsX > 1 {
		for gy := 0; gy < t.GY; gy++ {
			b.connectBoth(kind, t.NodeAt(t.GX-1, gy), t.NodeAt(0, gy), -1, true, nil)
		}
	}
	if t.GY > 2 && t.ChipletsY > 1 {
		for gx := 0; gx < t.GX; gx++ {
			b.connectBoth(kind, t.NodeAt(gx, t.GY-1), t.NodeAt(gx, 0), -1, true, nil)
		}
	}
}

// hypercube wires the chiplets into a hypercube following the method of
// Feng et al. [30]: every edge node carries a serial interface (Fig. 9a,
// "interfaces all around"), and edge node j of chiplet c links to edge
// node j of chiplet c XOR 2^(j mod d). Each dimension thus gets
// ⌈perimeter/d⌉ parallel cube links spread around the chiplet boundary,
// which both multiplies cube bandwidth and avoids funneling all off-chip
// traffic through a single on-chip hotspot.
func (b *builder) hypercube(kind network.LinkKind) error {
	t := b.t
	nChiplets := t.ChipletsX * t.ChipletsY
	d := dims(nChiplets)
	t.CubeDims = d
	if d == 0 {
		return nil
	}
	edges := t.edgeNodesLocal()
	if d > len(edges) {
		return fmt.Errorf("topology: %d cube dimensions exceed %d edge nodes", d, len(edges))
	}
	t.CubePorts = make([][]network.NodeID, nChiplets*d)
	nodeAtEdge := func(c, j int) network.NodeID {
		ox, oy := t.ChipletOrigin(c)
		e := edges[j]
		return t.NodeAt(ox+e[0], oy+e[1])
	}
	for c := 0; c < nChiplets; c++ {
		for j := range edges {
			dim := j % d
			t.CubePorts[c*d+dim] = append(t.CubePorts[c*d+dim], nodeAtEdge(c, j))
			peer := c ^ (1 << dim)
			if peer < c {
				continue // wire each pair once
			}
			b.connectBoth(kind, nodeAtEdge(c, j), nodeAtEdge(peer, j), int8(dim), false, nil)
		}
	}
	return nil
}
