package topology

import (
	"fmt"
	"strings"

	"heteroif/internal/network"
)

// Describe renders a human-readable summary of a built system: the chiplet
// grid, per-kind link counts, interface-node placement and the hypercube
// wiring. cmd/hetsim uses it for custom runs; it is also handy in tests
// and bug reports.
func (t *Topo) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d×%d chiplets of %d×%d nodes (%d nodes, %d×%d global grid)\n",
		t.System, t.ChipletsX, t.ChipletsY, t.NodesX, t.NodesY, t.N, t.GX, t.GY)

	counts := map[network.LinkKind]int{}
	dead := 0
	for _, ports := range t.OutPorts {
		for i := 1; i < len(ports); i++ {
			p := &ports[i]
			if p.Dest < 0 {
				continue
			}
			counts[p.Kind]++
			if p.Dead {
				dead++
			}
		}
	}
	fmt.Fprintf(&b, "links: ")
	for _, k := range []network.LinkKind{network.KindOnChip, network.KindParallel, network.KindSerial, network.KindHeteroPHY} {
		if counts[k] > 0 {
			fmt.Fprintf(&b, "%d %s  ", counts[k], k)
		}
	}
	if dead > 0 {
		fmt.Fprintf(&b, "(%d failed)", dead)
	}
	fmt.Fprintln(&b)

	if t.CubeDims > 0 {
		fmt.Fprintf(&b, "hypercube: %d dimensions, links per (chiplet,dim):", t.CubeDims)
		for d := 0; d < t.CubeDims; d++ {
			fmt.Fprintf(&b, " dim%d=%d", d, len(t.CubeLinkNodes(0, d)))
		}
		fmt.Fprintln(&b)
	}
	if len(t.Adapters) > 0 {
		fmt.Fprintf(&b, "hetero-PHY adapters: %d (%s scheduling)\n", len(t.Adapters), t.Adapters[0].Policy().Name())
	}
	return b.String()
}
