// Package topology constructs the paper's multi-chiplet interconnection
// systems: chiplets with a 2D-mesh network-on-chip and interface nodes on
// every edge (Fig. 9a), wired into the five evaluated global systems
// (Figs. 6 and 10):
//
//   - uniform-parallel 2D-mesh — parallel IF between adjacent chiplets;
//   - uniform-serial 2D-torus — serial IF neighbors plus serial wraparounds;
//   - hetero-PHY 2D-torus — hetero-PHY (bonded parallel+serial) neighbors
//     plus serial-only wraparounds;
//   - uniform-serial hypercube — chiplets connected only by serial links in
//     a hypercube (the method of Feng et al. HPCA'23 [30]);
//   - hetero-channel — parallel-IF mesh neighbors plus an independent
//     serial-IF hypercube.
package topology

import (
	"fmt"

	"heteroif/internal/core"
	"heteroif/internal/network"
)

// System enumerates the evaluated interconnection systems.
type System uint8

const (
	// UniformParallelMesh is the parallel-IF-only 2D-mesh baseline.
	UniformParallelMesh System = iota
	// UniformSerialTorus is the serial-IF-only 2D-torus baseline.
	UniformSerialTorus
	// HeteroPHYTorus is the hetero-PHY 2D-torus of Fig. 6(a).
	HeteroPHYTorus
	// UniformSerialHypercube is the serial-IF-only hypercube baseline.
	UniformSerialHypercube
	// HeteroChannel is the mesh+hypercube system of Fig. 10.
	HeteroChannel
)

// String returns the system name used in experiment output.
func (s System) String() string {
	switch s {
	case UniformParallelMesh:
		return "uniform-parallel-mesh"
	case UniformSerialTorus:
		return "uniform-serial-torus"
	case HeteroPHYTorus:
		return "hetero-phy-torus"
	case UniformSerialHypercube:
		return "uniform-serial-hypercube"
	case HeteroChannel:
		return "hetero-channel"
	default:
		return fmt.Sprintf("system(%d)", uint8(s))
	}
}

// Spec describes one multi-chiplet system to build.
type Spec struct {
	System System
	// ChipletsX×ChipletsY chiplets, each an NodesX×NodesY mesh.
	ChipletsX, ChipletsY int
	NodesX, NodesY       int
	// Policy is the hetero-PHY adapter scheduling policy (HeteroPHYTorus
	// only); nil means balanced.
	Policy core.Policy
}

// Validate reports specification errors.
func (s *Spec) Validate() error {
	if s.ChipletsX <= 0 || s.ChipletsY <= 0 || s.NodesX <= 0 || s.NodesY <= 0 {
		return fmt.Errorf("topology: dimensions must be positive, got %d×%d chiplets of %d×%d", s.ChipletsX, s.ChipletsY, s.NodesX, s.NodesY)
	}
	if s.System == UniformSerialHypercube || s.System == HeteroChannel {
		n := s.ChipletsX * s.ChipletsY
		if n&(n-1) != 0 {
			return fmt.Errorf("topology: hypercube systems need a power-of-two chiplet count, got %d", n)
		}
		if dims(n) > 4*(s.NodesX+s.NodesY)-4 && n > 1 {
			return fmt.Errorf("topology: chiplet perimeter too small for %d cube dimensions", dims(n))
		}
	}
	return nil
}

func dims(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}

// PortInfo describes one router output port for the routing algorithms.
type PortInfo struct {
	Dest network.NodeID
	Kind network.LinkKind
	// CubeDim is the hypercube dimension of a serial cube link, or -1.
	CubeDim int8
	// Wrap marks torus wraparound links.
	Wrap bool
	// Dead marks a failed channel (fault injection, Sec. 9): routing
	// functions stop emitting candidates for it.
	Dead bool
}

// Topo is the built system plus the geometric metadata routing needs.
type Topo struct {
	Spec

	// GX and GY are the global node-grid dimensions
	// (ChipletsX×NodesX by ChipletsY×NodesY).
	GX, GY int
	// N is the total node count.
	N int
	// CubeDims is the hypercube dimensionality (0 for mesh/torus systems).
	CubeDims int

	// OutPorts[node][port] describes each router output port; entry 0 is
	// the local ejection port (zero PortInfo).
	OutPorts [][]PortInfo

	// CubePorts[chiplet*CubeDims+dim] lists the nodes owning the
	// chiplet's cube links for that dimension (one per edge node assigned
	// to the dimension).
	CubePorts [][]network.NodeID

	// Adapters lists the hetero-PHY adapters, for stats collection.
	Adapters []*core.HeteroPHYAdapter
}

// NodeAt returns the node at global coordinates (gx, gy).
func (t *Topo) NodeAt(gx, gy int) network.NodeID {
	return network.NodeID(gy*t.GX + gx)
}

// Coord returns the global coordinates of a node.
func (t *Topo) Coord(id network.NodeID) (gx, gy int) {
	return int(id) % t.GX, int(id) / t.GX
}

// Chiplet returns the chiplet grid coordinates of a node.
func (t *Topo) Chiplet(id network.NodeID) (cx, cy int) {
	gx, gy := t.Coord(id)
	return gx / t.NodesX, gy / t.NodesY
}

// ChipletID returns the scalar chiplet index (row-major), the hypercube
// address.
func (t *Topo) ChipletID(id network.NodeID) int {
	cx, cy := t.Chiplet(id)
	return cy*t.ChipletsX + cx
}

// ChipletOrigin returns the global coordinates of chiplet c's node (0,0).
func (t *Topo) ChipletOrigin(c int) (gx, gy int) {
	cx, cy := c%t.ChipletsX, c/t.ChipletsX
	return cx * t.NodesX, cy * t.NodesY
}

// ShardCuts returns the node indices at chiplet-row boundaries — the
// starts of each horizontal row of chiplets in the row-major node
// numbering. Nodes of one chiplet row are contiguous (a chiplet itself is
// not), so cutting the parallel stepper's shards here keeps every chiplet
// whole within a shard: cross-shard traffic crosses chiplet boundaries on
// the modeled D2D interface links rather than intra-chiplet mesh hops.
// Feed the result to network.SetShardCuts before SetWorkers.
func (t *Topo) ShardCuts() []int {
	row := t.GX * t.NodesY
	cuts := make([]int, 0, t.ChipletsY-1)
	for b := row; b < t.N; b += row {
		cuts = append(cuts, b)
	}
	return cuts
}

// ChipletLeaders returns one representative node per chiplet — the node
// nearest each chiplet's center — with chiplets visited in serpentine
// order (left-to-right on even chiplet rows, right-to-left on odd ones).
// Consecutive leaders are therefore physically adjacent chiplets, which
// makes the slice a natural ring order for collective programs: every
// ring hop crosses only one D2D interface boundary instead of striding
// the whole package.
func (t *Topo) ChipletLeaders() []network.NodeID {
	leaders := make([]network.NodeID, 0, t.ChipletsX*t.ChipletsY)
	for cy := 0; cy < t.ChipletsY; cy++ {
		for i := 0; i < t.ChipletsX; i++ {
			cx := i
			if cy%2 == 1 {
				cx = t.ChipletsX - 1 - i
			}
			gx := cx*t.NodesX + t.NodesX/2
			gy := cy*t.NodesY + t.NodesY/2
			leaders = append(leaders, t.NodeAt(gx, gy))
		}
	}
	return leaders
}

// SameChiplet reports whether two nodes are on the same chiplet.
func (t *Topo) SameChiplet(a, b network.NodeID) bool {
	return t.ChipletID(a) == t.ChipletID(b)
}

// MeshDistance is the hop distance between two nodes on the global 2D mesh.
func (t *Topo) MeshDistance(a, b network.NodeID) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// TorusDistance is the hop distance between two nodes on the global 2D
// torus (mesh plus per-row/per-column wraparound links).
func (t *Topo) TorusDistance(a, b network.NodeID) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx := abs(ax - bx)
	dy := abs(ay - by)
	return min(dx, t.GX-dx) + min(dy, t.GY-dy)
}

// ChipletMeshHops is #H_P of Eq. 5: chiplet-level mesh hop count between the
// chiplets of two nodes.
func (t *Topo) ChipletMeshHops(a, b network.NodeID) int {
	acx, acy := t.Chiplet(a)
	bcx, bcy := t.Chiplet(b)
	return abs(acx-bcx) + abs(acy-bcy)
}

// CubeHops is #H_S of Eq. 5: the Hamming distance between the chiplet
// addresses of two nodes.
func (t *Topo) CubeHops(a, b network.NodeID) int {
	x := t.ChipletID(a) ^ t.ChipletID(b)
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// CubeLinkNodes returns the nodes owning chiplet c's cube links for dim.
func (t *Topo) CubeLinkNodes(c, dim int) []network.NodeID {
	if t.CubeDims == 0 {
		return nil
	}
	return t.CubePorts[c*t.CubeDims+dim]
}

// FailLink injects a fault on the channel from node n through output port
// `port` (Sec. 9 "Fault tolerance"). Only channels outside the escape
// subnetwork may fail — torus wraparounds and hypercube cube links on
// systems that retain at least one live link per (chiplet, dimension) —
// because the escape subnetwork must stay connected (Lemma 1). Routing
// algorithms skip dead channels; the adaptive systems keep delivering all
// traffic over the surviving channel diversity.
func (t *Topo) FailLink(n network.NodeID, port int) error {
	if int(n) >= len(t.OutPorts) || port <= 0 || port >= len(t.OutPorts[n]) {
		return fmt.Errorf("topology: no port %d at node %d", port, n)
	}
	p := &t.OutPorts[n][port]
	if p.Dead {
		return nil
	}
	switch {
	case p.Wrap:
		// Wraparounds are purely adaptive: always safe to fail.
	case p.CubeDim >= 0:
		// Cube links participate in the hypercube escape (uniform-serial
		// hypercube) or are fully adaptive (hetero-channel). In both cases
		// at least one live link of the same (chiplet, dim) must remain so
		// minus-first waypoints stay reachable.
		c := t.ChipletID(n)
		live := 0
		for _, owner := range t.CubeLinkNodes(c, int(p.CubeDim)) {
			for i := 1; i < len(t.OutPorts[owner]); i++ {
				q := &t.OutPorts[owner][i]
				if q.CubeDim == p.CubeDim && !q.Dead && !(owner == n && i == port) {
					live++
				}
			}
		}
		if live == 0 {
			return fmt.Errorf("topology: cannot fail the last cube link of chiplet %d dim %d", c, p.CubeDim)
		}
	default:
		return fmt.Errorf("topology: channel %d->%d (%v) belongs to the escape subnetwork and cannot be failed", n, p.Dest, p.Kind)
	}
	p.Dead = true
	return nil
}

// EdgeNodes enumerates a chiplet's boundary nodes clockwise from the origin
// corner, as local (nx, ny) pairs.
func (t *Topo) edgeNodesLocal() [][2]int {
	nx, ny := t.NodesX, t.NodesY
	var out [][2]int
	for x := 0; x < nx; x++ { // top row, left→right
		out = append(out, [2]int{x, 0})
	}
	for y := 1; y < ny; y++ { // right column, top→bottom
		out = append(out, [2]int{nx - 1, y})
	}
	if ny > 1 {
		for x := nx - 2; x >= 0; x-- { // bottom row, right→left
			out = append(out, [2]int{x, ny - 1})
		}
	}
	if nx > 1 {
		for y := ny - 2; y >= 1; y-- { // left column, bottom→top
			out = append(out, [2]int{0, y})
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
