package topology

import (
	"strings"
	"testing"

	"heteroif/internal/network"
)

func build(t *testing.T, sys System, cx, cy, nx, ny int) (*network.Network, *Topo) {
	t.Helper()
	cfg := network.DefaultConfig()
	net, topo, err := Build(cfg, Spec{System: sys, ChipletsX: cx, ChipletsY: cy, NodesX: nx, NodesY: ny})
	if err != nil {
		t.Fatalf("Build(%v): %v", sys, err)
	}
	return net, topo
}

func countLinks(net *network.Network, kind network.LinkKind) int {
	n := 0
	for _, l := range net.Links {
		if l.Kind == kind {
			n++
		}
	}
	return n
}

func TestCoordinateRoundTrip(t *testing.T) {
	_, topo := build(t, UniformParallelMesh, 3, 2, 4, 5)
	if topo.GX != 12 || topo.GY != 10 || topo.N != 120 {
		t.Fatalf("dims: GX=%d GY=%d N=%d", topo.GX, topo.GY, topo.N)
	}
	for gy := 0; gy < topo.GY; gy++ {
		for gx := 0; gx < topo.GX; gx++ {
			id := topo.NodeAt(gx, gy)
			x, y := topo.Coord(id)
			if x != gx || y != gy {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", gx, gy, id, x, y)
			}
			cx, cy := topo.Chiplet(id)
			if cx != gx/4 || cy != gy/5 {
				t.Fatalf("chiplet of (%d,%d) = (%d,%d)", gx, gy, cx, cy)
			}
		}
	}
}

func TestMeshLinkCounts(t *testing.T) {
	net, topo := build(t, UniformParallelMesh, 2, 2, 3, 3)
	// On-chip: per chiplet 2*(2*3+3*2) = 24 directed links, 4 chiplets.
	if got := countLinks(net, network.KindOnChip); got != 96 {
		t.Errorf("on-chip links = %d, want 96", got)
	}
	// Parallel: boundary pairs: vertical boundary 6 rows ×1 + horizontal 6
	// cols ×1, ×2 directions = (6+6)*2 = 24.
	if got := countLinks(net, network.KindParallel); got != 24 {
		t.Errorf("parallel links = %d, want 24", got)
	}
	if countLinks(net, network.KindSerial) != 0 {
		t.Error("mesh must have no serial links")
	}
	_ = topo
}

func TestTorusWraparounds(t *testing.T) {
	net, topo := build(t, UniformSerialTorus, 2, 2, 3, 3)
	// All interface links serial: neighbors 24 + wraps (GX=6: 6 rows + 6
	// cols, ×2 dirs = 24).
	if got := countLinks(net, network.KindSerial); got != 48 {
		t.Errorf("serial links = %d, want 48", got)
	}
	// Wrap metadata: exactly 24 wrap links.
	wraps := 0
	for _, ports := range topo.OutPorts {
		for _, p := range ports {
			if p.Wrap {
				wraps++
			}
		}
	}
	if wraps != 24 {
		t.Errorf("wrap ports = %d, want 24", wraps)
	}
}

func TestHeteroPHYTorusComposition(t *testing.T) {
	net, topo := build(t, HeteroPHYTorus, 2, 2, 3, 3)
	if got := countLinks(net, network.KindHeteroPHY); got != 24 {
		t.Errorf("hetero-PHY links = %d, want 24", got)
	}
	if got := countLinks(net, network.KindSerial); got != 24 {
		t.Errorf("serial (wrap) links = %d, want 24", got)
	}
	if len(topo.Adapters) != 24 {
		t.Errorf("adapters = %d, want one per hetero link (24)", len(topo.Adapters))
	}
	for _, l := range net.Links {
		if l.Kind == network.KindHeteroPHY && l.Adapter == nil {
			t.Fatalf("hetero link %d has no adapter", l.ID)
		}
	}
}

func TestHypercubeWiring(t *testing.T) {
	net, topo := build(t, UniformSerialHypercube, 2, 2, 3, 3)
	if topo.CubeDims != 2 {
		t.Fatalf("cube dims = %d, want 2", topo.CubeDims)
	}
	// Perimeter of a 3×3 chiplet is 8 edge nodes; each owns one serial
	// link: 4 chiplets × 8 = 32 directed... each link counted once per
	// direction: 32 edge nodes × 1 outgoing = 32 serial links.
	if got := countLinks(net, network.KindSerial); got != 32 {
		t.Errorf("serial links = %d, want 32", got)
	}
	if countLinks(net, network.KindParallel) != 0 {
		t.Error("uniform-serial hypercube must have no parallel links")
	}
	// Each (chiplet, dim) pair owns 4 cube ports (8 edges / 2 dims).
	for c := 0; c < 4; c++ {
		for d := 0; d < 2; d++ {
			nodes := topo.CubeLinkNodes(c, d)
			if len(nodes) != 4 {
				t.Fatalf("chiplet %d dim %d has %d cube ports, want 4", c, d, len(nodes))
			}
		}
	}
	// Cube links connect chiplets differing in exactly the port's dim.
	for _, ports := range topo.OutPorts {
		for _, p := range ports {
			if p.CubeDim < 0 {
				continue
			}
			src := p.Dest // checked from the destination side below
			_ = src
		}
	}
	for n, ports := range topo.OutPorts {
		for _, p := range ports {
			if p.CubeDim < 0 {
				continue
			}
			cs := topo.ChipletID(network.NodeID(n))
			cd := topo.ChipletID(p.Dest)
			if cs^cd != 1<<p.CubeDim {
				t.Fatalf("cube link %d->%d labeled dim %d but chiplets %d->%d", n, p.Dest, p.CubeDim, cs, cd)
			}
		}
	}
}

func TestHeteroChannelComposition(t *testing.T) {
	net, _ := build(t, HeteroChannel, 2, 2, 3, 3)
	if got := countLinks(net, network.KindParallel); got != 24 {
		t.Errorf("parallel links = %d, want 24", got)
	}
	if got := countLinks(net, network.KindSerial); got != 32 {
		t.Errorf("serial links = %d, want 32", got)
	}
}

func TestSpecValidation(t *testing.T) {
	cfg := network.DefaultConfig()
	bad := []Spec{
		{System: UniformParallelMesh, ChipletsX: 0, ChipletsY: 1, NodesX: 1, NodesY: 1},
		{System: UniformSerialHypercube, ChipletsX: 3, ChipletsY: 1, NodesX: 2, NodesY: 2}, // not power of 2
	}
	for i, s := range bad {
		if _, _, err := Build(cfg, s); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestDistances(t *testing.T) {
	_, topo := build(t, UniformSerialTorus, 2, 2, 3, 3)
	a := topo.NodeAt(0, 0)
	b := topo.NodeAt(5, 0)
	if got := topo.MeshDistance(a, b); got != 5 {
		t.Errorf("mesh distance = %d, want 5", got)
	}
	if got := topo.TorusDistance(a, b); got != 1 {
		t.Errorf("torus distance = %d, want 1 (wraparound)", got)
	}
	if got := topo.ChipletMeshHops(a, b); got != 1 {
		t.Errorf("chiplet mesh hops = %d, want 1", got)
	}
	_, cube := build(t, UniformSerialHypercube, 2, 2, 3, 3)
	c0 := cube.NodeAt(0, 0) // chiplet 0
	c3 := cube.NodeAt(5, 5) // chiplet 3
	if got := cube.CubeHops(c0, c3); got != 2 {
		t.Errorf("cube hops 0->3 = %d, want 2 (hamming)", got)
	}
}

func TestEdgeNodesClockwise(t *testing.T) {
	_, topo := build(t, UniformParallelMesh, 1, 1, 4, 3)
	edges := topo.edgeNodesLocal()
	// 4×3 chiplet: perimeter = 2*(4+3)-4 = 10.
	if len(edges) != 10 {
		t.Fatalf("edge count = %d, want 10", len(edges))
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if seen[e] {
			t.Fatalf("duplicate edge node %v", e)
		}
		seen[e] = true
		if e[0] != 0 && e[0] != 3 && e[1] != 0 && e[1] != 2 {
			t.Fatalf("non-boundary node %v in edge list", e)
		}
	}
}

func TestSingleNodeChipletDegenerate(t *testing.T) {
	// 1×1 chiplets: the global mesh is entirely interface links.
	net, topo := build(t, UniformParallelMesh, 3, 3, 1, 1)
	if topo.N != 9 {
		t.Fatalf("N = %d", topo.N)
	}
	if countLinks(net, network.KindOnChip) != 0 {
		t.Error("1×1 chiplets should have no on-chip links")
	}
	if got := countLinks(net, network.KindParallel); got != 24 {
		t.Errorf("parallel links = %d, want 24", got)
	}
}

func TestDescribe(t *testing.T) {
	_, topo := build(t, HeteroChannel, 2, 2, 3, 3)
	out := topo.Describe()
	for _, want := range []string{"hetero-channel", "2×2 chiplets", "on-chip", "serial", "hypercube: 2 dimensions"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	_, phy := build(t, HeteroPHYTorus, 2, 2, 3, 3)
	if !strings.Contains(phy.Describe(), "hetero-PHY adapters: 24") {
		t.Errorf("Describe missing adapters:\n%s", phy.Describe())
	}
}

func TestDescribeShowsFaults(t *testing.T) {
	_, topo := build(t, UniformSerialTorus, 2, 2, 3, 3)
	for n := range topo.OutPorts {
		done := false
		for port := 1; port < len(topo.OutPorts[n]); port++ {
			if topo.OutPorts[n][port].Wrap {
				if err := topo.FailLink(network.NodeID(n), port); err != nil {
					t.Fatal(err)
				}
				done = true
				break
			}
		}
		if done {
			break
		}
	}
	if !strings.Contains(topo.Describe(), "(1 failed)") {
		t.Errorf("Describe missing fault count:\n%s", topo.Describe())
	}
}

func TestSystemStrings(t *testing.T) {
	names := map[System]string{
		UniformParallelMesh:    "uniform-parallel-mesh",
		UniformSerialTorus:     "uniform-serial-torus",
		HeteroPHYTorus:         "hetero-phy-torus",
		UniformSerialHypercube: "uniform-serial-hypercube",
		HeteroChannel:          "hetero-channel",
	}
	for sys, want := range names {
		if sys.String() != want {
			t.Errorf("%d.String() = %q, want %q", sys, sys.String(), want)
		}
	}
	if System(99).String() == "" {
		t.Error("unknown system should still render")
	}
}

func TestSameChipletAndCubeNodesEdgeCases(t *testing.T) {
	_, topo := build(t, UniformSerialHypercube, 2, 2, 3, 3)
	a, b := topo.NodeAt(0, 0), topo.NodeAt(2, 2)
	if !topo.SameChiplet(a, b) {
		t.Error("nodes in one chiplet reported as different chiplets")
	}
	c := topo.NodeAt(3, 0)
	if topo.SameChiplet(a, c) {
		t.Error("nodes in different chiplets reported as same")
	}
	// Mesh systems have no cube metadata.
	_, mesh := build(t, UniformParallelMesh, 2, 2, 3, 3)
	if mesh.CubeLinkNodes(0, 0) != nil {
		t.Error("mesh should have no cube link nodes")
	}
}

func TestFailLinkOnAlreadyDeadIsIdempotent(t *testing.T) {
	_, topo := build(t, UniformSerialTorus, 2, 2, 3, 3)
	var node network.NodeID
	port := -1
	for n := range topo.OutPorts {
		for p := 1; p < len(topo.OutPorts[n]); p++ {
			if topo.OutPorts[n][p].Wrap {
				node, port = network.NodeID(n), p
				break
			}
		}
		if port >= 0 {
			break
		}
	}
	if err := topo.FailLink(node, port); err != nil {
		t.Fatal(err)
	}
	if err := topo.FailLink(node, port); err != nil {
		t.Fatalf("re-failing a dead link should be a no-op, got %v", err)
	}
}

func TestShardCuts(t *testing.T) {
	_, topo := build(t, UniformParallelMesh, 3, 2, 4, 5)
	// 2 chiplet rows of 12×5 nodes: one cut at 60.
	if got := topo.ShardCuts(); len(got) != 1 || got[0] != 60 {
		t.Fatalf("ShardCuts = %v, want [60]", got)
	}
	_, topo = build(t, HeteroPHYTorus, 4, 4, 8, 8)
	cuts := topo.ShardCuts()
	if len(cuts) != 3 {
		t.Fatalf("ShardCuts = %v, want 3 cuts", cuts)
	}
	for i, c := range cuts {
		if want := (i + 1) * 32 * 8; c != want {
			t.Errorf("cut %d = %d, want %d", i, c, want)
		}
		// Every node below the cut is in an earlier chiplet row than every
		// node at or above it.
		lo := topo.ChipletID(network.NodeID(c-1)) / topo.ChipletsX
		hi := topo.ChipletID(network.NodeID(c)) / topo.ChipletsX
		if lo >= hi {
			t.Errorf("cut %d does not separate chiplet rows (%d vs %d)", c, lo, hi)
		}
	}
}
