package trace

// HPC trace generators: synthetic stand-ins for the dumpi traces collected
// on NERSC Hopper (Sec. 7.2). Both programs run on 1024 ranks and produce
// over one million packets, matching the paper's description.

// HPCRanks is the MPI rank count of both HPC traces.
const HPCRanks = 1024

// cnsGrid is the 3D rank decomposition used by the CNS generator.
var cnsGrid = [3]int{16, 8, 8}

func rankAt(x, y, z int) int32 {
	return int32((z*cnsGrid[1]+y)*cnsGrid[0] + x)
}

func coordsOf(r int32) (x, y, z int) {
	x = int(r) % cnsGrid[0]
	y = (int(r) / cnsGrid[0]) % cnsGrid[1]
	z = int(r) / (cnsGrid[0] * cnsGrid[1])
	return
}

// GenerateCNS synthesizes the compressible Navier–Stokes trace: a bulk
// 3D halo exchange. Every timestep, each rank exchanges ghost zones with
// its six grid neighbors — several 16-flit packets per face, jittered
// across the step window — which is the bandwidth-dominated,
// nearest-neighbor structure of the original miniapp.
func GenerateCNS(cycles int64, seed int64) *Trace {
	r := rng(seed ^ 0xC45)
	t := &Trace{Name: "hpc-cns", Ranks: HPCRanks, Cycles: cycles}
	const (
		stepCycles   = 2000 // compute+exchange period
		pktsPerFace  = 4
		flitsPerPkt  = 16
		exchangeSpan = 800 // window within a step over which sends spread
	)
	for start := int64(0); start < cycles; start += stepCycles {
		for rank := int32(0); rank < HPCRanks; rank++ {
			x, y, z := coordsOf(rank)
			neighbors := [][3]int{
				{x - 1, y, z}, {x + 1, y, z},
				{x, y - 1, z}, {x, y + 1, z},
				{x, y, z - 1}, {x, y, z + 1},
			}
			for _, nb := range neighbors {
				if nb[0] < 0 || nb[0] >= cnsGrid[0] || nb[1] < 0 || nb[1] >= cnsGrid[1] || nb[2] < 0 || nb[2] >= cnsGrid[2] {
					continue // physical boundary: no exchange
				}
				dst := rankAt(nb[0], nb[1], nb[2])
				for p := 0; p < pktsPerFace; p++ {
					when := start + int64(r.Intn(exchangeSpan))
					if when >= cycles {
						continue
					}
					t.Records = append(t.Records, Record{
						Time: when, Src: rank, Dst: dst,
						Flits: flitsPerPkt, Class: classBestEffort,
					})
				}
			}
		}
	}
	t.sortRecords()
	return t
}

// GenerateMOC synthesizes the 3D method-of-characteristics trace: a
// pipelined angular sweep. Rays cross the domain along octant directions,
// so each rank forwards partial angular fluxes to its three downstream
// neighbors per sweep step, and a fraction of the traffic is long-range
// (characteristics that span several ranks before re-entering the grid),
// giving MOC its mixed near/far structure.
func GenerateMOC(cycles int64, seed int64) *Trace {
	r := rng(seed ^ 0x30C)
	t := &Trace{Name: "hpc-moc", Ranks: HPCRanks, Cycles: cycles}
	const (
		sweepCycles = 250 // one wavefront step
		flitsPerPkt = 8
		longFrac    = 0.15 // long-range characteristic messages
	)
	octants := [8][3]int{
		{1, 1, 1}, {-1, 1, 1}, {1, -1, 1}, {-1, -1, 1},
		{1, 1, -1}, {-1, 1, -1}, {1, -1, -1}, {-1, -1, -1},
	}
	oct := 0
	for start := int64(0); start < cycles; start += sweepCycles {
		dir := octants[oct%len(octants)]
		oct++
		for rank := int32(0); rank < HPCRanks; rank++ {
			x, y, z := coordsOf(rank)
			downstream := [][3]int{
				{x + dir[0], y, z},
				{x, y + dir[1], z},
				{x, y, z + dir[2]},
			}
			for _, nb := range downstream {
				if nb[0] < 0 || nb[0] >= cnsGrid[0] || nb[1] < 0 || nb[1] >= cnsGrid[1] || nb[2] < 0 || nb[2] >= cnsGrid[2] {
					continue
				}
				dst := rankAt(nb[0], nb[1], nb[2])
				if r.Float64() < longFrac {
					// Long characteristic: skip several ranks along the
					// sweep direction.
					hop := 2 + r.Intn(4)
					lx := clamp(x+dir[0]*hop, 0, cnsGrid[0]-1)
					ly := clamp(y+dir[1]*hop, 0, cnsGrid[1]-1)
					lz := clamp(z+dir[2]*hop, 0, cnsGrid[2]-1)
					if d := rankAt(lx, ly, lz); d != rank {
						dst = d
					}
				}
				when := start + int64(r.Intn(sweepCycles))
				if when >= cycles || dst == rank {
					continue
				}
				t.Records = append(t.Records, Record{
					Time: when, Src: rank, Dst: dst,
					Flits: flitsPerPkt, Class: classBestEffort,
				})
			}
		}
	}
	t.sortRecords()
	return t
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
