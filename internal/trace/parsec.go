package trace

import (
	"fmt"
	"sort"
)

// parsecProfile captures the statistical shape of one Netrace PARSEC
// workload on a 64-core CMP: how often cores issue memory-system requests,
// how bursty they are, and how much of the traffic is bulk data. Profiles
// are calibrated to the qualitative characterization in the Netrace report
// [33] (region-of-interest averages): cache-thrashing workloads (canneal)
// run hot, compute-bound ones (blackscholes, swaptions) run cold.
type parsecProfile struct {
	name string
	// reqRate is the per-core request probability per cycle.
	reqRate float64
	// dataFrac is the fraction of requests that miss to data (triggering a
	// 9-flit reply; the rest get 1-flit control replies).
	dataFrac float64
	// burstLen is the mean burst length (requests issued back-to-back).
	burstLen float64
	// locality is the probability a request targets the core's local L2
	// slice neighborhood instead of an address-hashed bank.
	locality float64
}

// parsecProfiles lists the evaluated workloads. Rates are chosen so the
// 64-node systems operate below saturation (PARSEC traffic is light; the
// paper's Fig. 12 compares zero-load-dominated latencies).
var parsecProfiles = []parsecProfile{
	{"blackscholes", 0.0020, 0.35, 1.2, 0.30},
	{"bodytrack", 0.0045, 0.40, 1.6, 0.25},
	{"canneal", 0.0120, 0.55, 2.5, 0.10},
	{"dedup", 0.0085, 0.50, 2.0, 0.20},
	{"ferret", 0.0070, 0.45, 1.8, 0.20},
	{"fluidanimate", 0.0060, 0.45, 1.5, 0.35},
	{"swaptions", 0.0015, 0.30, 1.1, 0.30},
	{"vips", 0.0075, 0.50, 1.7, 0.25},
	{"x264", 0.0095, 0.55, 2.2, 0.15},
}

// PARSECWorkloads returns the available workload names.
func PARSECWorkloads() []string {
	out := make([]string, len(parsecProfiles))
	for i, p := range parsecProfiles {
		out[i] = p.name
	}
	return out
}

// PARSECRanks is the trace rank count (64-core multiprocessors, Sec. 7.2).
const PARSECRanks = 64

// ClassOf values used by the generators.
const (
	classInOrder    = 1 // must match network.ClassInOrder
	classBestEffort = 0 // must match network.ClassBestEffort
)

// GeneratePARSEC synthesizes a Netrace-like trace for the named workload:
// 64 ranks, request/reply memory-system traffic with 1-flit (8 B) requests
// and control replies and 9-flit (72 B) data replies, in-order class
// (coherence traffic requires ordering, Sec. 4.2). Duration is `cycles`.
func GeneratePARSEC(workload string, cycles int64, seed int64) (*Trace, error) {
	var prof *parsecProfile
	for i := range parsecProfiles {
		if parsecProfiles[i].name == workload {
			prof = &parsecProfiles[i]
			break
		}
	}
	if prof == nil {
		return nil, fmt.Errorf("trace: unknown PARSEC workload %q (have %v)", workload, PARSECWorkloads())
	}
	r := rng(seed ^ int64(len(workload))*7919)
	t := &Trace{
		Name:   "parsec-" + workload,
		Ranks:  PARSECRanks,
		Cycles: cycles,
	}
	// L2 banks are interleaved across all ranks (each node hosts a slice),
	// the usual tiled-CMP arrangement.
	const serviceDelay = 20 // L2 lookup before the reply leaves
	burst := 0
	for src := int32(0); src < PARSECRanks; src++ {
		for now := int64(0); now < cycles; now++ {
			issue := false
			if burst > 0 {
				issue = true
				burst--
			} else if r.Float64() < prof.reqRate {
				issue = true
				if r.Float64() < (prof.burstLen-1)/prof.burstLen {
					burst = int(prof.burstLen)
				}
			}
			if !issue {
				continue
			}
			bank := src
			if r.Float64() < prof.locality {
				// Neighboring slice (same row of the 8×8 logical grid).
				bank = (src & ^int32(7)) + int32(r.Intn(8))
			} else {
				bank = int32(r.Intn(PARSECRanks))
			}
			if bank == src {
				bank = (bank + 1) % PARSECRanks
			}
			// Request: 1 flit (8 B). Coherence requests are the
			// order-critical traffic (Sec. 4.2), so they carry the
			// in-order class and exercise the reorder buffer.
			t.Records = append(t.Records, Record{Time: now, Src: src, Dst: bank, Flits: 1, Class: classInOrder})
			// Reply after the service delay: 9 flits (72 B) on a data
			// miss, 1 flit otherwise. Replies are causally ordered by the
			// request-response protocol itself and ride best-effort.
			replyLen := int32(1)
			if r.Float64() < prof.dataFrac {
				replyLen = 9
			}
			t.Records = append(t.Records, Record{Time: now + serviceDelay, Src: bank, Dst: src, Flits: replyLen, Class: classBestEffort})
		}
	}
	t.sortRecords()
	return t, nil
}

// PARSECAll generates every workload trace, sorted by name.
func PARSECAll(cycles int64, seed int64) ([]*Trace, error) {
	names := PARSECWorkloads()
	sort.Strings(names)
	out := make([]*Trace, 0, len(names))
	for _, n := range names {
		t, err := GeneratePARSEC(n, cycles, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
