package trace

import (
	"fmt"

	"heteroif/internal/network"
)

// Replayer injects a trace into a network. Packets enter the source queue
// at their trace time regardless of congestion ("all packets are injected
// according to the trace time even if queuing occurs", Sec. 7.2), so
// queueing shows up as latency rather than as lost offered load.
type Replayer struct {
	Trace *Trace
	Net   *network.Network
	// Map translates rank → node. It must cover [0, Trace.Ranks).
	Map []network.NodeID
	// Speedup compresses trace time: injection time = Time/Speedup. The
	// Fig. 13/15 injection-rate sweeps scale the same trace to different
	// offered loads. Zero means 1.0.
	Speedup float64

	// MeasureFrom is the warm-up boundary: offered-load accounting starts
	// at this cycle so it compares like-for-like with the statistics
	// collector's measurement window.
	MeasureFrom int64

	idx int
	// offeredFlits counts flits actually offered (rank-colocated sends on
	// wrapped mappings are skipped).
	offeredFlits int64
}

// NewReplayer validates the mapping and returns a replayer.
func NewReplayer(t *Trace, net *network.Network, m []network.NodeID, speedup float64) (*Replayer, error) {
	if len(m) < int(t.Ranks) {
		return nil, fmt.Errorf("trace: mapping covers %d ranks, trace %s needs %d", len(m), t.Name, t.Ranks)
	}
	for r, n := range m[:t.Ranks] {
		if int(n) < 0 || int(n) >= len(net.Nodes) {
			return nil, fmt.Errorf("trace: rank %d maps to invalid node %d", r, n)
		}
	}
	if speedup <= 0 {
		speedup = 1
	}
	return &Replayer{Trace: t, Net: net, Map: m, Speedup: speedup}, nil
}

// OfferedRate returns the nominal replayed load in flits/cycle/node for a
// network of n nodes (the whole trace, time-compressed).
func (r *Replayer) OfferedRate(n int) float64 {
	cycles := float64(r.Trace.Cycles) / r.Speedup
	if cycles == 0 || n == 0 {
		return 0
	}
	return float64(r.Trace.TotalFlits()) / cycles / float64(n)
}

// ActualOfferedRate returns the load actually offered inside the
// measurement window ending at cycle `now`: rank-colocated records
// (possible when the mapping wraps) and warm-up traffic are excluded, so
// saturation checks compare like with like.
func (r *Replayer) ActualOfferedRate(now int64, n int) float64 {
	window := now - r.MeasureFrom
	if window <= 0 || n == 0 {
		return 0
	}
	return float64(r.offeredFlits) / float64(window) / float64(n)
}

// Drive implements the per-cycle injection callback for network.Run.
func (r *Replayer) Drive(now int64) {
	recs := r.Trace.Records
	for r.idx < len(recs) {
		rec := &recs[r.idx]
		when := int64(float64(rec.Time) / r.Speedup)
		if when > now {
			return
		}
		src, dst := r.Map[rec.Src], r.Map[rec.Dst]
		if src != dst {
			p := r.Net.NewPacket(src, dst, int(rec.Flits), now)
			p.Class = network.Class(rec.Class)
			r.Net.Offer(p)
			if now >= r.MeasureFrom {
				r.offeredFlits += int64(rec.Flits)
			}
		}
		r.idx++
	}
}

// NextInjection reports the earliest cycle ≥ now at which Drive can offer
// a packet — the compressed time of the next unoffered record — or -1 once
// the trace is exhausted. It implements network.RunWith's fast-forward
// contract: trace gaps (common in application traces, Sec. 7.2) are skipped
// without changing results, because Drive stamps CreatedAt with the cycle
// at which the record becomes due either way.
func (r *Replayer) NextInjection(now int64) int64 {
	if r.idx >= len(r.Trace.Records) {
		return -1
	}
	when := int64(float64(r.Trace.Records[r.idx].Time) / r.Speedup)
	if when < now {
		return now
	}
	return when
}

// Done reports whether every record has been offered.
func (r *Replayer) Done() bool { return r.idx >= len(r.Trace.Records) }

// LinearMap maps rank i to node i (row-major), the mapping used for the
// hetero-PHY trace experiments where ranks ≤ nodes.
func LinearMap(ranks, nodes int) ([]network.NodeID, error) {
	if ranks > nodes {
		return nil, fmt.Errorf("trace: %d ranks exceed %d nodes", ranks, nodes)
	}
	m := make([]network.NodeID, ranks)
	for i := range m {
		m[i] = network.NodeID(i)
	}
	return m, nil
}
