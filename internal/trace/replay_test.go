package trace

import (
	"testing"

	"heteroif/internal/network"
)

func testNet(t *testing.T, n int) *network.Network {
	t.Helper()
	cfg := network.DefaultConfig()
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.AddNodes(n)
	return net
}

func TestReplayerInjectsAtTraceTime(t *testing.T) {
	tr := &Trace{Name: "r", Ranks: 4, Cycles: 100, Records: []Record{
		{Time: 0, Src: 0, Dst: 1, Flits: 2},
		{Time: 10, Src: 2, Dst: 3, Flits: 1},
		{Time: 10, Src: 1, Dst: 0, Flits: 3},
		{Time: 50, Src: 3, Dst: 2, Flits: 1},
	}}
	net := testNet(t, 4)
	m, err := LinearMap(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(tr, net, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{0, 0, 0, 0, 0}
	checkAt := map[int64]int{0: 1, 9: 1, 10: 3, 49: 3, 50: 4}
	_ = counts
	for now := int64(0); now <= 60; now++ {
		rep.Drive(now)
		if want, ok := checkAt[now]; ok {
			if got := net.QueuedPackets(); got != want {
				t.Fatalf("cycle %d: %d packets offered, want %d", now, got, want)
			}
		}
	}
	if !rep.Done() {
		t.Fatal("replayer not done after trace end")
	}
}

func TestReplayerSpeedup(t *testing.T) {
	tr := &Trace{Name: "s", Ranks: 2, Cycles: 100, Records: []Record{
		{Time: 40, Src: 0, Dst: 1, Flits: 1},
	}}
	net := testNet(t, 2)
	m, _ := LinearMap(2, 2)
	rep, _ := NewReplayer(tr, net, m, 4)
	rep.Drive(9)
	if net.QueuedPackets() != 0 {
		t.Fatal("packet released before compressed time")
	}
	rep.Drive(10) // 40/4
	if net.QueuedPackets() != 1 {
		t.Fatal("packet not released at compressed time")
	}
	if got, want := rep.OfferedRate(2), float64(1)/25/2; got != want {
		t.Fatalf("offered rate %.4f, want %.4f", got, want)
	}
}

func TestReplayerSkipsColocatedRanks(t *testing.T) {
	tr := &Trace{Name: "c", Ranks: 4, Cycles: 10, Records: []Record{
		{Time: 0, Src: 0, Dst: 2, Flits: 1}, // both map to node 0
		{Time: 0, Src: 0, Dst: 1, Flits: 1},
	}}
	net := testNet(t, 2)
	m := []network.NodeID{0, 1, 0, 1} // wrap mapping
	rep, err := NewReplayer(tr, net, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep.Drive(0)
	if got := net.QueuedPackets(); got != 1 {
		t.Fatalf("co-located send not skipped: %d packets", got)
	}
}

func TestReplayerRejectsBadMapping(t *testing.T) {
	tr := &Trace{Name: "b", Ranks: 4, Cycles: 10}
	net := testNet(t, 2)
	if _, err := NewReplayer(tr, net, []network.NodeID{0, 1}, 1); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := NewReplayer(tr, net, []network.NodeID{0, 1, 2, 9}, 1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := LinearMap(10, 4); err == nil {
		t.Fatal("LinearMap with ranks > nodes accepted")
	}
}

func TestActualOfferedRateExcludesWarmup(t *testing.T) {
	tr := &Trace{Name: "w", Ranks: 2, Cycles: 100, Records: []Record{
		{Time: 5, Src: 0, Dst: 1, Flits: 4},  // during warm-up
		{Time: 60, Src: 1, Dst: 0, Flits: 8}, // measured
	}}
	net := testNet(t, 2)
	m, _ := LinearMap(2, 2)
	rep, _ := NewReplayer(tr, net, m, 1)
	rep.MeasureFrom = 50
	for now := int64(0); now <= 100; now++ {
		rep.Drive(now)
	}
	// Only the 8-flit packet counts, over the 50-cycle window, 2 nodes.
	if got, want := rep.ActualOfferedRate(100, 2), 8.0/50/2; got != want {
		t.Fatalf("offered = %v, want %v", got, want)
	}
}
