package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats characterizes a trace's communication structure, the quantities
// trace-driven NoC studies report (packet-size mix, temporal burstiness,
// spatial concentration). cmd/tracegen prints them; tests use them to pin
// the synthetic generators to their intended shapes.
type Stats struct {
	Packets     int
	Flits       int64
	OfferedRate float64 // flits/cycle/rank

	// SizeHistogram maps packet length (flits) → count.
	SizeHistogram map[int32]int

	// Burstiness is the coefficient of variation (σ/μ) of packet counts
	// over fixed time windows; ≈1 for Poisson, >1 for bursty traffic.
	Burstiness float64

	// UniquePairs counts distinct (src,dst) pairs; PairCoverage divides by
	// all possible ordered pairs.
	UniquePairs  int
	PairCoverage float64

	// TopPairShare is the traffic share of the busiest 1% of pairs, a
	// hotspot measure.
	TopPairShare float64

	// ActiveRanks counts ranks that send at least one packet.
	ActiveRanks int
}

// ComputeStats analyzes a trace with the given burstiness window (cycles;
// 0 picks duration/1000).
func (t *Trace) ComputeStats(window int64) Stats {
	s := Stats{
		Packets:       len(t.Records),
		Flits:         t.TotalFlits(),
		OfferedRate:   t.OfferedRate(),
		SizeHistogram: make(map[int32]int),
	}
	if len(t.Records) == 0 {
		return s
	}
	if window <= 0 {
		window = t.Cycles / 1000
		if window <= 0 {
			window = 1
		}
	}

	// Windowed counts for burstiness.
	nWin := int(t.Cycles/window) + 1
	counts := make([]float64, nWin)
	pairCount := make(map[uint64]int)
	senders := make(map[int32]bool)
	for i := range t.Records {
		r := &t.Records[i]
		s.SizeHistogram[r.Flits]++
		w := int(r.Time / window)
		if w < nWin {
			counts[w]++
		}
		pairCount[uint64(r.Src)<<32|uint64(uint32(r.Dst))]++
		senders[r.Src] = true
	}
	mean, varsum := 0.0, 0.0
	for _, c := range counts {
		mean += c
	}
	mean /= float64(nWin)
	for _, c := range counts {
		varsum += (c - mean) * (c - mean)
	}
	if mean > 0 {
		s.Burstiness = math.Sqrt(varsum/float64(nWin)) / mean
	}

	s.UniquePairs = len(pairCount)
	all := int(t.Ranks) * (int(t.Ranks) - 1)
	if all > 0 {
		s.PairCoverage = float64(s.UniquePairs) / float64(all)
	}
	s.ActiveRanks = len(senders)

	// Busiest 1% of pairs.
	loads := make([]int, 0, len(pairCount))
	for _, c := range pairCount {
		loads = append(loads, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(loads)))
	top := len(loads) / 100
	if top < 1 {
		top = 1
	}
	topSum := 0
	for _, c := range loads[:top] {
		topSum += c
	}
	s.TopPairShare = float64(topSum) / float64(len(t.Records))
	return s
}

// String renders the statistics block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packets:      %d (%d flits, %.4f flits/cycle/rank)\n", s.Packets, s.Flits, s.OfferedRate)
	var sizes []int32
	for k := range s.SizeHistogram {
		sizes = append(sizes, k)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	fmt.Fprintf(&b, "sizes:       ")
	for _, k := range sizes {
		fmt.Fprintf(&b, " %d-flit×%d", k, s.SizeHistogram[k])
	}
	fmt.Fprintf(&b, "\nburstiness:   %.2f (σ/μ of windowed counts; 1.0 ≈ Poisson)\n", s.Burstiness)
	fmt.Fprintf(&b, "pairs:        %d unique (%.1f%% coverage), top 1%% carry %.1f%%\n",
		s.UniquePairs, 100*s.PairCoverage, 100*s.TopPairShare)
	fmt.Fprintf(&b, "active ranks: %d\n", s.ActiveRanks)
	return b.String()
}
