package trace

import (
	"strings"
	"testing"
)

func TestStatsEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty", Ranks: 8, Cycles: 100}
	s := tr.ComputeStats(0)
	if s.Packets != 0 || s.Burstiness != 0 || s.ActiveRanks != 0 {
		t.Fatalf("empty trace produced stats %+v", s)
	}
}

func TestStatsSizeHistogram(t *testing.T) {
	tr, _ := GeneratePARSEC("dedup", 4000, 1)
	s := tr.ComputeStats(0)
	if len(s.SizeHistogram) != 2 {
		t.Fatalf("PARSEC size histogram has %d entries, want 2 (1-flit and 9-flit)", len(s.SizeHistogram))
	}
	if s.SizeHistogram[1] == 0 || s.SizeHistogram[9] == 0 {
		t.Fatalf("histogram missing a mode: %v", s.SizeHistogram)
	}
	if s.ActiveRanks != 64 {
		t.Fatalf("active ranks = %d, want 64", s.ActiveRanks)
	}
}

func TestStatsBurstinessOrdering(t *testing.T) {
	// CNS is a bulk-synchronous halo exchange — strongly bursty; a
	// uniformly spread trace over the same span must measure much lower.
	cns := GenerateCNS(50000, 1).ComputeStats(200)

	flat := &Trace{Name: "flat", Ranks: 1024, Cycles: 50000}
	for i := 0; i < 50000; i += 2 {
		flat.Records = append(flat.Records, Record{
			Time: int64(i), Src: int32(i % 1024), Dst: int32((i + 7) % 1024), Flits: 16,
		})
	}
	flatStats := flat.ComputeStats(200)
	if cns.Burstiness <= 2*flatStats.Burstiness {
		t.Fatalf("CNS burstiness %.2f should far exceed a flat trace's %.2f",
			cns.Burstiness, flatStats.Burstiness)
	}
}

func TestStatsPairStructure(t *testing.T) {
	// CNS pairs are only grid neighbors: coverage must be far below 1%
	// of all 1024×1023 pairs, and well-defined.
	s := GenerateCNS(30000, 1).ComputeStats(0)
	if s.PairCoverage > 0.01 {
		t.Fatalf("CNS pair coverage %.4f too broad for a stencil", s.PairCoverage)
	}
	if s.UniquePairs == 0 || s.TopPairShare <= 0 {
		t.Fatalf("degenerate pair stats: %+v", s)
	}
	// MOC reaches farther: more unique pairs than CNS per packet.
	moc := GenerateMOC(30000, 1).ComputeStats(0)
	if moc.UniquePairs <= s.UniquePairs {
		t.Fatalf("MOC unique pairs %d should exceed CNS %d (long-range characteristics)",
			moc.UniquePairs, s.UniquePairs)
	}
}

func TestStatsString(t *testing.T) {
	tr, _ := GeneratePARSEC("vips", 2000, 1)
	out := tr.ComputeStats(0).String()
	for _, want := range []string{"packets:", "burstiness:", "pairs:", "active ranks:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats rendering missing %q:\n%s", want, out)
		}
	}
}
