// Package trace provides the trace-driven workload substrate of Sec. 7.2:
// a packet-trace format with binary serialization, a replayer that injects
// packets at their trace times ("even if queuing occurs"), and synthetic
// generators standing in for the paper's external trace artifacts:
//
//   - Netrace PARSEC traces [33]: 64-rank CMP coherence traffic with the
//     documented bimodal packet sizes (8-byte/1-flit control+request
//     packets and 72-byte/9-flit data packets). We model each workload as
//     a request–reply memory-system process with per-workload rate,
//     locality and burstiness profiles.
//   - NERSC/dumpi Hopper traces [1, 12]: 1024-rank MPI communication, with
//     CNS as a 3D compressible Navier–Stokes halo exchange (bulk
//     nearest-neighbor messages per timestep) and MOC as a 3D
//     method-of-characteristics sweep (pipelined wavefront plus long-range
//     angular messages), each generating more than one million packets.
//
// The substitution preserves what the experiments consume: a fixed packet
// stream (time, source, destination, length) replayed identically against
// every network under comparison. See DESIGN.md §4.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// Record is one packet in a trace. Times are in cycles; Src/Dst are ranks
// (not nodes — the replayer maps ranks onto network nodes).
type Record struct {
	Time  int64
	Src   int32
	Dst   int32
	Flits int32
	Class uint8
}

// Trace is a named, time-sorted packet stream over a rank space.
type Trace struct {
	Name    string
	Ranks   int32
	Cycles  int64 // trace duration
	Records []Record
}

// TotalFlits returns the number of flits in the trace.
func (t *Trace) TotalFlits() int64 {
	var n int64
	for i := range t.Records {
		n += int64(t.Records[i].Flits)
	}
	return n
}

// OfferedRate returns the trace's average offered load in
// flits/cycle/rank.
func (t *Trace) OfferedRate() float64 {
	if t.Cycles == 0 || t.Ranks == 0 {
		return 0
	}
	return float64(t.TotalFlits()) / float64(t.Cycles) / float64(t.Ranks)
}

// sortRecords time-sorts the records (stable, preserving generation order
// within a cycle).
func (t *Trace) sortRecords() {
	sort.SliceStable(t.Records, func(i, j int) bool { return t.Records[i].Time < t.Records[j].Time })
}

// Validate checks rank bounds and time ordering.
func (t *Trace) Validate() error {
	last := int64(0)
	for i := range t.Records {
		r := &t.Records[i]
		if r.Src < 0 || r.Src >= t.Ranks || r.Dst < 0 || r.Dst >= t.Ranks {
			return fmt.Errorf("trace %s: record %d has rank out of range [0,%d): src=%d dst=%d", t.Name, i, t.Ranks, r.Src, r.Dst)
		}
		if r.Src == r.Dst {
			return fmt.Errorf("trace %s: record %d has src == dst == %d", t.Name, i, r.Src)
		}
		if r.Flits <= 0 {
			return fmt.Errorf("trace %s: record %d has non-positive length %d", t.Name, i, r.Flits)
		}
		if r.Time < last {
			return fmt.Errorf("trace %s: record %d out of time order (%d < %d)", t.Name, i, r.Time, last)
		}
		last = r.Time
	}
	return nil
}

const magic = "HIFTRC01"

// Write serializes the trace in the library's binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	name := []byte(t.Name)
	if err := binary.Write(bw, binary.LittleEndian, int32(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	hdr := []any{t.Ranks, t.Cycles, int64(len(t.Records))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i := range t.Records {
		r := &t.Records[i]
		if err := binary.Write(bw, binary.LittleEndian, r.Time); err != nil {
			return err
		}
		rest := []any{r.Src, r.Dst, r.Flits, r.Class}
		for _, v := range rest {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	m := make([]byte, len(magic))
	if _, err := io.ReadFull(br, m); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var nameLen int32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen < 0 || nameLen > 4096 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	t := &Trace{Name: string(name)}
	var count int64
	if err := binary.Read(br, binary.LittleEndian, &t.Ranks); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &t.Cycles); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count < 0 || count > 1<<31 {
		return nil, fmt.Errorf("trace: unreasonable record count %d", count)
	}
	t.Records = make([]Record, count)
	for i := range t.Records {
		r := &t.Records[i]
		if err := binary.Read(br, binary.LittleEndian, &r.Time); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &r.Src); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &r.Dst); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &r.Flits); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &r.Class); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// rng returns a deterministic source for a generator.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
