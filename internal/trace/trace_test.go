package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPARSECWorkloadsGenerate(t *testing.T) {
	for _, wl := range PARSECWorkloads() {
		tr, err := GeneratePARSEC(wl, 5000, 1)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if tr.Ranks != 64 {
			t.Fatalf("%s: %d ranks, want 64", wl, tr.Ranks)
		}
		if len(tr.Records) == 0 {
			t.Fatalf("%s: empty trace", wl)
		}
		// Bimodal packet sizes only: 1 flit (8 B) and 9 flits (72 B).
		long, short := 0, 0
		for i := range tr.Records {
			switch tr.Records[i].Flits {
			case 1:
				short++
			case 9:
				long++
			default:
				t.Fatalf("%s: packet length %d, want 1 or 9", wl, tr.Records[i].Flits)
			}
		}
		if long == 0 || short == 0 {
			t.Fatalf("%s: need both packet sizes, got %d short / %d long", wl, short, long)
		}
	}
}

func TestPARSECUnknownWorkload(t *testing.T) {
	if _, err := GeneratePARSEC("doom", 1000, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPARSECDeterministic(t *testing.T) {
	a, _ := GeneratePARSEC("canneal", 2000, 99)
	b, _ := GeneratePARSEC("canneal", 2000, 99)
	if len(a.Records) != len(b.Records) {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestPARSECRelativeIntensity(t *testing.T) {
	// canneal is the cache-thrashing workload; blackscholes is compute
	// bound — their rates must reflect that (Netrace characterization).
	hot, _ := GeneratePARSEC("canneal", 5000, 1)
	cold, _ := GeneratePARSEC("blackscholes", 5000, 1)
	if hot.OfferedRate() <= 2*cold.OfferedRate() {
		t.Fatalf("canneal (%.4f) should be much hotter than blackscholes (%.4f)",
			hot.OfferedRate(), cold.OfferedRate())
	}
}

func TestCNSProperties(t *testing.T) {
	tr := GenerateCNS(100000, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Ranks != 1024 {
		t.Fatalf("ranks = %d, want 1024", tr.Ranks)
	}
	if len(tr.Records) < 1000000 {
		t.Fatalf("CNS has %d packets, paper says over one million", len(tr.Records))
	}
	// Halo exchange: every destination is a 3D grid neighbor.
	for i := 0; i < len(tr.Records); i += 997 {
		r := &tr.Records[i]
		sx, sy, sz := coordsOf(r.Src)
		dx, dy, dz := coordsOf(r.Dst)
		md := abs(sx-dx) + abs(sy-dy) + abs(sz-dz)
		if md != 1 {
			t.Fatalf("CNS record %d: %d->%d is not a grid neighbor (dist %d)", i, r.Src, r.Dst, md)
		}
	}
}

func TestMOCProperties(t *testing.T) {
	tr := GenerateMOC(100000, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Ranks != 1024 {
		t.Fatalf("ranks = %d, want 1024", tr.Ranks)
	}
	if len(tr.Records) < 1000000 {
		t.Fatalf("MOC has %d packets, paper says over one million", len(tr.Records))
	}
	// Sweep structure: a mix of neighbor and long-range messages.
	long := 0
	for i := range tr.Records {
		r := &tr.Records[i]
		sx, sy, sz := coordsOf(r.Src)
		dx, dy, dz := coordsOf(r.Dst)
		if abs(sx-dx)+abs(sy-dy)+abs(sz-dz) > 1 {
			long++
		}
	}
	frac := float64(long) / float64(len(tr.Records))
	if frac < 0.05 || frac > 0.5 {
		t.Fatalf("long-range fraction %.2f outside the expected MOC band", frac)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, _ := GeneratePARSEC("dedup", 2000, 5)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Ranks != tr.Ranks || back.Cycles != tr.Cycles {
		t.Fatalf("header mismatch: %+v vs %+v", back, tr)
	}
	if len(back.Records) != len(tr.Records) {
		t.Fatalf("record count %d vs %d", len(back.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if back.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(times []uint16, seed int64) bool {
		tr := &Trace{Name: "prop", Ranks: 8, Cycles: 1 << 17}
		for i, tm := range times {
			tr.Records = append(tr.Records, Record{
				Time:  int64(tm),
				Src:   int32(i % 8),
				Dst:   int32((i + 1) % 8),
				Flits: int32(i%15 + 1),
				Class: uint8(i % 4),
			})
		}
		tr.sortRecords()
		var buf bytes.Buffer
		if tr.Write(&buf) != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(back.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if back.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := &Trace{Name: "x", Ranks: 4, Cycles: 100}
	tr.Records = []Record{{Time: 0, Src: 0, Dst: 9, Flits: 1}}
	if tr.Validate() == nil {
		t.Error("out-of-range rank accepted")
	}
	tr.Records = []Record{{Time: 0, Src: 1, Dst: 1, Flits: 1}}
	if tr.Validate() == nil {
		t.Error("self-send accepted")
	}
	tr.Records = []Record{{Time: 5, Src: 0, Dst: 1, Flits: 1}, {Time: 2, Src: 0, Dst: 1, Flits: 1}}
	if tr.Validate() == nil {
		t.Error("time disorder accepted")
	}
	tr.Records = []Record{{Time: 0, Src: 0, Dst: 1, Flits: 0}}
	if tr.Validate() == nil {
		t.Error("zero-length packet accepted")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPARSECAllGeneratesEveryWorkload(t *testing.T) {
	all, err := PARSECAll(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(PARSECWorkloads()) {
		t.Fatalf("generated %d of %d workloads", len(all), len(PARSECWorkloads()))
	}
	seen := map[string]bool{}
	for _, tr := range all {
		if seen[tr.Name] {
			t.Fatalf("duplicate trace %s", tr.Name)
		}
		seen[tr.Name] = true
		if len(tr.Records) == 0 {
			t.Fatalf("%s empty", tr.Name)
		}
	}
}

func TestOfferedRateDegenerate(t *testing.T) {
	tr := &Trace{Name: "d", Ranks: 0, Cycles: 0}
	if tr.OfferedRate() != 0 {
		t.Error("degenerate trace should offer 0")
	}
}

func TestReadRejectsTruncatedStream(t *testing.T) {
	tr, _ := GeneratePARSEC("vips", 1000, 1)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 12, len(full) / 2, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}
