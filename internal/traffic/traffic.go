// Package traffic implements the synthetic workloads of Sec. 7.2: uniform
// random, uniform-hotspot (communication restricted to a random 10% of the
// node pairs), and the four bit-permutation patterns (shuffle, complement,
// transpose, reverse), plus the locality-scoped uniform traffic of Fig. 18
// and Bernoulli injection processes.
package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"heteroif/internal/fault"
	"heteroif/internal/network"
)

// Driver is a workload driver for network.RunWith: Drive may Offer packets
// at the start of every cycle, and NextInjection implements the quiescence
// fast-forward contract — the earliest cycle ≥ now at which Drive may next
// offer a packet, or a negative value for "never again". Open-loop
// implementations sample or replay a fixed schedule (Generator pins
// NextInjection to now, disabling skips; trace.Replayer exposes trace
// gaps); closed-loop implementations (collective.Engine) gate each step's
// injections on the previous step's deliveries, so their compute phases
// are provably idle network stretches the engine fast-forwards across.
type Driver interface {
	Drive(now int64)
	NextInjection(now int64) int64
}

// Generator implements Driver; trace.Replayer and collective.Engine
// implement it structurally (asserted in their own packages' tests).
var _ Driver = (*Generator)(nil)

// Pattern maps a source node to a destination for one packet. Dest returns
// -1 when the source does not participate in the pattern (it then injects
// nothing).
type Pattern interface {
	Name() string
	Dest(rng *rand.Rand, src, n int) int
}

// Participants reports how many of n sources actually inject under a
// pattern (bit permutations on non-power-of-two systems, fixed points and
// similar exclusions). Saturation detection scales offered load by it.
func Participants(p Pattern, n int) int {
	probe, ok := p.(interface{ Participants(n int) int })
	if ok {
		return probe.Participants(n)
	}
	return n
}

// Participants implements the optional interface for bit permutations:
// sources outside the embedded power-of-two space and fixed points do not
// inject.
func (p *BitPermutation) Participants(n int) int {
	count := 0
	for src := 0; src < n; src++ {
		if p.Dest(nil, src, n) >= 0 {
			count++
		}
	}
	return count
}

// Uniform sends each packet to a uniformly random other node.
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(rng *rand.Rand, src, n int) int {
	d := rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Hotspot restricts communication to a random fraction of the node pairs
// (Sec. 7.2 uses 10%): every source keeps a fixed random subset of
// destinations and sends uniformly within it, concentrating load on the
// lucky pairs.
type Hotspot struct {
	pairs [][]int
}

// NewHotspot selects ⌈frac·(n−1)⌉ destinations per source with the given
// seed.
func NewHotspot(n int, frac float64, seed int64) *Hotspot {
	// Root keeps the historical stream: hotspot pair selection is part of
	// the published results. Fault draws use fault.Split domains, so the
	// two can never alias under one seed.
	rng := fault.Root(seed)
	k := int(frac*float64(n-1) + 0.999)
	if k < 1 {
		k = 1
	}
	h := &Hotspot{pairs: make([][]int, n)}
	for src := 0; src < n; src++ {
		perm := rng.Perm(n)
		dsts := make([]int, 0, k)
		for _, d := range perm {
			if d == src {
				continue
			}
			dsts = append(dsts, d)
			if len(dsts) == k {
				break
			}
		}
		h.pairs[src] = dsts
	}
	return h
}

// Name implements Pattern.
func (h *Hotspot) Name() string { return "uniform-hotspot" }

// Dest implements Pattern.
func (h *Hotspot) Dest(rng *rand.Rand, src, n int) int {
	if src >= len(h.pairs) || len(h.pairs[src]) == 0 {
		return -1
	}
	return h.pairs[src][rng.Intn(len(h.pairs[src]))]
}

// BitPermutation applies a permutation of the node-index bits. Systems
// whose node count is not a power of two use the largest embedded power of
// two (nodes outside it do not participate), the usual convention for
// permutation traffic on irregular sizes.
type BitPermutation struct {
	name string
	// perm computes the destination from the source index given b index
	// bits.
	perm func(src, b int) int
}

// Name implements Pattern.
func (p *BitPermutation) Name() string { return p.name }

// Dest implements Pattern.
func (p *BitPermutation) Dest(_ *rand.Rand, src, n int) int {
	b := bits.Len(uint(n)) - 1 // floor(log2(n))
	space := 1 << b
	if src >= space {
		return -1
	}
	d := p.perm(src, b)
	if d == src || d >= space {
		return -1
	}
	return d
}

// BitShuffle rotates the address bits left by one: d_i = s_{(i-1) mod b}.
func BitShuffle() *BitPermutation {
	return &BitPermutation{name: "bit-shuffle", perm: func(s, b int) int {
		return ((s << 1) | (s >> (b - 1))) & (1<<b - 1)
	}}
}

// BitComplement inverts every address bit: d_i = ¬s_i.
func BitComplement() *BitPermutation {
	return &BitPermutation{name: "bit-complement", perm: func(s, b int) int {
		return ^s & (1<<b - 1)
	}}
}

// BitTranspose rotates the address bits by b/2: d_i = s_{(i+b/2) mod b}.
func BitTranspose() *BitPermutation {
	return &BitPermutation{name: "bit-transpose", perm: func(s, b int) int {
		h := b / 2
		return ((s >> h) | (s << (b - h))) & (1<<b - 1)
	}}
}

// BitReverse mirrors the address bits: d_i = s_{b-i-1}.
func BitReverse() *BitPermutation {
	return &BitPermutation{name: "bit-reverse", perm: func(s, b int) int {
		d := 0
		for i := 0; i < b; i++ {
			if s&(1<<i) != 0 {
				d |= 1 << (b - 1 - i)
			}
		}
		return d
	}}
}

// Patterns returns the six synthetic patterns of Sec. 7.2 in paper order.
func Patterns(n int, seed int64) []Pattern {
	return []Pattern{
		Uniform{},
		NewHotspot(n, 0.10, seed),
		BitShuffle(),
		BitComplement(),
		BitTranspose(),
		BitReverse(),
	}
}

// ByName returns a named pattern (uniform, uniform-hotspot, bit-shuffle,
// bit-complement, bit-transpose, bit-reverse).
func ByName(name string, n int, seed int64) (Pattern, error) {
	for _, p := range Patterns(n, seed) {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}

// Generator injects Bernoulli traffic: each participating node starts a new
// packet each cycle with probability rate/length, giving an offered load of
// `rate` flits/cycle/node.
type Generator struct {
	Net     *network.Network
	Pattern Pattern
	// Rate is the offered load in flits/cycle/node.
	Rate float64
	// Length is the packet length in flits (0 = config default).
	Length int
	// Class assigned to generated packets.
	Class network.Class
	// Nodes optionally restricts which nodes inject (nil = all).
	Nodes []network.NodeID

	rng  *rand.Rand
	prob float64
}

// NewGenerator builds a generator with its own deterministic random source.
func NewGenerator(net *network.Network, p Pattern, rate float64, seed int64) *Generator {
	g := &Generator{Net: net, Pattern: p, Rate: rate, Length: net.Cfg.PacketLength}
	// fault.Root preserves the pre-fault injection stream bit-for-bit;
	// fault-injection randomness lives in disjoint fault.Split streams.
	g.rng = fault.Root(seed)
	g.prob = rate / float64(g.Length)
	return g
}

// Drive implements the per-cycle injection callback for network.Run.
func (g *Generator) Drive(now int64) {
	n := len(g.Net.Nodes)
	if g.Nodes != nil {
		for _, src := range g.Nodes {
			g.maybeInject(now, int(src), n)
		}
		return
	}
	for src := 0; src < n; src++ {
		g.maybeInject(now, src, n)
	}
}

// NextInjection always returns now: a Bernoulli process samples its RNG for
// every node on every cycle, so no cycle may be fast-forwarded without
// changing the random stream. Callers who want quiescence skipping must use
// a driver with predictable injection times (e.g. trace.Replayer).
func (g *Generator) NextInjection(now int64) int64 { return now }

func (g *Generator) maybeInject(now int64, src, n int) {
	if g.rng.Float64() >= g.prob {
		return
	}
	dst := g.Pattern.Dest(g.rng, src, n)
	if dst < 0 || dst == src {
		return
	}
	p := g.Net.NewPacket(network.NodeID(src), network.NodeID(dst), g.Length, now)
	p.Class = g.Class
	g.Net.Offer(p)
}

// LocalUniform is the Fig. 18 locality workload: the chiplet grid is
// partitioned into blocks of BlockChiplets×BlockChiplets chiplets and
// every node communicates uniformly within its own block.
type LocalUniform struct {
	// ChipletsX is the chiplet-grid width; NodesX/NodesY the per-chiplet
	// mesh; GX the global node-grid width.
	ChipletsX, NodesX, NodesY, GX int
	// BlockChiplets is the local communication scale in chiplets.
	BlockChiplets int
}

// Name implements Pattern.
func (l *LocalUniform) Name() string {
	return fmt.Sprintf("local-uniform-%dx%d", l.BlockChiplets, l.BlockChiplets)
}

// Dest implements Pattern.
func (l *LocalUniform) Dest(rng *rand.Rand, src, n int) int {
	gx, gy := src%l.GX, src/l.GX
	bw := l.BlockChiplets * l.NodesX // block width in nodes
	bh := l.BlockChiplets * l.NodesY
	bx0, by0 := gx/bw*bw, gy/bh*bh
	// Clip the block to the grid (the grid may not divide evenly).
	gw, gh := l.GX, n/l.GX
	w := min(bw, gw-bx0)
	hgt := min(bh, gh-by0)
	if w*hgt < 2 {
		return -1
	}
	for {
		dx := bx0 + rng.Intn(w)
		dy := by0 + rng.Intn(hgt)
		d := dy*l.GX + dx
		if d != src {
			return d
		}
	}
}
