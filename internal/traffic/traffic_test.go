package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heteroif/internal/network"
)

func TestUniformNeverSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{}
	for i := 0; i < 10000; i++ {
		src := rng.Intn(64)
		d := u.Dest(rng, src, 64)
		if d == src || d < 0 || d >= 64 {
			t.Fatalf("uniform dest %d for src %d", d, src)
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := Uniform{}
	seen := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		seen[u.Dest(rng, 0, 16)] = true
	}
	if len(seen) != 15 {
		t.Fatalf("uniform from node 0 reached %d of 15 destinations", len(seen))
	}
}

func TestHotspotRestrictsPairs(t *testing.T) {
	h := NewHotspot(100, 0.10, 42)
	rng := rand.New(rand.NewSource(3))
	for src := 0; src < 100; src++ {
		if got := len(h.pairs[src]); got != 10 {
			t.Fatalf("src %d has %d allowed destinations, want 10%% of 99 → 10", src, got)
		}
		allowed := map[int]bool{}
		for _, d := range h.pairs[src] {
			if d == src || d < 0 || d >= 100 {
				t.Fatalf("src %d has invalid pair destination %d", src, d)
			}
			allowed[d] = true
		}
		for i := 0; i < 50; i++ {
			if d := h.Dest(rng, src, 100); !allowed[d] {
				t.Fatalf("src %d sent outside its pair set: %d", src, d)
			}
		}
	}
	if Participants(h, 100) != 100 {
		t.Fatal("every node participates in hotspot traffic")
	}
}

func TestParticipants(t *testing.T) {
	if got := Participants(Uniform{}, 64); got != 64 {
		t.Fatalf("uniform participants = %d", got)
	}
	// bit-complement on 256 nodes: no fixed points → all participate.
	if got := Participants(BitComplement(), 256); got != 256 {
		t.Fatalf("complement participants = %d", got)
	}
	// 3136 nodes: only the embedded 2048 can participate.
	if got := Participants(BitReverse(), 3136); got > 2048 || got == 0 {
		t.Fatalf("reverse participants on 3136 = %d", got)
	}
}

// permutation patterns are involutions or bijections on the 2^b space;
// every pattern must be a valid permutation.
func TestBitPatternsArePermutations(t *testing.T) {
	for _, p := range []*BitPermutation{BitShuffle(), BitComplement(), BitTranspose(), BitReverse()} {
		n := 256
		seen := make(map[int]bool)
		self := 0
		for src := 0; src < n; src++ {
			d := p.Dest(nil, src, n)
			if d == -1 {
				self++ // fixed point: node does not inject
				continue
			}
			if d < 0 || d >= n {
				t.Fatalf("%s: dest %d out of range", p.Name(), d)
			}
			if seen[d] {
				t.Fatalf("%s: dest %d hit twice", p.Name(), d)
			}
			seen[d] = true
		}
		if len(seen) == 0 {
			t.Fatalf("%s: produced no traffic", p.Name())
		}
	}
}

func TestBitComplementIsInvolution(t *testing.T) {
	p := BitComplement()
	for src := 0; src < 256; src++ {
		d := p.Dest(nil, src, 256)
		if d == -1 {
			continue
		}
		if back := p.Dest(nil, d, 256); back != src {
			t.Fatalf("complement(complement(%d)) = %d", src, back)
		}
	}
}

func TestBitReverseMatchesDefinition(t *testing.T) {
	p := BitReverse()
	// b=8: reverse of 0b00000001 is 0b10000000.
	if d := p.Dest(nil, 1, 256); d != 128 {
		t.Fatalf("reverse(1) = %d, want 128", d)
	}
	if d := p.Dest(nil, 0b00001111, 256); d != 0b11110000 {
		t.Fatalf("reverse(0x0F) = %#x, want 0xF0", d)
	}
}

func TestBitShuffleMatchesDefinition(t *testing.T) {
	p := BitShuffle()
	// d_i = s_{(i-1) mod b} is a rotate-left by one: 0b1000_0000 -> 0b1.
	if d := p.Dest(nil, 128, 256); d != 1 {
		t.Fatalf("shuffle(128) = %d, want 1", d)
	}
}

func TestBitTransposeMatchesDefinition(t *testing.T) {
	p := BitTranspose()
	// b=8, rotate by b/2=4: 0b0000_0001 -> 0b0001_0000.
	if d := p.Dest(nil, 1, 256); d != 16 {
		t.Fatalf("transpose(1) = %d, want 16", d)
	}
}

func TestBitPatternsOnNonPowerOfTwo(t *testing.T) {
	// 3136 nodes: only the embedded 2048-node space participates.
	p := BitReverse()
	for src := 2048; src < 3136; src += 97 {
		if d := p.Dest(nil, src, 3136); d != -1 {
			t.Fatalf("node %d outside the 2^b space injected to %d", src, d)
		}
	}
	active := 0
	for src := 0; src < 2048; src++ {
		if p.Dest(nil, src, 3136) >= 0 {
			active++
		}
	}
	if active == 0 {
		t.Fatal("no traffic in the embedded space")
	}
}

func TestPatternsRegistry(t *testing.T) {
	ps := Patterns(256, 1)
	if len(ps) != 6 {
		t.Fatalf("pattern count %d, want 6 (Sec. 7.2)", len(ps))
	}
	names := []string{"uniform", "uniform-hotspot", "bit-shuffle", "bit-complement", "bit-transpose", "bit-reverse"}
	for i, p := range ps {
		if p.Name() != names[i] {
			t.Errorf("pattern %d = %q, want %q", i, p.Name(), names[i])
		}
		if got, err := ByName(names[i], 256, 1); err != nil || got.Name() != names[i] {
			t.Errorf("ByName(%q): %v", names[i], err)
		}
	}
	if _, err := ByName("nonsense", 256, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestLocalUniformStaysInBlock(t *testing.T) {
	l := &LocalUniform{ChipletsX: 4, NodesX: 7, NodesY: 7, GX: 28, BlockChiplets: 2}
	f := func(a uint16, seed int64) bool {
		n := 28 * 28
		src := int(a) % n
		rng := rand.New(rand.NewSource(seed))
		d := l.Dest(rng, src, n)
		if d < 0 {
			return false
		}
		if d == src {
			return false
		}
		// Same 2×2-chiplet block: block width 14 nodes.
		sx, sy := src%28, src/28
		dx, dy := d%28, d/28
		return sx/14 == dx/14 && sy/14 == dy/14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorOfferedRate(t *testing.T) {
	// Statistical check: the generator's offered load approximates the
	// requested rate. Packets pile up in the source queues since the
	// network never steps.
	net := newTestNet(t, 16)
	g := NewGenerator(net, Uniform{}, 0.2, 7)
	cycles := int64(20000)
	for now := int64(0); now < cycles; now++ {
		g.Drive(now)
	}
	offered := float64(net.QueuedPackets()*net.Cfg.PacketLength) / float64(cycles) / 16
	if offered < 0.17 || offered > 0.23 {
		t.Fatalf("offered rate %.3f, want ≈0.2", offered)
	}
}

func TestGeneratorNodeSubset(t *testing.T) {
	net := newTestNet(t, 16)
	g := NewGenerator(net, Uniform{}, 0.5, 7)
	g.Nodes = []network.NodeID{3}
	for now := int64(0); now < 1000; now++ {
		g.Drive(now)
	}
	if net.QueuedPackets() == 0 {
		t.Fatal("restricted generator produced nothing")
	}
}

func newTestNet(t *testing.T, n int) *network.Network {
	t.Helper()
	cfg := network.DefaultConfig()
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.AddNodes(n)
	return net
}
